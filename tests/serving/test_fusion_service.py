"""DefenseService cross-cell fusion: heterogeneous cohorts, cache, churn.

PR 8's service-facing contract: tenants with *different* strategy
pairs, attack ratios and datasets now share one fused lockstep cohort,
and every one of them still produces exactly the board its standalone
:class:`GameSession` loop would have — through joins, evictions,
restores and cache invalidation.
"""

import dataclasses
import os
import sys

import numpy as np
import pytest

from repro import DefenseService, GameSpec

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "core")
)
from test_session import (  # noqa: E402
    assert_results_identical,
    matrix_spec,
)


def solo_reference(spec: GameSpec):
    session = spec.session()
    while not session.done:
        session.submit()
    return session.close()


#: A deliberately heterogeneous tenant population: five collector
#: families, six adversaries, three attack ratios, stochastic and
#: deterministic lanes.  The judge is shared — the judge factory is
#: part of the fusion key, so a different judge is a different cohort.
HETERO_CELLS = [
    ("tft-mixed", "mixed", "band", 0.1),
    ("elastic-paper", "elastic", "band", 0.2),
    ("generous", "uniform", "band", 0.3),
    ("ostrich", "null", "band", 0.2),
    ("tft-quality", "fixed", "band", 0.1),
    ("elastic-relax", "just-below", "band", 0.3),
]


def hetero_specs(seed=60, rounds=8):
    specs = []
    for i, (collector, adversary, judge, ratio) in enumerate(HETERO_CELLS):
        spec = matrix_spec(collector, adversary, judge, seed=seed + i)
        specs.append(
            dataclasses.replace(spec, attack_ratio=ratio, rounds=rounds)
        )
    return specs


class TestHeterogeneousFusion:
    def test_mixed_cohort_plays_byte_identical(self):
        specs = hetero_specs()
        solo = [solo_reference(spec) for spec in specs]

        service = DefenseService()
        sids = [service.open(spec) for spec in specs]
        for _ in range(specs[0].rounds):
            service.submit_many(sids)
        for sid, reference in zip(sids, solo, strict=False):
            assert_results_identical(service.close(sid), reference)
        # The whole heterogeneous population rode ONE cohort per round.
        assert service.stats.lockstep_rounds == specs[0].rounds
        assert service.stats.lockstep_lanes == len(specs) * specs[0].rounds
        assert service.stats.solo_rounds == 0

    def test_mixed_ratios_segment_rounds(self):
        # Different attack ratios mean different poison counts: the
        # session must segment the fused round, not reject the cohort.
        specs = [
            dataclasses.replace(
                matrix_spec("elastic-paper", "elastic", "band", seed=70 + i),
                attack_ratio=ratio,
            )
            for i, ratio in enumerate((0.1, 0.2, 0.3))
        ]
        solo = [solo_reference(spec) for spec in specs]
        service = DefenseService()
        sids = [service.open(spec) for spec in specs]
        for _ in range(specs[0].rounds):
            service.submit_many(sids)
        for sid, reference in zip(sids, solo, strict=False):
            assert_results_identical(service.close(sid), reference)
        assert service.stats.solo_rounds == 0

    def test_mid_game_join_evict_restore(self, tmp_path):
        from repro import ResultStore

        specs = hetero_specs(seed=80, rounds=10)
        solo = [solo_reference(spec) for spec in specs]

        store = ResultStore(tmp_path)
        service = DefenseService(store=store)
        sids = [service.open(spec) for spec in specs[:4]]
        late = None
        for round_index in range(specs[0].rounds):
            if round_index == 3:  # two tenants join mid-game
                sids.append(service.open(specs[4]))
                late = service.open(specs[5])
                sids.append(late)
            if round_index == 5:  # one leaves and comes back
                service.evict(late)
            active = [
                sid
                for sid in sids
                if sid in service.resident_ids
                and not service.session(sid).done
            ]
            if active:
                service.submit_many(active)
        # The evicted latecomer restores and finishes solo-consistent.
        restored = service.session(late)
        while not restored.done:
            service.submit(late)
        for sid, reference in zip(sids[:4], solo[:4], strict=False):
            assert_results_identical(service.close(sid), reference)
        # Late joiners played fewer fused rounds; finish them out.
        for sid, reference in zip(sids[4:], solo[4:], strict=False):
            session = service.session(sid)
            while not session.done:
                service.submit(sid)
            assert_results_identical(service.close(sid), reference)

    def test_chunked_cohorts_stay_identical(self):
        specs = hetero_specs(seed=90)
        solo = [solo_reference(spec) for spec in specs]
        service = DefenseService(max_fused_lanes=2)
        sids = [service.open(spec) for spec in specs]
        for _ in range(specs[0].rounds):
            service.submit_many(sids)
        for sid, reference in zip(sids, solo, strict=False):
            assert_results_identical(service.close(sid), reference)
        # 6 tenants in 2-lane chunks -> 3 lockstep passes per round.
        assert service.stats.lockstep_rounds == 3 * specs[0].rounds

    def test_shape_partition_splits_datasets(self):
        # control is (n, 60)-dimensional, taxi is scalar: same fusion
        # family, incompatible batch shapes -> two sub-cohorts.
        control = matrix_spec("elastic-paper", "elastic", "band", seed=95)
        taxi = dataclasses.replace(
            control, dataset="taxi", dataset_size=2000, seed=96
        )
        specs = [control, taxi, dataclasses.replace(taxi, seed=97)]
        solo = [solo_reference(spec) for spec in specs]
        service = DefenseService()
        sids = [service.open(spec) for spec in specs]
        for _ in range(specs[0].rounds):
            service.submit_many(sids)
        for sid, reference in zip(sids, solo, strict=False):
            assert_results_identical(service.close(sid), reference)
        # The taxi pair fused; the lone control tenant went solo.
        assert service.stats.lockstep_lanes == 2 * specs[0].rounds
        assert service.stats.solo_rounds == specs[0].rounds


class TestCohortCache:
    def test_stable_cohort_builds_lanes_once(self):
        specs = hetero_specs(seed=100)
        service = DefenseService()
        sids = [service.open(spec) for spec in specs]
        for _ in range(specs[0].rounds):
            service.submit_many(sids)
        assert service.stats.lane_builds == 1
        assert service.stats.lane_cache_hits == specs[0].rounds - 1

    def test_membership_change_rebuilds(self):
        specs = hetero_specs(seed=110, rounds=10)
        service = DefenseService()
        sids = [service.open(spec) for spec in specs[:4]]
        for _ in range(4):
            service.submit_many(sids)
        assert service.stats.lane_builds == 1
        # Evicting a member changes the cohort: new lanes, fresh build.
        service.evict(sids[-1])
        remaining = sids[:-1]
        for _ in range(4):
            service.submit_many(remaining)
        assert service.stats.lane_builds == 2
        assert service.stats.lane_cache_hits == 3 + 3

    def test_solo_submit_invalidates_cached_cohort(self):
        specs = hetero_specs(seed=120, rounds=10)[:3]
        solo = [solo_reference(spec) for spec in specs]
        service = DefenseService()
        sids = [service.open(spec) for spec in specs]
        service.submit_many(sids)
        service.submit_many(sids)
        # Tenant 0 takes one solo step: the cohort falls out of
        # lockstep, so the service must not reuse the cached cohort.
        service.submit(sids[0])
        session = service.session(sids[0])
        while not session.done:
            service.submit(sids[0])
        assert_results_identical(service.close(sids[0]), solo[0])
        remaining = sids[1:]
        for _ in range(specs[0].rounds - 2):
            service.submit_many(remaining)
        for sid, reference in zip(remaining, solo[1:], strict=False):
            assert_results_identical(service.close(sid), reference)

    def test_session_accessor_invalidates(self):
        specs = hetero_specs(seed=130)[:3]
        solo = [solo_reference(spec) for spec in specs]
        service = DefenseService()
        sids = [service.open(spec) for spec in specs]
        service.submit_many(sids)
        # Handing out the live session object may let the caller mutate
        # it arbitrarily; the cached cohort must be dropped.
        service.session(sids[1])
        builds_before = service.stats.lane_builds
        for _ in range(specs[0].rounds - 1):
            service.submit_many(sids)
        assert service.stats.lane_builds > builds_before
        for sid, reference in zip(sids, solo, strict=False):
            assert_results_identical(service.close(sid), reference)

    def test_cache_disabled_rebuilds_every_round(self):
        specs = hetero_specs(seed=140)[:3]
        solo = [solo_reference(spec) for spec in specs]
        service = DefenseService(cohort_cache_size=0)
        sids = [service.open(spec) for spec in specs]
        for _ in range(specs[0].rounds):
            service.submit_many(sids)
        assert service.stats.lane_builds == specs[0].rounds
        assert service.stats.lane_cache_hits == 0
        for sid, reference in zip(sids, solo, strict=False):
            assert_results_identical(service.close(sid), reference)

    def test_cache_size_validation(self):
        with pytest.raises(ValueError, match="cohort_cache_size"):
            DefenseService(cohort_cache_size=-1)
        with pytest.raises(ValueError, match="max_fused_lanes"):
            DefenseService(max_fused_lanes=1)


class TestFusedResults:
    def test_quality_and_poison_columns_heterogeneous(self):
        # Spot-check that per-lane ratios flow through the fused poison
        # program: reported injected counts differ across lanes.
        specs = [
            dataclasses.replace(
                matrix_spec("elastic-paper", "elastic", "band", seed=150 + i),
                attack_ratio=ratio,
            )
            for i, ratio in enumerate((0.1, 0.3))
        ]
        service = DefenseService()
        sids = [service.open(spec) for spec in specs]
        for _ in range(specs[0].rounds):
            service.submit_many(sids)
        results = [service.close(sid) for sid in sids]
        injected = [
            np.sum([rec["n_poison_injected"] for rec in r.to_records()])
            for r in results
        ]
        assert injected[1] > injected[0] > 0
