"""Graceful degradation of the serving stack under corrupt snapshots.

The acceptance contract: a corrupt persisted snapshot raises typed
:class:`SnapshotError` (never raw ``pickle`` internals), and inside a
quarantining ``submit_many`` cohort the broken tenant is isolated while
every healthy peer's board stays byte-identical to its standalone
session.
"""

import os
import pickle
import sys

import numpy as np
import pytest

from repro import DefenseService, GameSpec, ResultStore, SnapshotError
from repro.core.session import GameSession
from repro.serving.service import TenantFailure

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "core")
)
from test_session import (  # noqa: E402
    assert_results_identical,
    matrix_spec,
)


def solo_reference(spec: GameSpec):
    """The ground-truth standalone run of one tenant's spec."""
    session = spec.session()
    while not session.done:
        session.submit()
    return session.close()


def _corrupt_persisted_blob(service, store, session_id):
    """Truncate a tenant's persisted snapshot blob (torn write)."""
    key = service._session_key(session_id)
    record = store.load(key)
    record["blob"] = record["blob"][: len(record["blob"]) // 2]
    store.save(key, record)


class TestSnapshotError:
    def test_restore_garbage_raises_typed_error(self):
        with pytest.raises(SnapshotError):
            GameSession.restore(b"not a snapshot at all")

    def test_restore_truncated_snapshot_raises_typed_error(self):
        spec = matrix_spec("elastic-paper", "elastic", "band", seed=1)
        session = spec.session()
        session.submit()
        blob = session.snapshot()
        with pytest.raises(SnapshotError):
            GameSession.restore(blob[: len(blob) // 3])

    def test_restore_foreign_pickle_raises_typed_error(self):
        blob = pickle.dumps({"format": "someone.else/9"})
        with pytest.raises(SnapshotError, match="not a repro.session/1"):
            GameSession.restore(blob)

    def test_snapshot_error_is_a_value_error(self):
        # back-compat: callers catching the old untyped error still work
        assert issubclass(SnapshotError, ValueError)

    def test_corrupt_persisted_snapshot_raises_on_submit(self, tmp_path):
        store = ResultStore(tmp_path)
        service = DefenseService(store=store)
        spec = matrix_spec("elastic-paper", "elastic", "band", seed=2)
        sid = service.open(spec)
        service.submit(sid)
        service.evict(sid)
        _corrupt_persisted_blob(service, store, sid)
        with pytest.raises(SnapshotError):
            service.submit(sid)


class TestTenantQuarantine:
    def _cohort(self, service, n=4, seed0=40):
        specs = [
            matrix_spec("elastic-paper", "elastic", "band", seed=seed0 + r)
            for r in range(n)
        ]
        return specs, [service.open(spec) for spec in specs]

    def test_default_submit_many_still_raises(self, tmp_path):
        store = ResultStore(tmp_path)
        service = DefenseService(store=store)
        specs, sids = self._cohort(service)
        service.evict(sids[1])
        _corrupt_persisted_blob(service, store, sids[1])
        with pytest.raises(SnapshotError):
            service.submit_many(sids)

    def test_broken_tenant_is_isolated_and_peers_stay_byte_identical(
        self, tmp_path
    ):
        store = ResultStore(tmp_path)
        service = DefenseService(store=store)
        specs, sids = self._cohort(service)
        references = [solo_reference(spec) for spec in specs]

        service.evict(sids[1])
        _corrupt_persisted_blob(service, store, sids[1])

        for _ in range(specs[0].rounds):
            decisions = service.submit_many(sids, on_error="quarantine")
            assert sids[1] not in decisions
            assert set(decisions) == {sids[0], sids[2], sids[3]}

        # the broken tenant was quarantined exactly once, with a reason
        assert service.quarantined_ids == [sids[1]]
        failure = service.quarantine_reason(sids[1])
        assert isinstance(failure, TenantFailure)
        assert failure.kind == "snapshot"
        assert "SnapshotError" in failure.error
        assert service.stats.quarantined == 1
        # the persisted blob is left in the store for forensics
        assert store.load(service._session_key(sids[1])) is not None

        # cohort peers completed byte-identically to standalone sessions
        for index in (0, 2, 3):
            assert_results_identical(
                service.close(sids[index]), references[index]
            )

    def test_unknown_and_closed_tenants_quarantine_as_lifecycle(self):
        service = DefenseService()
        spec = matrix_spec("elastic-paper", "elastic", "band", seed=90)
        sid = service.open(spec)
        decisions = service.submit_many(
            [sid, "no-such-tenant"], on_error="quarantine"
        )
        assert set(decisions) == {sid}
        assert service.quarantine_reason("no-such-tenant").kind == "lifecycle"

    def test_round_failure_flushes_complete_deferred_board(self):
        """A quarantined tenant's board is complete to its last healthy
        round: the failing submit flushes the deferred sink before the
        round computation can raise."""
        service = DefenseService()
        specs = [
            matrix_spec("elastic-paper", "elastic", "band", seed=70 + r)
            for r in range(3)
        ]
        sids = [service.open(spec) for spec in specs]
        healthy_rounds = 3
        for _ in range(healthy_rounds):
            service.submit_many(sids)
        # Raw registry access on purpose: service.session() would flush
        # the deferred rows this test needs to still be pending.
        handle = service._sessions[sids[0]]
        assert handle._sink is not None, "rounds were not deferred"

        # An empty batch routes the tenant solo (odd shape) and blows
        # up inside its round, after the deferred flush.
        bad = {sids[0]: np.zeros(0), sids[1]: None, sids[2]: None}
        decisions = service.submit_many(bad, on_error="quarantine")
        assert set(decisions) == {sids[1], sids[2]}
        assert service.quarantine_reason(sids[0]).kind == "round"

        reference = specs[0].session()
        for _ in range(healthy_rounds):
            reference.submit()
        assert handle.round_index == healthy_rounds
        got, want = handle.board.columns, reference.board.columns
        assert got.rounds == healthy_rounds
        for field in got.__dataclass_fields__:
            assert np.array_equal(getattr(got, field), getattr(want, field)), (
                f"flushed board diverges from solo play in {field!r}"
            )
        assert (
            handle.board.retained_data().tobytes()
            == reference.board.retained_data().tobytes()
        )

        # the surviving peers play on, byte-identical to standalone
        references = [solo_reference(spec) for spec in specs[1:]]
        for _ in range(specs[1].rounds - healthy_rounds - 1):
            service.submit_many(sids[1:])
        for sid, expected in zip(sids[1:], references, strict=False):
            assert_results_identical(service.close(sid), expected)

    def test_quarantined_id_can_be_reopened(self, tmp_path):
        store = ResultStore(tmp_path)
        service = DefenseService(store=store)
        spec = matrix_spec("elastic-paper", "elastic", "band", seed=91)
        sid = service.open(spec, session_id="tenant-a")
        service.submit(sid)
        service.evict(sid)
        _corrupt_persisted_blob(service, store, sid)
        service.submit_many([sid], on_error="quarantine")
        assert service.quarantined_ids == [sid]
        # the id is free again: a fixed deployment replaces the tenant
        replacement = service.open(spec, session_id="tenant-a")
        assert replacement == sid
        service.submit(replacement)
