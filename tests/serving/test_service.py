"""DefenseService: multiplexing byte-identity, routing, eviction, LRU.

The non-negotiable contract: a tenant served through the lockstep
multiplexer — in any mix of ``submit_many`` cohorts, solo ``submit``
calls, evictions and restores — produces exactly the board, strategy
state and result its standalone :class:`GameSession` loop would have.
"""

import os
import sys

import numpy as np
import pytest

from repro import DefenseService, GameSpec, ResultStore
from repro.serving.service import ServiceStats

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "core")
)
from test_session import (  # noqa: E402
    MATRIX_ADVERSARIES,
    MATRIX_COLLECTORS,
    assert_results_identical,
    matrix_spec,
)


def solo_reference(spec: GameSpec):
    """The ground-truth standalone run of one tenant's spec."""
    session = spec.session()
    while not session.done:
        session.submit()
    return session.close()


PAIRS = [
    ("tft-mixed", "mixed", "position"),     # stochastic both sides + judge
    ("elastic-paper", "elastic", "band"),   # coupled deterministic dynamics
    ("generous", "uniform", "band"),        # per-rep forgiveness draws
    ("ostrich", "null", "band"),            # no injection at all
]


class TestLockstepByteIdentity:
    @pytest.mark.parametrize("collector,adversary,judge", PAIRS)
    def test_multiplexed_equals_solo(self, collector, adversary, judge):
        specs = [
            matrix_spec(collector, adversary, judge, seed=40 + r)
            for r in range(6)
        ]
        solo = [solo_reference(spec) for spec in specs]

        service = DefenseService()
        sids = [service.open(spec) for spec in specs]
        for _ in range(specs[0].rounds):
            service.submit_many(sids)
        for sid, reference in zip(sids, solo, strict=False):
            assert_results_identical(service.close(sid), reference)
        assert service.stats.lockstep_rounds == specs[0].rounds
        assert service.stats.solo_rounds == 0

    def test_interleaved_solo_and_lockstep(self):
        specs = [
            matrix_spec("tft-mixed", "mixed", "position", seed=60 + r)
            for r in range(5)
        ]
        solo = [solo_reference(spec) for spec in specs]
        service = DefenseService()
        sids = [service.open(spec) for spec in specs]
        for t in range(specs[0].rounds):
            if t % 3 == 1:  # every third round routes tenant-by-tenant
                for sid in sids:
                    service.submit(sid)
            else:
                service.submit_many(sids)
        for sid, reference in zip(sids, solo, strict=False):
            assert_results_identical(service.close(sid), reference)
        assert service.stats.solo_rounds > 0
        assert service.stats.lockstep_rounds > 0

    def test_decisions_match_solo_decisions(self):
        spec_a = matrix_spec("elastic-paper", "elastic", "band", seed=7)
        spec_b = matrix_spec("elastic-paper", "elastic", "band", seed=8)
        solo_sessions = [spec_a.session(), spec_b.session()]

        service = DefenseService()
        sids = [service.open(spec_a), service.open(spec_b)]
        for _ in range(spec_a.rounds):
            mux = service.submit_many(sids)
            for sid, solo_session in zip(sids, solo_sessions, strict=False):
                expected = solo_session.submit()
                got = mux[sid]
                assert got.observation == expected.observation
                assert got.n_retained == expected.n_retained
                assert np.array_equal(got.accept_mask, expected.accept_mask)
                assert got.retained.tobytes() == expected.retained.tobytes()

    def test_mixed_groups_and_rounds_split_cohorts(self):
        # Two distinct configurations plus one laggard tenant: cohorts
        # must split by (group, round) and still be byte-identical.
        spec_a = [
            matrix_spec("elastic-paper", "elastic", "band", seed=70 + r)
            for r in range(3)
        ]
        spec_b = [
            matrix_spec("generous", "uniform", "band", seed=80 + r)
            for r in range(2)
        ]
        solo = [solo_reference(s) for s in spec_a + spec_b]

        service = DefenseService()
        sids_a = [service.open(s) for s in spec_a]
        sids_b = [service.open(s) for s in spec_b]
        service.submit(sids_a[0])  # laggard: one round ahead of its group
        for _t in range(spec_a[0].rounds):
            everyone = [
                sid
                for sid in sids_a + sids_b
                if not service.session(sid).done
            ]
            if everyone:
                service.submit_many(everyone)
        # The laggard finished early; everyone ends byte-identical.
        for sid, reference in zip(sids_a + sids_b, solo, strict=False):
            assert_results_identical(service.close(sid), reference)


class TestRoutingAndErrors:
    def test_unknown_session_raises(self):
        service = DefenseService()
        with pytest.raises(KeyError):
            service.submit("nope")
        with pytest.raises(KeyError):
            service.evict("nope")

    def test_duplicate_ids_rejected(self):
        service = DefenseService()
        spec = matrix_spec("ostrich", "null", "band")
        service.open(spec, session_id="a")
        with pytest.raises(ValueError, match="already exists"):
            service.open(spec, session_id="a")
        with pytest.raises(ValueError, match="duplicate"):
            service.submit_many(["a", "a"])

    def test_horizon_exhaustion_is_atomic(self):
        # One exhausted tenant fails the whole call before any stream
        # advances — the healthy tenant replays identically afterwards.
        fresh = matrix_spec("elastic-paper", "elastic", "band", seed=90)
        short = matrix_spec(
            "elastic-paper", "elastic", "band", seed=91, rounds=1
        )
        reference = solo_reference(fresh)

        service = DefenseService()
        healthy = service.open(fresh)
        tiny = service.open(short)
        service.submit_many([healthy, tiny])
        with pytest.raises(RuntimeError, match="horizon"):
            service.submit_many([healthy, tiny])
        while not service.session(healthy).done:
            service.submit(healthy)
        assert_results_identical(service.close(healthy), reference)

    def test_generated_ids_are_stable(self):
        service = DefenseService()
        spec = matrix_spec("ostrich", "null", "band")
        assert service.open(spec) == "session-0"
        assert service.open(spec) == "session-1"
        assert len(service) == 2
        assert service.session_ids() == ["session-0", "session-1"]

    def test_generated_ids_skip_explicit_ones(self):
        service = DefenseService()
        spec = matrix_spec("ostrich", "null", "band")
        service.open(spec, session_id="session-0")
        assert service.open(spec) == "session-1"

    def test_evicted_handle_is_superseded(self):
        # A caller-held handle to an evicted session must die loudly —
        # the snapshot is the authoritative copy.
        service = DefenseService()
        spec = matrix_spec("elastic-paper", "elastic", "band", seed=44)
        sid = service.open(spec)
        handle = service.session(sid)
        service.submit(sid)
        service.evict(sid)
        with pytest.raises(RuntimeError, match="superseded"):
            handle.submit()
        with pytest.raises(RuntimeError, match="superseded"):
            handle.snapshot()
        # The restored twin continues unharmed.
        service.submit(sid)


class TestEvictionAndResidency:
    @pytest.mark.parametrize("with_store", [False, True])
    def test_evict_restore_roundtrip(self, with_store, tmp_path):
        store = ResultStore(tmp_path / "cache") if with_store else None
        specs = [
            matrix_spec("tft-mixed", "mixed", "position", seed=30 + r)
            for r in range(4)
        ]
        solo = [solo_reference(spec) for spec in specs]

        service = DefenseService(store=store)
        sids = [service.open(spec) for spec in specs]
        for t in range(specs[0].rounds):
            if t == 2:
                service.evict(sids[1])
                assert sids[1] in service.evicted_ids
            service.submit_many(sids)  # transparently restores the tenant
        assert service.stats.evictions == 1
        assert service.stats.restores == 1
        for sid, reference in zip(sids, solo, strict=False):
            assert_results_identical(service.close(sid), reference)

    def test_evict_is_idempotent_and_survives_double_submit(self):
        spec = matrix_spec("generous", "uniform", "band", seed=55)
        reference = solo_reference(spec)
        service = DefenseService()
        sid = service.open(spec)
        service.submit(sid)
        service.evict(sid)
        service.evict(sid)  # no-op
        service.submit(sid)  # restores
        while not service.session(sid).done:
            service.submit(sid)
        assert_results_identical(service.close(sid), reference)

    def test_max_resident_lru(self):
        service = DefenseService(max_resident=2)
        specs = [
            matrix_spec("elastic-paper", "elastic", "band", seed=20 + r)
            for r in range(4)
        ]
        sids = [service.open(spec) for spec in specs]
        assert len(service.resident_ids) == 2
        assert len(service.evicted_ids) == 2
        # The oldest-touched tenants were parked first.
        assert set(service.evicted_ids) == {sids[0], sids[1]}
        # Submitting to an evicted tenant restores it (and parks another).
        service.submit(sids[0])
        assert sids[0] in service.resident_ids
        assert len(service.resident_ids) <= 2

    def test_store_snapshot_survives_new_service(self, tmp_path):
        # A store-backed eviction outlives the service object itself:
        # a new service (same store + namespace) adopts the tenant and
        # finishes byte-identically.
        store = ResultStore(tmp_path / "cache")
        spec = matrix_spec("tft-mixed", "mixed", "position", seed=77)
        reference = solo_reference(spec)

        first = DefenseService(store=store)
        sid = first.open(spec, session_id="tenant")
        for _ in range(3):
            first.submit(sid)
        first.evict(sid)

        second = DefenseService(store=store)
        second.adopt(spec, sid)
        while not second.session(sid).done:
            second.submit(sid)
        assert_results_identical(second.close(sid), reference)

    def test_adopt_validates_identity(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        spec = matrix_spec("tft-mixed", "mixed", "position", seed=78)
        other_spec = matrix_spec("elastic-paper", "elastic", "band", seed=1)

        first = DefenseService(store=store)
        first.open(spec, session_id="tenant")
        first.submit("tenant")
        first.evict("tenant")

        second = DefenseService(store=store)
        with pytest.raises(KeyError, match="no persisted snapshot"):
            second.adopt(spec, "someone-else")
        with pytest.raises(ValueError, match="different tenant or spec"):
            second.adopt(other_spec, "tenant")
        # Distinct namespaces isolate snapshots inside a shared store.
        third = DefenseService(store=store, namespace="other")
        with pytest.raises(KeyError, match="no persisted snapshot"):
            third.adopt(spec, "tenant")
        with pytest.raises(RuntimeError, match="result store"):
            DefenseService().adopt(spec, "tenant")

    def test_namespace_collision_fails_loudly(self, tmp_path):
        # Two services, one store, same namespace, colliding generated
        # ids: the restore refuses a snapshot written for another spec
        # instead of silently resuming the wrong game.
        store = ResultStore(tmp_path / "cache")
        spec_a = matrix_spec("elastic-paper", "elastic", "band", seed=5)
        spec_b = matrix_spec("generous", "uniform", "band", seed=6)

        service_a = DefenseService(store=store)
        service_b = DefenseService(store=store)
        sid_a = service_a.open(spec_a)  # "session-0" in both services
        sid_b = service_b.open(spec_b)
        assert sid_a == sid_b
        service_a.evict(sid_a)
        service_b.evict(sid_b)  # overwrites A's blob under the same key
        with pytest.raises(ValueError, match="different tenant or spec"):
            service_a.submit(sid_a)

    def test_close_removes_persisted_snapshot(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        service = DefenseService(store=store)
        spec = matrix_spec("ostrich", "null", "band", seed=9)
        sid = service.open(spec, session_id="t")
        service.submit(sid)
        service.evict(sid)
        key = service._session_key(sid)
        assert store.record_path(key).exists()
        service.close(sid)
        assert not store.record_path(key).exists()


class TestStats:
    def test_counters(self):
        service = DefenseService()
        assert service.stats == ServiceStats()
        specs = [
            matrix_spec("ostrich", "null", "band", seed=r) for r in range(3)
        ]
        sids = [service.open(spec) for spec in specs]
        service.submit_many(sids)
        service.submit(sids[0])
        assert service.stats.opened == 3
        assert service.stats.lockstep_rounds == 1
        assert service.stats.lockstep_lanes == 3
        assert service.stats.solo_rounds == 1
