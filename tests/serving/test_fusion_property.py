"""Property test: random heterogeneous cohorts fuse byte-identically.

Hypothesis drives the whole fusion surface at once — random strategy
families on both sides, random attack ratios, mixed datasets (hence
mixed batch shapes), and join/evict/restore churn at random rounds —
and demands that every tenant's closed result equals its standalone
:class:`GameSession` run, byte for byte.
"""

import dataclasses
import os
import sys

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro import DefenseService, GameSpec  # noqa: E402

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "core")
)
from test_session import (  # noqa: E402
    MATRIX_ADVERSARIES,
    MATRIX_COLLECTORS,
    assert_results_identical,
    matrix_spec,
)

ROUNDS = 6

tenant_st = st.fixed_dictionaries(
    {
        "collector": st.sampled_from(sorted(MATRIX_COLLECTORS)),
        "adversary": st.sampled_from(sorted(MATRIX_ADVERSARIES)),
        "ratio": st.sampled_from((0.0, 0.1, 0.2, 0.3)),
        "dataset": st.sampled_from(("control", "taxi")),
        "seed": st.integers(min_value=0, max_value=2**16),
        "join_round": st.integers(min_value=0, max_value=2),
        "evict_round": st.one_of(
            st.none(), st.integers(min_value=1, max_value=ROUNDS - 1)
        ),
    }
)


def _spec(tenant) -> GameSpec:
    base = matrix_spec(
        tenant["collector"], tenant["adversary"], "band",
        seed=tenant["seed"], rounds=ROUNDS,
    )
    kwargs = dict(attack_ratio=tenant["ratio"], dataset=tenant["dataset"])
    if tenant["dataset"] == "taxi":
        kwargs["dataset_size"] = 1500
    return dataclasses.replace(base, **kwargs)


def _solo(spec: GameSpec):
    session = spec.session()
    while not session.done:
        session.submit()
    return session.close()


@settings(max_examples=15, deadline=None)
@given(tenants=st.lists(tenant_st, min_size=2, max_size=6))
def test_random_cohorts_with_churn_play_byte_identical(tenants):
    solo = [_solo(_spec(t)) for t in tenants]

    service = DefenseService()
    sids = [None] * len(tenants)
    evicted = set()
    for round_index in range(ROUNDS + max(t["join_round"] for t in tenants)):
        for i, tenant in enumerate(tenants):
            if tenant["join_round"] == round_index and sids[i] is None:
                sids[i] = service.open(_spec(tenant))
            if (
                tenant["evict_round"] == round_index
                and sids[i] is not None
                and sids[i] in service.resident_ids
            ):
                service.evict(sids[i])
                evicted.add(i)
        active = [
            sid
            for i, sid in enumerate(sids)
            if sid is not None
            and i not in evicted
            and not service.session(sid).done
        ]
        if active:
            service.submit_many(active)

    for i, (tenant, reference) in enumerate(zip(tenants, solo)):
        if sids[i] is None:
            sids[i] = service.open(_spec(tenant))
        # Evicted tenants restore transparently on their next submit;
        # stragglers (late joiners, evictees) finish solo.
        session = service.session(sids[i])
        while not session.done:
            service.submit(sids[i])
            session = service.session(sids[i])
        assert_results_identical(service.close(sids[i]), reference)
