"""Property test: random heterogeneous cohorts fuse byte-identically.

Hypothesis drives the whole fusion surface at once — random strategy
families on both sides, random attack ratios, mixed datasets (hence
mixed batch shapes), and join/evict/park/restore/solo/close churn at
random rounds — and demands that every tenant's closed result equals
its standalone :class:`GameSession` run, byte for byte.

Since PR 9 the lockstep path defers per-lane writeback into a cohort
:class:`~repro.streams.board.ColumnarBoard` sink, so every churn
action here lands mid-deferral by construction: eviction snapshots,
out-of-band solo rounds, mid-game closes and cohort-membership changes
must each flush the pending rows without losing or duplicating a
round.
"""

import dataclasses
import os
import sys

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro import DefenseService, GameSpec  # noqa: E402

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "core")
)
from test_session import (  # noqa: E402
    MATRIX_ADVERSARIES,
    MATRIX_COLLECTORS,
    assert_results_identical,
    matrix_spec,
)

ROUNDS = 6

tenant_st = st.fixed_dictionaries(
    {
        "collector": st.sampled_from(sorted(MATRIX_COLLECTORS)),
        "adversary": st.sampled_from(sorted(MATRIX_ADVERSARIES)),
        "ratio": st.sampled_from((0.0, 0.1, 0.2, 0.3)),
        "dataset": st.sampled_from(("control", "taxi")),
        "seed": st.integers(min_value=0, max_value=2**16),
        "join_round": st.integers(min_value=0, max_value=2),
        "evict_round": st.one_of(
            st.none(), st.integers(min_value=1, max_value=ROUNDS - 1)
        ),
        # After an eviction the tenant stays parked this many service
        # rounds, then rejoins its cohort (restored transparently).
        "park_rounds": st.integers(min_value=0, max_value=2),
        # Play the tenant's Nth round out-of-band via service.submit()
        # instead of submit_many — forces a deferred flush mid-cohort.
        "solo_round": st.one_of(
            st.none(), st.integers(min_value=1, max_value=ROUNDS - 1)
        ),
        # Close the tenant after it has played this many rounds — the
        # sink must flush a complete board short of the horizon.
        "close_after": st.one_of(
            st.none(), st.integers(min_value=1, max_value=ROUNDS - 1)
        ),
    }
)


def _spec(tenant) -> GameSpec:
    base = matrix_spec(
        tenant["collector"], tenant["adversary"], "band",
        seed=tenant["seed"], rounds=ROUNDS,
    )
    kwargs = dict(attack_ratio=tenant["ratio"], dataset=tenant["dataset"])
    if tenant["dataset"] == "taxi":
        kwargs["dataset_size"] = 1500
    return dataclasses.replace(base, **kwargs)


def _solo(spec: GameSpec, close_after=None):
    session = spec.session()
    while not session.done:
        if close_after is not None and session.round_index >= close_after:
            break
        session.submit()
    return session.close()


def _target_rounds(tenant) -> int:
    return ROUNDS if tenant["close_after"] is None else tenant["close_after"]


@settings(max_examples=15, deadline=None)
@given(tenants=st.lists(tenant_st, min_size=2, max_size=6))
def test_random_cohorts_with_churn_play_byte_identical(tenants):
    solo = [_solo(_spec(t), t["close_after"]) for t in tenants]

    service = DefenseService()
    n = len(tenants)
    sids = [None] * n
    played = [0] * n
    parked_until = [0] * n
    closed = {}
    # Every spec shares the same horizon, so done <=> played == ROUNDS;
    # tracking rounds locally (instead of polling service.session())
    # keeps the deferred sinks live across rounds, which is the point.
    for round_index in range(ROUNDS + max(t["join_round"] for t in tenants)):
        for i, tenant in enumerate(tenants):
            if tenant["join_round"] == round_index and sids[i] is None:
                sids[i] = service.open(_spec(tenant))
            if (
                tenant["evict_round"] == round_index
                and sids[i] is not None
                and sids[i] in service.resident_ids
                and i not in closed
            ):
                # Mid-deferral eviction: pending sink rows must flush
                # into the snapshot before the live state is dropped.
                service.evict(sids[i])
                parked_until[i] = round_index + 1 + tenant["park_rounds"]
        for i, tenant in enumerate(tenants):
            if (
                i not in closed
                and sids[i] is not None
                and played[i] >= _target_rounds(tenant)
            ):
                # Mid-game close (possibly of a parked tenant): the
                # flushed board must be complete short of the horizon.
                closed[i] = service.close(sids[i])
        lockstep = []
        for i, tenant in enumerate(tenants):
            if (
                sids[i] is None
                or i in closed
                or round_index < parked_until[i]
                or played[i] >= ROUNDS
            ):
                continue
            if tenant["solo_round"] == played[i]:
                # Out-of-band solo round: invalidates the tenant's
                # cohort and flushes its deferred rows (restoring it
                # first if parked).
                service.submit(sids[i])
                played[i] += 1
            else:
                lockstep.append(i)
        if lockstep:
            service.submit_many([sids[i] for i in lockstep])
            for i in lockstep:
                played[i] += 1

    for i, (tenant, reference) in enumerate(zip(tenants, solo, strict=False)):
        if i in closed:
            assert_results_identical(closed[i], reference)
            continue
        if sids[i] is None:
            sids[i] = service.open(_spec(tenant))
        # Evicted tenants restore transparently on their next submit;
        # stragglers (late joiners, evictees) finish solo.
        while played[i] < _target_rounds(tenant):
            service.submit(sids[i])
            played[i] += 1
        assert_results_identical(service.close(sids[i]), reference)
