"""Tests for repro.ldp.estimators — trimmed mean with bias correction."""

import numpy as np
import pytest

from repro.ldp import PiecewiseMechanism, TrimmedMeanEstimator, mean_estimate


class TestMeanEstimate:
    def test_plain_mean(self):
        assert mean_estimate([1.0, 2.0, 3.0]) == 2.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_estimate([])

    def test_ldp_mean_estimation_consistent(self, rng):
        mech = PiecewiseMechanism(2.0, seed=0)
        inputs = rng.uniform(-0.5, 0.5, size=50_000)
        reports = mech.perturb(inputs)
        assert mean_estimate(reports) == pytest.approx(inputs.mean(), abs=0.02)


class TestTrimmedMeanEstimator:
    @pytest.fixture()
    def calibrated(self, rng):
        mech = PiecewiseMechanism(2.0, seed=1)
        inputs = rng.uniform(-0.5, 0.5, size=20_000)
        reference = mech.perturb(inputs)
        return mech, TrimmedMeanEstimator(reference)

    def test_cutoff_monotone(self, calibrated):
        _, est = calibrated
        assert est.cutoff(0.8) <= est.cutoff(0.95)

    def test_full_percentile_cutoff_infinite(self, calibrated):
        _, est = calibrated
        assert est.cutoff(1.0) == float("inf")

    def test_bias_correction_positive_for_upper_trim(self, calibrated):
        # Removing the upper tail lowers the mean; correction adds back.
        _, est = calibrated
        assert est.bias_correction(0.9) > 0.0

    def test_no_trim_means_no_correction(self, calibrated):
        _, est = calibrated
        assert est.bias_correction(1.0) == pytest.approx(0.0)

    def test_clean_estimate_unbiased_after_correction(self, rng):
        mech = PiecewiseMechanism(2.0, seed=2)
        inputs = rng.uniform(-0.5, 0.5, size=30_000)
        reference = mech.perturb(inputs)
        est = TrimmedMeanEstimator(reference)
        fresh = mech.perturb(rng.uniform(-0.5, 0.5, size=30_000))
        assert est.estimate(fresh, 0.9) == pytest.approx(0.0, abs=0.03)

    def test_trimming_removes_attack_mass(self, rng):
        mech = PiecewiseMechanism(3.0, seed=3)
        honest_inputs = rng.uniform(-0.5, 0.5, size=20_000)
        reference = mech.perturb(honest_inputs)
        est = TrimmedMeanEstimator(reference)
        honest = mech.perturb(rng.uniform(-0.5, 0.5, size=20_000))
        attack = mech.perturb(np.ones(4000))
        reports = np.concatenate([honest, attack])
        plain = mean_estimate(reports)
        trimmed = est.estimate(reports, 0.9)
        truth = 0.0
        assert abs(trimmed - truth) < abs(plain - truth)

    def test_trimmed_fraction_reflects_attack(self, rng):
        mech = PiecewiseMechanism(3.0, seed=4)
        reference = mech.perturb(rng.uniform(-0.5, 0.5, size=20_000))
        est = TrimmedMeanEstimator(reference)
        attack = mech.perturb(np.ones(5000))
        assert est.trimmed_fraction(attack, 0.9) > 0.5

    def test_tiny_reference_rejected(self):
        with pytest.raises(ValueError):
            TrimmedMeanEstimator(np.arange(5.0))

    def test_empty_batch_rejected(self, calibrated):
        _, est = calibrated
        with pytest.raises(ValueError):
            est.estimate([], 0.9)

    def test_all_above_cutoff_falls_back_to_min(self, calibrated):
        _, est = calibrated
        out = est.estimate(np.full(10, 1e9), 0.5)
        assert np.isfinite(out)
