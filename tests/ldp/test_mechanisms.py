"""Tests for repro.ldp.mechanisms — numeric LDP mechanisms."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ldp import DuchiMechanism, LaplaceMechanism, PiecewiseMechanism

MECHANISMS = (LaplaceMechanism, DuchiMechanism, PiecewiseMechanism)


class TestCommonBehaviour:
    @pytest.mark.parametrize("cls", MECHANISMS)
    def test_invalid_epsilon_rejected(self, cls):
        with pytest.raises(ValueError):
            cls(0.0)

    @pytest.mark.parametrize("cls", MECHANISMS)
    def test_out_of_domain_inputs_rejected(self, cls):
        with pytest.raises(ValueError):
            cls(1.0, seed=0).perturb([1.5])

    @pytest.mark.parametrize("cls", MECHANISMS)
    def test_empty_batch_rejected(self, cls):
        with pytest.raises(ValueError):
            cls(1.0, seed=0).perturb([])

    @pytest.mark.parametrize("cls", MECHANISMS)
    def test_unbiasedness_at_zero(self, cls):
        mech = cls(2.0, seed=0)
        reports = mech.perturb(np.zeros(60_000))
        tolerance = 4.0 * np.sqrt(mech.variance(0.0) / 60_000)
        assert abs(reports.mean()) < tolerance

    @pytest.mark.parametrize("cls", MECHANISMS)
    @pytest.mark.parametrize("x", [-0.7, 0.3, 1.0])
    def test_unbiasedness_at_nonzero_inputs(self, cls, x):
        mech = cls(2.0, seed=1)
        reports = mech.perturb(np.full(60_000, x))
        tolerance = 4.0 * np.sqrt(mech.variance(x) / 60_000)
        assert abs(reports.mean() - x) < tolerance

    @pytest.mark.parametrize("cls", MECHANISMS)
    def test_variance_shrinks_with_epsilon(self, cls):
        assert cls(4.0).variance(0.0) < cls(1.0).variance(0.0)

    @pytest.mark.parametrize("cls", (DuchiMechanism, PiecewiseMechanism))
    def test_reports_within_output_bound(self, cls):
        mech = cls(1.5, seed=2)
        reports = mech.perturb(np.linspace(-1, 1, 5000))
        assert np.abs(reports).max() <= mech.output_bound() + 1e-9


class TestLaplace:
    def test_scale(self):
        assert LaplaceMechanism(2.0).scale == 1.0

    def test_variance_formula(self):
        mech = LaplaceMechanism(1.0)
        assert mech.variance() == pytest.approx(2.0 * 4.0)

    def test_empirical_variance_matches(self):
        mech = LaplaceMechanism(1.0, seed=3)
        reports = mech.perturb(np.zeros(100_000))
        assert np.var(reports) == pytest.approx(mech.variance(), rel=0.05)


class TestDuchi:
    def test_two_point_support(self):
        mech = DuchiMechanism(1.0, seed=0)
        reports = mech.perturb(np.linspace(-1, 1, 1000))
        b = mech.magnitude
        assert set(np.round(np.unique(reports), 10)) == {-round(b, 10), round(b, 10)}

    def test_magnitude_formula(self):
        e = np.exp(1.0)
        assert DuchiMechanism(1.0).magnitude == pytest.approx((e + 1) / (e - 1))

    def test_probability_monotone_in_input(self):
        mech = DuchiMechanism(1.0, seed=4)
        low = (mech.perturb(np.full(30_000, -0.9)) > 0).mean()
        high = (mech.perturb(np.full(30_000, 0.9)) > 0).mean()
        assert high > low + 0.3


class TestPiecewise:
    def test_c_bound_formula(self):
        t = np.exp(0.5)
        assert PiecewiseMechanism(1.0).c_bound == pytest.approx((t + 1) / (t - 1))

    def test_reports_concentrate_near_input(self):
        mech = PiecewiseMechanism(4.0, seed=5)
        reports = mech.perturb(np.full(20_000, 0.5))
        # High epsilon: most reports inside the high-density band around 0.5.
        band = np.abs(reports - 0.5) < (mech.c_bound - 1)
        assert band.mean() > 0.75

    def test_empirical_variance_matches_formula(self):
        mech = PiecewiseMechanism(2.0, seed=6)
        for x in (0.0, 0.6):
            reports = mech.perturb(np.full(150_000, x))
            assert np.var(reports) == pytest.approx(mech.variance(x), rel=0.05)

    @settings(max_examples=15, deadline=None)
    @given(st.floats(0.5, 5.0), st.floats(-1.0, 1.0))
    def test_unbiasedness_property(self, epsilon, x):
        mech = PiecewiseMechanism(epsilon, seed=7)
        reports = mech.perturb(np.full(40_000, x))
        tolerance = 5.0 * np.sqrt(mech.variance(x) / 40_000)
        assert abs(reports.mean() - x) < tolerance
