"""Tests for repro.ldp.attacks and repro.ldp.emf."""

import numpy as np
import pytest

from repro.ldp import (
    ExpectationMaximizationFilter,
    InputManipulationAttack,
    OutputManipulationAttack,
    PiecewiseMechanism,
    SquareWaveMechanism,
)


class TestInputManipulationAttack:
    def test_reports_through_mechanism_are_unbiased_at_target(self):
        attack = InputManipulationAttack(target=1.0)
        mech = PiecewiseMechanism(2.0, seed=0)
        reports = attack.reports(mech, 50_000)
        assert reports.mean() == pytest.approx(1.0, abs=0.05)

    def test_zero_attackers(self):
        attack = InputManipulationAttack()
        assert attack.reports(PiecewiseMechanism(1.0, seed=0), 0).size == 0

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            InputManipulationAttack().reports(PiecewiseMechanism(1.0), -1)

    def test_reports_indistinguishable_support(self):
        # Input-manipulated reports stay inside the mechanism's output
        # domain — the deniability property.
        mech = PiecewiseMechanism(1.0, seed=1)
        reports = InputManipulationAttack(1.0).reports(mech, 10_000)
        assert np.abs(reports).max() <= mech.output_bound() + 1e-9


class TestOutputManipulationAttack:
    def test_defaults_to_output_bound(self):
        mech = PiecewiseMechanism(1.0, seed=0)
        reports = OutputManipulationAttack().reports(mech, 100)
        np.testing.assert_allclose(reports, mech.output_bound())

    def test_explicit_value(self):
        reports = OutputManipulationAttack(value=2.5).reports(
            PiecewiseMechanism(1.0), 10
        )
        np.testing.assert_allclose(reports, 2.5)

    def test_jitter_spreads_downward(self):
        attack = OutputManipulationAttack(value=3.0, jitter=0.5, seed=0)
        reports = attack.reports(PiecewiseMechanism(1.0), 1000)
        assert (reports <= 3.0).all() and (reports >= 2.5).all()
        assert reports.std() > 0.05

    def test_unbounded_mechanism_requires_value(self):
        from repro.ldp import LaplaceMechanism

        with pytest.raises(ValueError):
            OutputManipulationAttack().reports(LaplaceMechanism(1.0), 5)


class TestEMF:
    def _reports(self, epsilon, n_honest, n_attack, seed=0):
        rng = np.random.default_rng(seed)
        mech = SquareWaveMechanism(epsilon, seed=seed + 1)
        honest = rng.beta(2, 2, size=n_honest)  # mean 0.5 on [0, 1]
        reports = mech.perturb(honest)
        if n_attack > 0:  # input manipulation at the domain maximum
            reports = np.concatenate([reports, mech.perturb(np.ones(n_attack))])
        return mech, reports, honest

    def test_clean_estimation_accurate(self):
        mech, reports, honest = self._reports(2.0, 20_000, 0)
        emf = ExpectationMaximizationFilter(mech, attack_fraction=0.0)
        result = emf.fit(reports)
        truth = 2 * honest.mean() - 1
        assert result.mean == pytest.approx(truth, abs=0.05)

    def test_result_distributions_normalized(self):
        mech, reports, _ = self._reports(2.0, 5000, 500)
        emf = ExpectationMaximizationFilter(mech, attack_fraction=0.09)
        result = emf.fit(reports)
        assert result.honest_distribution.sum() == pytest.approx(1.0, abs=1e-6)
        assert result.attack_distribution.sum() == pytest.approx(1.0, abs=1e-6)

    def test_input_manipulation_evades_filter(self):
        # The documented EMF limitation: channel-consistent attacks are
        # not separable, so the estimate stays biased toward the target.
        mech, reports, honest = self._reports(2.0, 20_000, 4000)
        truth = 2 * honest.mean() - 1
        emf = ExpectationMaximizationFilter(mech, attack_fraction=4000 / 24_000)
        result = emf.fit(reports)
        assert result.mean > truth + 0.05

    def test_invalid_attack_fraction_rejected(self):
        mech = SquareWaveMechanism(1.0)
        with pytest.raises(ValueError):
            ExpectationMaximizationFilter(mech, attack_fraction=1.0)

    def test_empty_reports_rejected(self):
        mech = SquareWaveMechanism(1.0)
        emf = ExpectationMaximizationFilter(mech, attack_fraction=0.1)
        with pytest.raises(ValueError):
            emf.fit(np.array([]))
