"""Tests for repro.ldp.frequency — GRR, OUE, and the maximal gain attack."""

import numpy as np
import pytest

from repro.ldp.frequency import (
    GeneralizedRandomizedResponse,
    MaximalGainAttack,
    OptimizedUnaryEncoding,
)


@pytest.fixture()
def items(rng):
    # Skewed categorical distribution over 8 items.
    return rng.choice(8, size=40_000, p=[0.3, 0.2, 0.15, 0.1, 0.1, 0.07, 0.05, 0.03])


class TestGRR:
    def test_probability_formulas(self):
        grr = GeneralizedRandomizedResponse(8, 1.0)
        e = np.exp(1.0)
        assert grr.p_true == pytest.approx(e / (e + 7))
        assert grr.q_false == pytest.approx(1 / (e + 7))

    def test_privacy_ratio_is_e_epsilon(self):
        grr = GeneralizedRandomizedResponse(10, 2.0)
        assert grr.pmf(3, 3) / grr.pmf(3, 5) == pytest.approx(np.exp(2.0))

    def test_pmf_normalized(self):
        grr = GeneralizedRandomizedResponse(6, 1.5)
        total = sum(grr.pmf(r, 2) for r in range(6))
        assert total == pytest.approx(1.0)

    def test_frequency_estimation_unbiased(self, items):
        grr = GeneralizedRandomizedResponse(8, 2.0, seed=0)
        reports = grr.perturb(items)
        estimate = grr.estimate_frequencies(reports)
        truth = np.bincount(items, minlength=8) / items.size
        np.testing.assert_allclose(estimate, truth, atol=0.02)

    def test_estimates_sum_to_one(self, items):
        grr = GeneralizedRandomizedResponse(8, 1.0, seed=1)
        estimate = grr.estimate_frequencies(grr.perturb(items))
        assert estimate.sum() == pytest.approx(1.0, abs=1e-9)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            GeneralizedRandomizedResponse(1, 1.0)
        with pytest.raises(ValueError):
            GeneralizedRandomizedResponse(4, 0.0)
        grr = GeneralizedRandomizedResponse(4, 1.0, seed=0)
        with pytest.raises(ValueError):
            grr.perturb([5])

    def test_noise_never_reports_identity_by_accident(self):
        # The off-item noise map must cover every item except the true one
        # uniformly — verified by conditional frequencies.
        grr = GeneralizedRandomizedResponse(5, 0.5, seed=2)
        reports = grr.perturb(np.zeros(60_000, dtype=int))
        counts = np.bincount(reports, minlength=5) / reports.size
        # Items 1..4 should be (almost) equally likely.
        assert np.ptp(counts[1:]) < 0.01


class TestOUE:
    def test_probability_formulas(self):
        oue = OptimizedUnaryEncoding(8, 1.0)
        assert oue.p_keep == 0.5
        assert oue.q_flip == pytest.approx(1 / (np.exp(1.0) + 1))

    def test_report_shape(self, items):
        oue = OptimizedUnaryEncoding(8, 1.0, seed=0)
        reports = oue.perturb(items[:100])
        assert reports.shape == (100, 8)
        assert set(np.unique(reports)) <= {0, 1}

    def test_frequency_estimation_unbiased(self, items):
        oue = OptimizedUnaryEncoding(8, 2.0, seed=0)
        estimate = oue.estimate_frequencies(oue.perturb(items))
        truth = np.bincount(items, minlength=8) / items.size
        np.testing.assert_allclose(estimate, truth, atol=0.02)

    def test_expected_report_weight_matches_empirical(self, items):
        oue = OptimizedUnaryEncoding(8, 1.0, seed=3)
        reports = oue.perturb(items[:20_000])
        assert reports.sum(axis=1).mean() == pytest.approx(
            oue.expected_report_weight(), abs=0.05
        )

    def test_invalid_reports_rejected(self):
        oue = OptimizedUnaryEncoding(4, 1.0)
        with pytest.raises(ValueError):
            oue.estimate_frequencies(np.zeros((3, 5)))


class TestMaximalGainAttack:
    def test_grr_gain_matches_closed_form(self, items):
        grr = GeneralizedRandomizedResponse(8, 1.0, seed=0)
        attack = MaximalGainAttack(targets=[7], seed=1)
        n_attack = 4000
        honest_reports = grr.perturb(items)
        fake = attack.reports_grr(grr, n_attack)
        reports = np.concatenate([honest_reports, fake])

        clean = grr.estimate_frequencies(honest_reports)[7]
        poisoned = grr.estimate_frequencies(reports)[7]
        beta = n_attack / reports.size
        expected_gain = attack.expected_gain_grr(grr, beta)
        # The fabricated reports replace a β share of the mixture, so the
        # realized gain is β/(p-q) minus the diluted clean share.
        assert poisoned - (1 - beta) * clean == pytest.approx(
            expected_gain, abs=0.03
        )

    def test_oue_targets_inflated(self, items):
        oue = OptimizedUnaryEncoding(8, 1.0, seed=0)
        attack = MaximalGainAttack(targets=[6, 7], seed=1)
        honest = oue.perturb(items)
        fake = attack.reports_oue(oue, 6000)
        estimate = oue.estimate_frequencies(np.vstack([honest, fake]))
        clean = oue.estimate_frequencies(honest)
        assert estimate[6] > clean[6] + 0.05
        assert estimate[7] > clean[7] + 0.05

    def test_oue_attack_matches_honest_weight(self):
        oue = OptimizedUnaryEncoding(16, 1.0)
        attack = MaximalGainAttack(targets=[0], seed=2)
        fake = attack.reports_oue(oue, 500)
        weights = fake.sum(axis=1)
        assert abs(weights.mean() - oue.expected_report_weight()) < 1.0

    def test_targets_validated(self):
        grr = GeneralizedRandomizedResponse(4, 1.0)
        attack = MaximalGainAttack(targets=[9])
        with pytest.raises(ValueError):
            attack.reports_grr(grr, 10)

    def test_empty_targets_rejected(self):
        with pytest.raises(ValueError):
            MaximalGainAttack(targets=[])

    def test_gain_decreases_with_more_targets(self):
        grr = GeneralizedRandomizedResponse(8, 1.0)
        one = MaximalGainAttack(targets=[0]).expected_gain_grr(grr, 0.1)
        two = MaximalGainAttack(targets=[0, 1]).expected_gain_grr(grr, 0.1)
        assert two < one
