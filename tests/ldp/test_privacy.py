"""ε-LDP verification: density ratios bounded by e^ε for every mechanism.

The defining property of ε-local differential privacy: for all inputs
``x, x'`` and all reports ``y``, ``p(y|x) <= e^ε p(y|x')``.  These tests
verify it analytically via the mechanisms' density functions over input
and report grids, and also check the densities integrate to one.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ldp import (
    DuchiMechanism,
    LaplaceMechanism,
    PiecewiseMechanism,
    SquareWaveMechanism,
)

_trapezoid = getattr(np, "trapezoid", None) or np.trapz


def _max_ratio(mechanism, inputs, reports):
    densities = np.array([mechanism.density(reports, x) for x in inputs])
    floor = 1e-300
    worst = 1.0
    for i in range(len(inputs)):
        for j in range(len(inputs)):
            if i == j:
                continue
            a, b = densities[i], densities[j]
            mask = (a > floor) | (b > floor)
            ratios = (a[mask] + floor) / (b[mask] + floor)
            worst = max(worst, float(ratios.max()))
    return worst


class TestPrivacyBound:
    @pytest.mark.parametrize("epsilon", [0.5, 1.0, 2.0, 4.0])
    def test_laplace_ratio_bounded(self, epsilon):
        mech = LaplaceMechanism(epsilon)
        inputs = np.linspace(-1, 1, 9)
        reports = np.linspace(-4, 4, 201)
        assert _max_ratio(mech, inputs, reports) <= np.exp(epsilon) * (1 + 1e-9)

    @pytest.mark.parametrize("epsilon", [0.5, 1.0, 2.0, 4.0])
    def test_duchi_ratio_bounded_and_tight(self, epsilon):
        mech = DuchiMechanism(epsilon)
        inputs = np.array([-1.0, 0.0, 1.0])
        reports = np.array([-mech.magnitude, mech.magnitude])
        worst = _max_ratio(mech, inputs, reports)
        assert worst <= np.exp(epsilon) * (1 + 1e-9)
        # The bound is tight at the extreme inputs.
        assert worst == pytest.approx(np.exp(epsilon), rel=1e-9)

    @pytest.mark.parametrize("epsilon", [0.5, 1.0, 2.0, 4.0])
    def test_piecewise_ratio_bounded_and_tight(self, epsilon):
        mech = PiecewiseMechanism(epsilon)
        inputs = np.linspace(-1, 1, 9)
        reports = np.linspace(-mech.c_bound, mech.c_bound, 401)
        worst = _max_ratio(mech, inputs, reports)
        assert worst <= np.exp(epsilon) * (1 + 1e-9)
        assert worst == pytest.approx(np.exp(epsilon), rel=1e-6)

    @pytest.mark.parametrize("epsilon", [0.5, 1.0, 2.0])
    def test_square_wave_ratio_bounded_and_tight(self, epsilon):
        mech = SquareWaveMechanism(epsilon)
        inputs = np.linspace(0, 1, 9)
        reports = np.linspace(-mech.b, 1 + mech.b, 301)
        worst = _max_ratio(mech, inputs, reports)
        assert worst <= np.exp(epsilon) * (1 + 1e-9)
        assert worst == pytest.approx(np.exp(epsilon), rel=1e-9)


class TestDensityNormalization:
    @pytest.mark.parametrize("x", [-1.0, -0.3, 0.5, 1.0])
    def test_laplace_integrates_to_one(self, x):
        mech = LaplaceMechanism(1.0)
        grid = np.linspace(-40, 40, 200_001)
        mass = _trapezoid(mech.density(grid, x), grid)
        assert mass == pytest.approx(1.0, abs=1e-6)

    @pytest.mark.parametrize("x", [-1.0, 0.0, 0.7])
    def test_duchi_pmf_sums_to_one(self, x):
        mech = DuchiMechanism(1.5)
        b = mech.magnitude
        total = float(np.sum(mech.density(np.array([-b, b]), x)))
        assert total == pytest.approx(1.0)

    @pytest.mark.parametrize("x", [-1.0, -0.2, 0.9])
    def test_piecewise_integrates_to_one(self, x):
        mech = PiecewiseMechanism(2.0)
        c = mech.c_bound
        grid = np.linspace(-c, c, 400_001)
        mass = _trapezoid(mech.density(grid, x), grid)
        assert mass == pytest.approx(1.0, abs=1e-3)

    @pytest.mark.parametrize("x", [0.0, 0.4, 1.0])
    def test_square_wave_integrates_to_one(self, x):
        mech = SquareWaveMechanism(1.0)
        b = mech.b
        grid = np.linspace(-b, 1 + b, 200_001)
        mass = _trapezoid(mech.density(grid, x), grid)
        assert mass == pytest.approx(1.0, abs=1e-3)

    @settings(max_examples=20, deadline=None)
    @given(st.floats(0.3, 4.0), st.floats(-1.0, 1.0))
    def test_piecewise_density_consistent_with_samples(self, epsilon, x):
        # Empirical in-band frequency matches the analytic band mass.
        mech = PiecewiseMechanism(epsilon, seed=0)
        reports = mech.perturb(np.full(20_000, x))
        left = (mech.c_bound + 1) / 2 * x - (mech.c_bound - 1) / 2
        right = left + mech.c_bound - 1
        t = np.exp(epsilon / 2.0)
        expected = t / (t + 1.0)
        measured = float(np.mean((reports >= left) & (reports <= right)))
        assert measured == pytest.approx(expected, abs=0.03)
