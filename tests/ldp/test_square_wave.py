"""Tests for repro.ldp.square_wave — SW mechanism and EM reconstruction."""

import numpy as np
import pytest

from repro.ldp import SquareWaveMechanism, em_reconstruct


class TestSquareWaveMechanism:
    def test_invalid_epsilon_rejected(self):
        with pytest.raises(ValueError):
            SquareWaveMechanism(0.0)

    def test_b_positive(self):
        for eps in (0.5, 1.0, 3.0):
            assert SquareWaveMechanism(eps).b > 0.0

    def test_density_ratio_is_e_epsilon(self):
        mech = SquareWaveMechanism(1.7)
        assert mech.p_density / mech.q_density == pytest.approx(np.exp(1.7))

    def test_densities_integrate_to_one(self):
        mech = SquareWaveMechanism(1.0)
        # window mass 2 b p + outside mass (length 1) * q = 1.
        total = 2 * mech.b * mech.p_density + 1.0 * mech.q_density
        assert total == pytest.approx(1.0)

    def test_reports_in_output_domain(self):
        mech = SquareWaveMechanism(1.0, seed=0)
        reports = mech.perturb(np.linspace(0, 1, 5000))
        assert reports.min() >= -mech.b - 1e-12
        assert reports.max() <= 1.0 + mech.b + 1e-12

    def test_out_of_domain_inputs_rejected(self):
        with pytest.raises(ValueError):
            SquareWaveMechanism(1.0, seed=0).perturb([-0.1])

    def test_window_mass_matches_theory(self):
        mech = SquareWaveMechanism(2.0, seed=1)
        x = 0.5
        reports = mech.perturb(np.full(50_000, x))
        inside = np.abs(reports - x) <= mech.b
        assert inside.mean() == pytest.approx(
            2 * mech.b * mech.p_density, abs=0.01
        )

    def test_transition_matrix_columns_are_distributions(self):
        mech = SquareWaveMechanism(1.0)
        m = mech.transition_matrix(16, 32)
        assert m.shape == (32, 16)
        np.testing.assert_allclose(m.sum(axis=0), 1.0)
        assert (m >= 0).all()

    def test_transition_matrix_peaks_near_input(self):
        mech = SquareWaveMechanism(3.0)
        m = mech.transition_matrix(8, 64)
        b = mech.b
        edges = np.linspace(-b, 1 + b, 65)
        centers = 0.5 * (edges[:-1] + edges[1:])
        for i in range(8):
            x = (i + 0.5) / 8
            peak = centers[int(np.argmax(m[:, i]))]
            assert abs(peak - x) < 2 * b + 0.1

    def test_invalid_bins_rejected(self):
        with pytest.raises(ValueError):
            SquareWaveMechanism(1.0).transition_matrix(0, 8)


class TestEMReconstruction:
    def _roundtrip(self, inputs, epsilon=2.0, bins=24, out_bins=48, seed=0,
                   smoothing=True):
        mech = SquareWaveMechanism(epsilon, seed=seed)
        reports = mech.perturb(inputs)
        b = mech.b
        edges = np.linspace(-b, 1 + b, out_bins + 1)
        hist, _ = np.histogram(reports, bins=edges)
        transition = mech.transition_matrix(bins, out_bins)
        return em_reconstruct(hist, transition, smoothing=smoothing)

    def test_estimate_is_distribution(self, rng):
        f = self._roundtrip(rng.uniform(0, 1, 20_000))
        assert f.sum() == pytest.approx(1.0)
        assert (f >= 0).all()

    def test_uniform_recovered_roughly_uniform(self, rng):
        f = self._roundtrip(rng.uniform(0, 1, 50_000))
        assert f.max() / max(f.min(), 1e-9) < 3.0

    def test_point_mass_localized(self, rng):
        inputs = np.full(50_000, 0.25)
        f = self._roundtrip(inputs, epsilon=3.0)
        centers = (np.arange(f.size) + 0.5) / f.size
        mean = float((f * centers).sum())
        assert abs(mean - 0.25) < 0.05

    def test_bimodal_mean_preserved(self, rng):
        inputs = np.concatenate(
            [rng.normal(0.25, 0.03, 30_000), rng.normal(0.8, 0.03, 30_000)]
        )
        inputs = np.clip(inputs, 0, 1)
        f = self._roundtrip(inputs, epsilon=2.0)
        centers = (np.arange(f.size) + 0.5) / f.size
        assert abs(float((f * centers).sum()) - inputs.mean()) < 0.05

    def test_empty_histogram_rejected(self):
        mech = SquareWaveMechanism(1.0)
        transition = mech.transition_matrix(8, 16)
        with pytest.raises(ValueError):
            em_reconstruct(np.zeros(16), transition)

    def test_length_mismatch_rejected(self):
        mech = SquareWaveMechanism(1.0)
        transition = mech.transition_matrix(8, 16)
        with pytest.raises(ValueError):
            em_reconstruct(np.ones(10), transition)

    def test_smoothing_reduces_spikiness(self, rng):
        inputs = rng.uniform(0, 1, 30_000)
        rough = self._roundtrip(inputs, epsilon=0.5, smoothing=False, seed=4)
        smooth = self._roundtrip(inputs, epsilon=0.5, smoothing=True, seed=4)
        assert np.abs(np.diff(smooth)).sum() <= np.abs(np.diff(rough)).sum() + 1e-9
