"""Tests for repro.datasets — the Table II stand-in generators."""

import numpy as np
import pytest

from repro.datasets import (
    CONTROL_CLASS_NAMES,
    CREDITCARD_CLASS_NAMES,
    DATASETS,
    dataset_info,
    generate_control,
    generate_creditcard,
    generate_gaussian_mixture,
    generate_letter,
    generate_taxi,
    generate_vehicle,
    load_dataset,
    taxi_batch_factory,
)


class TestControl:
    def test_default_shape_matches_table2(self):
        data, labels = generate_control()
        assert data.shape == (600, 60)
        assert labels.shape == (600,)
        assert np.unique(labels).size == 6

    def test_class_structure(self):
        data, labels = generate_control(seed=0)
        # Increasing trend ends higher than it starts; decreasing lower.
        inc = data[labels == 2]
        dec = data[labels == 3]
        assert (inc[:, -5:].mean(axis=1) > inc[:, :5].mean(axis=1)).all()
        assert (dec[:, -5:].mean(axis=1) < dec[:, :5].mean(axis=1)).all()

    def test_shift_classes_jump(self):
        data, labels = generate_control(seed=0)
        up = data[labels == 4]
        assert (up[:, -5:].mean(axis=1) - up[:, :5].mean(axis=1) > 3.0).all()

    def test_cyclic_has_larger_variance_than_normal(self):
        data, labels = generate_control(seed=0)
        cyc = data[labels == 1].std(axis=1).mean()
        base = data[labels == 0].std(axis=1).mean()
        assert cyc > 1.5 * base

    def test_reproducible(self):
        a, _ = generate_control(seed=5)
        b, _ = generate_control(seed=5)
        np.testing.assert_array_equal(a, b)

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            generate_control(n_per_class=0)

    def test_class_names(self):
        assert len(CONTROL_CLASS_NAMES) == 6


class TestGaussians:
    def test_mixture_shapes(self):
        data, labels = generate_gaussian_mixture(100, 5, 4, seed=0)
        assert data.shape == (100, 5)
        assert np.unique(labels).size == 4

    def test_cluster_sizes_balanced(self):
        _, labels = generate_gaussian_mixture(103, 3, 4, seed=0)
        counts = np.bincount(labels)
        assert counts.max() - counts.min() <= 1

    def test_vehicle_table2_shape(self):
        data, labels = generate_vehicle()
        assert data.shape == (752, 18)
        assert np.unique(labels).size == 4

    def test_letter_table2_shape(self):
        data, labels = generate_letter(n_samples=2600)
        assert data.shape == (2600, 16)
        assert np.unique(labels).size == 26

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            generate_gaussian_mixture(3, 2, 5)
        with pytest.raises(ValueError):
            generate_gaussian_mixture(10, 2, 2, noise=0.0)

    def test_clusters_separated(self):
        data, labels = generate_gaussian_mixture(
            300, 8, 3, separation=8.0, noise=0.5, seed=1
        )
        centers = np.array([data[labels == c].mean(axis=0) for c in range(3)])
        gaps = np.linalg.norm(centers[:, None] - centers[None, :], axis=2)
        assert gaps[np.triu_indices(3, 1)].min() > 3.0


class TestTaxi:
    def test_normalized_domain(self):
        values = generate_taxi(10_000, seed=0)
        assert values.min() >= -1.0 and values.max() <= 1.0

    def test_raw_seconds_domain(self):
        values = generate_taxi(10_000, seed=0, normalized=False)
        assert values.min() >= 0 and values.max() <= 86_340
        assert np.allclose(values, np.floor(values))

    def test_rush_hours_present(self):
        seconds = generate_taxi(200_000, seed=1, normalized=False)
        hours = seconds / 3600.0
        morning = np.mean((hours > 7.5) & (hours < 9.5))
        night = np.mean((hours > 2.0) & (hours < 4.0))
        assert morning > 2.0 * night

    def test_batch_factory_shapes(self, rng):
        factory = taxi_batch_factory()
        batch = factory(rng, 123)
        assert batch.shape == (123,)
        assert np.abs(batch).max() <= 1.0

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            generate_taxi(0)


class TestCreditcard:
    def test_structure(self):
        data, labels = generate_creditcard(n_samples=1000, seed=0)
        assert data.shape == (1000, 31)
        counts = np.bincount(labels)
        assert counts[1] == 1 and counts[2] == 1 and counts[3] == 5
        assert counts[0] == 993

    def test_minority_is_far_from_bulk(self):
        data, labels = generate_creditcard(n_samples=2000, seed=0)
        bulk_center = data[labels == 0].mean(axis=0)
        bulk_radius = np.linalg.norm(
            data[labels == 0] - bulk_center, axis=1
        ).max()
        for minority_label in (1, 2, 3):
            dists = np.linalg.norm(
                data[labels == minority_label] - bulk_center, axis=1
            )
            assert (dists > 0.9 * bulk_radius).all()

    def test_fraud_premium_opposite_sides(self):
        data, labels = generate_creditcard(n_samples=1000, seed=0)
        fraud = data[labels == 1][0]
        premium = data[labels == 2][0]
        assert np.dot(fraud, premium) < 0

    def test_minimum_size_enforced(self):
        with pytest.raises(ValueError):
            generate_creditcard(n_samples=50)

    def test_class_names(self):
        assert len(CREDITCARD_CLASS_NAMES) == 4


class TestRegistry:
    def test_table2_entries(self):
        assert set(DATASETS) == {"control", "vehicle", "letter", "taxi", "creditcard"}
        assert DATASETS["taxi"].instances == 1_048_575

    def test_load_by_name(self):
        data, labels = load_dataset("control")
        assert data.shape == (600, 60)

    def test_load_case_insensitive(self):
        data, _ = load_dataset("  CONTROL ")
        assert data.shape == (600, 60)

    def test_load_unknown_rejected(self):
        with pytest.raises(KeyError):
            load_dataset("mnist")

    def test_subsampling(self):
        data, labels = load_dataset("control", n_samples=100, seed=0)
        assert data.shape == (100, 60)

    def test_taxi_loads_as_column(self):
        data, labels = load_dataset("taxi", n_samples=500)
        assert data.shape == (500, 1)
        assert (labels == 0).all()

    def test_dataset_info_static(self):
        info = dataset_info()
        assert info["letter"].clusters == 26

    def test_dataset_info_generated_matches_advertised(self):
        verified = dataset_info(generate=True)
        assert verified["control"].instances == 600
        assert verified["control"].features == 60
        assert verified["vehicle"].clusters == 4
