"""Tests for repro.ml.metrics."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.ml import (
    accuracy,
    centroid_distance,
    confusion_matrix,
    confusion_summary,
    mse,
    sse,
)


class TestSSE:
    def test_zero_when_data_on_centroids(self):
        cents = np.array([[0.0, 0.0], [1.0, 1.0]])
        data = np.repeat(cents, 3, axis=0)
        assert sse(data, cents) == 0.0

    def test_uses_nearest_centroid(self):
        data = np.array([[0.0, 0.0]])
        cents = np.array([[0.0, 1.0], [0.0, 10.0]])
        assert sse(data, cents) == pytest.approx(1.0)

    def test_additive_over_points(self, rng):
        data = rng.normal(size=(20, 3))
        cents = rng.normal(size=(4, 3))
        total = sse(data, cents)
        parts = sse(data[:10], cents) + sse(data[10:], cents)
        assert total == pytest.approx(parts)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            sse(np.arange(4.0), np.zeros((1, 1)))


class TestCentroidDistance:
    def test_zero_for_identical_sets(self, rng):
        cents = rng.normal(size=(5, 3))
        assert centroid_distance(cents, cents) == pytest.approx(0.0)

    def test_permutation_invariant(self, rng):
        cents = rng.normal(size=(6, 2))
        shuffled = cents[[3, 1, 5, 0, 4, 2]]
        assert centroid_distance(shuffled, cents) == pytest.approx(0.0)

    def test_single_shift_measured(self):
        ref = np.array([[0.0, 0.0], [5.0, 5.0]])
        est = np.array([[0.0, 1.0], [5.0, 5.0]])
        assert centroid_distance(est, ref) == pytest.approx(1.0)

    def test_hungarian_picks_optimal_matching(self):
        ref = np.array([[0.0], [10.0]])
        est = np.array([[9.0], [1.0]])
        # Optimal matching crosses over: 1<->0 and 9<->10, total 2.
        assert centroid_distance(est, ref) == pytest.approx(2.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            centroid_distance(np.zeros((2, 2)), np.zeros((3, 2)))

    @given(st.integers(0, 1000))
    def test_symmetry(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(4, 2))
        b = rng.normal(size=(4, 2))
        assert centroid_distance(a, b) == pytest.approx(centroid_distance(b, a))


class TestAccuracyAndConfusion:
    def test_accuracy(self):
        assert accuracy([1, 1, 0, 0], [1, 0, 0, 0]) == 0.75

    def test_accuracy_empty_rejected(self):
        with pytest.raises(ValueError):
            accuracy([], [])

    def test_confusion_matrix_counts(self):
        m = confusion_matrix([0, 0, 1, 1], [0, 1, 1, 1])
        np.testing.assert_array_equal(m, [[1, 1], [0, 2]])

    def test_confusion_matrix_explicit_classes(self):
        m = confusion_matrix([0], [0], n_classes=4)
        assert m.shape == (4, 4)

    def test_confusion_summary_ppv_fdr(self):
        s = confusion_summary([0, 0, 1, 1], [0, 1, 1, 1])
        assert s.ppv[0] == pytest.approx(1.0)
        assert s.ppv[1] == pytest.approx(2 / 3)
        assert s.fdr[1] == pytest.approx(1 / 3)
        assert s.accuracy == pytest.approx(0.75)

    def test_confusion_summary_handles_unpredicted_class(self):
        s = confusion_summary([0, 1], [0, 0], n_classes=2)
        assert np.isnan(s.ppv[1])

    def test_trace_equals_correct_predictions(self, rng):
        y = rng.integers(0, 4, size=100)
        p = rng.integers(0, 4, size=100)
        m = confusion_matrix(y, p, 4)
        assert np.trace(m) == np.sum(y == p)


class TestMSE:
    def test_zero_for_exact(self):
        assert mse([2.0, 2.0], 2.0) == 0.0

    def test_formula(self):
        assert mse([1.0, 3.0], 2.0) == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mse([], 0.0)
