"""Tests for repro.ml.som — Self-Organizing Map."""

import numpy as np
import pytest

from repro.ml import SelfOrganizingMap


@pytest.fixture(scope="module")
def trained_som():
    rng = np.random.default_rng(0)
    data = np.vstack(
        [rng.normal(-5, 0.5, (150, 2)), rng.normal(5, 0.5, (150, 2))]
    )
    som = SelfOrganizingMap(rows=8, cols=8, n_iter=3000, seed=1).fit(data)
    return som, data


class TestTraining:
    def test_weight_shape(self, trained_som):
        som, _ = trained_som
        assert som.weights.shape == (64, 2)

    def test_invalid_grid_rejected(self):
        with pytest.raises(ValueError):
            SelfOrganizingMap(rows=0, cols=5)

    def test_invalid_learning_rate_rejected(self):
        with pytest.raises(ValueError):
            SelfOrganizingMap(learning_rate=0.0)

    def test_unfitted_usage_rejected(self):
        with pytest.raises(RuntimeError):
            SelfOrganizingMap().u_matrix()

    def test_empty_data_rejected(self):
        with pytest.raises(ValueError):
            SelfOrganizingMap().fit(np.zeros((0, 2)))

    def test_deterministic_given_seed(self):
        rng = np.random.default_rng(3)
        data = rng.normal(size=(100, 2))
        w1 = SelfOrganizingMap(rows=4, cols=4, n_iter=500, seed=9).fit(data).weights
        w2 = SelfOrganizingMap(rows=4, cols=4, n_iter=500, seed=9).fit(data).weights
        np.testing.assert_array_equal(w1, w2)


class TestMapQuality:
    def test_quantization_error_reasonable(self, trained_som):
        som, data = trained_som
        # Neurons should approximate the data well within cluster scale.
        assert som.quantization_error(data) < 1.0

    def test_quantization_error_worse_on_shifted_data(self, trained_som):
        som, data = trained_som
        shifted = data + 20.0
        assert som.quantization_error(shifted) > som.quantization_error(data)

    def test_topographic_error_low_for_smooth_map(self, trained_som):
        som, data = trained_som
        assert som.topographic_error(data) < 0.35

    def test_bmus_in_range(self, trained_som):
        som, data = trained_som
        bmus = som.best_matching_units(data)
        assert bmus.min() >= 0 and bmus.max() < som.n_neurons


class TestUMatrix:
    def test_shape(self, trained_som):
        som, _ = trained_som
        assert som.u_matrix().shape == (8, 8)

    def test_nonnegative(self, trained_som):
        som, _ = trained_som
        assert (som.u_matrix() >= 0).all()

    def test_boundary_between_clusters_visible(self, trained_som):
        # Two far clusters: the largest U-matrix value (cluster border)
        # should clearly exceed the median (cluster interiors).
        som, _ = trained_som
        u = som.u_matrix()
        assert u.max() > 3.0 * np.median(u)


class TestClusterCount:
    def test_two_blobs_counted(self, trained_som):
        som, data = trained_som
        count = som.cluster_count(data)
        assert 2 <= count <= 6  # coarse watershed; two dominant groups

    def test_single_blob_fewer_components(self, rng):
        # A coarse watershed over-segments an unstructured blob; the test
        # only bounds the fragmentation, not an exact count.
        data = rng.normal(size=(200, 2))
        som = SelfOrganizingMap(rows=6, cols=6, n_iter=2000, seed=2).fit(data)
        assert som.cluster_count(data) <= som.n_neurons // 2
