"""Tests for repro.ml.kmeans."""

import numpy as np
import pytest

from repro.ml import kmeans, kmeans_plus_plus_init


class TestKMeansPlusPlus:
    def test_returns_requested_centers(self, small_gaussian, rng):
        data, _ = small_gaussian
        centers = kmeans_plus_plus_init(data, 3, rng)
        assert centers.shape == (3, data.shape[1])

    def test_centers_are_data_points(self, small_gaussian, rng):
        data, _ = small_gaussian
        centers = kmeans_plus_plus_init(data, 3, rng)
        for c in centers:
            assert np.min(np.linalg.norm(data - c, axis=1)) < 1e-12

    def test_handles_duplicate_data(self, rng):
        data = np.zeros((10, 2))
        centers = kmeans_plus_plus_init(data, 3, rng)
        assert centers.shape == (3, 2)


class TestKMeans:
    def test_separated_clusters_recovered(self, small_gaussian):
        data, labels = small_gaussian
        result = kmeans(data, 3, seed=0)
        # Each true cluster maps to exactly one fitted label.
        for cluster in range(3):
            assigned = result.labels[labels == cluster]
            assert np.unique(assigned).size == 1

    def test_centroids_near_true_centers(self, small_gaussian):
        data, _ = small_gaussian
        result = kmeans(data, 3, seed=0)
        truth = np.array([[0.0, 0.0], [8.0, 8.0], [-8.0, 8.0]])
        for t in truth:
            assert np.min(np.linalg.norm(result.centroids - t, axis=1)) < 0.8

    def test_sse_decreases_with_more_clusters(self, small_gaussian):
        data, _ = small_gaussian
        sse_values = [kmeans(data, k, seed=0, n_init=5).sse for k in (1, 2, 3)]
        assert sse_values[0] > sse_values[1] > sse_values[2]

    def test_sse_matches_definition(self, small_gaussian):
        data, _ = small_gaussian
        result = kmeans(data, 3, seed=0)
        manual = sum(
            np.sum((data[result.labels == c] - result.centroids[c]) ** 2)
            for c in range(3)
        )
        assert result.sse == pytest.approx(manual)

    def test_explicit_init_respected(self, small_gaussian):
        data, _ = small_gaussian
        init = np.array([[0.0, 0.0], [8.0, 8.0], [-8.0, 8.0]])
        result = kmeans(data, 3, init=init)
        assert result.n_iter <= 5  # warm start converges fast

    def test_wrong_init_shape_rejected(self, small_gaussian):
        data, _ = small_gaussian
        with pytest.raises(ValueError):
            kmeans(data, 3, init=np.zeros((2, 2)))

    def test_n_init_keeps_best(self, small_gaussian):
        data, _ = small_gaussian
        multi = kmeans(data, 3, seed=0, n_init=8)
        single = kmeans(data, 3, seed=0, n_init=1)
        assert multi.sse <= single.sse + 1e-9

    def test_k_equals_n_points(self):
        data = np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0]])
        result = kmeans(data, 3, seed=0)
        assert result.sse == pytest.approx(0.0, abs=1e-12)

    def test_invalid_cluster_count_rejected(self, small_gaussian):
        data, _ = small_gaussian
        with pytest.raises(ValueError):
            kmeans(data, 0)
        with pytest.raises(ValueError):
            kmeans(data, data.shape[0] + 1)

    def test_1d_data_rejected(self):
        with pytest.raises(ValueError):
            kmeans(np.arange(10.0), 2)

    def test_empty_cluster_repair(self):
        # Pathological init far away: empty clusters get re-seeded, and
        # the final model still uses all centroids validly.
        data = np.vstack(
            [np.zeros((20, 2)), np.full((20, 2), 10.0)]
        )
        init = np.array([[0.0, 0.0], [100.0, 100.0], [200.0, 200.0]])
        result = kmeans(data, 3, init=init)
        assert np.isfinite(result.sse)
        assert result.labels.max() <= 2

    def test_deterministic_given_seed(self, small_gaussian):
        data, _ = small_gaussian
        r1 = kmeans(data, 3, seed=11)
        r2 = kmeans(data, 3, seed=11)
        np.testing.assert_array_equal(r1.centroids, r2.centroids)
