"""Tests for repro.ml.svm — Pegasos linear SVM."""

import numpy as np
import pytest

from repro.ml import LinearSVM, OneVsRestSVM


@pytest.fixture()
def linearly_separable(rng):
    pos = rng.normal(loc=[3.0, 3.0], scale=0.5, size=(60, 2))
    neg = rng.normal(loc=[-3.0, -3.0], scale=0.5, size=(60, 2))
    data = np.vstack([pos, neg])
    labels = np.concatenate([np.ones(60), -np.ones(60)])
    return data, labels


class TestLinearSVM:
    def test_separable_problem_solved(self, linearly_separable):
        data, labels = linearly_separable
        model = LinearSVM(lam=1e-3, n_iter=5000, seed=0).fit(data, labels)
        assert np.mean(model.predict(data) == labels) == 1.0

    def test_decision_function_sign_matches_predict(self, linearly_separable):
        data, labels = linearly_separable
        model = LinearSVM(lam=1e-3, n_iter=3000, seed=0).fit(data, labels)
        scores = model.decision_function(data)
        np.testing.assert_array_equal(
            np.sign(scores) >= 0, model.predict(data) > 0
        )

    def test_non_pm1_labels_rejected(self, linearly_separable):
        data, _ = linearly_separable
        with pytest.raises(ValueError):
            LinearSVM().fit(data, np.zeros(data.shape[0]))

    def test_predict_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            LinearSVM().predict(np.zeros((2, 2)))

    def test_invalid_hyperparameters_rejected(self):
        with pytest.raises(ValueError):
            LinearSVM(lam=0.0)
        with pytest.raises(ValueError):
            LinearSVM(n_iter=0)

    def test_projection_bounds_weight_norm(self, linearly_separable):
        data, labels = linearly_separable
        model = LinearSVM(lam=1.0, n_iter=2000, seed=0, project=True)
        model.fit(data, labels)
        assert np.linalg.norm(model.weights) <= 1.0 / np.sqrt(1.0) + 1e-9

    def test_deterministic_given_seed(self, linearly_separable):
        data, labels = linearly_separable
        m1 = LinearSVM(n_iter=1000, seed=5).fit(data, labels)
        m2 = LinearSVM(n_iter=1000, seed=5).fit(data, labels)
        np.testing.assert_array_equal(m1.weights, m2.weights)


class TestOneVsRestSVM:
    def test_multiclass_separable(self, small_gaussian):
        data, labels = small_gaussian
        model = OneVsRestSVM(lam=1e-3, n_iter=6000, seed=0).fit(data, labels)
        assert model.score(data, labels) > 0.95

    def test_decision_matrix_shape(self, small_gaussian):
        data, labels = small_gaussian
        model = OneVsRestSVM(n_iter=2000, seed=0).fit(data, labels)
        assert model.decision_matrix(data).shape == (data.shape[0], 3)

    def test_predict_returns_original_labels(self, rng):
        data = np.vstack(
            [rng.normal(-5, 0.3, (30, 2)), rng.normal(5, 0.3, (30, 2))]
        )
        labels = np.array([7] * 30 + [42] * 30)
        model = OneVsRestSVM(n_iter=3000, seed=0).fit(data, labels)
        assert set(np.unique(model.predict(data))) <= {7, 42}

    def test_single_class_rejected(self, rng):
        data = rng.normal(size=(10, 2))
        with pytest.raises(ValueError):
            OneVsRestSVM().fit(data, np.zeros(10))

    def test_constant_feature_handled(self, rng):
        data = np.hstack(
            [rng.normal(size=(60, 1)), np.ones((60, 1))]
        )
        data[:30, 0] += 8.0
        labels = np.array([0] * 30 + [1] * 30)
        model = OneVsRestSVM(n_iter=3000, seed=0).fit(data, labels)
        assert model.score(data, labels) > 0.9

    def test_control_dataset_accuracy(self, control_data):
        data, labels = control_data
        model = OneVsRestSVM(lam=1e-4, n_iter=20_000, seed=0).fit(data, labels)
        # The Fig. 6a ballpark: the paper reports 96.8% on Control.
        assert model.score(data, labels) > 0.93
