"""Tests for repro.scenarios — registry, params, run/report round trips."""

import pytest

from repro.runtime import ResultStore
from repro.scenarios import (
    Scenario,
    ScenarioError,
    ScenarioParam,
    ScenarioPlan,
    get_scenario,
    iter_scenarios,
    register_scenario,
    report_scenario,
    run_scenario,
    scenario_names,
)

#: Every paper artifact must be a registry entry.
EXPECTED = {
    "table1", "table2", "table3", "table4",
    "fig4", "fig5", "fig7", "fig8", "fig9", "metagame",
}


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        assert EXPECTED <= set(scenario_names())

    def test_unknown_name_raises(self):
        with pytest.raises(ScenarioError, match="unknown scenario"):
            get_scenario("fig99")

    def test_duplicate_registration_rejected(self):
        scenario = get_scenario("table1")
        with pytest.raises(ValueError, match="already registered"):
            register_scenario(scenario)

    def test_iteration_is_name_sorted(self):
        names = [s.name for s in iter_scenarios()]
        assert names == sorted(names)


class TestParams:
    def test_scale_defaults(self):
        fig9 = get_scenario("fig9")
        quick = fig9.resolve_params("quick")
        full = fig9.resolve_params("full")
        assert quick["repetitions"] == 2 and full["repetitions"] == 5
        assert len(full["ratios"]) > len(quick["ratios"])

    def test_typed_overrides(self):
        fig9 = get_scenario("fig9")
        params = fig9.resolve_params(
            "quick", {"repetitions": "3", "ratios": "0.1,0.2"}
        )
        assert params["repetitions"] == 3
        assert params["ratios"] == (0.1, 0.2)

    def test_unknown_param_rejected(self):
        with pytest.raises(ScenarioError, match="no parameter"):
            get_scenario("fig9").resolve_params("quick", {"bogus": "1"})

    def test_unparsable_value_rejected(self):
        with pytest.raises(ScenarioError, match="bad value"):
            get_scenario("fig9").resolve_params("quick", {"repetitions": "x"})

    def test_unknown_scale_rejected(self):
        with pytest.raises(ScenarioError, match="unknown scale"):
            get_scenario("table1").resolve_params("huge")


class TestRunScenario:
    def test_cold_then_warm_zero_cells_played(self, tmp_path):
        store = ResultStore(tmp_path)
        table4 = get_scenario("table4")
        cold = run_scenario(table4, store=store)
        assert cold.stats.played == cold.stats.total > 0
        warm = run_scenario(table4, store=store)
        assert warm.stats.played == 0
        assert warm.stats.cached == cold.stats.total
        assert warm.text == cold.text
        assert warm.records == cold.records

    def test_storeless_run_matches_stored_run(self, tmp_path):
        table3 = get_scenario("table3")
        overrides = {"repetitions": "2", "p_values": "0.0,1.0"}
        plain = run_scenario(table3, overrides=overrides)
        stored = run_scenario(
            table3, overrides=overrides, store=ResultStore(tmp_path)
        )
        assert plain.text == stored.text

    def test_game_sweep_warm_cache(self, tmp_path):
        store = ResultStore(tmp_path)
        table3 = get_scenario("table3")
        overrides = {"repetitions": "2", "p_values": "0.0,1.0"}
        cold = run_scenario(table3, overrides=overrides, store=store)
        warm = run_scenario(table3, overrides=overrides, store=store)
        assert warm.stats.played == 0
        assert warm.text == cold.text

    def test_param_change_invalidates_only_new_cells(self, tmp_path):
        store = ResultStore(tmp_path)
        table3 = get_scenario("table3")
        run_scenario(
            table3, overrides={"repetitions": "2", "p_values": "0.0,1.0"},
            store=store,
        )
        # growing the p grid reuses the stored p∈{0,1} cells
        grown = run_scenario(
            table3,
            overrides={"repetitions": "2", "p_values": "0.0,0.5,1.0"},
            store=store,
        )
        assert grown.stats.cached > 0
        assert grown.stats.played > 0


class TestReportScenario:
    def test_round_trip_is_byte_identical(self, tmp_path):
        store = ResultStore(tmp_path)
        table4 = get_scenario("table4")
        run = run_scenario(table4, store=store)
        report = report_scenario(table4, store)
        assert report.text == run.text
        assert report.stats.played == 0

    def test_report_without_run_raises(self, tmp_path):
        with pytest.raises(ScenarioError, match="no stored run"):
            report_scenario(get_scenario("table4"), ResultStore(tmp_path))

    def test_report_with_missing_record_raises(self, tmp_path):
        store = ResultStore(tmp_path)
        table4 = get_scenario("table4")
        run_scenario(table4, store=store)
        manifest = store.load_manifest("table4")
        store.record_path(manifest["keys"][3]).unlink()
        with pytest.raises(ScenarioError, match="missing or corrupt"):
            report_scenario(table4, store)

    def test_report_rejects_other_code_version(self, tmp_path):
        store = ResultStore(tmp_path)
        table4 = get_scenario("table4")
        run_scenario(table4, store=store)
        stale = ResultStore(tmp_path, code_version="0.0.0")
        with pytest.raises(ScenarioError, match="code version"):
            report_scenario(table4, stale)


class TestExtensionPoint:
    def test_new_workload_registers_and_runs(self, tmp_path):
        """The registry is the extension point: plan/aggregate/render only."""
        from repro.experiments.cost import roundwise_cost
        from repro.runtime import ComponentSpec, TaskSpec

        def plan(params):
            return ScenarioPlan(
                specs=[
                    TaskSpec(
                        ComponentSpec(
                            roundwise_cost,
                            {
                                "t_th": 0.9,
                                "k": float(params["k"]),
                                "rounds": r,
                            },
                        ),
                        tags={"rounds": r},
                    )
                    for r in (5, 10)
                ]
            )

        scenario = Scenario(
            name="__test_workload__",
            description="registry extension smoke",
            plan=plan,
            aggregate=lambda params, records: records,
            render=lambda params, value: ", ".join(f"{v:.4f}" for v in value),
            params=(ScenarioParam("k", float, quick=0.5),),
        )
        try:
            register_scenario(scenario)
            store = ResultStore(tmp_path)
            cold = run_scenario(
                get_scenario("__test_workload__"), store=store
            )
            assert cold.stats.played == 2
            warm = run_scenario(
                get_scenario("__test_workload__"), store=store
            )
            assert warm.stats.played == 0
            assert warm.text == cold.text
            assert report_scenario(scenario, store).text == cold.text
        finally:
            from repro.scenarios.registry import _REGISTRY

            _REGISTRY.pop("__test_workload__", None)
