"""Tests for repro.runtime.store — keys, persistence, resume semantics."""

import json
import os
import subprocess
import sys
from functools import partial

import numpy as np
import pytest

from repro.core.strategies import FixedAdversary, TitForTatCollector
from repro.experiments.cost import roundwise_cost
from repro.runtime import (
    ComponentSpec,
    GameRecord,
    ResultStore,
    StrategyPair,
    SweepGrid,
    SweepRunner,
    TaskSpec,
    spec_hash,
    summarize_game,
)


def _pair():
    return StrategyPair(
        name="tft-vs-extreme",
        collector=ComponentSpec(
            TitForTatCollector, {"t_th": 0.9, "trigger": None}
        ),
        adversary=ComponentSpec(FixedAdversary, {"percentile": 0.99}),
        collector_name="titfortat",
        adversary_name="extreme@0.99",
    )


def _grid(**overrides):
    kwargs = dict(
        pairs=(_pair(),),
        datasets=("control",),
        attack_ratios=(0.1, 0.3),
        repetitions=2,
        rounds=3,
        batch_size=60,
        store_retained=False,
        seed=0,
    )
    kwargs.update(overrides)
    return SweepGrid(**kwargs)


def _game_spec(**overrides):
    return _grid(**overrides).expand()[0]


def _task_spec(k=0.5, rounds=10):
    return TaskSpec(
        task=ComponentSpec(
            roundwise_cost,
            {"t_th": 0.9, "k": float(k), "rounds": int(rounds)},
        ),
        tags={"k": float(k), "rounds": int(rounds)},
    )


class TestSpecHash:
    def test_deterministic_within_process(self):
        assert spec_hash(_game_spec()) == spec_hash(_game_spec())
        assert spec_hash(_task_spec()) == spec_hash(_task_spec())

    def test_stable_across_processes(self):
        """The key must not depend on interpreter state (PYTHONHASHSEED…)."""
        script = """
from repro.core.strategies import FixedAdversary, TitForTatCollector
from repro.experiments.cost import roundwise_cost
from repro.runtime import (
    ComponentSpec, StrategyPair, SweepGrid, TaskSpec, spec_hash,
)

pair = StrategyPair(
    name="tft-vs-extreme",
    collector=ComponentSpec(TitForTatCollector, {"t_th": 0.9, "trigger": None}),
    adversary=ComponentSpec(FixedAdversary, {"percentile": 0.99}),
    collector_name="titfortat",
    adversary_name="extreme@0.99",
)
grid = SweepGrid(
    pairs=(pair,), datasets=("control",), attack_ratios=(0.1, 0.3),
    repetitions=2, rounds=3, batch_size=60, store_retained=False, seed=0,
)
task = TaskSpec(
    task=ComponentSpec(roundwise_cost, {"t_th": 0.9, "k": 0.5, "rounds": 10}),
    tags={"k": 0.5, "rounds": 10},
)
print(spec_hash(grid.expand()[0], code_version="x"))
print(spec_hash(task, code_version="x"))
"""
        import repro

        env = dict(os.environ)
        env["PYTHONHASHSEED"] = "12345"  # would perturb any hash() leakage
        env["PYTHONPATH"] = os.pathsep.join(
            p
            for p in [
                os.path.dirname(os.path.dirname(repro.__file__)),
                env.get("PYTHONPATH", ""),
            ]
            if p
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        ).stdout.split()
        assert out == [
            spec_hash(_game_spec(), code_version="x"),
            spec_hash(_task_spec(), code_version="x"),
        ]

    def test_component_kwarg_changes_key(self):
        base = _task_spec(k=0.5)
        assert spec_hash(base) != spec_hash(_task_spec(k=0.1))
        assert spec_hash(base) != spec_hash(_task_spec(rounds=11))

    def test_game_parameters_change_key(self):
        base = _game_spec()
        assert spec_hash(base) != spec_hash(_game_spec(attack_ratios=(0.2, 0.3)))
        assert spec_hash(base) != spec_hash(_game_spec(rounds=4))
        assert spec_hash(base) != spec_hash(_game_spec(seed=1))
        # two cells of the same grid (different spawn keys) never collide
        specs = _grid().expand()
        keys = {spec_hash(s) for s in specs}
        assert len(keys) == len(specs)

    def test_reducer_is_part_of_the_key(self):
        spec = _game_spec()
        plain = spec_hash(spec)
        assert plain != spec_hash(spec, reducer=summarize_game)
        weighted = partial(summarize_game)
        assert spec_hash(spec, reducer=weighted) != plain
        # bound ndarray arguments hash by content
        a = partial(np.mean, np.arange(3.0))
        b = partial(np.mean, np.arange(4.0))
        assert spec_hash(spec, reducer=a) != spec_hash(spec, reducer=b)

    def test_code_version_changes_key(self):
        spec = _task_spec()
        assert spec_hash(spec, code_version="1") != spec_hash(
            spec, code_version="2"
        )

    def test_integer_seed_equals_seed_sequence(self):
        plain = _task_spec()
        a = spec_hash(
            TaskSpec(task=plain.task, seed=7, tags=dict(plain.tags))
        )
        b = spec_hash(
            TaskSpec(
                task=plain.task,
                seed=np.random.SeedSequence(7),
                tags=dict(plain.tags),
            )
        )
        assert a == b

    def test_closures_are_rejected(self):
        spec = TaskSpec(task=ComponentSpec(lambda: 1))
        with pytest.raises(TypeError):
            spec_hash(spec)


class TestRecordRoundTrip:
    def test_json_codec_game_record(self, tmp_path):
        store = ResultStore(tmp_path)
        record = GameRecord(
            tags={"pair": "x", "attack_ratio": 0.1, "rep": 0},
            collector="c",
            adversary="a",
            rounds=3,
            termination_round=None,
            n_collected=10,
            n_retained=9,
            n_poison_injected=2,
            n_poison_retained=1,
            poison_retained_fraction=0.5,
            trimmed_fraction=0.1,
            mean_trim_percentile=0.9,
        )
        store.save("k" * 64, record)
        loaded = store.load("k" * 64)
        assert isinstance(loaded, GameRecord)
        assert loaded == record
        # human-inspectable: the JSON codec was used
        payload = json.loads(store.record_path("k" * 64).read_text())
        assert payload["body"]["codec"] == "json"

    def test_pickle_fallback_for_arbitrary_records(self, tmp_path):
        store = ResultStore(tmp_path)
        record = {"matrix": np.eye(2)}  # ndarray: not JSON-able
        store.save("p" * 64, record)
        loaded = store.load("p" * 64)
        np.testing.assert_array_equal(loaded["matrix"], np.eye(2))
        payload = json.loads(store.record_path("p" * 64).read_text())
        assert payload["body"]["codec"] == "pickle"

    def test_missing_is_default(self, tmp_path):
        store = ResultStore(tmp_path)
        sentinel = object()
        assert store.load("0" * 64, sentinel) is sentinel
        assert "0" * 64 not in store

    @pytest.mark.parametrize(
        "corruption",
        ["truncate", "garbage", "tamper", "wrong_key", "old_format"],
    )
    def test_corrupt_records_are_misses(self, tmp_path, corruption):
        store = ResultStore(tmp_path)
        key = "c" * 64
        store.save(key, {"value": 1.0})
        path = store.record_path(key)
        if corruption == "truncate":
            path.write_text(path.read_text()[: len(path.read_text()) // 2])
        elif corruption == "garbage":
            path.write_text("not json at all")
        elif corruption == "tamper":
            envelope = json.loads(path.read_text())
            envelope["body"]["data"]["value"] = 2.0  # checksum now stale
            path.write_text(json.dumps(envelope))
        elif corruption == "wrong_key":
            envelope = json.loads(path.read_text())
            envelope["key"] = "d" * 64
            path.write_text(json.dumps(envelope))
        else:
            envelope = json.loads(path.read_text())
            envelope["format"] = 0
            path.write_text(json.dumps(envelope))
        assert store.load(key, None) is None


class TestRunnerStoreIntegration:
    def test_cold_then_warm_zero_plays(self, tmp_path):
        specs = _grid().expand()
        store = ResultStore(tmp_path)
        runner = SweepRunner(store=store)
        cold = runner.run(specs)
        assert runner.last_stats.played == len(specs)
        assert runner.last_stats.cached == 0
        warm = runner.run(specs)
        assert runner.last_stats.played == 0
        assert runner.last_stats.cached == len(specs)
        assert warm == cold

    def test_warm_run_executes_zero_games(self, tmp_path, monkeypatch):
        specs = _grid().expand()
        store = ResultStore(tmp_path)
        SweepRunner(store=store).run(specs)

        def boom(self):
            raise AssertionError("a warm run must not play any game")

        monkeypatch.setattr("repro.runtime.spec.GameSpec.play", boom)
        runner = SweepRunner(store=store)
        warm = runner.run(specs)
        assert runner.last_stats.played == 0
        assert len(warm) == len(specs)

    def test_kwarg_change_is_a_cache_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        runner = SweepRunner(store=store)
        runner.run([_task_spec(k=0.5)])
        runner.run([_task_spec(k=0.5)])
        assert runner.last_stats.played == 0
        runner.run([_task_spec(k=0.1)])
        assert runner.last_stats.played == 1

    def test_corrupt_record_recomputed(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = _task_spec()
        runner = SweepRunner(store=store)
        (value,) = runner.run([spec])
        key = store.key(spec)
        store.record_path(key).write_text("garbage")
        (again,) = runner.run([spec])
        assert runner.last_stats.played == 1
        assert again == value
        # and the store healed: next run is warm
        runner.run([spec])
        assert runner.last_stats.played == 0

    def test_without_store_stats_count_all_played(self):
        runner = SweepRunner()
        runner.run([_task_spec()])
        assert runner.last_stats.played == 1
        assert runner.last_stats.cached == 0

    def test_partial_cache_only_missing_cells_play(self, tmp_path):
        specs = _grid().expand()
        store = ResultStore(tmp_path)
        full = SweepRunner(store=store).run(specs)
        # drop two records from the middle
        for spec in specs[1:3]:
            os.unlink(store.record_path(store.key(spec)))
        runner = SweepRunner(store=store)
        resumed = runner.run(specs)
        assert runner.last_stats.played == 2
        assert runner.last_stats.cached == len(specs) - 2
        assert resumed == full


class _Ghost:
    """Pickled by reference; re-pointed at a dead module in the tests."""

    def __init__(self, value):
        self.value = value


class TestGracefulDegradation:
    def test_stale_tmp_files_are_reaped_on_init(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save("a" * 64, {"value": 1.0})
        objects_dir = store.record_path("a" * 64).parent
        stale = objects_dir / ".deadbeef-orphan.tmp"
        stale.write_text("half a record")
        fresh = objects_dir / ".cafebabe-live.tmp"
        fresh.write_text("a write in progress")
        old = 7200.0
        os.utime(stale, (os.path.getmtime(stale) - old,) * 2)

        reopened = ResultStore(tmp_path, reap_tmp_after=3600.0)
        assert not stale.exists()  # orphan swept
        assert fresh.exists()  # live writer untouched
        assert reopened.load("a" * 64) == {"value": 1.0}

    def test_reap_temp_files_returns_count_and_is_optional(self, tmp_path):
        store = ResultStore(tmp_path, reap_tmp_after=None)
        manifests = store.manifest_path("x").parent
        manifests.mkdir(parents=True)
        orphan = manifests / ".x-orphan.tmp"
        orphan.write_text("{}")
        os.utime(orphan, (os.path.getmtime(orphan) - 10_000,) * 2)
        assert store.reap_temp_files(3600.0) == 1
        assert not orphan.exists()

    def test_ghost_class_pickle_is_a_miss_not_a_crash(self, tmp_path):
        """A checksum-valid pickle referencing dead code reads as a miss."""
        import pickle as _pickle
        import base64 as _base64
        import hashlib as _hashlib
        import types as _types
        from repro.runtime.store import canonical_json

        store = ResultStore(tmp_path)
        key = "e" * 64
        # Pickle the class under a synthetic module, then unregister it:
        # the blob now references code that no longer exists — exactly
        # what a rename/move since the record was written leaves behind.
        ghost_module = _types.ModuleType("repro_ghost_module")
        ghost_module.Ghost = _Ghost
        original = (_Ghost.__module__, _Ghost.__qualname__)
        _Ghost.__module__ = "repro_ghost_module"
        _Ghost.__qualname__ = "Ghost"
        sys.modules["repro_ghost_module"] = ghost_module
        try:
            blob = _pickle.dumps(
                _Ghost(3), protocol=_pickle.HIGHEST_PROTOCOL
            )
        finally:
            del sys.modules["repro_ghost_module"]
            _Ghost.__module__, _Ghost.__qualname__ = original
        body = {
            "codec": "pickle",
            "data": _base64.b64encode(blob).decode("ascii"),
        }
        envelope = {
            "format": 1,
            "key": key,
            "sha256": _hashlib.sha256(
                canonical_json(body).encode("utf-8")
            ).hexdigest(),
            "body": body,
        }
        path = store.record_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(envelope))
        # sanity: the blob really does raise on unpickle
        with pytest.raises((ModuleNotFoundError, AttributeError)):
            _pickle.loads(_base64.b64decode(body["data"]))
        assert store.load(key, None) is None  # miss, not a crash

    def test_durable_mode_fsyncs_writes(self, tmp_path, monkeypatch):
        synced = []
        real_fsync = os.fsync
        monkeypatch.setattr(
            os, "fsync", lambda fd: (synced.append(fd), real_fsync(fd))[1]
        )
        plain = ResultStore(tmp_path / "plain")
        plain.save("f" * 64, {"value": 1.0})
        assert synced == []
        durable = ResultStore(tmp_path / "durable", durable=True)
        durable.save("f" * 64, {"value": 1.0})
        assert len(synced) == 2  # record file + parent directory
        durable.save_manifest("m", {"keys": []})
        assert len(synced) == 4
        assert durable.load("f" * 64) == {"value": 1.0}

    def test_delete_manifest(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save_manifest("gone", {"keys": []})
        assert store.load_manifest("gone") is not None
        assert store.delete_manifest("gone") is True
        assert store.load_manifest("gone") is None
        assert store.delete_manifest("gone") is False
