"""Resume and record-ordering determinism of store-backed sweeps.

The contract under test (the store's reason to exist): records are
emitted in grid-coordinate order — never completion order — so a fresh
run, a warm-cache run, a ``workers=N`` run and an interrupted-then-
resumed run of the same grid all produce byte-identical record lists.
"""

import pytest

from repro.core.strategies import (
    ElasticAdversary,
    ElasticCollector,
    FixedAdversary,
    TitForTatCollector,
)
from repro.runtime import (
    ComponentSpec,
    ResultStore,
    StrategyPair,
    SweepGrid,
    SweepRunner,
    summarize_game,
)


def _grid(**overrides):
    kwargs = dict(
        pairs=(
            StrategyPair(
                name="titfortat",
                collector=ComponentSpec(
                    TitForTatCollector, {"t_th": 0.9, "trigger": None}
                ),
                adversary=ComponentSpec(FixedAdversary, {"percentile": 0.99}),
            ),
            StrategyPair(
                name="elastic0.5",
                collector=ComponentSpec(
                    ElasticCollector, {"t_th": 0.9, "k": 0.5}
                ),
                adversary=ComponentSpec(
                    ElasticAdversary, {"t_th": 0.9, "k": 0.5}
                ),
            ),
        ),
        datasets=("control",),
        attack_ratios=(0.1, 0.3),
        repetitions=2,
        rounds=3,
        batch_size=60,
        store_retained=False,
        seed=0,
    )
    kwargs.update(overrides)
    return SweepGrid(**kwargs)


#: Kill switch for the mid-sweep interrupt simulation.  The reducer is a
#: plain module-level function, so its store fingerprint — and therefore
#: every cell key — is identical whether the bomb is armed or not.
_BOMB = {"remaining": None}


def killing_summarize(spec, result):
    if _BOMB["remaining"] is not None:
        if _BOMB["remaining"] <= 0:
            raise RuntimeError("sweep killed mid-run")
        _BOMB["remaining"] -= 1
    return summarize_game(spec, result)


@pytest.fixture(autouse=True)
def _disarm_bomb():
    _BOMB["remaining"] = None
    yield
    _BOMB["remaining"] = None


class TestInterruptResume:
    def test_killed_sweep_resumes_byte_identical(self, tmp_path):
        """Kill a sweep mid-run; --resume must reproduce the full output."""
        specs = _grid().expand()
        fresh = SweepRunner(reduce=killing_summarize).run(specs)

        store = ResultStore(tmp_path)
        _BOMB["remaining"] = 3  # die after three cells
        with pytest.raises(RuntimeError, match="killed mid-run"):
            SweepRunner(reduce=killing_summarize, store=store).run(specs)
        assert store.count() == 3  # the played prefix was checkpointed

        _BOMB["remaining"] = None
        runner = SweepRunner(reduce=killing_summarize, store=store)
        resumed = runner.run(specs)
        assert runner.last_stats.cached == 3
        assert runner.last_stats.played == len(specs) - 3
        assert resumed == fresh

    def test_interrupted_rep_batched_sweep_resumes(self, tmp_path):
        """Rep batching composes with resume: partial rep groups replay.

        The width cap forces a group boundary every 3 cells (fusion
        would otherwise fold the whole family into one group), so the
        bomb lands inside the *second* group and the first group's
        records are already checkpointed when it goes off.
        """
        specs = _grid(repetitions=3).expand()
        fresh = SweepRunner(
            reduce=killing_summarize, rep_batch=3
        ).run(specs)

        store = ResultStore(tmp_path)
        _BOMB["remaining"] = 4  # dies inside the second rep group
        with pytest.raises(RuntimeError):
            SweepRunner(
                reduce=killing_summarize, rep_batch=3, store=store
            ).run(specs)

        _BOMB["remaining"] = None
        runner = SweepRunner(
            reduce=killing_summarize, rep_batch=3, store=store
        )
        resumed = runner.run(specs)
        assert runner.last_stats.played == len(specs) - runner.last_stats.cached
        assert runner.last_stats.cached >= 1
        assert resumed == fresh


class TestGridOrderEmission:
    def test_records_in_grid_order_not_completion_order(self, tmp_path):
        """Pre-seeding the cache out of order must not reorder output."""
        specs = _grid().expand()
        fresh = SweepRunner().run(specs)

        store = ResultStore(tmp_path)
        # store a scattered subset first (reverse order, gaps)
        scattered = [specs[6], specs[4], specs[1]]
        partial_runner = SweepRunner(store=store)
        partial_runner.run(scattered)
        assert store.count() == 3

        runner = SweepRunner(store=store)
        merged = runner.run(specs)
        assert runner.last_stats.cached == 3
        assert merged == fresh
        tags = [record["rep"] for record in merged]
        assert tags == [spec.tags["rep"] for spec in specs]

    @pytest.mark.slow
    def test_workers_and_rep_batch_agree_with_serial(self, tmp_path):
        specs = _grid().expand()
        fresh = SweepRunner().run(specs)
        parallel_runner = SweepRunner(
            workers=2, rep_batch="auto", store=ResultStore(tmp_path / "a")
        )
        assert parallel_runner.run(specs) == fresh
        # and the parallel-populated store replays serially, byte-identical
        serial_warm = SweepRunner(store=ResultStore(tmp_path / "a"))
        assert serial_warm.run(specs) == fresh
        assert serial_warm.last_stats.played == 0
