"""Tests for the rep-batching layer of the sweep runtime.

SweepRunner(rep_batch=...) must produce records byte-identical to the
per-spec loop in every mode ("auto", capped widths, process pools), and
the grouping/spec plumbing must only ever collapse true rep groups.
"""

import dataclasses

import pytest

from repro.core.strategies import (
    ElasticAdversary,
    ElasticCollector,
    FixedAdversary,
    MixedAdversary,
    TitForTatCollector,
)
from repro.runtime import (
    ComponentSpec,
    StrategyPair,
    SweepGrid,
    SweepRunner,
    play_rep_batch,
    rep_group_key,
)
from repro.runtime.runner import _group_reps


def _grid(repetitions=4, **overrides):
    pairs = (
        StrategyPair(
            "tft-vs-extreme",
            ComponentSpec(TitForTatCollector, {"t_th": 0.9, "trigger": None}),
            ComponentSpec(FixedAdversary, {"percentile": 0.99}),
        ),
        StrategyPair(
            "elastic-vs-mixed",
            ComponentSpec(ElasticCollector, {"t_th": 0.9, "k": 0.5}),
            ComponentSpec(MixedAdversary, {"p": 0.5}, seeded=True),
        ),
    )
    params = dict(
        pairs=pairs,
        attack_ratios=(0.1, 0.3),
        repetitions=repetitions,
        rounds=5,
        batch_size=60,
        store_retained=False,
        seed=0,
    )
    params.update(overrides)
    return SweepGrid(**params)


class TestRepBatchRunner:
    def test_auto_matches_solo_loop(self):
        grid = _grid()
        solo = SweepRunner().run_grid(grid)
        batched = SweepRunner(rep_batch="auto").run_grid(grid)
        assert solo == batched

    def test_capped_width_matches(self):
        grid = _grid(repetitions=5)
        solo = SweepRunner().run_grid(grid)
        assert SweepRunner(rep_batch=2).run_grid(grid) == solo
        assert SweepRunner(rep_batch=3).run_grid(grid) == solo

    def test_composes_with_process_pool(self):
        grid = _grid()
        solo = SweepRunner().run_grid(grid)
        combined = SweepRunner(workers=2, rep_batch="auto").run_grid(grid)
        assert solo == combined

    def test_off_values_disable(self):
        assert SweepRunner(rep_batch=None).rep_batch is None
        assert SweepRunner(rep_batch=1).rep_batch is None
        assert SweepRunner(rep_batch="off").rep_batch is None

    def test_invalid_rep_batch_rejected(self):
        with pytest.raises(ValueError, match="rep_batch"):
            SweepRunner(rep_batch="sometimes")
        with pytest.raises(ValueError, match="rep_batch"):
            SweepRunner(rep_batch=0)

    def test_custom_reducer_applied_per_rep(self):
        def reduce(spec, result):
            return (spec.tags["rep"], result.rounds)

        grid = _grid()
        solo = SweepRunner(reduce=reduce).run_grid(grid)
        batched = SweepRunner(reduce=reduce, rep_batch="auto").run_grid(grid)
        assert solo == batched

    def test_full_boards_round_trip(self):
        grid = _grid(store_retained=True)

        def reduce(spec, result):
            return (
                spec.tags["rep"],
                result.retained_data().tobytes(),
            )

        solo = SweepRunner(reduce=reduce).run_grid(grid)
        batched = SweepRunner(reduce=reduce, rep_batch="auto").run_grid(grid)
        assert solo == batched


class TestGrouping:
    def test_groups_fuse_whole_family(self):
        # Every cell of this grid shares one fusion family, so the
        # whole sweep collapses into a single fused lockstep group.
        specs = _grid(repetitions=3).expand()
        groups = _group_reps(specs, None)
        assert [len(g) for g in groups] == [len(specs)]
        flattened = [spec for group in groups for spec in group]
        assert flattened == specs

    def test_mixed_families_split_groups(self):
        # Different batch sizes are different fusion families: groups
        # must break at the family boundary and recover the rep axis.
        a = _grid(repetitions=3).expand()
        b = _grid(repetitions=3, batch_size=40).expand()
        groups = _group_reps(a + b, None)
        assert [len(g) for g in groups] == [len(a), len(b)]

    def test_width_cap_splits_groups(self):
        specs = _grid(repetitions=5).expand()
        groups = _group_reps(specs, 2)
        assert all(len(group) <= 2 for group in groups)
        assert [spec for group in groups for spec in group] == specs

    def test_key_excludes_seed_and_tags(self):
        specs = _grid(repetitions=2).expand()
        assert rep_group_key(specs[0]) == rep_group_key(specs[1])
        assert specs[0].seed is not specs[1].seed

    def test_key_separates_cells(self):
        specs = _grid(repetitions=2).expand()
        # Specs 1 and 2 straddle a cell boundary (rep axis is innermost).
        assert rep_group_key(specs[1]) != rep_group_key(specs[2])


class TestPlayRepBatch:
    def test_matches_individual_play(self):
        specs = _grid(repetitions=3).expand()[:3]
        batched = play_rep_batch(specs)
        for spec, result in zip(specs, batched, strict=False):
            assert spec.play().to_records() == result.to_records()

    def test_single_spec_short_circuits(self):
        spec = _grid(repetitions=1).expand()[0]
        (result,) = play_rep_batch([spec])
        assert result.to_records() == spec.play().to_records()

    def test_rejects_mixed_cells(self):
        specs = _grid(repetitions=2).expand()
        with pytest.raises(ValueError, match="agree"):
            play_rep_batch([specs[0], specs[-1]])

    def test_tournament_config_rep_batch_identical(self):
        from repro.experiments import TournamentConfig, run_tournament

        base = TournamentConfig(repetitions=2, rounds=4)
        solo = run_tournament(dataclasses.replace(base, rep_batch=None))
        auto = run_tournament(base)
        assert (
            solo.adversary_payoffs.tobytes() == auto.adversary_payoffs.tobytes()
        )
        assert (
            solo.collector_payoffs.tobytes() == auto.collector_payoffs.tobytes()
        )


class TestReviewRegressions:
    def test_ndarray_component_kwargs_degrade_to_singletons(self):
        """Equal-but-distinct ComponentSpecs with ndarray kwargs must not
        crash grouping — they conservatively form singleton groups."""
        import numpy as np

        class _CenterAdversary(FixedAdversary):
            def __init__(self, centers=None, percentile=0.99):
                super().__init__(percentile)
                self.centers = centers

        base = _grid(repetitions=1).expand()[0]
        specs = [
            dataclasses.replace(
                base,
                adversary=ComponentSpec(
                    _CenterAdversary,
                    {"centers": np.array([[0.0, 1.0], [2.0, 3.0]])},
                ),
            )
            for _ in range(3)
        ]
        groups = _group_reps(specs, None)
        # Rep keys degrade to identity comparison (no crash) so the
        # cells are not same-cell reps — but they still share a fusion
        # family, so they group for the fused lockstep path.
        assert [len(g) for g in groups] == [3]
        with pytest.raises(ValueError, match="agree"):
            play_rep_batch(specs)

    def test_boolean_rep_batch_rejected(self):
        with pytest.raises(ValueError, match="auto"):
            SweepRunner(rep_batch=True)
        with pytest.raises(ValueError, match="auto"):
            SweepRunner(rep_batch=False)

    def test_mixed_trigger_counters_restored(self):
        """Post-game trigger state must match solo play (finalize)."""
        from repro.core.strategies import MixedStrategyTrigger
        from repro.runtime.spec import build_batched_game

        pairs = (
            StrategyPair(
                "tft-mixed",
                ComponentSpec(
                    TitForTatCollector,
                    {
                        "t_th": 0.9,
                        "trigger": ComponentSpec(
                            MixedStrategyTrigger,
                            {"equilibrium_probability": 0.5, "warmup": 3},
                        ),
                    },
                ),
                ComponentSpec(MixedAdversary, {"p": 0.5}, seeded=True),
            ),
        )
        grid = SweepGrid(
            pairs=pairs, repetitions=3, rounds=15, batch_size=60,
            store_retained=False, seed=0,
        )
        specs = grid.expand()
        game = build_batched_game(specs)
        game.run()
        for spec, collector in zip(specs, game.collectors, strict=False):
            solo_game = spec.build()
            solo_game.run()
            solo_collector = solo_game.collector
            assert collector.trigger._rounds == solo_collector.trigger._rounds
            assert (
                collector.trigger._betrayals
                == solo_collector.trigger._betrayals
            )
            assert (
                collector.trigger.betrayal_ratio
                == solo_collector.trigger.betrayal_ratio
            )
            assert collector.triggered == solo_collector.triggered
