"""Tests for repro.runtime.runner — grid expansion and parallel sweeps."""

import numpy as np
import pytest

from repro.core.strategies import (
    ElasticAdversary,
    ElasticCollector,
    FixedAdversary,
    MixedAdversary,
    StaticCollector,
    TitForTatCollector,
)
from repro.runtime import (
    ComponentSpec,
    GameRecord,
    StrategyPair,
    SweepGrid,
    SweepRunner,
    cross_pairs,
    play_game,
    summarize_game,
)


def _pair(name="tft-vs-extreme"):
    return StrategyPair(
        name=name,
        collector=ComponentSpec(
            TitForTatCollector, {"t_th": 0.9, "trigger": None}
        ),
        adversary=ComponentSpec(FixedAdversary, {"percentile": 0.99}),
        collector_name="titfortat",
        adversary_name="extreme@0.99",
    )


def _grid(**overrides):
    kwargs = dict(
        pairs=(_pair(),),
        datasets=("control",),
        attack_ratios=(0.1, 0.3),
        repetitions=2,
        rounds=3,
        batch_size=60,
        seed=0,
    )
    kwargs.update(overrides)
    return SweepGrid(**kwargs)


class TestSweepGrid:
    def test_expansion_count_and_order(self):
        grid = _grid()
        specs = grid.expand()
        assert len(specs) == grid.n_cells == 4
        # ratio-major, then pair, then rep
        assert [s.tags["attack_ratio"] for s in specs] == [0.1, 0.1, 0.3, 0.3]
        assert [s.tags["rep"] for s in specs] == [0, 1, 0, 1]

    def test_cell_seeds_are_collision_free(self):
        grid = _grid(repetitions=3)
        states = [
            tuple(s.seed_sequence().generate_state(4).tolist())
            for s in grid.expand()
        ]
        assert len(set(states)) == len(states)

    def test_cell_seeds_use_coordinate_spawn_keys(self):
        specs = _grid().expand()
        assert specs[0].seed_sequence().spawn_key == (0, 0, 0, 0)
        assert specs[-1].seed_sequence().spawn_key == (0, 1, 0, 1)

    def test_pair_tags_merged_into_cells(self):
        pair = StrategyPair(
            name="tagged",
            collector=ComponentSpec(StaticCollector, {"threshold": 0.9}),
            adversary=ComponentSpec(FixedAdversary, {"percentile": 0.99}),
            tags={"p": 0.5},
        )
        specs = _grid(pairs=(pair,), repetitions=1).expand()
        assert all(s.tags["p"] == 0.5 for s in specs)

    def test_invalid_grids_rejected(self):
        with pytest.raises(ValueError):
            _grid(pairs=())
        with pytest.raises(ValueError):
            _grid(repetitions=0)
        with pytest.raises(ValueError):
            _grid(attack_ratios=())


class TestCrossPairs:
    def test_full_cross_product(self):
        collectors = {
            "static": ComponentSpec(StaticCollector, {"threshold": 0.9}),
            "elastic0.5": ComponentSpec(
                ElasticCollector, {"t_th": 0.9, "k": 0.5}
            ),
        }
        adversaries = {
            "extreme": ComponentSpec(FixedAdversary, {"percentile": 0.99}),
            "elastic0.5": ComponentSpec(
                ElasticAdversary, {"t_th": 0.9, "k": 0.5}
            ),
        }
        pairs = cross_pairs(collectors, adversaries)
        assert len(pairs) == 4
        assert pairs[0].collector_name == "static"
        assert pairs[0].adversary_name == "extreme"
        assert {p.name for p in pairs} == {
            "static|extreme",
            "static|elastic0.5",
            "elastic0.5|extreme",
            "elastic0.5|elastic0.5",
        }


class TestSweepRunner:
    def test_default_reducer_emits_game_records(self):
        records = SweepRunner().run_grid(_grid(repetitions=1))
        assert all(isinstance(r, GameRecord) for r in records)
        record = records[0]
        assert record.collector == "titfortat"
        assert record.adversary == "fixed@0.99"
        assert record.rounds == 3
        assert 0.0 <= record.poison_retained_fraction <= 1.0
        assert record.n_retained <= record.n_collected
        assert record["attack_ratio"] == 0.1

    def test_summarize_game_counts_are_consistent(self):
        spec = _grid(repetitions=1).expand()[0]
        result = play_game(spec)
        record = summarize_game(spec, result)
        entries = result.board.entries
        assert record.n_collected == sum(e.n_collected for e in entries)
        assert record.n_poison_retained <= record.n_poison_injected
        assert record.mean_trim_percentile == pytest.approx(
            float(np.mean(result.threshold_path()))
        )

    def test_empty_spec_list(self):
        assert SweepRunner().run([]) == []

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            SweepRunner(workers=0)
        with pytest.raises(ValueError):
            SweepRunner(chunksize=0)

    @pytest.mark.slow
    def test_parallel_equals_serial(self):
        grid = _grid(
            pairs=(
                _pair(),
                StrategyPair(
                    name="elastic-vs-mixed",
                    collector=ComponentSpec(
                        ElasticCollector, {"t_th": 0.9, "k": 0.5}
                    ),
                    adversary=ComponentSpec(
                        MixedAdversary, {"p": 0.5}, seeded=True
                    ),
                ),
            )
        )
        serial = SweepRunner(workers=1).run_grid(grid)
        parallel = SweepRunner(workers=2).run_grid(grid)
        assert serial == parallel

    @pytest.mark.slow
    def test_explicit_chunksize_does_not_change_results(self):
        grid = _grid()
        serial = SweepRunner(workers=1).run_grid(grid)
        chunked = SweepRunner(workers=2, chunksize=3).run_grid(grid)
        assert serial == chunked


@pytest.mark.slow
class TestTournamentParallelism:
    """The acceptance gate: payoff matrices identical at any worker count."""

    def test_tournament_workers_1_vs_4_byte_identical(self):
        from repro.experiments import TournamentConfig, run_tournament

        serial = run_tournament(TournamentConfig(repetitions=2, rounds=4))
        parallel = run_tournament(
            TournamentConfig(repetitions=2, rounds=4, workers=4)
        )
        assert serial.adversary_payoffs.tobytes() == (
            parallel.adversary_payoffs.tobytes()
        )
        assert serial.collector_payoffs.tobytes() == (
            parallel.collector_payoffs.tobytes()
        )
        np.testing.assert_array_equal(
            serial.collector_mixture, parallel.collector_mixture
        )
        assert serial.game_value == parallel.game_value


class TestLeanSweeps:
    """store_retained propagates grid -> spec -> engine, and summary
    records are identical either way."""

    def test_store_retained_propagates_to_specs(self):
        specs = _grid(store_retained=False).expand()
        assert all(not s.store_retained for s in specs)
        assert all(s.store_retained for s in _grid().expand())

    def test_lean_game_records_match_full(self):
        lean = SweepRunner().run_grid(_grid(store_retained=False))
        full = SweepRunner().run_grid(_grid(store_retained=True))
        assert lean == full

    def test_lean_spec_plays_on_lean_board(self):
        spec = _grid(store_retained=False).expand()[0]
        result = play_game(spec)
        assert all(e.retained is None for e in result.board.entries)
        # summarize_game must work off the counts alone.
        record = summarize_game(spec, result)
        assert record.n_retained > 0
