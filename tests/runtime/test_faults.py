"""The chaos determinism gate: supervised execution under injected faults.

The non-negotiable contract of the fault-tolerance layer: faults change
*whether an attempt completes*, never *what a cell computes* — so every
record produced under injected faults + retries + resume must be
byte-identical to a fault-free run, across ``workers=1|2`` and rep-batch
modes.  These tests drive the supervised :class:`SweepRunner` through the
seeded :class:`FaultPlan` harness (transient errors, worker SIGKILLs,
slow cells vs timeouts, torn store writes) and pin that contract down.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.strategies import (
    ElasticAdversary,
    ElasticCollector,
    FixedAdversary,
    TitForTatCollector,
)
from repro.runtime import (
    CellFault,
    CellTimeoutError,
    ComponentSpec,
    FailureRecord,
    FaultPlan,
    InjectedFault,
    ResultStore,
    StrategyPair,
    SweepGrid,
    SweepRunner,
    TaskSpec,
)


def _grid(**overrides):
    kwargs = dict(
        pairs=(
            StrategyPair(
                name="titfortat",
                collector=ComponentSpec(
                    TitForTatCollector, {"t_th": 0.9, "trigger": None}
                ),
                adversary=ComponentSpec(FixedAdversary, {"percentile": 0.99}),
            ),
            StrategyPair(
                name="elastic0.5",
                collector=ComponentSpec(
                    ElasticCollector, {"t_th": 0.9, "k": 0.5}
                ),
                adversary=ComponentSpec(
                    ElasticAdversary, {"t_th": 0.9, "k": 0.5}
                ),
            ),
        ),
        datasets=("control",),
        attack_ratios=(0.1, 0.3),
        repetitions=2,
        rounds=3,
        batch_size=60,
        store_retained=False,
        seed=0,
    )
    kwargs.update(overrides)
    return SweepGrid(**kwargs)


def _cube(value):
    """Module-level picklable task body for cheap TaskSpec sweeps."""
    return {"value": value, "cubed": value**3}


def _task_specs(n):
    return [
        TaskSpec(
            ComponentSpec(_cube, {"value": i}), tags={"i": i}
        )
        for i in range(n)
    ]


class TestFaultPlan:
    def test_plan_is_a_pure_function_of_cell(self):
        plan = FaultPlan(seed=3, error_rate=0.3, slow_rate=0.2, kill_rate=0.1)
        first = [plan.fault_for_cell(i) for i in range(50)]
        second = [plan.fault_for_cell(i) for i in range(50)]
        assert first == second
        kinds = {fault.kind for fault in first if fault is not None}
        assert kinds <= {"error", "slow", "kill"}
        # at these rates, 50 draws should include strikes and clean cells
        assert any(fault is not None for fault in first)
        assert any(fault is None for fault in first)

    def test_different_seeds_differ(self):
        a = FaultPlan(seed=1, error_rate=0.5)
        b = FaultPlan(seed=2, error_rate=0.5)
        assert [a.fault_for_cell(i) for i in range(64)] != [
            b.fault_for_cell(i) for i in range(64)
        ]

    def test_pinned_faults_beat_rates(self):
        plan = FaultPlan(
            seed=0,
            cells=((4, CellFault("error", attempts=2)),),
            slow_rate=1.0,
        )
        assert plan.fault_for_cell(4) == CellFault("error", attempts=2)
        assert plan.fault_for_cell(5).kind == "slow"

    def test_torn_schedule_keys_by_content_key(self):
        plan = FaultPlan(seed=9, torn_rate=0.5)
        keys = [f"{i:064x}" for i in range(40)]
        assert [plan.tears_record(k) for k in keys] == [
            plan.tears_record(k) for k in keys
        ]
        assert any(plan.tears_record(k) for k in keys)
        assert not all(plan.tears_record(k) for k in keys)

    def test_parse(self):
        plan = FaultPlan.parse("seed=7, error=0.3, torn=0.25, attempts=2")
        assert plan.seed == 7
        assert plan.error_rate == 0.3
        assert plan.torn_rate == 0.25
        assert plan.fault_attempts == 2
        with pytest.raises(ValueError, match="bad fault spec"):
            FaultPlan.parse("bogus=1")
        with pytest.raises(ValueError, match="bad value"):
            FaultPlan.parse("error=lots")

    def test_validation(self):
        with pytest.raises(ValueError, match="rates"):
            FaultPlan(error_rate=1.5)
        with pytest.raises(ValueError, match="exceed 1"):
            FaultPlan(error_rate=0.6, kill_rate=0.6)
        with pytest.raises(ValueError, match="pinned twice"):
            FaultPlan(
                cells=((1, CellFault("error")), (1, CellFault("slow")))
            )
        with pytest.raises(ValueError, match="unknown fault kind"):
            CellFault("explode")


class TestSupervisedRetries:
    def test_transient_error_is_retried_and_output_unchanged(self):
        specs = _task_specs(6)
        baseline = SweepRunner().run(specs)
        plan = FaultPlan.pinned({2: CellFault("error", attempts=2)})
        runner = SweepRunner(retries=2, backoff=0.0, faults=plan)
        assert runner.run(specs) == baseline
        assert runner.last_stats.retried == 2
        assert runner.last_stats.failed == 0
        assert runner.last_failures == []

    def test_default_on_error_raises_the_original_exception(self):
        specs = _task_specs(4)
        plan = FaultPlan.pinned({1: CellFault("error", attempts=5)})
        with pytest.raises(InjectedFault, match="cell 1"):
            SweepRunner(retries=1, backoff=0.0, faults=plan).run(specs)

    def test_quarantine_emits_failure_records_in_grid_slots(self):
        specs = _task_specs(5)
        plan = FaultPlan.pinned({3: CellFault("error", attempts=9)})
        runner = SweepRunner(
            retries=1, backoff=0.0, on_error="quarantine", faults=plan
        )
        records = runner.run(specs)
        assert isinstance(records[3], FailureRecord)
        assert records[3].index == 3
        assert records[3].kind == "error"
        assert records[3].attempts == 2  # initial try + 1 retry
        assert records[3].tags == {"i": 3}
        assert [r for i, r in enumerate(records) if i != 3] == [
            _cube(i) for i in range(5) if i != 3
        ]
        assert runner.last_stats.quarantined == 1
        assert runner.last_failures == [records[3]]

    def test_serial_kill_fault_gets_a_free_replay(self):
        """Worker crashes are replayed once even at retries=0."""
        specs = _task_specs(3)
        plan = FaultPlan.pinned({0: CellFault("kill")})
        runner = SweepRunner(backoff=0.0, faults=plan)  # retries=0
        assert runner.run(specs) == SweepRunner().run(specs)
        assert runner.last_stats.retried == 1

    def test_quarantined_cells_heal_on_resume(self, tmp_path):
        specs = _grid().expand()
        baseline = SweepRunner().run(specs)

        store = ResultStore(tmp_path)
        plan = FaultPlan.pinned({2: CellFault("error", attempts=9)})
        chaotic = SweepRunner(
            retries=1, backoff=0.0, on_error="quarantine",
            faults=plan, store=store,
        )
        records = chaotic.run(specs)
        assert isinstance(records[2], FailureRecord)
        assert chaotic.last_stats.quarantined == 1
        # the quarantined cell was never persisted...
        assert chaotic.last_keys[2] not in store

        # ...so a fault-free run against the same store replays only it
        resumed_runner = SweepRunner(store=store)
        resumed = resumed_runner.run(specs)
        assert resumed_runner.last_stats.played == 1
        assert resumed_runner.last_stats.cached == len(specs) - 1
        assert resumed_runner.last_stats.quarantined == 0
        assert resumed == baseline


class TestTimeouts:
    def test_serial_soft_timeout(self):
        specs = _task_specs(3)
        plan = FaultPlan.pinned({1: CellFault("slow", delay=0.3)})
        runner = SweepRunner(
            timeout=0.1, backoff=0.0, on_error="quarantine", faults=plan
        )
        records = runner.run(specs)
        assert isinstance(records[1], FailureRecord)
        assert records[1].kind == "timeout"
        with pytest.raises(CellTimeoutError):
            SweepRunner(timeout=0.1, backoff=0.0, faults=plan).run(specs)

    def test_serial_timeout_retry_recovers(self):
        specs = _task_specs(3)
        plan = FaultPlan.pinned({1: CellFault("slow", delay=0.3)})
        runner = SweepRunner(
            timeout=0.1, retries=1, backoff=0.0, faults=plan
        )
        assert runner.run(specs) == SweepRunner().run(specs)
        assert runner.last_stats.retried == 1

    @pytest.mark.slow
    def test_parallel_hung_cell_is_killed_and_replayed(self):
        specs = _task_specs(4)
        baseline = SweepRunner().run(specs)
        plan = FaultPlan.pinned({2: CellFault("slow", delay=5.0)})
        runner = SweepRunner(
            workers=2, timeout=0.5, retries=1, backoff=0.0, faults=plan
        )
        records = runner.run(specs)
        assert records == baseline
        assert runner.last_stats.retried >= 1


class TestChaosMatrix:
    """The acceptance gate: SIGKILL + transient errors + torn writes,
    quarantine-then-resume, byte-identical across workers × rep-batch."""

    @pytest.mark.slow
    @pytest.mark.parametrize("workers", [1, 2])
    @pytest.mark.parametrize("rep_batch", [None, "auto"])
    def test_quarantine_then_resume_is_byte_identical(
        self, tmp_path, workers, rep_batch
    ):
        specs = _grid().expand()
        baseline = SweepRunner(rep_batch=rep_batch).run(specs)

        plan = FaultPlan(
            seed=0,
            cells=(
                (1, CellFault("error", attempts=2)),  # heals via retry
                (3, CellFault("kill")),               # real SIGKILL at N>1
                (5, CellFault("error", attempts=9)),  # quarantined
            ),
            torn_rate=0.3,
        )
        store = ResultStore(tmp_path / f"w{workers}-{rep_batch}")
        chaotic = SweepRunner(
            workers=workers,
            rep_batch=rep_batch,
            retries=1,
            backoff=0.0,
            on_error="quarantine",
            faults=plan,
            store=store,
        )
        records = chaotic.run(specs)
        assert chaotic.last_stats.quarantined >= 1
        assert any(isinstance(r, FailureRecord) for r in records)
        assert chaotic.last_stats.retried >= 1

        # fault-free resume against the same store: heals quarantined
        # cells and torn records, and must equal the clean baseline
        resumed_runner = SweepRunner(
            workers=workers, rep_batch=rep_batch, store=store
        )
        resumed = resumed_runner.run(specs)
        assert resumed_runner.last_stats.quarantined == 0
        assert resumed_runner.last_stats.failed == 0
        assert resumed == baseline

        # and a warm-cache replay executes nothing
        warm = SweepRunner(store=ResultStore(tmp_path / f"w{workers}-{rep_batch}"))
        assert warm.run(specs) == baseline
        assert warm.last_stats.played == 0

    @pytest.mark.slow
    def test_worker_sigkill_mid_sweep_completes_byte_identical(self):
        """A pool worker SIGKILLed mid-sweep costs nothing but a replay."""
        specs = _grid().expand()
        baseline = SweepRunner().run(specs)
        plan = FaultPlan.pinned({4: CellFault("kill")})
        runner = SweepRunner(workers=2, backoff=0.0, faults=plan)
        assert runner.run(specs) == baseline
        assert runner.last_stats.retried >= 1
        assert runner.last_stats.quarantined == 0


class TestFaultScheduleProperty:
    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        error_rate=st.floats(min_value=0.0, max_value=0.8),
        attempts=st.integers(min_value=1, max_value=3),
    )
    def test_random_schedules_never_change_output_bytes(
        self, seed, error_rate, attempts
    ):
        """Any retryable fault schedule yields the fault-free records."""
        specs = _task_specs(8)
        baseline = [_cube(i) for i in range(8)]
        plan = FaultPlan(
            seed=seed, error_rate=error_rate, fault_attempts=attempts
        )
        runner = SweepRunner(retries=attempts, backoff=0.0, faults=plan)
        assert runner.run(specs) == baseline
