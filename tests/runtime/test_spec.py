"""Tests for repro.runtime.spec — picklable game descriptions."""

import pickle

import numpy as np
import pytest

from repro.core.engine import CollectionGame
from repro.core.strategies import (
    ElasticCollector,
    FixedAdversary,
    MixedAdversary,
    MixedStrategyTrigger,
    TitForTatCollector,
)
from repro.core.trimming import RadialTrimmer, ValueTrimmer
from repro.runtime import (
    ADVERSARY_CHANNEL,
    SOURCE_CHANNEL,
    ComponentSpec,
    GameSpec,
    load_reference,
)


class TestComponentSpec:
    def test_builds_fresh_instances(self):
        spec = ComponentSpec(ElasticCollector, {"t_th": 0.9, "k": 0.5})
        a, b = spec.build(), spec.build()
        assert isinstance(a, ElasticCollector)
        assert a is not b
        assert a.k == 0.5

    def test_nested_specs_built_recursively(self):
        spec = ComponentSpec(
            TitForTatCollector,
            {
                "t_th": 0.9,
                "trigger": ComponentSpec(
                    MixedStrategyTrigger, {"equilibrium_probability": 0.5}
                ),
            },
        )
        a, b = spec.build(), spec.build()
        assert isinstance(a.trigger, MixedStrategyTrigger)
        # Each build owns its trigger: no shared mutable state.
        assert a.trigger is not b.trigger

    def test_seeded_spec_passes_seed_kwarg(self):
        spec = ComponentSpec(MixedAdversary, {"p": 0.5}, seeded=True)
        seed = np.random.SeedSequence(3)
        a = spec.build(seed)
        b = spec.build(seed)
        draws_a = [a.first() for _ in range(10)]
        draws_b = [b.first() for _ in range(10)]
        assert draws_a == draws_b

    def test_name_is_factory_name(self):
        assert ComponentSpec(ValueTrimmer).name == "ValueTrimmer"

    def test_seeded_spec_rejects_explicit_seed_kwarg(self):
        with pytest.raises(ValueError):
            ComponentSpec(MixedAdversary, {"p": 0.5, "seed": 42}, seeded=True)

    def test_nested_seeded_specs_get_distinct_child_seeds(self):
        # Two seeded components in one recipe must not share the parent's
        # stream (identical seeds would correlate their draws).
        class Carrier:
            def __init__(self, a, b, seed=None):
                self.a, self.b = a, b

        inner = ComponentSpec(MixedAdversary, {"p": 0.5}, seeded=True)
        spec = ComponentSpec(Carrier, {"a": inner, "b": inner})
        carrier = spec.build(np.random.SeedSequence(0))
        draws_a = [carrier.a.first() for _ in range(40)]
        draws_b = [carrier.b.first() for _ in range(40)]
        assert draws_a != draws_b

    def test_nested_seed_derivation_is_deterministic(self):
        inner = ComponentSpec(MixedAdversary, {"p": 0.5}, seeded=True)
        seed = np.random.SeedSequence(9)
        first = ComponentSpec(dict, {"x": inner}).build(seed)["x"]
        second = ComponentSpec(dict, {"x": inner}).build(seed)["x"]
        assert [first.first() for _ in range(20)] == [
            second.first() for _ in range(20)
        ]


@pytest.fixture()
def spec():
    return GameSpec(
        collector=ComponentSpec(ElasticCollector, {"t_th": 0.9, "k": 0.5}),
        adversary=ComponentSpec(FixedAdversary, {"percentile": 0.99}),
        dataset="control",
        attack_ratio=0.2,
        rounds=4,
        batch_size=60,
        seed=42,
        tags={"scheme": "elastic0.5"},
    )


class TestGameSpec:
    def test_child_seeds_are_deterministic_and_distinct(self, spec):
        a = spec.child_seed(SOURCE_CHANNEL)
        b = spec.child_seed(SOURCE_CHANNEL)
        c = spec.child_seed(ADVERSARY_CHANNEL)
        assert a.generate_state(4).tolist() == b.generate_state(4).tolist()
        assert a.generate_state(4).tolist() != c.generate_state(4).tolist()

    def test_seed_sequence_accepts_seedsequence(self, spec):
        from dataclasses import replace

        ss = np.random.SeedSequence(7, spawn_key=(1, 2))
        derived = replace(spec, seed=ss).child_seed(0)
        assert derived.spawn_key == (1, 2, 0)

    def test_build_wires_a_collection_game(self, spec):
        game = spec.build()
        assert isinstance(game, CollectionGame)
        assert game.rounds == 4
        assert isinstance(game.trimmer, RadialTrimmer)

    def test_play_is_reproducible(self, spec):
        r1 = spec.play()
        r2 = spec.play()
        np.testing.assert_array_equal(r1.threshold_path(), r2.threshold_path())
        np.testing.assert_array_equal(r1.injection_path(), r2.injection_path())
        assert r1.poison_retained_fraction() == r2.poison_retained_fraction()

    def test_pickle_round_trip_plays_identically(self, spec):
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        r1, r2 = spec.play(), clone.play()
        np.testing.assert_array_equal(r1.threshold_path(), r2.threshold_path())
        assert r1.poison_retained_fraction() == r2.poison_retained_fraction()

    def test_with_tags_merges(self, spec):
        tagged = spec.with_tags(rep=3)
        assert tagged.tags["rep"] == 3
        assert tagged.tags["scheme"] == "elastic0.5"
        assert "rep" not in spec.tags

    def test_different_seeds_differ(self, spec):
        from dataclasses import replace

        # A seeded adversary draws from the spec's adversary channel, so
        # two different root seeds must yield different injection paths.
        mixed = replace(
            spec,
            adversary=ComponentSpec(MixedAdversary, {"p": 0.5}, seeded=True),
            rounds=12,
        )
        r1 = mixed.play()
        r2 = replace(mixed, seed=43).play()
        assert not np.array_equal(r1.injection_path(), r2.injection_path())


class TestTaskSpec:
    def test_play_evaluates_the_task(self):
        from repro.experiments.cost import roundwise_cost
        from repro.runtime import TaskSpec

        spec = TaskSpec(
            task=ComponentSpec(
                roundwise_cost, {"t_th": 0.9, "k": 0.5, "rounds": 10}
            ),
            tags={"which": "k_high"},
        )
        assert spec.play() == roundwise_cost(0.9, 0.5, 10)
        assert spec.seed_sequence() is None
        with pytest.raises(ValueError):
            spec.child_seed(0)

    def test_seeded_task_receives_seed_sequence(self):
        from repro.runtime import TaskSpec

        def _entropy(seed):
            return int(seed.entropy)

        spec = TaskSpec(task=ComponentSpec(_rng_entropy, seeded=True), seed=7)
        assert spec.play() == 7
        # child channels are deterministic extensions of the spawn key
        assert spec.child_seed(3).spawn_key == (3,)

    def test_is_picklable(self):
        from repro.experiments.cost import roundwise_cost
        from repro.runtime import TaskSpec

        spec = TaskSpec(
            task=ComponentSpec(
                roundwise_cost, {"t_th": 0.9, "k": 0.1, "rounds": 5}
            ),
            seed=3,
            tags={"k": 0.1},
        )
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.play() == spec.play()

    def test_with_tags_merges(self):
        from repro.experiments.cost import roundwise_cost
        from repro.runtime import TaskSpec

        spec = TaskSpec(
            task=ComponentSpec(
                roundwise_cost, {"t_th": 0.9, "k": 0.1, "rounds": 5}
            ),
            tags={"a": 1},
        )
        assert dict(spec.with_tags(b=2).tags) == {"a": 1, "b": 2}


def _rng_entropy(seed):
    """Module-level seeded task helper (picklable)."""
    return int(seed.entropy)


class TestLoadReference:
    def test_cached_and_read_only(self):
        a = load_reference("control")
        b = load_reference("control")
        assert a is b
        assert not a.flags.writeable

    def test_subsample_size(self):
        small = load_reference("letter", 500)
        assert small.shape[0] == 500
