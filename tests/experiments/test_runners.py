"""Integration tests: the experiment runners on scaled-down configs.

These exercise the full stack (datasets -> streams -> engine ->
strategies -> analytics) and assert the paper's headline *shapes*, not
absolute numbers.
"""

import numpy as np
import pytest

from repro.experiments import (
    CostConfig,
    EquilibriumConfig,
    LDPConfig,
    NonEquilibriumConfig,
    SOMConfig,
    SVMConfig,
    run_cost_analysis,
    run_kmeans_experiment,
    run_ldp_experiment,
    run_nonequilibrium,
    run_som_experiment,
    run_svm_experiment,
)
from repro.experiments.cost import elastic_trajectory, roundwise_cost


@pytest.mark.slow
class TestEquilibriumRunner:
    def test_fig4_shapes(self):
        config = EquilibriumConfig(
            dataset="control",
            attack_ratios=(0.0, 0.3),
            schemes=("ostrich", "titfortat"),
            repetitions=1,
            rounds=8,
        )
        cells = {(c.scheme, c.attack_ratio): c for c in run_kmeans_experiment(config)}
        # Ostrich degrades sharply with the attack ratio...
        assert cells[("ostrich", 0.3)].distance > cells[("ostrich", 0.0)].distance
        # ...while Tit-for-tat absorbs it (reference trim removes the 99th
        # percentile poison entirely).
        tft_low = cells[("titfortat", 0.0)].sse
        tft_high = cells[("titfortat", 0.3)].sse
        assert abs(tft_high - tft_low) / tft_low < 0.05
        # At high ratio the defense beats no-defense.
        assert cells[("titfortat", 0.3)].sse < cells[("ostrich", 0.3)].sse


class TestCostRunner:
    def test_roundwise_cost_decreases_with_rounds(self):
        rows = run_cost_analysis(CostConfig(round_numbers=(5, 20, 50)))
        costs_high = [r.cost_k_high for r in rows]
        costs_low = [r.cost_k_low for r in rows]
        assert costs_high[0] > costs_high[1] > costs_high[2]
        assert costs_low[0] > costs_low[1] > costs_low[2]

    def test_stronger_response_is_cheaper(self):
        rows = run_cost_analysis(CostConfig())
        for row in rows:
            assert row.cost_k_high < row.cost_k_low

    def test_roundwise_cost_scales_inverse_rounds(self):
        # Total transient cost is finite: cost(n) * n converges.
        totals = [roundwise_cost(0.9, 0.5, n) * n for n in (20, 40, 80)]
        assert abs(totals[-1] - totals[-2]) < 0.05 * totals[-1]

    def test_trajectory_converges_to_fixed_point(self):
        from repro.core.stackelberg import linear_response_fixed_point

        thresholds, injections = elastic_trajectory(0.9, 0.5, 300)
        t_star, a_star = linear_response_fixed_point(0.9, 0.5)
        assert thresholds[-1] == pytest.approx(t_star, abs=1e-6)
        assert injections[-1] == pytest.approx(a_star, abs=1e-6)

    def test_paper_rule_also_converges(self):
        thresholds, injections = elastic_trajectory(0.9, 0.3, 200, rule="paper")
        assert abs(thresholds[-1] - thresholds[-2]) < 1e-9


@pytest.mark.slow
class TestNonEquilibriumRunner:
    def test_table3_shapes(self):
        config = NonEquilibriumConfig(
            repetitions=3, p_values=(0.0, 1.0), rounds=15
        )
        rows = {r.p: r for r in run_nonequilibrium(config)}
        # p = 0 (declared greedy) never triggers: termination at the cap.
        assert rows[0.0].average_termination_rounds == pytest.approx(20.0)
        # The compliant adversary is eventually false-flagged: earlier.
        assert rows[1.0].average_termination_rounds < 20.0
        # Greedy play leaves more surviving poison than equilibrium play.
        assert (
            rows[0.0].titfortat_poison_fraction
            > rows[1.0].titfortat_poison_fraction
        )
        assert (
            rows[0.0].elastic_poison_fraction
            > rows[1.0].elastic_poison_fraction
        )


@pytest.mark.slow
class TestClassifierRunners:
    def test_fig7_shapes(self):
        # Full round count: the retained training set must cover the
        # dataset, otherwise Pegasos underfits and orderings are noise.
        config = SVMConfig(
            schemes=("ostrich", "baseline_static", "titfortat"),
        )
        results = {r.scheme: r for r in run_svm_experiment(config)}
        assert results["groundtruth"].accuracy > 0.95
        # Ground truth beats every defended/undefended variant.
        for _name, res in results.items():
            assert res.accuracy <= results["groundtruth"].accuracy + 1e-9
        # The ideal sub-threshold attack survives and hurts: worse than
        # the fully-trimmed Tit-for-tat defense.
        assert (
            results["baseline_static"].accuracy
            < results["titfortat"].accuracy
        )
        # Tit-for-tat (poison fully trimmed) stays close to ground truth.
        assert results["titfortat"].accuracy > results["groundtruth"].accuracy - 0.05

    def test_fig8_shapes(self):
        config = SOMConfig(
            bulk_size=600,
            rounds=4,
            som_iterations=1200,
            grid=(8, 8),
            schemes=("ostrich", "baseline_static", "titfortat"),
        )
        results = {r.scheme: r for r in run_som_experiment(config)}
        # Ostrich keeps everything: all 7 minority points and all poison.
        assert results["groundtruth"].minority_retained == 7
        assert results["ostrich"].minority_retained == 7
        assert results["ostrich"].poison_retained_fraction > 0.2
        # Defenses cut the poison share below Ostrich's.
        assert (
            results["titfortat"].poison_retained_fraction
            < results["ostrich"].poison_retained_fraction
        )


@pytest.mark.slow
class TestLDPRunner:
    def test_fig9_shapes(self):
        config = LDPConfig(
            epsilons=(2.0, 4.0),
            attack_ratios=(0.2,),
            n_users=800,
            rounds=2,
            repetitions=2,
            reference_size=1600,
        )
        cells = {(c.scheme, c.epsilon): c.mse for c in run_ldp_experiment(config)}
        # Trimming defenses beat EMF once the noise is moderate (eps >= 2):
        # the input-manipulation attack is channel-consistent, so EMF
        # cannot separate it while trimming removes its upper-tail mass.
        assert cells[("titfortat", 2.0)] < cells[("emf", 2.0)]
        assert cells[("elastic0.5", 4.0)] < cells[("emf", 4.0)]
