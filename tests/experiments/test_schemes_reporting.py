"""Tests for repro.experiments.schemes and .reporting."""

import pytest

from repro.core.strategies import (
    ElasticAdversary,
    ElasticCollector,
    FixedAdversary,
    JustBelowAdversary,
    NullAdversary,
    OstrichCollector,
    StaticCollector,
    TitForTatCollector,
    UniformRangeAdversary,
)
from repro.experiments import SCHEMES, format_table, format_value, make_scheme


class TestMakeScheme:
    def test_all_canonical_schemes_construct(self):
        for name in SCHEMES:
            collector, adversary = make_scheme(name, t_th=0.9, seed=0)
            assert collector is not None and adversary is not None

    def test_groundtruth(self):
        collector, adversary = make_scheme("groundtruth", 0.9)
        assert isinstance(collector, OstrichCollector)
        assert isinstance(adversary, NullAdversary)

    def test_ostrich_faces_99th_percentile(self):
        collector, adversary = make_scheme("ostrich", 0.9)
        assert isinstance(collector, OstrichCollector)
        assert isinstance(adversary, FixedAdversary)
        assert adversary.percentile == 0.99

    def test_baseline09(self):
        collector, adversary = make_scheme("baseline0.9", 0.97)
        assert isinstance(collector, StaticCollector)
        assert collector.threshold == 0.9  # fixed at 0.9 regardless of t_th
        assert isinstance(adversary, UniformRangeAdversary)

    def test_baseline_static_ideal_attack(self):
        collector, adversary = make_scheme("baseline_static", 0.95)
        assert collector.threshold == 0.95
        assert isinstance(adversary, JustBelowAdversary)
        assert adversary.first() == pytest.approx(0.94)

    def test_titfortat_untriggered(self):
        collector, adversary = make_scheme("titfortat", 0.9)
        assert isinstance(collector, TitForTatCollector)
        assert collector.trigger is None

    def test_elastic_parses_strength(self):
        collector, adversary = make_scheme("elastic0.5", 0.9)
        assert isinstance(collector, ElasticCollector)
        assert isinstance(adversary, ElasticAdversary)
        assert collector.k == 0.5

    def test_elastic_rule_forwarded(self):
        collector, _ = make_scheme("elastic0.1", 0.9, elastic_rule="relaxation")
        assert collector.rule == "relaxation"

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            make_scheme("magic", 0.9)

    def test_unparseable_elastic_rejected(self):
        with pytest.raises(ValueError):
            make_scheme("elasticxx", 0.9)


class TestReporting:
    def test_format_value_floats(self):
        assert format_value(0.5) == "0.5"
        assert format_value(float("nan")) == "nan"
        assert format_value(0.0) == "0"

    def test_format_value_bool_and_str(self):
        assert format_value(True) == "yes"
        assert format_value("abc") == "abc"

    def test_table_alignment(self):
        table = format_table(["a", "bb"], [[1, 2.5], [10, 0.25]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1  # aligned

    def test_table_title(self):
        table = format_table(["x"], [[1]], title="Table I")
        assert table.splitlines()[0] == "Table I"

    def test_row_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])
