"""Tests for repro.experiments.tournament — the empirical meta-game."""

import pytest

from repro.experiments import TournamentConfig, run_tournament


@pytest.fixture(scope="module")
def result():
    return run_tournament(TournamentConfig(repetitions=1, rounds=6))


@pytest.mark.slow
class TestTournament:
    def test_matrix_shapes(self, result):
        n_a = len(result.adversary_names)
        n_c = len(result.collector_names)
        assert result.adversary_payoffs.shape == (n_a, n_c)
        assert result.collector_payoffs.shape == (n_a, n_c)

    def test_mixtures_are_distributions(self, result):
        assert result.adversary_mixture.sum() == pytest.approx(1.0)
        assert result.collector_mixture.sum() == pytest.approx(1.0)
        assert (result.adversary_mixture >= -1e-12).all()
        assert (result.collector_mixture >= -1e-12).all()

    def test_adversary_payoffs_nonnegative(self, result):
        assert (result.adversary_payoffs >= 0.0).all()

    def test_collector_pays_at_least_the_poison(self, result):
        # Collector payoff = -poison - overhead <= -poison.
        assert (
            result.collector_payoffs <= -result.adversary_payoffs + 1e-12
        ).all()

    def test_extreme_adversary_zeroed_by_trimming_collectors(self, result):
        i = result.adversary_names.index("extreme@0.99")
        j = result.collector_names.index("titfortat")
        assert result.adversary_payoffs[i, j] == pytest.approx(0.0, abs=0.01)

    def test_extreme_adversary_survives_ostrich(self, result):
        i = result.adversary_names.index("extreme@0.99")
        j = result.collector_names.index("ostrich")
        assert result.adversary_payoffs[i, j] > 0.15

    def test_just_below_exploits_static(self, result):
        i = result.adversary_names.index("just-below")
        j = result.collector_names.index("static")
        assert result.adversary_payoffs[i, j] > 0.1

    def test_empirical_equilibrium_is_adaptive(self, result):
        # The headline: the minimax solution concentrates on the Elastic
        # scheme — the paper's interactive equilibrium found empirically.
        assert result.best_collector() == "elastic0.5"

    def test_game_value_consistent_with_matrix(self, result):
        value = float(
            result.adversary_mixture
            @ result.adversary_payoffs
            @ result.collector_mixture
        )
        assert value == pytest.approx(result.game_value, abs=1e-6)
