"""Byte-equality of the sweep-runtime ports of Table IV and Fig. 9.

``run_cost_analysis`` and ``run_ldp_experiment`` used to be hand-rolled
repetition loops that bypassed the PR-1 sweep runtime; they now expand
to :class:`~repro.runtime.spec.TaskSpec` cells played through
:class:`~repro.runtime.runner.SweepRunner`.  These tests pin the port to
*reference copies of the deleted loops*: every float of every cell must
be byte-identical, for any worker count, and with the result store in
the loop.
"""

import numpy as np
import pytest

from repro.experiments import (
    CostConfig,
    LDPConfig,
    run_cost_analysis,
    run_ldp_experiment,
)
from repro.experiments.cost import cost_specs, roundwise_cost
from repro.experiments.ldp_experiment import (
    _emf_mse,
    _trimming_scheme_mse,
    ldp_specs,
)
from repro.runtime import ResultStore, SweepRunner


def _reference_cost_rows(config):
    """The pre-port Table IV loop, verbatim."""
    rows = []
    for n in config.round_numbers:
        rows.append(
            (
                int(n),
                roundwise_cost(config.t_th, config.k_high, int(n), config.rule),
                roundwise_cost(config.t_th, config.k_low, int(n), config.rule),
            )
        )
    return rows


def _reference_ldp_cells(config):
    """The pre-port Fig. 9 triple loop, verbatim."""
    schemes = ("titfortat", "elastic0.1", "elastic0.5", "emf")
    cells = []
    for ratio in config.attack_ratios:
        for epsilon in config.epsilons:
            per_scheme = {s: [] for s in schemes}
            for rep in range(config.repetitions):
                rep_seed = (
                    config.seed
                    + 100_000 * rep
                    + int(epsilon * 1000)
                    + int(ratio * 100)
                )
                for scheme in schemes:
                    if scheme == "emf":
                        per_scheme[scheme].append(
                            _emf_mse(
                                epsilon,
                                ratio,
                                rep_seed,
                                n_users=config.n_users,
                                rounds=config.rounds,
                            )
                        )
                    else:
                        per_scheme[scheme].append(
                            _trimming_scheme_mse(
                                scheme,
                                epsilon,
                                ratio,
                                rep_seed,
                                n_users=config.n_users,
                                rounds=config.rounds,
                                t_th=config.t_th,
                                redundancy=config.redundancy,
                                reference_size=config.reference_size,
                            )
                        )
            for scheme in schemes:
                cells.append(
                    (
                        scheme,
                        float(epsilon),
                        float(ratio),
                        float(np.mean(per_scheme[scheme])),
                    )
                )
    return cells


class TestSchemeSeed:
    def test_stable_across_interpreters(self):
        """CRC32, not hash(): the value is a platform-independent constant."""
        from repro.experiments.classifiers import _scheme_seed

        assert _scheme_seed(0, "baseline0.9") == _scheme_seed(0, "baseline0.9")
        # pin the digest so any change to the derivation is a loud failure
        import zlib

        for scheme in ("ostrich", "baseline0.9", "titfortat", "elastic0.5"):
            assert _scheme_seed(3, scheme) == 3 + zlib.crc32(
                scheme.encode()
            ) % 911


SMALL_LDP = LDPConfig(
    epsilons=(1.0, 3.0),
    attack_ratios=(0.05, 0.2),
    n_users=200,
    rounds=2,
    repetitions=2,
    reference_size=400,
)


class TestCostPort:
    def test_byte_equal_to_reference_loop(self):
        config = CostConfig()
        rows = run_cost_analysis(config)
        reference = _reference_cost_rows(config)
        assert [
            (r.round_no, r.cost_k_high, r.cost_k_low) for r in rows
        ] == reference

    def test_cell_count_and_grid_order(self):
        config = CostConfig(round_numbers=(5, 10))
        specs = cost_specs(config)
        assert [s.tags["round_no"] for s in specs] == [5, 5, 10, 10]
        assert [s.tags["which"] for s in specs] == [
            "k_high", "k_low", "k_high", "k_low",
        ]

    def test_store_round_trip(self, tmp_path):
        config = CostConfig(round_numbers=(5, 10, 15))
        store = ResultStore(tmp_path)
        cold = run_cost_analysis(config, store=store)
        runner = SweepRunner(store=store)
        warm = runner.run(cost_specs(config))
        assert runner.last_stats.played == 0
        assert cold == run_cost_analysis(config, store=store)
        assert len(warm) == 6


@pytest.mark.slow
class TestLDPPort:
    def test_byte_equal_to_reference_loop(self):
        cells = run_ldp_experiment(SMALL_LDP)
        reference = _reference_ldp_cells(SMALL_LDP)
        assert [
            (c.scheme, c.epsilon, c.attack_ratio, c.mse) for c in cells
        ] == reference

    def test_grid_order_matches_plot_order(self):
        specs = ldp_specs(SMALL_LDP)
        assert len(specs) == 2 * 2 * 4 * 2
        assert [s.tags["scheme"] for s in specs[:8]] == [
            "titfortat", "titfortat",
            "elastic0.1", "elastic0.1",
            "elastic0.5", "elastic0.5",
            "emf", "emf",
        ]

    def test_warm_cache_replays_without_execution(self, tmp_path):
        store = ResultStore(tmp_path)
        cold = run_ldp_experiment(SMALL_LDP, store=store)
        runner = SweepRunner(store=store)
        runner.run(ldp_specs(SMALL_LDP))
        assert runner.last_stats.played == 0
        assert run_ldp_experiment(SMALL_LDP, store=store) == cold

    def test_growing_the_sweep_reuses_stored_cells(self, tmp_path):
        """Cells key on the scalars they consume, not the whole config:
        adding repetitions (or grid values) must not invalidate stored
        cells."""
        import dataclasses

        store = ResultStore(tmp_path)
        run_ldp_experiment(SMALL_LDP, store=store)
        stored = len(ldp_specs(SMALL_LDP))

        grown = dataclasses.replace(SMALL_LDP, repetitions=3)
        runner = SweepRunner(store=store)
        runner.run(ldp_specs(grown))
        assert runner.last_stats.cached == stored
        assert runner.last_stats.played == len(ldp_specs(grown)) - stored
