"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import ARTIFACTS, main


class TestList:
    def test_list_prints_all_artifacts(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ARTIFACTS:
            assert name in out


class TestRun:
    def test_table1(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "hard" in out

    def test_table2_quick_uses_advertised_values(self, capsys):
        assert main(["run", "table2"]) == 0
        out = capsys.readouterr().out
        assert "CONTROL" in out and "1048575" in out

    def test_table4(self, capsys):
        assert main(["run", "table4"]) == 0
        out = capsys.readouterr().out
        assert "Round_no" in out
        assert "k=0.5" in out

    @pytest.mark.slow
    def test_fig9_quick(self, capsys):
        assert main(["run", "fig9"]) == 0
        out = capsys.readouterr().out
        assert "emf" in out and "titfortat" in out

    def test_sweep_runs_grid(self, capsys):
        assert main([
            "sweep",
            "--schemes", "titfortat,elastic0.5",
            "--ratios", "0.1,0.4",
            "--reps", "2",
            "--rounds", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "8 games" in out
        assert "titfortat" in out and "elastic0.5" in out
        assert "0.4" in out

    @pytest.mark.slow
    def test_sweep_workers_output_matches_serial(self, capsys):
        argv = [
            "sweep",
            "--schemes", "titfortat",
            "--ratios", "0.2",
            "--reps", "2",
            "--rounds", "3",
        ]
        assert main(argv) == 0
        serial = capsys.readouterr().out.replace("workers=1", "workers=*")
        assert main(argv + ["--workers", "2"]) == 0
        parallel = capsys.readouterr().out.replace("workers=2", "workers=*")
        assert serial == parallel

    def test_sweep_rejects_bad_ratio_list(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--ratios", "abc"])

    @pytest.mark.parametrize(
        "argv",
        [
            ["sweep", "--schemes", "bogus"],
            ["sweep", "--datasets", "bogus"],
            ["sweep", "--workers", "0"],
        ],
    )
    def test_sweep_reports_input_errors_cleanly(self, argv, capsys):
        assert main(argv) == 2
        out = capsys.readouterr().out
        assert out.startswith("repro sweep: error:")

    def test_unknown_artifact_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "fig99"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])


class TestScenarioCLI:
    def test_scenario_list_names_everything(self, capsys):
        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        for name in ARTIFACTS:
            assert name in out

    def test_run_then_warm_run_byte_identical_zero_games(self, tmp_path, capsys):
        argv = ["scenario", "run", "table4", "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        cold = capsys.readouterr()
        assert "0 loaded from store" in cold.err
        assert main(argv) == 0
        warm = capsys.readouterr()
        assert warm.out == cold.out
        assert "0 played" in warm.err

    def test_run_report_round_trip(self, tmp_path, capsys):
        assert main(
            ["scenario", "run", "table4", "--cache-dir", str(tmp_path)]
        ) == 0
        run_out = capsys.readouterr().out
        assert main(
            ["scenario", "report", "table4", "--cache-dir", str(tmp_path)]
        ) == 0
        report_out = capsys.readouterr().out
        assert report_out == run_out

    def test_stats_json_reports_cache_behaviour(self, tmp_path, capsys):
        import json

        cache = tmp_path / "cache"
        cold_path = tmp_path / "cold.json"
        warm_path = tmp_path / "warm.json"
        argv = ["scenario", "run", "table4", "--cache-dir", str(cache)]
        assert main(argv + ["--stats-json", str(cold_path)]) == 0
        assert main(argv + ["--stats-json", str(warm_path)]) == 0
        capsys.readouterr()

        cold = json.loads(cold_path.read_text())
        warm = json.loads(warm_path.read_text())
        assert cold["format"] == 1
        (cold_entry,) = cold["scenarios"]
        (warm_entry,) = warm["scenarios"]
        assert cold_entry["scenario"] == "table4"
        assert cold_entry["played"] == cold_entry["total"] > 0
        assert cold_entry["cached"] == 0
        assert warm_entry["played"] == 0
        assert warm_entry["cached"] == warm_entry["total"]
        assert warm_entry["seconds"] >= 0.0
        assert warm["total_seconds"] >= 0.0

    def test_stats_json_works_without_store(self, tmp_path, capsys):
        import json

        path = tmp_path / "stats.json"
        assert main(
            [
                "scenario", "run", "table4", "--no-cache",
                "--stats-json", str(path),
            ]
        ) == 0
        capsys.readouterr()
        (entry,) = json.loads(path.read_text())["scenarios"]
        assert entry["played"] == entry["total"] > 0
        assert entry["cached"] == 0

    def test_report_before_run_fails_cleanly(self, tmp_path, capsys):
        assert main(
            ["scenario", "report", "table4", "--cache-dir", str(tmp_path)]
        ) == 2
        assert "no stored run" in capsys.readouterr().out

    def test_scenario_output_matches_legacy_run(self, tmp_path, capsys):
        assert main(["run", "table1"]) == 0
        legacy = capsys.readouterr().out
        assert main(
            ["scenario", "run", "table1", "--cache-dir", str(tmp_path)]
        ) == 0
        assert capsys.readouterr().out == legacy

    def test_no_cache_runs_without_store(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["scenario", "run", "table4", "--no-cache"]) == 0
        captured = capsys.readouterr()
        assert "Table IV" in captured.out
        assert captured.err == ""  # no store, no stats line
        assert not (tmp_path / ".repro-cache").exists()

    def test_resume_with_no_cache_is_an_error(self, tmp_path, capsys):
        assert main(
            ["scenario", "run", "table4", "--no-cache", "--resume"]
        ) == 2
        assert "contradictory" in capsys.readouterr().out

    def test_param_override(self, tmp_path, capsys):
        assert main(
            [
                "scenario", "run", "table3",
                "--cache-dir", str(tmp_path),
                "--param", "repetitions=1",
                "-p", "p_values=0.0,1.0",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "Table III" in out

    def test_param_with_all_rejected_up_front(self, tmp_path, capsys):
        assert main(
            [
                "scenario", "run", "all",
                "--cache-dir", str(tmp_path),
                "--param", "repetitions=1",
            ]
        ) == 2
        out = capsys.readouterr().out
        assert "cannot be combined with 'all'" in out
        assert "Table" not in out  # nothing ran before the rejection

    def test_bad_param_fails_cleanly(self, tmp_path, capsys):
        assert main(
            [
                "scenario", "run", "table4",
                "--cache-dir", str(tmp_path),
                "--param", "bogus=1",
            ]
        ) == 2
        assert "error" in capsys.readouterr().out

    def test_unknown_scenario_fails_cleanly(self, tmp_path, capsys):
        assert main(
            ["scenario", "run", "fig99", "--cache-dir", str(tmp_path)]
        ) == 2
        assert "unknown scenario" in capsys.readouterr().out

    def test_cache_dir_env_default(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-cache"))
        assert main(["scenario", "run", "table4"]) == 0
        capsys.readouterr()
        assert (tmp_path / "env-cache" / "manifests" / "table4.json").exists()
