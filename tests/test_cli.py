"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import ARTIFACTS, main


class TestList:
    def test_list_prints_all_artifacts(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ARTIFACTS:
            assert name in out


class TestRun:
    def test_table1(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "hard" in out

    def test_table2_quick_uses_advertised_values(self, capsys):
        assert main(["run", "table2"]) == 0
        out = capsys.readouterr().out
        assert "CONTROL" in out and "1048575" in out

    def test_table4(self, capsys):
        assert main(["run", "table4"]) == 0
        out = capsys.readouterr().out
        assert "Round_no" in out
        assert "k=0.5" in out

    @pytest.mark.slow
    def test_fig9_quick(self, capsys):
        assert main(["run", "fig9"]) == 0
        out = capsys.readouterr().out
        assert "emf" in out and "titfortat" in out

    def test_sweep_runs_grid(self, capsys):
        assert main([
            "sweep",
            "--schemes", "titfortat,elastic0.5",
            "--ratios", "0.1,0.4",
            "--reps", "2",
            "--rounds", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "8 games" in out
        assert "titfortat" in out and "elastic0.5" in out
        assert "0.4" in out

    @pytest.mark.slow
    def test_sweep_workers_output_matches_serial(self, capsys):
        argv = [
            "sweep",
            "--schemes", "titfortat",
            "--ratios", "0.2",
            "--reps", "2",
            "--rounds", "3",
        ]
        assert main(argv) == 0
        serial = capsys.readouterr().out.replace("workers=1", "workers=*")
        assert main(argv + ["--workers", "2"]) == 0
        parallel = capsys.readouterr().out.replace("workers=2", "workers=*")
        assert serial == parallel

    def test_sweep_rejects_bad_ratio_list(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--ratios", "abc"])

    @pytest.mark.parametrize(
        "argv",
        [
            ["sweep", "--schemes", "bogus"],
            ["sweep", "--datasets", "bogus"],
            ["sweep", "--workers", "0"],
        ],
    )
    def test_sweep_reports_input_errors_cleanly(self, argv, capsys):
        assert main(argv) == 2
        out = capsys.readouterr().out
        assert out.startswith("repro sweep: error:")

    def test_unknown_artifact_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "fig99"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])
