"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import ARTIFACTS, main


class TestList:
    def test_list_prints_all_artifacts(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ARTIFACTS:
            assert name in out


class TestRun:
    def test_table1(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "hard" in out

    def test_table2_quick_uses_advertised_values(self, capsys):
        assert main(["run", "table2"]) == 0
        out = capsys.readouterr().out
        assert "CONTROL" in out and "1048575" in out

    def test_table4(self, capsys):
        assert main(["run", "table4"]) == 0
        out = capsys.readouterr().out
        assert "Round_no" in out
        assert "k=0.5" in out

    @pytest.mark.slow
    def test_fig9_quick(self, capsys):
        assert main(["run", "fig9"]) == 0
        out = capsys.readouterr().out
        assert "emf" in out and "titfortat" in out

    def test_unknown_artifact_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "fig99"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])
