"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.datasets import generate_control


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: integration tests playing full collection games"
    )


@pytest.fixture(scope="session")
def control_data():
    """The control-chart dataset (600 x 60) used across integration tests."""
    data, labels = generate_control(seed=7)
    return data, labels


@pytest.fixture(scope="session")
def small_gaussian():
    """A small, well-separated 2-D Gaussian mixture for fast ML tests."""
    rng = np.random.default_rng(0)
    centers = np.array([[0.0, 0.0], [8.0, 8.0], [-8.0, 8.0]])
    rows = [c + rng.normal(0, 1.0, size=(50, 2)) for c in centers]
    data = np.vstack(rows)
    labels = np.repeat(np.arange(3), 50)
    return data, labels


@pytest.fixture()
def rng():
    """A fresh seeded generator per test."""
    return np.random.default_rng(1234)
