"""Smoke tests of the top-level public API."""

import numpy as np

import repro


def test_version():
    assert repro.__version__ == "1.10.0"


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_quickstart_flow(control_data):
    from repro import CollectionGame, make_scheme
    from repro.core.trimming import RadialTrimmer
    from repro.streams import ArrayStream, PoisonInjector

    data, _ = control_data
    collector, adversary = make_scheme("elastic0.5", t_th=0.9)
    game = CollectionGame(
        source=ArrayStream(data, batch_size=100, seed=0),
        collector=collector,
        adversary=adversary,
        injector=PoisonInjector(attack_ratio=0.2, seed=0),
        trimmer=RadialTrimmer(),
        reference=data,
        rounds=10,
    )
    result = game.run()
    assert 0.0 <= result.poison_retained_fraction() <= 1.0
    assert result.retained_data().shape[1] == data.shape[1]


def test_theory_pipeline():
    """The analytical-model objects compose end to end."""
    from repro import (
        CoupledUtilityOscillator,
        PayoffModel,
        RepeatedGameModel,
        build_ultimatum_game,
        solve_stackelberg,
    )

    model = PayoffModel()
    solution = solve_stackelberg(model, grid_size=51)
    assert solution.follower_action <= solution.leader_action

    game = build_ultimatum_game()
    assert game.pure_nash_equilibria() == [(1, 1)]

    repeated = RepeatedGameModel(4.0, 2.0, discount=0.9)
    assert repeated.adversary_complies(0.1, flag_miss_probability=0.2)

    oscillator = CoupledUtilityOscillator(stiffness=1.0, u_adversary0=0.5)
    r = np.linspace(0, 10, 100)
    energy = oscillator.energy(r)
    assert np.ptp(energy) < 1e-9
