"""Tests for repro.streams.source — stream sources."""

import numpy as np
import pytest

from repro.streams import ArrayStream, GeneratorStream


class TestArrayStream:
    def test_batch_shape_2d(self, rng):
        data = rng.normal(size=(50, 4))
        stream = ArrayStream(data, batch_size=10, seed=0)
        batch = stream.next_batch()
        assert batch.shape == (10, 4)

    def test_batch_shape_1d(self, rng):
        stream = ArrayStream(rng.normal(size=50), batch_size=10, seed=0)
        assert stream.next_batch().shape == (10,)

    def test_epoch_covers_dataset_without_replacement(self, rng):
        data = np.arange(40.0)
        stream = ArrayStream(data, batch_size=10, seed=0)
        seen = np.concatenate([stream.next_batch() for _ in range(4)])
        assert sorted(seen.tolist()) == data.tolist()

    def test_reshuffles_on_epoch_boundary(self):
        data = np.arange(20.0)
        stream = ArrayStream(data, batch_size=20, seed=0)
        first = stream.next_batch()
        second = stream.next_batch()
        assert sorted(first.tolist()) == sorted(second.tolist())
        assert not np.array_equal(first, second)  # reshuffled order

    def test_unshuffled_stream_preserves_order(self):
        data = np.arange(30.0)
        stream = ArrayStream(data, batch_size=10, shuffle=False)
        np.testing.assert_array_equal(stream.next_batch(), data[:10])
        np.testing.assert_array_equal(stream.next_batch(), data[10:20])

    def test_reset_restarts_stream(self):
        data = np.arange(30.0)
        stream = ArrayStream(data, batch_size=10, seed=3)
        first = stream.next_batch()
        stream.reset()
        np.testing.assert_array_equal(stream.next_batch(), first)

    def test_batches_are_copies(self):
        data = np.arange(10.0)
        stream = ArrayStream(data, batch_size=5, shuffle=False)
        batch = stream.next_batch()
        batch[:] = -1.0
        assert data[0] == 0.0

    def test_oversized_batch_rejected(self):
        with pytest.raises(ValueError):
            ArrayStream(np.arange(5.0), batch_size=6)

    def test_empty_data_rejected(self):
        with pytest.raises(ValueError):
            ArrayStream(np.array([]), batch_size=1)

    def test_zero_batch_rejected(self):
        with pytest.raises(ValueError):
            ArrayStream(np.arange(5.0), batch_size=0)


class TestGeneratorStream:
    def test_factory_called_with_batch_size(self):
        stream = GeneratorStream(
            lambda rng, n: rng.normal(size=n), batch_size=17, seed=0
        )
        assert stream.next_batch().shape == (17,)

    def test_reset_reproduces_sequence(self):
        stream = GeneratorStream(
            lambda rng, n: rng.normal(size=n), batch_size=5, seed=42
        )
        first = stream.next_batch()
        stream.reset()
        np.testing.assert_array_equal(stream.next_batch(), first)

    def test_factory_size_mismatch_rejected(self):
        stream = GeneratorStream(lambda rng, n: np.zeros(3), batch_size=5)
        with pytest.raises(ValueError):
            stream.next_batch()

    def test_invalid_batch_size_rejected(self):
        with pytest.raises(ValueError):
            GeneratorStream(lambda rng, n: np.zeros(n), batch_size=0)


class TestBatchMutationSafety:
    def test_mutating_returned_batch_does_not_corrupt_dataset(self):
        data = np.arange(30.0)
        backup = data.copy()
        stream = ArrayStream(data, batch_size=10, seed=0)
        batch = stream.next_batch()
        batch[:] = -99.0
        np.testing.assert_array_equal(stream._data, backup)
        stream.reset()
        seen = np.concatenate([stream.next_batch() for _ in range(3)])
        assert sorted(seen.tolist()) == backup.tolist()

    def test_mutating_2d_batch_does_not_corrupt_dataset(self, rng):
        data = rng.normal(size=(40, 3))
        backup = data.copy()
        stream = ArrayStream(data, batch_size=8, seed=1)
        stream.next_batch()[:] = np.inf
        np.testing.assert_array_equal(stream._data, backup)


class TestRepLanes:
    def test_lanes_match_standalone_streams(self, rng):
        data = rng.normal(size=(60, 2))
        seeds = [11, 12, 13]
        lanes = ArrayStream(data, batch_size=25, seed=seeds)
        solos = [ArrayStream(data, batch_size=25, seed=s) for s in seeds]
        assert lanes.lanes == 3
        for _ in range(7):  # crosses epoch boundaries
            stack = lanes.next_batches()
            expected = np.stack([s.next_batch() for s in solos])
            assert stack.tobytes() == expected.tobytes()

    def test_lane_mode_rejects_next_batch(self):
        lanes = ArrayStream(np.arange(20.0), batch_size=5, seed=[0, 1])
        with pytest.raises(RuntimeError, match="rep-lane"):
            lanes.next_batch()

    def test_single_mode_rejects_next_batches(self):
        stream = ArrayStream(np.arange(20.0), batch_size=5, seed=0)
        with pytest.raises(NotImplementedError, match="rep-lane"):
            stream.next_batches()

    def test_lanes_reset(self):
        lanes = ArrayStream(np.arange(50.0), batch_size=10, seed=[3, 4])
        first = lanes.next_batches()
        lanes.reset()
        np.testing.assert_array_equal(first, lanes.next_batches())

    def test_empty_seed_list_rejected(self):
        with pytest.raises(ValueError, match="at least one seed"):
            ArrayStream(np.arange(10.0), batch_size=2, seed=[])

    def test_generator_stream_lanes(self):
        def factory(rng_, size):
            return rng_.normal(size=size)

        lanes = GeneratorStream(factory, batch_size=12, seed=[7, 8])
        solos = [GeneratorStream(factory, batch_size=12, seed=s) for s in (7, 8)]
        for _ in range(3):
            stack = lanes.next_batches()
            expected = np.stack([s.next_batch() for s in solos])
            assert stack.tobytes() == expected.tobytes()
        with pytest.raises(RuntimeError, match="rep-lane"):
            lanes.next_batch()
