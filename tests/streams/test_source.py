"""Tests for repro.streams.source — stream sources."""

import numpy as np
import pytest

from repro.streams import ArrayStream, GeneratorStream


class TestArrayStream:
    def test_batch_shape_2d(self, rng):
        data = rng.normal(size=(50, 4))
        stream = ArrayStream(data, batch_size=10, seed=0)
        batch = stream.next_batch()
        assert batch.shape == (10, 4)

    def test_batch_shape_1d(self, rng):
        stream = ArrayStream(rng.normal(size=50), batch_size=10, seed=0)
        assert stream.next_batch().shape == (10,)

    def test_epoch_covers_dataset_without_replacement(self, rng):
        data = np.arange(40.0)
        stream = ArrayStream(data, batch_size=10, seed=0)
        seen = np.concatenate([stream.next_batch() for _ in range(4)])
        assert sorted(seen.tolist()) == data.tolist()

    def test_reshuffles_on_epoch_boundary(self):
        data = np.arange(20.0)
        stream = ArrayStream(data, batch_size=20, seed=0)
        first = stream.next_batch()
        second = stream.next_batch()
        assert sorted(first.tolist()) == sorted(second.tolist())
        assert not np.array_equal(first, second)  # reshuffled order

    def test_unshuffled_stream_preserves_order(self):
        data = np.arange(30.0)
        stream = ArrayStream(data, batch_size=10, shuffle=False)
        np.testing.assert_array_equal(stream.next_batch(), data[:10])
        np.testing.assert_array_equal(stream.next_batch(), data[10:20])

    def test_reset_restarts_stream(self):
        data = np.arange(30.0)
        stream = ArrayStream(data, batch_size=10, seed=3)
        first = stream.next_batch()
        stream.reset()
        np.testing.assert_array_equal(stream.next_batch(), first)

    def test_batches_are_copies(self):
        data = np.arange(10.0)
        stream = ArrayStream(data, batch_size=5, shuffle=False)
        batch = stream.next_batch()
        batch[:] = -1.0
        assert data[0] == 0.0

    def test_oversized_batch_rejected(self):
        with pytest.raises(ValueError):
            ArrayStream(np.arange(5.0), batch_size=6)

    def test_empty_data_rejected(self):
        with pytest.raises(ValueError):
            ArrayStream(np.array([]), batch_size=1)

    def test_zero_batch_rejected(self):
        with pytest.raises(ValueError):
            ArrayStream(np.arange(5.0), batch_size=0)


class TestGeneratorStream:
    def test_factory_called_with_batch_size(self):
        stream = GeneratorStream(
            lambda rng, n: rng.normal(size=n), batch_size=17, seed=0
        )
        assert stream.next_batch().shape == (17,)

    def test_reset_reproduces_sequence(self):
        stream = GeneratorStream(
            lambda rng, n: rng.normal(size=n), batch_size=5, seed=42
        )
        first = stream.next_batch()
        stream.reset()
        np.testing.assert_array_equal(stream.next_batch(), first)

    def test_factory_size_mismatch_rejected(self):
        stream = GeneratorStream(lambda rng, n: np.zeros(3), batch_size=5)
        with pytest.raises(ValueError):
            stream.next_batch()

    def test_invalid_batch_size_rejected(self):
        with pytest.raises(ValueError):
            GeneratorStream(lambda rng, n: np.zeros(n), batch_size=0)
