"""Tests for repro.streams.collector — the standalone collector runtime."""

import numpy as np
import pytest

from repro.core.strategies import (
    ElasticCollector,
    MirrorCollector,
    StaticCollector,
)
from repro.core.trimming import ValueTrimmer
from repro.streams.collector import DataCollector


@pytest.fixture()
def reference(rng):
    return rng.normal(size=5000)


class TestDataCollector:
    def test_collect_trims_reference_tail(self, reference, rng):
        dc = DataCollector(StaticCollector(0.9), ValueTrimmer(), reference)
        batch = rng.normal(size=1000)
        kept = dc.collect(batch)
        cutoff = np.quantile(reference, 0.9)
        assert kept.max() <= cutoff
        assert dc.rounds_collected == 1

    def test_poisoned_batch_cleaned(self, reference, rng):
        dc = DataCollector(StaticCollector(0.95), ValueTrimmer(), reference)
        batch = np.concatenate([rng.normal(size=500), np.full(100, 50.0)])
        kept = dc.collect(batch)
        assert kept.max() < 10.0
        assert kept.size >= 450

    def test_elastic_uses_quality_feedback(self, reference, rng):
        dc = DataCollector(ElasticCollector(0.9, 0.5), ValueTrimmer(), reference)
        # Clean round: next threshold relaxes toward the soft endpoint.
        dc.collect(rng.normal(size=800))
        relaxed = dc.current_threshold
        dc.reset()
        # Heavily poisoned round: next threshold hardens.
        dc.collect(np.concatenate([rng.normal(size=800), np.full(700, 9.0)]))
        hardened = dc.current_threshold
        assert hardened < relaxed

    def test_mirror_punishes_bad_quality_round(self, reference, rng):
        dc = DataCollector(
            MirrorCollector(0.9),
            ValueTrimmer(),
            reference,
            betrayal_quality=0.3,
        )
        dc.collect(np.concatenate([rng.normal(size=300), np.full(400, 9.0)]))
        assert dc.current_threshold == pytest.approx(0.87)
        dc.collect(rng.normal(size=300))
        assert dc.current_threshold == pytest.approx(0.91)

    def test_current_threshold_is_side_effect_free(self, reference, rng):
        """Regression: property reads must not advance stateful strategies.

        ``current_threshold`` used to call ``strategy.react`` on every
        read, double-advancing e.g. the Elastic collector's ``_current``
        before ``collect`` ran.  Reading it any number of times must
        leave the retained data identical to never reading it.
        """
        batches = [
            np.concatenate([rng.normal(size=500), np.full(80, 6.0)])
            for _ in range(4)
        ]

        watched = DataCollector(
            ElasticCollector(0.9, 0.5), ValueTrimmer(), reference
        )
        unwatched = DataCollector(
            ElasticCollector(0.9, 0.5), ValueTrimmer(), reference
        )
        for batch in batches:
            for _ in range(5):  # hammer the property between rounds
                watched.current_threshold
            kept_watched = watched.collect(batch)
            kept_unwatched = unwatched.collect(batch)
            np.testing.assert_array_equal(kept_watched, kept_unwatched)

    def test_current_threshold_reads_are_stable_within_a_round(
        self, reference, rng
    ):
        dc = DataCollector(ElasticCollector(0.9, 0.5), ValueTrimmer(), reference)
        dc.collect(np.concatenate([rng.normal(size=400), np.full(200, 8.0)]))
        announced = dc.current_threshold
        # Repeated reads return the same pending value, not a re-reaction.
        assert all(dc.current_threshold == announced for _ in range(5))

    def test_reset_restores_initial_state(self, reference, rng):
        dc = DataCollector(StaticCollector(0.9), ValueTrimmer(), reference)
        dc.collect(rng.normal(size=100))
        dc.reset()
        assert dc.rounds_collected == 0
        assert dc.current_threshold == pytest.approx(0.9)

    def test_empty_batch_rejected(self, reference):
        dc = DataCollector(StaticCollector(0.9), ValueTrimmer(), reference)
        with pytest.raises(ValueError):
            dc.collect(np.array([]))

    def test_invalid_betrayal_quality_rejected(self, reference):
        with pytest.raises(ValueError):
            DataCollector(
                StaticCollector(0.9),
                ValueTrimmer(),
                reference,
                betrayal_quality=2.0,
            )
