"""Tests for repro.streams.injection — poison materialization."""

import numpy as np
import pytest

from repro.streams import PoisonInjector


class TestPoisonCount:
    def test_rounding(self):
        assert PoisonInjector(0.2).poison_count(100) == 20
        assert PoisonInjector(0.25).poison_count(10) == 2  # round(2.5) banker's
        assert PoisonInjector(0.0).poison_count(100) == 0

    def test_negative_ratio_rejected(self):
        with pytest.raises(ValueError):
            PoisonInjector(-0.1)


class TestScalarInjection:
    def test_positions_at_quantile(self, rng):
        benign = rng.normal(size=1000)
        inj = PoisonInjector(0.1, jitter=0.0, seed=0)
        poison = inj.materialize(benign, 0.9)
        assert poison.shape == (100,)
        np.testing.assert_allclose(poison, np.quantile(benign, 0.9))

    def test_jitter_band(self, rng):
        benign = np.sort(rng.normal(size=1000))
        inj = PoisonInjector(0.1, jitter=0.05, seed=0)
        poison = inj.materialize(benign, 0.9)
        lo = np.quantile(benign, 0.9)
        hi = np.quantile(benign, 0.95)
        assert (poison >= lo - 1e-12).all() and (poison <= hi + 1e-12).all()

    def test_zero_ratio_returns_empty(self, rng):
        inj = PoisonInjector(0.0)
        assert inj.materialize(rng.normal(size=50), 0.9).shape == (0,)

    def test_reference_calibration_overrides_batch(self, rng):
        reference = rng.normal(0.0, 1.0, size=10_000)
        inj = PoisonInjector(0.1, jitter=0.0, seed=0).fit_reference(reference)
        # A weird batch no longer matters: positions come from the reference.
        batch = rng.normal(100.0, 1.0, size=100)
        poison = inj.materialize(batch, 0.9)
        np.testing.assert_allclose(poison, np.quantile(reference, 0.9))


class TestMultivariateInjection:
    def test_corner_mode_per_feature_quantiles(self, rng):
        benign = rng.normal(size=(500, 3))
        inj = PoisonInjector(0.1, jitter=0.0, mode="quantile", seed=0)
        poison = inj.materialize(benign, 0.99)
        assert poison.shape == (50, 3)
        np.testing.assert_allclose(
            poison[0], np.quantile(benign, 0.99, axis=0)
        )

    def test_radial_mode_matches_score_quantile(self, rng):
        benign = rng.normal(size=(1000, 4))
        inj = PoisonInjector(0.1, jitter=0.0, mode="radial", seed=0)
        poison = inj.materialize(benign, 0.95)
        center = np.median(benign, axis=0)
        scores = np.linalg.norm(benign - center, axis=1)
        target = np.quantile(scores, 0.95)
        dists = np.linalg.norm(poison - center, axis=1)
        np.testing.assert_allclose(dists, target, rtol=1e-9)

    def test_radial_poison_is_colluding(self, rng):
        # All poison lies along one ray: pairwise directions are parallel.
        benign = rng.normal(size=(500, 5))
        inj = PoisonInjector(0.2, jitter=0.0, mode="radial", seed=0)
        poison = inj.materialize(benign, 0.9)
        center = np.median(benign, axis=0)
        units = (poison - center) / np.linalg.norm(
            poison - center, axis=1, keepdims=True
        )
        assert np.allclose(units, units[0])

    def test_radial_reference_calibration(self, rng):
        reference = rng.normal(size=(5000, 3))
        inj = PoisonInjector(0.1, jitter=0.0, mode="radial", seed=0)
        inj.fit_reference(reference)
        batch = rng.normal(10.0, 1.0, size=(100, 3))
        poison = inj.materialize(batch, 0.99)
        ref_center = np.median(reference, axis=0)
        ref_scores = np.linalg.norm(reference - ref_center, axis=1)
        dists = np.linalg.norm(poison - ref_center, axis=1)
        np.testing.assert_allclose(dists, np.quantile(ref_scores, 0.99))

    def test_higher_percentile_is_farther(self, rng):
        benign = rng.normal(size=(1000, 4))
        inj = PoisonInjector(0.05, jitter=0.0, mode="radial", seed=0)
        center = np.median(benign, axis=0)
        near = np.linalg.norm(inj.materialize(benign, 0.5) - center, axis=1)
        far = np.linalg.norm(inj.materialize(benign, 0.99) - center, axis=1)
        assert far.mean() > near.mean()

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            PoisonInjector(0.1, mode="diagonal")

    def test_3d_batch_rejected(self, rng):
        inj = PoisonInjector(0.1)
        with pytest.raises(ValueError):
            inj.materialize(rng.normal(size=(2, 2, 2)), 0.9)

    def test_empty_reference_rejected(self):
        with pytest.raises(ValueError):
            PoisonInjector(0.1).fit_reference(np.array([]))
