"""Tests for repro.streams.board — the public board."""

import numpy as np
import pytest

from repro.core.strategies.base import RoundObservation
from repro.streams import BoardEntry, PublicBoard


def _entry(index, retained, n_collected, n_poison_injected=0, n_poison_retained=0):
    return BoardEntry(
        observation=RoundObservation(
            index=index,
            trim_percentile=0.9,
            injection_percentile=None,
            quality=0.0,
            observed_poison_ratio=0.0,
            betrayal=False,
        ),
        retained=np.asarray(retained, dtype=float),
        n_collected=n_collected,
        n_poison_injected=n_poison_injected,
        n_poison_retained=n_poison_retained,
    )


class TestPublicBoard:
    def test_record_and_len(self):
        board = PublicBoard()
        board.record(_entry(1, np.zeros((5, 2)), 6))
        assert len(board) == 1
        assert board.last.n_collected == 6

    def test_out_of_order_rejected(self):
        board = PublicBoard()
        with pytest.raises(ValueError):
            board.record(_entry(2, np.zeros((5, 2)), 6))

    def test_empty_board_has_no_last(self):
        assert PublicBoard().last is None

    def test_retained_data_concatenates(self):
        board = PublicBoard()
        board.record(_entry(1, np.ones((3, 2)), 3))
        board.record(_entry(2, 2 * np.ones((4, 2)), 4))
        data = board.retained_data()
        assert data.shape == (7, 2)
        assert data[:3].sum() == 6.0

    def test_retained_data_empty_board_raises(self):
        with pytest.raises(ValueError):
            PublicBoard().retained_data()

    def test_poison_retained_fraction(self):
        board = PublicBoard()
        board.record(_entry(1, np.zeros((8, 1)), 10, 4, 2))
        board.record(_entry(2, np.zeros((12, 1)), 14, 4, 4))
        assert board.poison_retained_fraction() == pytest.approx(6 / 20)

    def test_trimmed_fraction(self):
        board = PublicBoard()
        board.record(_entry(1, np.zeros((8, 1)), 10))
        board.record(_entry(2, np.zeros((6, 1)), 10))
        assert board.trimmed_fraction() == pytest.approx(1 - 14 / 20)

    def test_observations_in_order(self):
        board = PublicBoard()
        board.record(_entry(1, np.zeros((1, 1)), 1))
        board.record(_entry(2, np.zeros((1, 1)), 1))
        assert [o.index for o in board.observations] == [1, 2]

    def test_fractions_of_empty_board_are_zero(self):
        board = PublicBoard()
        assert board.poison_retained_fraction() == 0.0
        assert board.trimmed_fraction() == 0.0

class TestBoardEntryCounts:
    def test_n_retained_derived_from_retained(self):
        entry = _entry(1, np.zeros((5, 2)), 6)
        assert entry.n_retained == 5

    def test_explicit_n_retained_preserved(self):
        entry = BoardEntry(
            observation=_entry(1, np.zeros((1, 1)), 1).observation,
            retained=None,
            n_collected=10,
            n_poison_injected=2,
            n_poison_retained=1,
            n_retained=7,
        )
        assert entry.n_retained == 7
        assert entry.retained is None

    def test_lean_entry_without_count_rejected(self):
        with pytest.raises(ValueError):
            BoardEntry(
                observation=_entry(1, np.zeros((1, 1)), 1).observation,
                retained=None,
                n_collected=10,
                n_poison_injected=0,
                n_poison_retained=0,
            )


class TestLeanBoard:
    def test_record_drops_retained_payload(self):
        board = PublicBoard(store_retained=False)
        board.record(_entry(1, np.ones((5, 2)), 6))
        assert board.entries[0].retained is None
        assert board.entries[0].n_retained == 5

    def test_fractions_match_full_board(self):
        full = PublicBoard()
        lean = PublicBoard(store_retained=False)
        for board in (full, lean):
            board.record(_entry(1, np.zeros((8, 1)), 10, 4, 2))
            board.record(_entry(2, np.zeros((12, 1)), 14, 4, 4))
        assert lean.poison_retained_fraction() == full.poison_retained_fraction()
        assert lean.trimmed_fraction() == full.trimmed_fraction()

    def test_retained_data_raises_with_clear_message(self):
        board = PublicBoard(store_retained=False)
        board.record(_entry(1, np.ones((3, 2)), 3))
        with pytest.raises(ValueError, match="lean"):
            board.retained_data()

    def test_observations_still_available(self):
        board = PublicBoard(store_retained=False)
        board.record(_entry(1, np.zeros((1, 1)), 1))
        board.record(_entry(2, np.zeros((1, 1)), 1))
        assert [o.index for o in board.observations] == [1, 2]

    def test_prefilled_entries_counted(self):
        entries = [_entry(1, np.zeros((8, 1)), 10, 4, 2)]
        board = PublicBoard(entries=entries)
        assert board.poison_retained_fraction() == pytest.approx(2 / 8)
        assert board.trimmed_fraction() == pytest.approx(1 - 8 / 10)
