"""Tests for repro.streams.board — the public board."""

import numpy as np
import pytest

from repro.core.strategies.base import RoundObservation
from repro.streams import BoardEntry, PublicBoard


def _entry(index, retained, n_collected, n_poison_injected=0, n_poison_retained=0):
    return BoardEntry(
        observation=RoundObservation(
            index=index,
            trim_percentile=0.9,
            injection_percentile=None,
            quality=0.0,
            observed_poison_ratio=0.0,
            betrayal=False,
        ),
        retained=np.asarray(retained, dtype=float),
        n_collected=n_collected,
        n_poison_injected=n_poison_injected,
        n_poison_retained=n_poison_retained,
    )


class TestPublicBoard:
    def test_record_and_len(self):
        board = PublicBoard()
        board.record(_entry(1, np.zeros((5, 2)), 6))
        assert len(board) == 1
        assert board.last.n_collected == 6

    def test_out_of_order_rejected(self):
        board = PublicBoard()
        with pytest.raises(ValueError):
            board.record(_entry(2, np.zeros((5, 2)), 6))

    def test_empty_board_has_no_last(self):
        assert PublicBoard().last is None

    def test_retained_data_concatenates(self):
        board = PublicBoard()
        board.record(_entry(1, np.ones((3, 2)), 3))
        board.record(_entry(2, 2 * np.ones((4, 2)), 4))
        data = board.retained_data()
        assert data.shape == (7, 2)
        assert data[:3].sum() == 6.0

    def test_retained_data_empty_board_raises(self):
        with pytest.raises(ValueError):
            PublicBoard().retained_data()

    def test_poison_retained_fraction(self):
        board = PublicBoard()
        board.record(_entry(1, np.zeros((8, 1)), 10, 4, 2))
        board.record(_entry(2, np.zeros((12, 1)), 14, 4, 4))
        assert board.poison_retained_fraction() == pytest.approx(6 / 20)

    def test_trimmed_fraction(self):
        board = PublicBoard()
        board.record(_entry(1, np.zeros((8, 1)), 10))
        board.record(_entry(2, np.zeros((6, 1)), 10))
        assert board.trimmed_fraction() == pytest.approx(1 - 14 / 20)

    def test_observations_in_order(self):
        board = PublicBoard()
        board.record(_entry(1, np.zeros((1, 1)), 1))
        board.record(_entry(2, np.zeros((1, 1)), 1))
        assert [o.index for o in board.observations] == [1, 2]

    def test_fractions_of_empty_board_are_zero(self):
        board = PublicBoard()
        assert board.poison_retained_fraction() == 0.0
        assert board.trimmed_fraction() == 0.0

class TestBoardEntryCounts:
    def test_n_retained_derived_from_retained(self):
        entry = _entry(1, np.zeros((5, 2)), 6)
        assert entry.n_retained == 5

    def test_explicit_n_retained_preserved(self):
        entry = BoardEntry(
            observation=_entry(1, np.zeros((1, 1)), 1).observation,
            retained=None,
            n_collected=10,
            n_poison_injected=2,
            n_poison_retained=1,
            n_retained=7,
        )
        assert entry.n_retained == 7
        assert entry.retained is None

    def test_lean_entry_without_count_rejected(self):
        with pytest.raises(ValueError):
            BoardEntry(
                observation=_entry(1, np.zeros((1, 1)), 1).observation,
                retained=None,
                n_collected=10,
                n_poison_injected=0,
                n_poison_retained=0,
            )


class TestLeanBoard:
    def test_record_drops_retained_payload(self):
        board = PublicBoard(store_retained=False)
        board.record(_entry(1, np.ones((5, 2)), 6))
        assert board.entries[0].retained is None
        assert board.entries[0].n_retained == 5

    def test_fractions_match_full_board(self):
        full = PublicBoard()
        lean = PublicBoard(store_retained=False)
        for board in (full, lean):
            board.record(_entry(1, np.zeros((8, 1)), 10, 4, 2))
            board.record(_entry(2, np.zeros((12, 1)), 14, 4, 4))
        assert lean.poison_retained_fraction() == full.poison_retained_fraction()
        assert lean.trimmed_fraction() == full.trimmed_fraction()

    def test_retained_data_raises_with_clear_message(self):
        board = PublicBoard(store_retained=False)
        board.record(_entry(1, np.ones((3, 2)), 3))
        with pytest.raises(ValueError, match="lean"):
            board.retained_data()

    def test_observations_still_available(self):
        board = PublicBoard(store_retained=False)
        board.record(_entry(1, np.zeros((1, 1)), 1))
        board.record(_entry(2, np.zeros((1, 1)), 1))
        assert [o.index for o in board.observations] == [1, 2]

    def test_prefilled_entries_counted(self):
        entries = [_entry(1, np.zeros((8, 1)), 10, 4, 2)]
        board = PublicBoard(entries=entries)
        assert board.poison_retained_fraction() == pytest.approx(2 / 8)
        assert board.trimmed_fraction() == pytest.approx(1 - 8 / 10)


class TestBoardColumns:
    def _two_round_board(self):
        board = PublicBoard()
        board.record(_entry(1, np.zeros((8, 1)), 10, 4, 2))
        board.record(_entry(2, np.zeros((12, 1)), 14, 4, 4))
        return board

    def test_columns_mirror_entries(self):
        board = self._two_round_board()
        cols = board.columns
        assert cols.rounds == 2
        np.testing.assert_array_equal(cols.index, [1, 2])
        np.testing.assert_array_equal(cols.n_collected, [10, 14])
        np.testing.assert_array_equal(cols.n_poison_retained, [2, 4])
        np.testing.assert_array_equal(cols.n_retained, [8, 12])

    def test_columns_cache_invalidated_on_record(self):
        board = self._two_round_board()
        assert board.columns.rounds == 2
        board.record(_entry(3, np.zeros((5, 1)), 9))
        assert board.columns.rounds == 3

    def test_columns_are_read_only(self):
        cols = self._two_round_board().columns
        with pytest.raises(ValueError):
            cols.n_collected[0] = 99

    def test_from_columns_round_trips(self):
        source = self._two_round_board()
        rebuilt = PublicBoard.from_columns(source.columns, store_retained=False)
        assert len(rebuilt) == 2
        assert rebuilt.poison_retained_fraction() == source.poison_retained_fraction()
        assert rebuilt.trimmed_fraction() == source.trimmed_fraction()
        # Entries materialize lazily and carry the same observations.
        assert [o.index for o in rebuilt.observations] == [1, 2]
        assert rebuilt.last.n_collected == 14

    def test_from_columns_supports_record_append(self):
        board = PublicBoard.from_columns(
            self._two_round_board().columns, store_retained=False
        )
        board.record(_entry(3, np.zeros((5, 1)), 9))
        assert len(board) == 3
        assert board.columns.rounds == 3

    def test_from_columns_retained_payload(self):
        source = self._two_round_board()
        retained = [e.retained for e in source.entries]
        rebuilt = PublicBoard.from_columns(source.columns, retained=retained)
        assert rebuilt.retained_data().shape == source.retained_data().shape


class TestExtendColumns:
    def _columns(self, first_index, rows):
        return {
            "index": [first_index + t for t in range(rows)],
            "trim_percentile": [0.9] * rows,
            "injection_percentile": [float("nan")] * rows,
            "quality": [0.0] * rows,
            "observed_poison_ratio": [0.0] * rows,
            "betrayal": [False] * rows,
            "n_collected": [10] * rows,
            "n_poison_injected": [0] * rows,
            "n_poison_retained": [0] * rows,
            "n_retained": [8] * rows,
        }

    def test_extends_lean_board_without_materializing_entries(self):
        board = PublicBoard(store_retained=False)
        board.record(_entry(1, np.zeros((8, 1)), 10))
        board.extend_columns(self._columns(2, 3))
        assert len(board) == 4
        assert board._entries is None  # entries stay lazy after a flush
        np.testing.assert_array_equal(board.columns.index, [1, 2, 3, 4])
        assert [o.index for o in board.observations] == [1, 2, 3, 4]

    def test_extends_empty_board(self):
        board = PublicBoard(store_retained=False)
        board.extend_columns(self._columns(1, 2))
        assert len(board) == 2
        assert board.last.n_retained == 8

    def test_zero_rows_is_a_noop(self):
        board = PublicBoard(store_retained=False)
        board.extend_columns({name: [] for name in self._columns(1, 0)})
        assert len(board) == 0

    def test_out_of_order_extend_rejected(self):
        board = PublicBoard(store_retained=False)
        board.record(_entry(1, np.zeros((8, 1)), 10))
        with pytest.raises(ValueError, match="out of order"):
            board.extend_columns(self._columns(3, 2))

    def test_full_board_requires_retained_per_round(self):
        board = PublicBoard()
        with pytest.raises(ValueError, match="retained"):
            board.extend_columns(self._columns(1, 2))

    def test_full_board_carries_retained_payload(self):
        board = PublicBoard()
        board.record(_entry(1, np.ones((8, 1)), 10))
        board.extend_columns(
            self._columns(2, 2), retained=[np.zeros((8, 1))] * 2
        )
        assert board.retained_data().shape == (24, 1)
        assert board.entries[2].observation.index == 3

    def test_ragged_column_rejected(self):
        board = PublicBoard(store_retained=False)
        columns = self._columns(1, 2)
        columns["quality"] = [0.0]
        with pytest.raises(ValueError, match="quality"):
            board.extend_columns(columns)

    def test_record_still_works_after_extend(self):
        board = PublicBoard(store_retained=False)
        board.extend_columns(self._columns(1, 2))
        board.record(_entry(3, np.zeros((5, 1)), 9))
        assert len(board) == 3
        np.testing.assert_array_equal(board.columns.index, [1, 2, 3])


class TestColumnarBoard:
    class _FakeSession:
        def __init__(self):
            self.absorbed = []

        def _absorb_sink_rows(self, sink, lane, base):
            self.absorbed.append((sink, lane, base))

    def _sink(self, n_lanes=2, **kwargs):
        from repro.streams.board import ColumnarBoard

        return ColumnarBoard(n_lanes, store_retained=False, **kwargs)

    def _record(self, sink, kept):
        n = len(kept)
        sink.record_round(
            trim_percentile=np.full(n, 0.9),
            injection_percentile=np.full(n, np.nan),
            quality=np.zeros(n),
            observed_poison_ratio=np.zeros(n),
            betrayal=np.zeros(n, dtype=bool),
            n_collected=np.full(n, 10),
            n_poison_injected=np.zeros(n, dtype=int),
            n_poison_retained=np.zeros(n, dtype=int),
            n_retained=np.asarray(kept),
        )

    def test_lane_rows_are_absolute_and_base_offset(self):
        sink = self._sink(start_index=5)
        self._record(sink, [8, 9])
        self._record(sink, [7, 6])
        columns, retained = sink.lane_rows(1, base=1)
        assert columns["index"] == [7]
        assert columns["n_retained"] == [6]
        assert retained is None

    def test_flush_syncs_once_then_absorbs_every_lane(self):
        synced = []
        sink = self._sink(sync=lambda: synced.append(True))
        sessions = [self._FakeSession(), self._FakeSession()]
        for lane, session in enumerate(sessions):
            sink.attach(session, lane)
        self._record(sink, [8, 9])
        sink.flush_all()
        assert synced == [True]
        assert sessions[0].absorbed == [(sink, 0, 0)]
        assert sessions[1].absorbed == [(sink, 1, 0)]
        # idempotent: a second flush neither syncs nor re-absorbs
        sink.flush_all()
        assert synced == [True]
        assert len(sessions[0].absorbed) == 1

    def test_record_into_flushed_sink_rejected(self):
        sink = self._sink()
        sink.flush_all()
        with pytest.raises(RuntimeError, match="flushed"):
            self._record(sink, [8, 9])

    def test_late_attachment_absorbs_from_its_own_base(self):
        sink = self._sink()
        self._record(sink, [8, 9])
        late = self._FakeSession()
        sink.attach(late, 0)
        self._record(sink, [7, 6])
        sink.flush_all()
        assert late.absorbed == [(sink, 0, 1)]


class TestStackedBoard:
    def _record(self, board, n_reps, round_values):
        board.record_round(
            trim_percentile=np.full(n_reps, 0.9),
            injection_percentile=np.full(n_reps, np.nan),
            quality=np.zeros(n_reps),
            observed_poison_ratio=np.zeros(n_reps),
            betrayal=np.zeros(n_reps, dtype=bool),
            n_collected=np.full(n_reps, 10),
            n_poison_injected=np.zeros(n_reps, dtype=int),
            n_poison_retained=np.asarray(round_values["poison"]),
            n_retained=np.asarray(round_values["kept"]),
            retained=(
                [np.zeros((k, 1)) for k in round_values["kept"]]
                if board.store_retained
                else None
            ),
        )

    def test_rep_board_slices_columns(self):
        from repro.streams.board import StackedBoard

        board = StackedBoard(2, store_retained=True)
        self._record(board, 2, {"poison": [1, 2], "kept": [8, 9]})
        self._record(board, 2, {"poison": [0, 1], "kept": [7, 6]})
        rep0 = board.rep_board(0)
        rep1 = board.rep_board(1)
        np.testing.assert_array_equal(rep0.columns.n_retained, [8, 7])
        np.testing.assert_array_equal(rep1.columns.n_retained, [9, 6])
        assert rep0.retained_data().shape == (15, 1)
        assert rep0.poison_retained_fraction() == pytest.approx(1 / 15)

    def test_aggregates_per_rep(self):
        from repro.streams.board import StackedBoard

        board = StackedBoard(2, store_retained=False)
        self._record(board, 2, {"poison": [1, 2], "kept": [8, 10]})
        np.testing.assert_allclose(
            board.poison_retained_fractions(), [1 / 8, 2 / 10]
        )
        np.testing.assert_allclose(
            board.trimmed_fractions(), [1 - 8 / 10, 0.0]
        )

    def test_shape_validation(self):
        from repro.streams.board import StackedBoard

        board = StackedBoard(3, store_retained=False)
        with pytest.raises(ValueError, match="shaped"):
            self._record(board, 2, {"poison": [1, 2], "kept": [8, 9]})

    def test_full_board_requires_retained(self):
        from repro.streams.board import StackedBoard

        board = StackedBoard(2, store_retained=True)
        with pytest.raises(ValueError, match="retained"):
            board.record_round(
                trim_percentile=np.full(2, 0.9),
                injection_percentile=np.full(2, np.nan),
                quality=np.zeros(2),
                observed_poison_ratio=np.zeros(2),
                betrayal=np.zeros(2, dtype=bool),
                n_collected=np.full(2, 10),
                n_poison_injected=np.zeros(2, dtype=int),
                n_poison_retained=np.zeros(2, dtype=int),
                n_retained=np.full(2, 8),
            )
