"""Conformance auditor: clean at HEAD, loud on a broken strategy."""

import numpy as np
import pytest

from repro.analysis.conformance import (
    CANONICAL_RECIPES,
    ConformanceAuditor,
    register_recipe,
)
from repro.core.strategies.base import CollectorStrategy


class BrokenCollector(CollectorStrategy):
    """Deliberately broken: no batched lane, RNG state not exported."""

    def __init__(self, seed=0):
        self._rng = np.random.default_rng(seed)

    def first(self):
        return 0.9

    def react(self, last):
        return float(self._rng.uniform(0.85, 0.95))

    # inherits the base's empty export_state()/import_state(): the RNG
    # position is silently dropped on snapshot/restore.


@pytest.fixture()
def clean_recipes():
    """Isolate test-registered recipes from the global table."""
    saved = dict(CANONICAL_RECIPES)
    CANONICAL_RECIPES.clear()
    yield
    CANONICAL_RECIPES.clear()
    CANONICAL_RECIPES.update(saved)


def test_shipped_registry_is_conformant():
    findings = ConformanceAuditor(subprocess_checks=False).audit()
    assert findings == []


@pytest.mark.slow
def test_shipped_fingerprints_stable_across_subprocesses():
    findings = ConformanceAuditor(checks={"CONF003"}).audit()
    assert findings == []


def test_broken_strategy_missing_lane_reported(clean_recipes):
    auditor = ConformanceAuditor(
        extra_strategies=[BrokenCollector], checks={"CONF001"}
    )
    findings = auditor.audit()
    assert any(
        f.rule == "CONF001" and "BrokenCollector" in f.message
        for f in findings
    )


def test_broken_strategy_missing_recipe_reported(clean_recipes):
    auditor = ConformanceAuditor(
        extra_strategies=[BrokenCollector],
        checks={"CONF002"},
        subprocess_checks=False,
    )
    findings = auditor.audit()
    assert any(
        f.rule == "CONF002"
        and "BrokenCollector" in f.message
        and "recipe" in f.message
        for f in findings
    )


def test_broken_strategy_round_trip_divergence_reported(clean_recipes):
    register_recipe(BrokenCollector, lambda: BrokenCollector(seed=7))
    auditor = ConformanceAuditor(
        extra_strategies=[BrokenCollector],
        checks={"CONF002"},
        subprocess_checks=False,
    )
    findings = auditor.audit()
    divergences = [
        f
        for f in findings
        if f.rule == "CONF002"
        and "BrokenCollector" in f.message
        and "diverges" in f.message
    ]
    assert divergences, [f.message for f in findings]
    # The finding points at the class definition, not at <registry>.
    assert divergences[0].path.endswith("test_conformance.py")


def test_fixed_strategy_round_trip_passes(clean_recipes):
    from repro.core.strategies.base import rng_state, set_rng_state

    class FixedCollector(BrokenCollector):
        def __init__(self, seed=0):
            self._seed = seed
            super().__init__(seed)

        def reset(self):
            self._rng = np.random.default_rng(self._seed)

        def export_state(self):
            return {"rng": rng_state(self._rng)}

        def import_state(self, state):
            set_rng_state(self._rng, state["rng"])

    register_recipe(FixedCollector, lambda: FixedCollector(seed=7))
    auditor = ConformanceAuditor(
        extra_strategies=[FixedCollector],
        checks={"CONF002"},
        subprocess_checks=False,
    )
    findings = [
        f for f in auditor.audit() if "FixedCollector" in f.message
    ]
    assert findings == []


def test_envelope_coverage_flags_orphan_state_class(clean_recipes):
    # Simulate a state-exporting class with no session role by checking
    # the role-membership logic through a module-level injection.
    auditor = ConformanceAuditor(checks={"CONF005"})
    assert auditor.audit() == []


@pytest.fixture()
def lane_registry():
    """Scratch access to the lane registries with guaranteed cleanup."""
    from repro.core.strategies import batched

    added = []

    def register(strategy_cls, lanes_cls):
        batched._COLLECTOR_LANES[strategy_cls] = lanes_cls
        added.append(strategy_cls)

    yield register
    for strategy_cls in added:
        from repro.core.strategies import batched

        batched._COLLECTOR_LANES.pop(strategy_cls, None)


class TestFusionDeclarations:
    def test_shipped_lanes_declare_fusion_contract(self):
        assert ConformanceAuditor(checks={"CONF006"}).audit() == []

    def test_missing_family_reported(self, lane_registry):
        from repro.core.strategies.batched import CollectorLanes

        class _UndeclaredLanes(CollectorLanes):
            pass  # inherits the empty fusion_family default

        class _FakeCollector:
            pass

        lane_registry(_FakeCollector, _UndeclaredLanes)
        findings = ConformanceAuditor(checks={"CONF006"}).audit()
        assert any(
            f.rule == "CONF006"
            and "_UndeclaredLanes" in f.message
            and "fusion_family" in f.message
            for f in findings
        )

    def test_malformed_params_reported(self, lane_registry):
        from repro.core.strategies.batched import CollectorLanes

        class _BadParamsLanes(CollectorLanes):
            fusion_family = "bad-params"
            fusion_params = ["threshold"]  # list, not tuple

        class _FakeCollector:
            pass

        lane_registry(_FakeCollector, _BadParamsLanes)
        findings = ConformanceAuditor(checks={"CONF006"}).audit()
        assert any(
            f.rule == "CONF006"
            and "_BadParamsLanes" in f.message
            and "fusion_params" in f.message
            for f in findings
        )

    def test_duplicate_family_reported(self, lane_registry):
        from repro.core.strategies.batched import CollectorLanes

        class _ShadowConstantLanes(CollectorLanes):
            fusion_family = "constant"  # collides with the shipped lane
            fusion_params = ("threshold",)

        class _FakeCollector:
            pass

        lane_registry(_FakeCollector, _ShadowConstantLanes)
        findings = ConformanceAuditor(checks={"CONF006"}).audit()
        assert any(
            f.rule == "CONF006" and "exactly one vector program" in f.message
            for f in findings
        )
