"""Unit tests for the interprocedural dataflow layer."""

import ast

import pytest

from repro.analysis.dataflow import ModuleDataflow, is_set_expr, walk_body
from repro.analysis.engine import ModuleContext


def df_of(source):
    ctx = ModuleContext.parse("m.py", source)
    return ctx, ModuleDataflow.of(ctx)


def call_in(ctx, qualname):
    """First Call node inside the named function."""
    for fn in ast.walk(ctx.tree):
        if isinstance(fn, ast.FunctionDef):
            parent = ctx.parent(fn)
            qual = (
                f"{parent.name}.{fn.name}"
                if isinstance(parent, ast.ClassDef)
                else fn.name
            )
            if qual == qualname:
                for node in ast.walk(fn):
                    if isinstance(node, ast.Call):
                        return node
    raise AssertionError(f"no call in {qualname}")


class TestSummaries:
    def test_cached_per_context(self):
        ctx, df = df_of("def f():\n    return 1\n")
        assert ModuleDataflow.of(ctx) is df

    def test_returns_set_direct(self):
        ctx, df = df_of(
            "def parts(doc):\n"
            "    return {k for k in doc}\n"
            "def caller(doc):\n"
            "    return parts(doc)\n"
        )
        assert df.returns_set("caller", call_in(ctx, "caller"))

    def test_returns_set_transitive(self):
        ctx, df = df_of(
            "def leaf(doc):\n"
            "    return set(doc)\n"
            "def mid(doc):\n"
            "    return leaf(doc)\n"
            "def caller(doc):\n"
            "    return mid(doc)\n"
        )
        assert df.returns_set("caller", call_in(ctx, "caller"))

    def test_returns_list_not_set(self):
        ctx, df = df_of(
            "def parts(doc):\n"
            "    return sorted(set(doc))\n"
            "def caller(doc):\n"
            "    return parts(doc)\n"
        )
        assert not df.returns_set("caller", call_in(ctx, "caller"))

    def test_self_method_resolution(self):
        ctx, df = df_of(
            "class Store:\n"
            "    def _keys(self):\n"
            "        return {1, 2}\n"
            "    def dump(self):\n"
            "        return self._keys()\n"
        )
        assert df.returns_set("Store.dump", call_in(ctx, "Store.dump"))

    def test_unordered_helper_detected(self):
        ctx, df = df_of(
            "def render(doc):\n"
            "    return [k for k in {k for k in doc}]\n"
            "def caller(doc):\n"
            "    return render(doc)\n"
        )
        helper = df.performs_unordered_iteration(
            "caller", call_in(ctx, "caller")
        )
        assert helper == "render"

    def test_unordered_param_positions(self):
        ctx, df = df_of(
            "def render(prefix, parts):\n"
            "    return [p for p in parts]\n"
            "def caller(doc):\n"
            "    return render('x', doc)\n"
        )
        assert df.unordered_param_positions(
            "caller", call_in(ctx, "caller")
        ) == [1]

    def test_sorted_iteration_is_ordered(self):
        ctx, df = df_of(
            "def render(parts):\n"
            "    return [p for p in sorted(parts)]\n"
            "def caller(doc):\n"
            "    return render(doc)\n"
        )
        assert (
            df.performs_unordered_iteration("caller", call_in(ctx, "caller"))
            is None
        )
        assert df.unordered_param_positions(
            "caller", call_in(ctx, "caller")
        ) == []


class TestClassView:
    SRC = (
        "def _shared_reset(obj):\n"
        "    obj._count = 0\n"
        "class _Base:\n"
        "    def reset(self):\n"
        "        _shared_reset(self)\n"
        "class ThingCollector(_Base):\n"
        "    def __init__(self):\n"
        "        self._count = 0\n"
        "    def react(self, last):\n"
        "        self._bump()\n"
        "    def _bump(self):\n"
        "        self._count += 1\n"
    )

    def test_linearized_methods(self):
        _, df = df_of(self.SRC)
        view = df.class_view("ThingCollector")
        assert {"reset", "__init__", "react", "_bump"} <= set(view.methods)

    def test_reachable_closure(self):
        _, df = df_of(self.SRC)
        view = df.class_view("ThingCollector")
        assert view.reachable({"react"}) == {"react", "_bump"}

    def test_attrs_assigned_through_module_helper(self):
        # _shared_reset(self) writes obj._count: reset restores _count.
        _, df = df_of(self.SRC)
        view = df.class_view("ThingCollector")
        assert "_count" in view.attrs_assigned({"reset"})

    def test_method_writes(self):
        _, df = df_of(self.SRC)
        view = df.class_view("ThingCollector")
        assert "_count" in view.method_writes("_bump")


class TestHelpers:
    @pytest.mark.parametrize(
        "expr, expected",
        [
            ("{1, 2}", True),
            ("{k for k in d}", True),
            ("set(d)", True),
            ("frozenset(d)", True),
            ("[1, 2]", False),
            ("sorted(d)", False),
            ("{1: 2}", False),
        ],
    )
    def test_is_set_expr(self, expr, expected):
        ctx = ModuleContext.parse("m.py", f"x = {expr}\n")
        node = ctx.tree.body[0].value
        assert is_set_expr(ctx, node) is expected

    def test_walk_body_skips_nested_defs(self):
        fn = ast.parse(
            "def outer():\n"
            "    a = 1\n"
            "    def inner():\n"
            "        b = 2\n"
            "    return a\n"
        ).body[0]
        names = {
            node.id
            for node in walk_body(fn)
            if isinstance(node, ast.Name)
        }
        assert "a" in names and "b" not in names
