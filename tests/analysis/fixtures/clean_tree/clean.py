# A module the determinism linter accepts: explicit seeds, restored
# state, immutable defaults, sorted canonical iteration.
import numpy as np


class SeededAdversary:
    def __init__(self, seed):
        self._seed = seed
        self._rng = np.random.default_rng(seed)
        self._round = 0

    def first(self):
        return 0.99

    def react(self, last):
        self._round += 1
        return float(self._rng.uniform(0.9, 1.0))

    def reset(self):
        self._rng = np.random.default_rng(self._seed)
        self._round = 0


def spec_fingerprint(tags):
    parts = {f"{key}={value}" for key, value in tags}
    return "|".join(sorted(parts))


def collect(values, into=None):
    into = [] if into is None else into
    into.extend(values)
    return into
