# REP004 fixture: mutable default argument + shared class-level state.


class HistoryCollector:
    observed = []

    def record(self, value, into=[]):
        into.append(value)
        self.observed.append(value)
        return into
