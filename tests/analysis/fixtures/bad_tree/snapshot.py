# REP008 fixture: a play-mutated counter missing from the snapshot
# round-trip surface.


class ForgetfulCollector:
    def __init__(self, t_th):
        self.t_th = float(t_th)
        self._threshold = float(t_th)
        self._streak = 0  # mutated in react(), absent from export/import

    def react(self, last):
        if last.betrayal:
            self._streak += 1
        self._threshold = self.t_th - 0.01 * self._streak
        return self._threshold

    def reset(self):
        self._threshold = float(self.t_th)
        self._streak = 0

    def export_state(self):
        return {"threshold": self._threshold}

    def import_state(self, state):
        self._threshold = float(state["threshold"])


class CompleteCollector:
    # Near miss: the same shape, but every mutated attribute is covered
    # by the export/import round trip.  Clean.
    def __init__(self, t_th):
        self.t_th = float(t_th)
        self._threshold = float(t_th)
        self._streak = 0

    def react(self, last):
        if last.betrayal:
            self._streak += 1
        self._threshold = self.t_th - 0.01 * self._streak
        return self._threshold

    def reset(self):
        self._threshold = float(self.t_th)
        self._streak = 0

    def export_state(self):
        return {"threshold": self._threshold, "streak": self._streak}

    def import_state(self, state):
        self._threshold = float(state["threshold"])
        self._streak = int(state["streak"])
