# REP007 fixture: a lane class writing tenant state mid-round, and raw
# Generator bit-state handled outside rng_state()/set_rng_state().
import numpy as np


class EagerLanes:
    fusion_family = "eager"
    fusion_params = ()

    def __init__(self, instances):
        self.instances = list(instances)
        self._current = np.array([inst._current for inst in instances])

    def react_many(self, last):
        out = self._current + last
        for r, inst in enumerate(self.instances):
            inst._current = out[r]  # mid-round writeback: races finalize()
        return out

    def finalize(self):
        for r, inst in enumerate(self.instances):
            inst._current = float(self._current[r])


def clone_generator(rng):
    shadow = np.random.PCG64()
    shadow.state = rng.bit_generator.state  # raw bit-state copy
    return np.random.Generator(shadow)


class NearMissLanes:
    # Near miss: the same tenant writeback, but performed inside
    # finalize() and a helper it calls — the sanctioned surface.  Clean.
    fusion_family = "eager-near-miss"
    fusion_params = ()

    def __init__(self, instances):
        self.instances = list(instances)
        self._current = np.array([inst._current for inst in instances])

    def react_many(self, last):
        self._current = self._current + last
        return self._current

    def finalize(self):
        self._write_back()

    def _write_back(self):
        for r, inst in enumerate(self.instances):
            inst._current = float(self._current[r])
