# REP005 fixture: __init__-assigned RNG and counter never restored.
import numpy as np


class DriftingAdversary:
    def __init__(self, seed):
        self._rng = np.random.default_rng(seed)
        self._round = 0

    def first(self):
        return 0.99

    def react(self, last):
        self._round += 1
        return float(self._rng.uniform(0.9, 1.0))

    def reset(self):
        pass
