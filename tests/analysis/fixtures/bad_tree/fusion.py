# REP006 fixture: a mutable column declared as a fusion *param*, and a
# compiled round program closing over lane state.
import numpy as np


class EmaLanes:
    fusion_family = "ema"
    fusion_params = ("alpha", "level")  # "level" is mutated in react_many

    def __init__(self, instances):
        self._alpha = np.array([inst.alpha for inst in instances])
        self._level = np.array([inst.level for inst in instances])

    def react_many(self, last):
        self._level = self._alpha * last + (1.0 - self._alpha) * self._level
        return self._level

    def reset_many(self):
        self._level = np.zeros_like(self._level)


class ClosureLanes:
    fusion_family = "closure"
    fusion_params = ("gain",)

    def __init__(self, instances):
        self._gain = np.array([inst.gain for inst in instances])
        self._count = 0

    def compile_program(self):
        def program(batch):
            self._count += 1  # impure compiled round program
            return batch * self._gain

        return program


class NearMissLanes:
    # Near miss: "offset" is packed at build and only ever *read* by the
    # play path; the running `_level` column is declared as fusion_state,
    # where mutation is the point.  Clean.
    fusion_family = "near-miss"
    fusion_params = ("offset",)
    fusion_state = ("level",)

    def __init__(self, instances):
        self._offset = np.array([inst.offset for inst in instances])
        self._level = np.array([inst.level for inst in instances])

    def react_many(self, last):
        self._level = self._level + self._offset
        return self._level
