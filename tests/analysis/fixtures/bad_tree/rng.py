# REP001 fixture: stdlib global RNG, legacy NumPy API, bare default_rng.
import random

import numpy as np
from numpy.random import default_rng


def draw_jitter():
    return random.uniform(0.0, 0.01)


def draw_legacy(n):
    return np.random.uniform(0.9, 1.0, size=n)


def make_rng():
    return default_rng()
