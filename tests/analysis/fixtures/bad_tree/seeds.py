# REP002 fixture: process-salted hash() flowing into a seed.
import numpy as np


def scheme_rng(scheme_name):
    seed = hash(scheme_name) % 911
    return np.random.default_rng(seed)
