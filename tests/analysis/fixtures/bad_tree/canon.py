# REP003 fixture: set iteration order leaking into a fingerprint.


def spec_fingerprint(tags):
    parts = {f"{key}={value}" for key, value in tags}
    return "|".join(parts)
