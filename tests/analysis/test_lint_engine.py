"""Engine mechanics: suppressions, ordering, error paths."""

import pytest

from repro.analysis import LintEngine, Severity, all_rules, default_engine
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.engine import ModuleContext, Rule, iter_python_files
from repro.analysis.suppressions import parse_suppressions


@pytest.fixture()
def engine():
    return default_engine()


def test_rule_ids_are_unique_and_ordered():
    rules = all_rules()
    ids = [rule.rule_id for rule in rules]
    assert ids == sorted(ids)
    assert len(set(ids)) == len(ids)


def test_duplicate_rule_ids_rejected():
    class Dup(Rule):
        rule_id = "REPX"

        def check(self, ctx):
            return iter(())

    with pytest.raises(ValueError):
        LintEngine([Dup(), Dup()])


def test_syntax_error_becomes_rep000(engine):
    findings = engine.lint_source("def broken(:\n", "bad.py")
    assert [f.rule for f in findings] == ["REP000"]
    assert findings[0].severity is Severity.ERROR


def test_findings_sorted_by_location(engine):
    source = (
        "import random\n"
        "b = random.random()\n"
        "a = random.random()\n"
    )
    findings = engine.lint_source(source)
    assert [f.line for f in findings] == [2, 3]


def test_diagnostic_format_includes_hint():
    diag = Diagnostic(
        path="x.py",
        line=3,
        column=7,
        rule="REP001",
        severity=Severity.ERROR,
        message="boom",
        hint="do the thing",
    )
    assert diag.format() == "x.py:3:7: REP001 [error] boom (fix: do the thing)"
    assert diag.format(show_hint=False) == "x.py:3:7: REP001 [error] boom"


def test_line_noqa_suppresses_named_rule(engine):
    source = "import random\nx = random.random()  # repro: noqa[REP001]\n"
    assert engine.lint_source(source) == []


def test_line_noqa_other_rule_does_not_suppress(engine):
    source = "import random\nx = random.random()  # repro: noqa[REP002]\n"
    assert [f.rule for f in engine.lint_source(source)] == ["REP001"]


def test_bare_noqa_suppresses_everything_on_line(engine):
    source = "import random\nx = random.random()  # repro: noqa\n"
    assert engine.lint_source(source) == []


def test_file_noqa_suppresses_whole_file(engine):
    source = (
        "# repro: noqa-file[REP001]\n"
        "import random\n"
        "x = random.random()\n"
        "y = random.random()\n"
    )
    assert engine.lint_source(source) == []


def test_noqa_multiple_rules():
    table = parse_suppressions(["x = 1  # repro: noqa[REP001, REP003]"])
    assert table.is_suppressed("REP001", 1)
    assert table.is_suppressed("REP003", 1)
    assert not table.is_suppressed("REP002", 1)
    assert not table.is_suppressed("REP001", 2)


def test_resolve_call_through_aliases():
    ctx = ModuleContext.parse(
        "m.py",
        "import numpy as np\nfrom numpy.random import default_rng as mk\n",
    )
    import ast

    node = ast.parse("np.random.uniform(0, 1)").body[0].value
    assert ctx.resolve_call(node.func) == "numpy.random.uniform"
    node = ast.parse("mk(7)").body[0].value
    assert ctx.resolve_call(node.func) == "numpy.random.default_rng"


def test_iter_python_files_missing_path_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        list(iter_python_files([str(tmp_path / "nope")]))


def test_iter_python_files_dedups_and_sorts(tmp_path):
    (tmp_path / "b.py").write_text("x = 1\n")
    (tmp_path / "a.py").write_text("y = 2\n")
    files = list(iter_python_files([str(tmp_path), str(tmp_path / "a.py")]))
    assert [f.name for f in files] == ["a.py", "b.py"]


def test_def_noqa_covers_decorator_lines(engine):
    # A finding anchored to a decorator line is suppressed by the noqa
    # on the decorated def line — the natural place to write it.
    source = (
        "import random\n"
        "import functools\n"
        "@functools.lru_cache(maxsize=int(random.random() * 8))\n"
        "def cached():  # repro: noqa[REP001]\n"
        "    return 1\n"
    )
    assert engine.lint_source(source) == []


def test_def_noqa_propagation_keeps_other_rules(engine):
    source = (
        "import random\n"
        "import functools\n"
        "@functools.lru_cache(maxsize=int(random.random() * 8))\n"
        "def cached():  # repro: noqa[REP004]\n"
        "    return 1\n"
    )
    assert [f.rule for f in engine.lint_source(source)] == ["REP001"]


def test_undecorated_def_noqa_unchanged(engine):
    source = "import random\nx = random.random()  # repro: noqa[REP001]\n"
    assert engine.lint_source(source) == []
