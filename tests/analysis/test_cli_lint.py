"""CLI acceptance: the seeded bad tree fails, HEAD and the clean tree pass."""

from pathlib import Path

import pytest

from repro.analysis.cli import main as lint_main
from repro.cli import main as repro_main

FIXTURES = Path(__file__).parent / "fixtures"
REPRO_SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def test_bad_tree_exits_nonzero_with_every_rule(capsys):
    code = lint_main([str(FIXTURES / "bad_tree")])
    out = capsys.readouterr().out
    assert code == 1
    for rule in ("REP001", "REP002", "REP003", "REP004", "REP005"):
        assert rule in out, f"{rule} missing from:\n{out}"


def test_clean_tree_exits_zero(capsys):
    code = lint_main([str(FIXTURES / "clean_tree")])
    assert code == 0
    assert "clean" in capsys.readouterr().out


def test_head_source_tree_is_lint_clean(capsys):
    # Acceptance criterion: zero lint findings on src/repro at HEAD.
    code = lint_main([str(REPRO_SRC)])
    assert code == 0, capsys.readouterr().out


def test_repro_lint_subcommand_dispatches(capsys):
    code = repro_main(["lint", str(FIXTURES / "clean_tree")])
    assert code == 0
    assert "clean" in capsys.readouterr().out


def test_repro_lint_bad_tree_via_subcommand(capsys):
    code = repro_main(["lint", str(FIXTURES / "bad_tree"), "--no-hints"])
    out = capsys.readouterr().out
    assert code == 1
    assert "(fix:" not in out


def test_list_rules_table(capsys):
    code = lint_main(["--list-rules"])
    out = capsys.readouterr().out
    assert code == 0
    for rule in ("REP001", "REP005", "CONF001", "CONF006"):
        assert rule in out


def test_missing_path_is_usage_error(tmp_path, capsys):
    code = lint_main([str(tmp_path / "does-not-exist")])
    assert code == 2


@pytest.mark.slow
def test_full_self_audit_is_clean(capsys):
    # The CI gate: no paths = lint the repro package + conformance.
    code = lint_main(["--no-subprocess-checks"])
    out = capsys.readouterr().out
    assert code == 0, out
    assert "lint + conformance: clean" in out
