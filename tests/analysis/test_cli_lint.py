"""CLI acceptance: the seeded bad tree fails, HEAD and the clean tree pass."""

from pathlib import Path

import pytest

from repro.analysis.cli import main as lint_main
from repro.cli import main as repro_main

FIXTURES = Path(__file__).parent / "fixtures"
REPRO_SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def test_bad_tree_exits_nonzero_with_every_rule(capsys):
    code = lint_main([str(FIXTURES / "bad_tree")])
    out = capsys.readouterr().out
    assert code == 1
    for rule in (
        "REP001",
        "REP002",
        "REP003",
        "REP004",
        "REP005",
        "REP006",
        "REP007",
        "REP008",
    ):
        assert rule in out, f"{rule} missing from:\n{out}"


def test_clean_tree_exits_zero(capsys):
    code = lint_main([str(FIXTURES / "clean_tree")])
    assert code == 0
    assert "clean" in capsys.readouterr().out


def test_head_source_tree_is_lint_clean(capsys):
    # Acceptance criterion: zero lint findings on src/repro at HEAD.
    code = lint_main([str(REPRO_SRC)])
    assert code == 0, capsys.readouterr().out


def test_repro_lint_subcommand_dispatches(capsys):
    code = repro_main(["lint", str(FIXTURES / "clean_tree")])
    assert code == 0
    assert "clean" in capsys.readouterr().out


def test_repro_lint_bad_tree_via_subcommand(capsys):
    code = repro_main(["lint", str(FIXTURES / "bad_tree"), "--no-hints"])
    out = capsys.readouterr().out
    assert code == 1
    assert "(fix:" not in out


def test_list_rules_table(capsys):
    code = lint_main(["--list-rules"])
    out = capsys.readouterr().out
    assert code == 0
    for rule in ("REP001", "REP005", "REP008", "CONF001", "CONF006", "CONF007"):
        assert rule in out


def test_missing_path_is_usage_error(tmp_path, capsys):
    code = lint_main([str(tmp_path / "does-not-exist")])
    assert code == 2


@pytest.mark.slow
def test_full_self_audit_is_clean(capsys):
    # The CI gate: no paths = lint the repro package + conformance.
    code = lint_main(["--no-subprocess-checks"])
    out = capsys.readouterr().out
    assert code == 0, out
    assert "lint + conformance: clean" in out


# --------------------------------------------------------------------- #
# --format json / --baseline / --update-golden
# --------------------------------------------------------------------- #
def test_json_format_bad_tree(capsys):
    import json

    code = lint_main([str(FIXTURES / "bad_tree"), "--format", "json"])
    out = capsys.readouterr().out
    assert code == 1
    report = json.loads(out)
    assert report["format"] == "repro.lint-report/1"
    assert report["summary"]["errors"] == len(report["findings"])
    assert report["summary"]["warnings"] == 0
    rules = {finding["rule"] for finding in report["findings"]}
    assert {"REP001", "REP006", "REP007", "REP008"} <= rules
    first = report["findings"][0]
    assert set(first) == {
        "path", "line", "column", "rule", "severity", "message", "hint",
    }


def test_json_format_clean_tree(capsys):
    import json

    code = lint_main([str(FIXTURES / "clean_tree"), "--format", "json"])
    report = json.loads(capsys.readouterr().out)
    assert code == 0
    assert report["findings"] == []
    assert report["summary"]["errors"] == 0


def test_baseline_round_trip(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    code = lint_main(
        [str(FIXTURES / "bad_tree"), "--write-baseline", str(baseline)]
    )
    capsys.readouterr()
    assert code == 0
    assert baseline.is_file()

    # Every recorded finding is suppressed: the bad tree now passes.
    code = lint_main(
        [str(FIXTURES / "bad_tree"), "--baseline", str(baseline)]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "clean" in out and "baselined" in out


def test_baseline_does_not_hide_new_findings(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    lint_main(
        [str(FIXTURES / "bad_tree" / "rng.py"), "--write-baseline", str(baseline)]
    )
    capsys.readouterr()
    code = lint_main(
        [str(FIXTURES / "bad_tree"), "--baseline", str(baseline)]
    )
    out = capsys.readouterr().out
    assert code == 1
    assert "baselined" in out


def test_baseline_entries_survive_line_drift(tmp_path, capsys):
    import json

    baseline = tmp_path / "baseline.json"
    lint_main(
        [str(FIXTURES / "bad_tree" / "rng.py"), "--write-baseline", str(baseline)]
    )
    capsys.readouterr()
    document = json.loads(baseline.read_text(encoding="utf-8"))
    assert document["format"] == "repro.lint-baseline/1"
    for entry in document["findings"]:
        assert set(entry) == {"rule", "path", "message"}  # no line numbers


def test_unreadable_baseline_is_usage_error(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text("{nope", encoding="utf-8")
    code = lint_main(
        [str(FIXTURES / "clean_tree"), "--baseline", str(bad)]
    )
    assert code == 2


def test_update_golden_writes_transcript(tmp_path, capsys, monkeypatch):
    import repro.analysis.golden as golden_mod

    target = tmp_path / "transcript.json"
    monkeypatch.setattr(golden_mod, "GOLDEN_PATH", target)
    code = lint_main(["--update-golden"])
    out = capsys.readouterr().out
    assert code == 0
    assert target.is_file()
    assert "golden transcript written" in out
