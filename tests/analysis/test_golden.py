"""CONF007 — golden-transcript audit tests.

The checked-in transcript must replay byte-for-byte at HEAD, and a
deliberate one-draw perturbation of the decision loop must be caught —
the audit is only worth its runtime if it actually trips on drift.
"""

import json

import pytest

from repro.analysis.golden import (
    GOLDEN_FORMAT,
    GOLDEN_PATH,
    build_transcript,
    record_golden,
    replay_golden,
)
from repro.streams.injection import PoisonInjector


def test_golden_file_checked_in():
    assert GOLDEN_PATH.is_file(), (
        "tests/analysis/golden/transcript.json is missing — regenerate "
        "with `repro lint --update-golden`"
    )
    document = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
    assert document["format"] == GOLDEN_FORMAT
    assert len(document["cells"]) == 3
    for cell in document["cells"]:
        assert len(cell["rounds"]) == 12
        for entry in cell["rounds"]:
            assert entry["state_sha256"]


def test_replay_clean_at_head():
    assert replay_golden() == []


def test_transcript_is_deterministic():
    assert build_transcript() == build_transcript()


def test_missing_file_is_finding(tmp_path):
    findings = replay_golden(tmp_path / "nope.json")
    assert [f.rule for f in findings] == ["CONF007"]
    assert "missing" in findings[0].message


def test_corrupt_file_is_finding(tmp_path):
    path = tmp_path / "transcript.json"
    path.write_text("{not json", encoding="utf-8")
    findings = replay_golden(path)
    assert [f.rule for f in findings] == ["CONF007"]
    assert "not valid JSON" in findings[0].message


def test_record_golden_round_trips(tmp_path):
    path = record_golden(tmp_path / "golden" / "transcript.json")
    assert replay_golden(path) == []


def test_perturbed_rng_draw_is_caught(monkeypatch):
    # Deliberate regression: burn one extra jitter draw per materialize.
    # Every downstream draw shifts, the state fingerprints (and usually
    # the poison placements) diverge, and CONF007 must fire.
    original = PoisonInjector.materialize

    def skewed(self, batch, position):
        self._rng.uniform()
        return original(self, batch, position)

    monkeypatch.setattr(PoisonInjector, "materialize", skewed)
    findings = replay_golden()
    assert [f.rule for f in findings] == ["CONF007"]
    assert "diverged" in findings[0].message


def test_divergence_names_cell_and_round(tmp_path):
    transcript = build_transcript()
    transcript["cells"][1]["rounds"][4]["n_retained"] += 1
    path = tmp_path / "transcript.json"
    from repro.runtime.store import canonical_json

    path.write_text(canonical_json(transcript) + "\n", encoding="utf-8")
    findings = replay_golden(path)
    assert len(findings) == 1
    message = findings[0].message
    assert "round 5" in message and "n_retained" in message


@pytest.mark.slow
def test_auditor_runs_conf007():
    from repro.analysis.conformance import ConformanceAuditor

    auditor = ConformanceAuditor(
        checks={"CONF007"}, subprocess_checks=False
    )
    assert auditor.audit() == []
