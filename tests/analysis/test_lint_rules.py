"""Per-rule fixture snippets: one violating, one clean, plus noqa."""

import pytest

from repro.analysis import default_engine


@pytest.fixture()
def engine():
    return default_engine()


def rules_in(engine, source):
    return sorted({f.rule for f in engine.lint_source(source)})


# --------------------------------------------------------------------- #
# REP001 — global/legacy RNG
# --------------------------------------------------------------------- #
class TestRep001:
    def test_stdlib_random_flagged(self, engine):
        assert rules_in(engine, "import random\nx = random.gauss(0, 1)\n") == [
            "REP001"
        ]

    def test_legacy_numpy_flagged(self, engine):
        src = "import numpy as np\nx = np.random.uniform(0, 1)\n"
        assert rules_in(engine, src) == ["REP001"]

    def test_np_random_seed_flagged(self, engine):
        src = "import numpy as np\nnp.random.seed(0)\n"
        assert rules_in(engine, src) == ["REP001"]

    def test_bare_default_rng_flagged(self, engine):
        src = "from numpy.random import default_rng\nr = default_rng()\n"
        assert rules_in(engine, src) == ["REP001"]

    def test_none_seed_flagged(self, engine):
        src = "import numpy as np\nr = np.random.default_rng(None)\n"
        assert rules_in(engine, src) == ["REP001"]

    def test_seeded_default_rng_clean(self, engine):
        src = (
            "import numpy as np\n"
            "r = np.random.default_rng(7)\n"
            "s = np.random.SeedSequence(0)\n"
            "g = np.random.Generator(np.random.PCG64(s))\n"
        )
        assert rules_in(engine, src) == []

    def test_generator_method_clean(self, engine):
        # rng.uniform() is a Generator draw, not the legacy module API.
        src = (
            "import numpy as np\n"
            "rng = np.random.default_rng(3)\n"
            "x = rng.uniform(0, 1)\n"
        )
        assert rules_in(engine, src) == []

    def test_noqa(self, engine):
        src = "import random\nx = random.random()  # repro: noqa[REP001]\n"
        assert rules_in(engine, src) == []


# --------------------------------------------------------------------- #
# REP002 — unstable seed material
# --------------------------------------------------------------------- #
class TestRep002:
    def test_hash_into_seed_assignment(self, engine):
        assert rules_in(engine, "seed = hash('x') % 911\n") == ["REP002"]

    def test_time_into_default_rng(self, engine):
        src = (
            "import time\n"
            "import numpy as np\n"
            "rng = np.random.default_rng(int(time.time()))\n"
        )
        assert rules_in(engine, src) == ["REP002"]

    def test_id_into_seed_keyword(self, engine):
        src = "def make(obj, build):\n    return build(seed=id(obj))\n"
        assert rules_in(engine, src) == ["REP002"]

    def test_hash_inside_fingerprint_function(self, engine):
        src = "def spec_fingerprint(spec):\n    return hash(spec)\n"
        assert rules_in(engine, src) == ["REP002"]

    def test_hash_outside_seed_context_clean(self, engine):
        # hash() for a plain dict lookup is fine; only seed flow is bad.
        src = "def bucket(key, n):\n    return hash(key) % n\n"
        assert rules_in(engine, src) == []

    def test_stable_seed_clean(self, engine):
        src = (
            "import numpy as np\n"
            "seed = np.random.SeedSequence(0).spawn(3)[1]\n"
        )
        assert rules_in(engine, src) == []

    def test_noqa(self, engine):
        src = "seed = hash('x') % 911  # repro: noqa[REP002]\n"
        assert rules_in(engine, src) == []


# --------------------------------------------------------------------- #
# REP003 — unordered canonical iteration
# --------------------------------------------------------------------- #
class TestRep003:
    def test_set_loop_in_fingerprint(self, engine):
        src = (
            "def spec_fingerprint(tags):\n"
            "    out = []\n"
            "    for tag in {t for t in tags}:\n"
            "        out.append(tag)\n"
            "    return out\n"
        )
        assert rules_in(engine, src) == ["REP003"]

    def test_set_into_list_in_state_dict(self, engine):
        src = "def state_dict(names):\n    return list(set(names))\n"
        assert rules_in(engine, src) == ["REP003"]

    def test_set_join_in_cache_key(self, engine):
        src = (
            "def cache_key(parts):\n"
            "    return '|'.join({str(p) for p in parts})\n"
        )
        assert rules_in(engine, src) == ["REP003"]

    def test_sorted_set_clean(self, engine):
        src = (
            "def spec_fingerprint(tags):\n"
            "    return sorted({t for t in tags})\n"
        )
        assert rules_in(engine, src) == []

    def test_set_outside_canonical_function_clean(self, engine):
        src = "def dedupe(xs):\n    return list(set(xs))\n"
        assert rules_in(engine, src) == []

    def test_dict_iteration_clean(self, engine):
        # dicts iterate in insertion order; only sets are unstable.
        src = (
            "def state_dict(parts):\n"
            "    return {k: v for k, v in parts.items()}\n"
        )
        assert rules_in(engine, src) == []

    def test_noqa(self, engine):
        src = (
            "def cache_key(parts):\n"
            "    return list(set(parts))  # repro: noqa[REP003]\n"
        )
        assert rules_in(engine, src) == []


# --------------------------------------------------------------------- #
# REP004 — mutable defaults / shared class state
# --------------------------------------------------------------------- #
class TestRep004:
    def test_mutable_default_arg(self, engine):
        assert rules_in(engine, "def f(x, acc=[]):\n    return acc\n") == [
            "REP004"
        ]

    def test_dict_default_arg(self, engine):
        assert rules_in(engine, "def f(x, acc={}):\n    return acc\n") == [
            "REP004"
        ]

    def test_component_class_mutable_attr(self, engine):
        src = (
            "class HistoryCollector:\n"
            "    seen = []\n"
            "    def react(self, x):\n"
            "        self.seen.append(x)\n"
        )
        assert rules_in(engine, src) == ["REP004"]

    def test_non_component_class_attr_clean(self, engine):
        # Shared state on a non-component registry class is out of scope.
        src = "class Registry:\n    entries = {}\n"
        assert rules_in(engine, src) == []

    def test_none_default_clean(self, engine):
        src = (
            "def f(x, acc=None):\n"
            "    acc = [] if acc is None else acc\n"
            "    return acc\n"
        )
        assert rules_in(engine, src) == []

    def test_immutable_class_attr_clean(self, engine):
        src = "class FooCollector:\n    soft_offset = 0.01\n    name = 'foo'\n"
        assert rules_in(engine, src) == []

    def test_noqa(self, engine):
        src = "def f(x, acc=[]):  # repro: noqa[REP004]\n    return acc\n"
        assert rules_in(engine, src) == []


# --------------------------------------------------------------------- #
# REP005 — unrestored __init__ state
# --------------------------------------------------------------------- #
_VIOLATING_LIFECYCLE = (
    "import numpy as np\n"
    "class DriftAdversary:\n"
    "    def __init__(self, seed):\n"
    "        self._rng = np.random.default_rng(seed)\n"
    "        self._round = 0\n"
    "    def react(self, last):\n"
    "        self._round += 1\n"
    "        return float(self._rng.uniform())\n"
    "    def reset(self):\n"
    "        pass\n"
)

_CLEAN_LIFECYCLE = (
    "import numpy as np\n"
    "class SteadyAdversary:\n"
    "    def __init__(self, seed):\n"
    "        self._seed = seed\n"
    "        self._rng = np.random.default_rng(seed)\n"
    "        self._round = 0\n"
    "    def react(self, last):\n"
    "        self._round += 1\n"
    "        return float(self._rng.uniform())\n"
    "    def reset(self):\n"
    "        self._rng = np.random.default_rng(self._seed)\n"
    "        self._round = 0\n"
)


class TestRep005:
    def test_unrestored_rng_and_counter(self, engine):
        findings = [
            f for f in engine.lint_source(_VIOLATING_LIFECYCLE)
            if f.rule == "REP005"
        ]
        messages = " ".join(f.message for f in findings)
        assert "_rng" in messages and "_round" in messages

    def test_restored_state_clean(self, engine):
        assert rules_in(engine, _CLEAN_LIFECYCLE) == []

    def test_reset_via_helper_counts_as_restored(self, engine):
        src = (
            "import numpy as np\n"
            "class HelperCollector:\n"
            "    def __init__(self, seed):\n"
            "        self._seed = seed\n"
            "        self._rng = np.random.default_rng(seed)\n"
            "    def react(self, last):\n"
            "        return float(self._rng.uniform())\n"
            "    def reset(self):\n"
            "        self._fresh()\n"
            "    def _fresh(self):\n"
            "        self._rng = np.random.default_rng(self._seed)\n"
        )
        assert rules_in(engine, src) == []

    def test_calibration_mutation_not_play(self, engine):
        # fit()-reachable helpers are pre-game calibration by contract.
        src = (
            "class CalibratedEvaluator:\n"
            "    def __init__(self):\n"
            "        self._ref = None\n"
            "    def fit(self, reference):\n"
            "        self._store(reference)\n"
            "    def _store(self, reference):\n"
            "        self._ref = reference\n"
            "    def evaluate(self, batch):\n"
            "        return 0.0\n"
        )
        assert rules_in(engine, src) == []

    def test_module_local_base_resolved(self, engine):
        # __init__ in the base, mutation in the subclass: the base's
        # reset must still cover the attribute.
        src = (
            "class _BaseCollector:\n"
            "    def __init__(self):\n"
            "        self._count = 0\n"
            "    def reset(self):\n"
            "        self._count = 0\n"
            "class EagerCollector(_BaseCollector):\n"
            "    def react(self, last):\n"
            "        self._count += 1\n"
        )
        assert rules_in(engine, src) == []

    def test_non_component_class_ignored(self, engine):
        src = (
            "class Cache:\n"
            "    def __init__(self):\n"
            "        self._hits = 0\n"
            "    def get(self, key):\n"
            "        self._hits += 1\n"
        )
        assert rules_in(engine, src) == []

    def test_noqa(self, engine):
        src = _VIOLATING_LIFECYCLE.replace(
            "self._rng = np.random.default_rng(seed)",
            "self._rng = np.random.default_rng(seed)  # repro: noqa[REP005]",
        ).replace(
            "self._round = 0\n    def react",
            "self._round = 0  # repro: noqa[REP005]\n    def react",
        )
        assert rules_in(engine, src) == []
