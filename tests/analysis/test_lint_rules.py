"""Per-rule fixture snippets: one violating, one clean, plus noqa."""

import pytest

from repro.analysis import default_engine


@pytest.fixture()
def engine():
    return default_engine()


def rules_in(engine, source):
    return sorted({f.rule for f in engine.lint_source(source)})


# --------------------------------------------------------------------- #
# REP001 — global/legacy RNG
# --------------------------------------------------------------------- #
class TestRep001:
    def test_stdlib_random_flagged(self, engine):
        assert rules_in(engine, "import random\nx = random.gauss(0, 1)\n") == [
            "REP001"
        ]

    def test_legacy_numpy_flagged(self, engine):
        src = "import numpy as np\nx = np.random.uniform(0, 1)\n"
        assert rules_in(engine, src) == ["REP001"]

    def test_np_random_seed_flagged(self, engine):
        src = "import numpy as np\nnp.random.seed(0)\n"
        assert rules_in(engine, src) == ["REP001"]

    def test_bare_default_rng_flagged(self, engine):
        src = "from numpy.random import default_rng\nr = default_rng()\n"
        assert rules_in(engine, src) == ["REP001"]

    def test_none_seed_flagged(self, engine):
        src = "import numpy as np\nr = np.random.default_rng(None)\n"
        assert rules_in(engine, src) == ["REP001"]

    def test_seeded_default_rng_clean(self, engine):
        src = (
            "import numpy as np\n"
            "r = np.random.default_rng(7)\n"
            "s = np.random.SeedSequence(0)\n"
            "g = np.random.Generator(np.random.PCG64(s))\n"
        )
        assert rules_in(engine, src) == []

    def test_generator_method_clean(self, engine):
        # rng.uniform() is a Generator draw, not the legacy module API.
        src = (
            "import numpy as np\n"
            "rng = np.random.default_rng(3)\n"
            "x = rng.uniform(0, 1)\n"
        )
        assert rules_in(engine, src) == []

    def test_noqa(self, engine):
        src = "import random\nx = random.random()  # repro: noqa[REP001]\n"
        assert rules_in(engine, src) == []


# --------------------------------------------------------------------- #
# REP002 — unstable seed material
# --------------------------------------------------------------------- #
class TestRep002:
    def test_hash_into_seed_assignment(self, engine):
        assert rules_in(engine, "seed = hash('x') % 911\n") == ["REP002"]

    def test_time_into_default_rng(self, engine):
        src = (
            "import time\n"
            "import numpy as np\n"
            "rng = np.random.default_rng(int(time.time()))\n"
        )
        assert rules_in(engine, src) == ["REP002"]

    def test_id_into_seed_keyword(self, engine):
        src = "def make(obj, build):\n    return build(seed=id(obj))\n"
        assert rules_in(engine, src) == ["REP002"]

    def test_hash_inside_fingerprint_function(self, engine):
        src = "def spec_fingerprint(spec):\n    return hash(spec)\n"
        assert rules_in(engine, src) == ["REP002"]

    def test_hash_outside_seed_context_clean(self, engine):
        # hash() for a plain dict lookup is fine; only seed flow is bad.
        src = "def bucket(key, n):\n    return hash(key) % n\n"
        assert rules_in(engine, src) == []

    def test_stable_seed_clean(self, engine):
        src = (
            "import numpy as np\n"
            "seed = np.random.SeedSequence(0).spawn(3)[1]\n"
        )
        assert rules_in(engine, src) == []

    def test_noqa(self, engine):
        src = "seed = hash('x') % 911  # repro: noqa[REP002]\n"
        assert rules_in(engine, src) == []


# --------------------------------------------------------------------- #
# REP003 — unordered canonical iteration
# --------------------------------------------------------------------- #
class TestRep003:
    def test_set_loop_in_fingerprint(self, engine):
        src = (
            "def spec_fingerprint(tags):\n"
            "    out = []\n"
            "    for tag in {t for t in tags}:\n"
            "        out.append(tag)\n"
            "    return out\n"
        )
        assert rules_in(engine, src) == ["REP003"]

    def test_set_into_list_in_state_dict(self, engine):
        src = "def state_dict(names):\n    return list(set(names))\n"
        assert rules_in(engine, src) == ["REP003"]

    def test_set_join_in_cache_key(self, engine):
        src = (
            "def cache_key(parts):\n"
            "    return '|'.join({str(p) for p in parts})\n"
        )
        assert rules_in(engine, src) == ["REP003"]

    def test_sorted_set_clean(self, engine):
        src = (
            "def spec_fingerprint(tags):\n"
            "    return sorted({t for t in tags})\n"
        )
        assert rules_in(engine, src) == []

    def test_set_outside_canonical_function_clean(self, engine):
        src = "def dedupe(xs):\n    return list(set(xs))\n"
        assert rules_in(engine, src) == []

    def test_dict_iteration_clean(self, engine):
        # dicts iterate in insertion order; only sets are unstable.
        src = (
            "def state_dict(parts):\n"
            "    return {k: v for k, v in parts.items()}\n"
        )
        assert rules_in(engine, src) == []

    def test_noqa(self, engine):
        src = (
            "def cache_key(parts):\n"
            "    return list(set(parts))  # repro: noqa[REP003]\n"
        )
        assert rules_in(engine, src) == []


# --------------------------------------------------------------------- #
# REP004 — mutable defaults / shared class state
# --------------------------------------------------------------------- #
class TestRep004:
    def test_mutable_default_arg(self, engine):
        assert rules_in(engine, "def f(x, acc=[]):\n    return acc\n") == [
            "REP004"
        ]

    def test_dict_default_arg(self, engine):
        assert rules_in(engine, "def f(x, acc={}):\n    return acc\n") == [
            "REP004"
        ]

    def test_component_class_mutable_attr(self, engine):
        src = (
            "class HistoryCollector:\n"
            "    seen = []\n"
            "    def react(self, x):\n"
            "        self.seen.append(x)\n"
        )
        assert rules_in(engine, src) == ["REP004"]

    def test_non_component_class_attr_clean(self, engine):
        # Shared state on a non-component registry class is out of scope.
        src = "class Registry:\n    entries = {}\n"
        assert rules_in(engine, src) == []

    def test_none_default_clean(self, engine):
        src = (
            "def f(x, acc=None):\n"
            "    acc = [] if acc is None else acc\n"
            "    return acc\n"
        )
        assert rules_in(engine, src) == []

    def test_immutable_class_attr_clean(self, engine):
        src = "class FooCollector:\n    soft_offset = 0.01\n    name = 'foo'\n"
        assert rules_in(engine, src) == []

    def test_noqa(self, engine):
        src = "def f(x, acc=[]):  # repro: noqa[REP004]\n    return acc\n"
        assert rules_in(engine, src) == []


# --------------------------------------------------------------------- #
# REP005 — unrestored __init__ state
# --------------------------------------------------------------------- #
_VIOLATING_LIFECYCLE = (
    "import numpy as np\n"
    "class DriftAdversary:\n"
    "    def __init__(self, seed):\n"
    "        self._rng = np.random.default_rng(seed)\n"
    "        self._round = 0\n"
    "    def react(self, last):\n"
    "        self._round += 1\n"
    "        return float(self._rng.uniform())\n"
    "    def reset(self):\n"
    "        pass\n"
)

_CLEAN_LIFECYCLE = (
    "import numpy as np\n"
    "class SteadyAdversary:\n"
    "    def __init__(self, seed):\n"
    "        self._seed = seed\n"
    "        self._rng = np.random.default_rng(seed)\n"
    "        self._round = 0\n"
    "    def react(self, last):\n"
    "        self._round += 1\n"
    "        return float(self._rng.uniform())\n"
    "    def reset(self):\n"
    "        self._rng = np.random.default_rng(self._seed)\n"
    "        self._round = 0\n"
)


class TestRep005:
    def test_unrestored_rng_and_counter(self, engine):
        findings = [
            f for f in engine.lint_source(_VIOLATING_LIFECYCLE)
            if f.rule == "REP005"
        ]
        messages = " ".join(f.message for f in findings)
        assert "_rng" in messages and "_round" in messages

    def test_restored_state_clean(self, engine):
        assert rules_in(engine, _CLEAN_LIFECYCLE) == []

    def test_reset_via_helper_counts_as_restored(self, engine):
        src = (
            "import numpy as np\n"
            "class HelperCollector:\n"
            "    def __init__(self, seed):\n"
            "        self._seed = seed\n"
            "        self._rng = np.random.default_rng(seed)\n"
            "    def react(self, last):\n"
            "        return float(self._rng.uniform())\n"
            "    def reset(self):\n"
            "        self._fresh()\n"
            "    def _fresh(self):\n"
            "        self._rng = np.random.default_rng(self._seed)\n"
        )
        assert rules_in(engine, src) == []

    def test_calibration_mutation_not_play(self, engine):
        # fit()-reachable helpers are pre-game calibration by contract.
        src = (
            "class CalibratedEvaluator:\n"
            "    def __init__(self):\n"
            "        self._ref = None\n"
            "    def fit(self, reference):\n"
            "        self._store(reference)\n"
            "    def _store(self, reference):\n"
            "        self._ref = reference\n"
            "    def evaluate(self, batch):\n"
            "        return 0.0\n"
        )
        assert rules_in(engine, src) == []

    def test_module_local_base_resolved(self, engine):
        # __init__ in the base, mutation in the subclass: the base's
        # reset must still cover the attribute.
        src = (
            "class _BaseCollector:\n"
            "    def __init__(self):\n"
            "        self._count = 0\n"
            "    def reset(self):\n"
            "        self._count = 0\n"
            "class EagerCollector(_BaseCollector):\n"
            "    def react(self, last):\n"
            "        self._count += 1\n"
        )
        assert rules_in(engine, src) == []

    def test_non_component_class_ignored(self, engine):
        src = (
            "class Cache:\n"
            "    def __init__(self):\n"
            "        self._hits = 0\n"
            "    def get(self, key):\n"
            "        self._hits += 1\n"
        )
        assert rules_in(engine, src) == []

    def test_noqa(self, engine):
        src = _VIOLATING_LIFECYCLE.replace(
            "self._rng = np.random.default_rng(seed)",
            "self._rng = np.random.default_rng(seed)  # repro: noqa[REP005]",
        ).replace(
            "self._round = 0\n    def react",
            "self._round = 0  # repro: noqa[REP005]\n    def react",
        )
        assert rules_in(engine, src) == []


# --------------------------------------------------------------------- #
# REP003 interprocedural — taint through local helpers and methods
# --------------------------------------------------------------------- #
class TestRep003Interprocedural:
    def test_helper_returning_set_iterated(self, engine):
        src = (
            "def _parts(doc):\n"
            "    return {k for k in doc}\n"
            "def fingerprint(doc):\n"
            "    return '|'.join(_parts(doc))\n"
        )
        assert rules_in(engine, src) == ["REP003"]

    def test_helper_chain_two_deep(self, engine):
        # _parts -> _raw_parts: the set travels two helper hops.
        src = (
            "def _raw_parts(doc):\n"
            "    return set(doc)\n"
            "def _parts(doc):\n"
            "    return _raw_parts(doc)\n"
            "def fingerprint(doc):\n"
            "    out = []\n"
            "    for part in _parts(doc):\n"
            "        out.append(part)\n"
            "    return out\n"
        )
        assert rules_in(engine, src) == ["REP003"]

    def test_self_method_returning_set(self, engine):
        src = (
            "class Store:\n"
            "    def _keys(self):\n"
            "        return {k for k in self._docs}\n"
            "    def state_dict(self):\n"
            "        return list(self._keys())\n"
        )
        assert rules_in(engine, src) == ["REP003"]

    def test_helper_iterating_set_unordered(self, engine):
        # The helper launders the iteration, not the instability.
        src = (
            "def _render(parts):\n"
            "    return [p for p in parts]\n"
            "def cache_key(doc):\n"
            "    return _render({k for k in doc})\n"
        )
        assert rules_in(engine, src) == ["REP003"]

    def test_sorted_helper_result_clean(self, engine):
        src = (
            "def _parts(doc):\n"
            "    return {k for k in doc}\n"
            "def fingerprint(doc):\n"
            "    return '|'.join(sorted(_parts(doc)))\n"
        )
        assert rules_in(engine, src) == []

    def test_helper_sorting_internally_clean(self, engine):
        src = (
            "def _render(parts):\n"
            "    return [p for p in sorted(parts)]\n"
            "def cache_key(doc):\n"
            "    return _render({k for k in doc})\n"
        )
        assert rules_in(engine, src) == []

    def test_local_bound_to_set_returning_helper(self, engine):
        src = (
            "def _parts(doc):\n"
            "    return {k for k in doc}\n"
            "def spec_hash(doc):\n"
            "    parts = _parts(doc)\n"
            "    return ','.join(parts)\n"
        )
        assert rules_in(engine, src) == ["REP003"]

    def test_outside_canonical_function_clean(self, engine):
        # The interprocedural sinks still apply only inside
        # canonicalizing functions.
        src = (
            "def _parts(doc):\n"
            "    return {k for k in doc}\n"
            "def summarize(doc):\n"
            "    return list(_parts(doc))\n"
        )
        assert rules_in(engine, src) == []


# --------------------------------------------------------------------- #
# REP006 — fusion purity
# --------------------------------------------------------------------- #
_MUTABLE_PARAM_LANES = (
    "import numpy as np\n"
    "class EmaLanes:\n"
    "    fusion_family = 'ema'\n"
    "    fusion_params = ('alpha', 'level')\n"
    "    def __init__(self, instances):\n"
    "        self._alpha = np.array([inst.alpha for inst in instances])\n"
    "        self._level = np.array([inst.level for inst in instances])\n"
    "    def react_many(self, last):\n"
    "        self._level = self._alpha * last + self._level\n"
    "        return self._level\n"
)


class TestRep006:
    def test_mutated_param_column_flagged(self, engine):
        assert rules_in(engine, _MUTABLE_PARAM_LANES) == ["REP006"]

    def test_fusion_state_declaration_clean(self, engine):
        src = _MUTABLE_PARAM_LANES.replace(
            "    fusion_params = ('alpha', 'level')\n",
            "    fusion_params = ('alpha',)\n"
            "    fusion_state = ('level',)\n",
        )
        assert rules_in(engine, src) == []

    def test_non_tuple_declaration_flagged(self, engine):
        src = (
            "class BadLanes:\n"
            "    fusion_family = 'bad'\n"
            "    fusion_params = ['alpha']\n"
        )
        assert rules_in(engine, src) == ["REP006"]

    def test_duplicate_column_flagged(self, engine):
        src = (
            "class DupLanes:\n"
            "    fusion_family = 'dup'\n"
            "    fusion_params = ('alpha', 'alpha')\n"
        )
        assert rules_in(engine, src) == ["REP006"]

    def test_state_mutating_closure_flagged(self, engine):
        src = (
            "class ClosureLanes:\n"
            "    fusion_family = 'closure'\n"
            "    fusion_params = ()\n"
            "    def __init__(self):\n"
            "        self._count = 0\n"
            "    def compile_program(self):\n"
            "        def program(batch):\n"
            "            self._count += 1\n"
            "            return batch\n"
            "        return program\n"
        )
        assert rules_in(engine, src) == ["REP006"]

    def test_pure_closure_clean(self, engine):
        src = (
            "class PureLanes:\n"
            "    fusion_family = 'pure'\n"
            "    fusion_params = ('gain',)\n"
            "    def __init__(self, instances):\n"
            "        self._gain = [inst.gain for inst in instances]\n"
            "    def compile_program(self):\n"
            "        gain = self._gain\n"
            "        def program(batch):\n"
            "            return [g * batch for g in gain]\n"
            "        return program\n"
        )
        assert rules_in(engine, src) == []

    def test_empty_family_not_scoped(self, engine):
        # The fallback/base declaration shape: family '' never fuses.
        src = _MUTABLE_PARAM_LANES.replace("'ema'", "''")
        assert rules_in(engine, src) == []


# --------------------------------------------------------------------- #
# REP007 — deferred-writeback safety
# --------------------------------------------------------------------- #
class TestRep007:
    def test_play_path_tenant_write_flagged(self, engine):
        src = (
            "class EagerLanes:\n"
            "    fusion_family = 'eager'\n"
            "    fusion_params = ()\n"
            "    def __init__(self, instances):\n"
            "        self.instances = list(instances)\n"
            "    def react_many(self, out):\n"
            "        for r, inst in enumerate(self.instances):\n"
            "            inst._current = out[r]\n"
            "        return out\n"
            "    def finalize(self):\n"
            "        pass\n"
        )
        assert rules_in(engine, src) == ["REP007"]

    def test_finalize_helper_write_clean(self, engine):
        src = (
            "class DeferredLanes:\n"
            "    fusion_family = 'deferred'\n"
            "    fusion_params = ()\n"
            "    def __init__(self, instances):\n"
            "        self.instances = list(instances)\n"
            "    def finalize(self):\n"
            "        self._write_back()\n"
            "    def _write_back(self):\n"
            "        for inst in self.instances:\n"
            "            inst._current = 0.0\n"
        )
        assert rules_in(engine, src) == []

    def test_bit_state_copy_flagged(self, engine):
        src = (
            "import numpy as np\n"
            "def clone(rng):\n"
            "    shadow = np.random.PCG64()\n"
            "    shadow.state = rng.bit_generator.state\n"
            "    return np.random.Generator(shadow)\n"
        )
        assert rules_in(engine, src) == ["REP007"]

    def test_rng_state_helpers_exempt(self, engine):
        src = (
            "import copy\n"
            "def rng_state(rng):\n"
            "    return copy.deepcopy(rng.bit_generator.state)\n"
            "def set_rng_state(rng, state):\n"
            "    rng.bit_generator.state = copy.deepcopy(state)\n"
        )
        assert rules_in(engine, src) == []

    def test_unrelated_state_attribute_clean(self, engine):
        # `.state` on a non-bit-generator object is not RNG bit-state.
        src = (
            "def snapshot(machine):\n"
            "    return machine.state\n"
        )
        assert rules_in(engine, src) == []


# --------------------------------------------------------------------- #
# REP008 — snapshot completeness
# --------------------------------------------------------------------- #
_FORGETFUL = (
    "class ForgetfulCollector:\n"
    "    def __init__(self, t_th):\n"
    "        self.t_th = float(t_th)\n"
    "        self._streak = 0\n"
    "    def react(self, last):\n"
    "        self._streak += 1\n"
    "        return self.t_th\n"
    "    def reset(self):\n"
    "        self._streak = 0\n"
    "    def export_state(self):\n"
    "        return {}\n"
    "    def import_state(self, state):\n"
    "        pass\n"
)


class TestRep008:
    def test_uncovered_play_state_flagged(self, engine):
        assert rules_in(engine, _FORGETFUL) == ["REP008"]

    def test_export_read_covers(self, engine):
        src = _FORGETFUL.replace(
            "        return {}\n",
            "        return {'streak': self._streak}\n",
        )
        assert rules_in(engine, src) == []

    def test_import_assign_covers(self, engine):
        src = _FORGETFUL.replace(
            "        pass\n",
            "        self._streak = int(state['streak'])\n",
        )
        assert rules_in(engine, src) == []

    def test_export_helper_read_covers(self, engine):
        # Coverage resolves through export_state's own helpers.
        src = _FORGETFUL.replace(
            "        return {}\n",
            "        return self._doc()\n"
            "    def _doc(self):\n"
            "        return {'streak': self._streak}\n",
        )
        assert rules_in(engine, src) == []

    def test_no_export_surface_not_scoped(self, engine):
        # Without export_state the class is REP005's problem, not ours.
        src = (
            "class PlainCollector:\n"
            "    def __init__(self):\n"
            "        self._streak = 0\n"
            "    def react(self, last):\n"
            "        self._streak += 1\n"
            "    def reset(self):\n"
            "        self._streak = 0\n"
        )
        assert rules_in(engine, src) == []

    def test_constant_attr_not_flagged(self, engine):
        # t_th is never play-mutated: no coverage demanded.
        src = _FORGETFUL.replace(
            "        self._streak += 1\n", "        pass\n"
        ).replace("        self._streak = 0\n", "        pass\n")
        assert rules_in(engine, src) == []
