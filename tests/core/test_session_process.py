"""Cross-process snapshot migration over the full shipped matrix.

The snapshot contract the ISSUE pins: a session suspended mid-game can
be migrated to *another process* and resumed byte-identically.  This
test plays the complete collector × adversary × judge matrix (with
jittered injectors and noisy judges, so every RNG consumer is live),
snapshots every game at round 3, ships all blobs to a freshly spawned
Python interpreter, finishes every game there, and compares each
continued result byte for byte against the uninterrupted run.
"""

import os
import pickle
import subprocess
import sys

import pytest

from repro.core.session import GameSession

from test_session import (
    MATRIX_ADVERSARIES,
    MATRIX_COLLECTORS,
    MATRIX_JUDGES,
    matrix_spec,
)

#: The child interpreter's continuation program: restore every blob,
#: play each session to its horizon, and report the full observable
#: outcome (records, termination, raw retained bytes).
_CHILD_PROGRAM = """
import pickle, sys
from repro.core.session import GameSession

with open(sys.argv[1], "rb") as handle:
    blobs = pickle.load(handle)

outcomes = []
for blob in blobs:
    session = GameSession.restore(blob)
    while not session.done:
        session.submit()
    result = session.close()
    outcomes.append(
        {
            "records": result.to_records(),
            "termination": result.termination_round,
            "collector": result.collector_name,
            "adversary": result.adversary_name,
            "retained": result.retained_data().tobytes(),
            "retained_shape": result.retained_data().shape,
        }
    )
with open(sys.argv[2], "wb") as handle:
    pickle.dump(outcomes, handle)
"""


def _outcome(result) -> dict:
    return {
        "records": result.to_records(),
        "termination": result.termination_round,
        "collector": result.collector_name,
        "adversary": result.adversary_name,
        "retained": result.retained_data().tobytes(),
        "retained_shape": result.retained_data().shape,
    }


@pytest.mark.slow
def test_full_matrix_snapshot_survives_process_migration(tmp_path):
    cells = [
        (collector, adversary, judge)
        for collector in sorted(MATRIX_COLLECTORS)
        for adversary in sorted(MATRIX_ADVERSARIES)
        for judge in sorted(MATRIX_JUDGES)
    ]

    blobs = []
    expected = []
    for index, (collector, adversary, judge) in enumerate(cells):
        spec = matrix_spec(collector, adversary, judge, seed=1000 + index)
        expected.append(_outcome(spec.play()))
        session = spec.session()
        for _ in range(3):
            session.submit()
        blobs.append(session.snapshot())

    blob_path = tmp_path / "sessions.pkl"
    out_path = tmp_path / "continued.pkl"
    blob_path.write_bytes(pickle.dumps(blobs))

    # A genuinely fresh interpreter: no shared memory, no warm caches —
    # only the snapshot blobs cross the boundary.
    env = dict(os.environ)
    src_dir = os.path.dirname(
        os.path.dirname(os.path.abspath(sys.modules["repro"].__file__))
    )
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    subprocess.run(
        [sys.executable, "-c", _CHILD_PROGRAM, str(blob_path), str(out_path)],
        env=env,
        check=True,
        timeout=600,
    )

    continued = pickle.loads(out_path.read_bytes())
    assert len(continued) == len(cells)
    mismatches = [
        f"{cells[i]}"
        for i in range(len(cells))
        if continued[i] != expected[i]
    ]
    assert not mismatches, (
        f"{len(mismatches)} matrix cells diverged after cross-process "
        f"restore: {mismatches[:5]}"
    )
