"""Tests for the batched replication engine (BatchedCollectionGame).

The non-negotiable contract: every rep of a batched run is byte-identical
to the corresponding solo CollectionGame run seeded from the same
SeedSequence children.  The matrix below covers every shipped strategy
pair, both judges (noisy seeds intact), lean and full boards, reference
and batch anchoring, and non-vectorizable user strategies exercising the
per-rep fallback loop (including ragged inject/skip rounds).
"""

import json

import numpy as np
import pytest
from numpy.random import SeedSequence

from repro.core.engine import (
    BandExcessJudge,
    BatchedCollectionGame,
    CollectionGame,
    NoisyPositionJudge,
)
from repro.core.quality import MeanShiftEvaluator
from repro.core.strategies import (
    ElasticAdversary,
    ElasticCollector,
    FixedAdversary,
    GenerousCollector,
    JustBelowAdversary,
    MirrorCollector,
    MixedAdversary,
    MixedStrategyTrigger,
    NullAdversary,
    OstrichCollector,
    QualityTrigger,
    StaticCollector,
    TitForTatCollector,
    TitForTwoTatsCollector,
    UniformRangeAdversary,
    adversary_lanes,
    collector_lanes,
)
from repro.core.strategies.base import (
    AdversaryStrategy,
    CollectorStrategy,
    RoundObservationBatch,
)
from repro.core.trimming import RadialTrimmer, ValueTrimmer
from repro.streams import ArrayStream, PoisonInjector

N_REPS = 4
ROUNDS = 12


def _child(root: SeedSequence, channel: int) -> SeedSequence:
    return SeedSequence(
        entropy=root.entropy, spawn_key=tuple(root.spawn_key) + (channel,)
    )


def _roots():
    return [SeedSequence(17, spawn_key=(0, 0, 0, rep)) for rep in range(N_REPS)]


@pytest.fixture(scope="module")
def data_2d():
    rng = np.random.default_rng(5)
    return rng.normal(size=(2000, 2)) + 4.0


@pytest.fixture(scope="module")
def data_1d():
    rng = np.random.default_rng(6)
    return rng.lognormal(size=2000)


def _assert_batched_matches_solo(
    make_collector,
    make_adversary,
    data,
    trimmer_cls,
    *,
    anchor="reference",
    judge_maker=None,
    store_retained=True,
    ratio=0.2,
    rounds=ROUNDS,
):
    """Play solo and batched from the same seed children; compare reps."""
    mode = "radial" if np.ndim(data) == 2 else "quantile"
    roots = _roots()

    def solo(rep):
        root = roots[rep]
        return CollectionGame(
            source=ArrayStream(data, batch_size=80, seed=_child(root, 0)),
            collector=make_collector(_child(root, 1)),
            adversary=make_adversary(_child(root, 2)),
            injector=PoisonInjector(ratio, mode=mode, seed=_child(root, 3)),
            trimmer=trimmer_cls(),
            reference=data,
            judge=None if judge_maker is None else judge_maker(_child(root, 4)),
            rounds=rounds,
            anchor=anchor,
            store_retained=store_retained,
        ).run()

    batched = BatchedCollectionGame(
        source=ArrayStream(
            data, batch_size=80, seed=[_child(r, 0) for r in roots]
        ),
        collectors=[make_collector(_child(r, 1)) for r in roots],
        adversaries=[make_adversary(_child(r, 2)) for r in roots],
        injectors=[
            PoisonInjector(ratio, mode=mode, seed=_child(r, 3)) for r in roots
        ],
        trimmer=trimmer_cls(),
        reference=data,
        judges=(
            None
            if judge_maker is None
            else [judge_maker(_child(r, 4)) for r in roots]
        ),
        rounds=rounds,
        anchor=anchor,
        store_retained=store_retained,
    ).run()

    assert batched.n_reps == N_REPS
    assert batched.rounds == rounds
    for rep in range(N_REPS):
        solo_result = solo(rep)
        rep_result = batched.result(rep)
        assert json.dumps(solo_result.to_records(), sort_keys=True) == (
            json.dumps(rep_result.to_records(), sort_keys=True)
        )
        assert solo_result.termination_round == rep_result.termination_round
        assert solo_result.collector_name == rep_result.collector_name
        assert solo_result.adversary_name == rep_result.adversary_name
        assert (
            solo_result.poison_retained_fraction()
            == rep_result.poison_retained_fraction()
        )
        assert solo_result.trimmed_fraction() == rep_result.trimmed_fraction()
        assert (
            solo_result.threshold_path().tobytes()
            == rep_result.threshold_path().tobytes()
        )
        assert (
            solo_result.injection_path().tobytes()
            == rep_result.injection_path().tobytes()
        )
        if store_retained:
            assert (
                solo_result.retained_data().tobytes()
                == rep_result.retained_data().tobytes()
            )
    return batched


class TestShippedStrategyPairs:
    """Byte-equality across the shipped strategy matrix."""

    def test_titfortat_vs_extreme(self, data_2d):
        _assert_batched_matches_solo(
            lambda s: TitForTatCollector(0.9, trigger=None),
            lambda s: FixedAdversary(0.99),
            data_2d,
            RadialTrimmer,
        )

    def test_titfortat_quality_trigger(self, data_2d):
        _assert_batched_matches_solo(
            lambda s: TitForTatCollector(
                0.9, trigger=QualityTrigger(reference_score=0.0, redundancy=0.04)
            ),
            lambda s: FixedAdversary(0.95),
            data_2d,
            RadialTrimmer,
            ratio=0.3,
        )

    def test_titfortat_mixed_trigger_vs_mixed(self, data_1d):
        _assert_batched_matches_solo(
            lambda s: TitForTatCollector(
                0.9, trigger=MixedStrategyTrigger(0.5, warmup=3)
            ),
            lambda s: MixedAdversary(0.5, seed=s),
            data_1d,
            ValueTrimmer,
            judge_maker=lambda s: NoisyPositionJudge(boundary=0.905, seed=s),
            rounds=25,
        )

    def test_elastic_vs_elastic(self, data_2d):
        _assert_batched_matches_solo(
            lambda s: ElasticCollector(0.9, 0.5),
            lambda s: ElasticAdversary(0.9, 0.5),
            data_2d,
            RadialTrimmer,
        )

    def test_elastic_relaxation_rule(self, data_1d):
        _assert_batched_matches_solo(
            lambda s: ElasticCollector(0.9, 0.3, rule="relaxation"),
            lambda s: ElasticAdversary(0.9, 0.3, rule="relaxation"),
            data_1d,
            ValueTrimmer,
        )

    def test_elastic_quality_fallback_vs_null(self, data_2d):
        # NullAdversary → injection is None → Algorithm 2 quality rule.
        _assert_batched_matches_solo(
            lambda s: ElasticCollector(0.9, 0.5),
            lambda s: NullAdversary(),
            data_2d,
            RadialTrimmer,
        )

    def test_ostrich_vs_null(self, data_2d):
        _assert_batched_matches_solo(
            lambda s: OstrichCollector(),
            lambda s: NullAdversary(),
            data_2d,
            RadialTrimmer,
        )

    def test_static_vs_uniform_range(self, data_2d):
        _assert_batched_matches_solo(
            lambda s: StaticCollector(0.9),
            lambda s: UniformRangeAdversary(seed=s),
            data_2d,
            RadialTrimmer,
        )

    def test_static_vs_just_below(self, data_1d):
        _assert_batched_matches_solo(
            lambda s: StaticCollector(0.9),
            lambda s: JustBelowAdversary(0.9),
            data_1d,
            ValueTrimmer,
        )

    def test_mirror_vs_mixed_noisy_band(self, data_1d):
        _assert_batched_matches_solo(
            lambda s: MirrorCollector(0.9),
            lambda s: MixedAdversary(0.3, seed=s),
            data_1d,
            ValueTrimmer,
            judge_maker=lambda s: BandExcessJudge(noise_sigma=0.05, seed=s),
        )

    def test_generous_vs_just_below_noisy_band(self, data_1d):
        _assert_batched_matches_solo(
            lambda s: GenerousCollector(0.9, seed=s),
            lambda s: JustBelowAdversary(0.9),
            data_1d,
            ValueTrimmer,
            judge_maker=lambda s: BandExcessJudge(noise_sigma=0.05, seed=s),
        )

    def test_two_tats_vs_mixed(self, data_1d):
        _assert_batched_matches_solo(
            lambda s: TitForTwoTatsCollector(0.9),
            lambda s: MixedAdversary(0.3, seed=s),
            data_1d,
            ValueTrimmer,
            judge_maker=lambda s: BandExcessJudge(noise_sigma=0.05, seed=s),
        )


class TestModesAndBoards:
    """Anchoring modes, lean boards and judges."""

    def test_batch_anchor(self, data_1d):
        _assert_batched_matches_solo(
            lambda s: ElasticCollector(0.9, 0.5),
            lambda s: ElasticAdversary(0.9, 0.5),
            data_1d,
            ValueTrimmer,
            anchor="batch",
        )

    def test_lean_board(self, data_1d):
        batched = _assert_batched_matches_solo(
            lambda s: TitForTatCollector(0.9, trigger=None),
            lambda s: FixedAdversary(0.99),
            data_1d,
            ValueTrimmer,
            store_retained=False,
        )
        with pytest.raises(ValueError, match="lean"):
            batched.result(0).retained_data()

    def test_noisy_band_judge_seeds_intact(self, data_1d):
        _assert_batched_matches_solo(
            lambda s: MirrorCollector(0.9),
            lambda s: FixedAdversary(0.92),
            data_1d,
            ValueTrimmer,
            judge_maker=lambda s: BandExcessJudge(noise_sigma=0.08, seed=s),
        )

    def test_noisy_position_judge_seeds_intact(self, data_1d):
        _assert_batched_matches_solo(
            lambda s: MirrorCollector(0.9),
            lambda s: MixedAdversary(0.6, seed=s),
            data_1d,
            ValueTrimmer,
            judge_maker=lambda s: NoisyPositionJudge(boundary=0.905, seed=s),
        )

    def test_zero_attack_ratio(self, data_2d):
        _assert_batched_matches_solo(
            lambda s: ElasticCollector(0.9, 0.5),
            lambda s: FixedAdversary(0.99),
            data_2d,
            RadialTrimmer,
            ratio=0.0,
        )

    def test_rerun_replays_identically(self, data_1d):
        roots = _roots()
        game = BatchedCollectionGame(
            source=ArrayStream(
                data_1d, batch_size=80, seed=[_child(r, 0) for r in roots]
            ),
            collectors=[MirrorCollector(0.9) for _ in roots],
            adversaries=[
                MixedAdversary(0.4, seed=_child(r, 2)) for r in roots
            ],
            injectors=[
                PoisonInjector(0.2, mode="quantile", seed=_child(r, 3))
                for r in roots
            ],
            trimmer=ValueTrimmer(),
            reference=data_1d,
            judges=[
                BandExcessJudge(noise_sigma=0.05, seed=_child(r, 4))
                for r in roots
            ],
            rounds=6,
        )
        first = game.run()
        second = game.run()
        for rep in range(N_REPS):
            assert (
                first.result(rep).to_records()
                == second.result(rep).to_records()
            )


class _RandomUserCollector(CollectorStrategy):
    """Non-vectorizable: random walk thresholds from a per-rep stream."""

    name = "user-random"

    def __init__(self, seed=None):
        self._seed = seed
        self._rng = np.random.default_rng(seed)

    def reset(self):
        self._rng = np.random.default_rng(self._seed)

    def first(self):
        return 0.93

    def react(self, last):
        return float(0.88 + 0.1 * self._rng.random())


class _SometimesAdversary(AdversaryStrategy):
    """Non-vectorizable: injects only on random rounds (ragged stacks)."""

    name = "user-sometimes"

    def __init__(self, seed=None):
        self._seed = seed
        self._rng = np.random.default_rng(seed)

    def reset(self):
        self._rng = np.random.default_rng(self._seed)

    def first(self):
        return 0.95

    def react(self, last):
        return None if self._rng.random() < 0.5 else 0.92


class _SubclassedElastic(ElasticCollector):
    """Subclass overriding react: must not take the vectorized lane."""

    def react(self, last):
        return min(1.0, super().react(last) + 0.001)


class TestFallbackLoop:
    """User strategies run through the documented per-rep fallback."""

    def test_user_strategies_and_ragged_rounds(self, data_1d):
        _assert_batched_matches_solo(
            lambda s: _RandomUserCollector(seed=s),
            lambda s: _SometimesAdversary(seed=s),
            data_1d,
            ValueTrimmer,
            judge_maker=lambda s: BandExcessJudge(noise_sigma=0.05, seed=s),
            rounds=20,
        )

    def test_shipped_subclass_falls_back(self, data_1d):
        lanes = collector_lanes([_SubclassedElastic(0.9, 0.5) for _ in range(3)])
        assert lanes.vectorized is False
        _assert_batched_matches_solo(
            lambda s: _SubclassedElastic(0.9, 0.5),
            lambda s: FixedAdversary(0.95),
            data_1d,
            ValueTrimmer,
        )

    def test_mismatched_params_pack_into_columns(self):
        # Since the fusion refactor, heterogeneous parameters no longer
        # force the fallback loop: they pack into (L,) columns.
        mixed = [ElasticCollector(0.9, 0.5), ElasticCollector(0.8, 0.1)]
        lanes = collector_lanes(mixed)
        assert lanes.vectorized is True
        np.testing.assert_array_equal(lanes._k, [0.5, 0.1])
        np.testing.assert_array_equal(lanes._t_th, [0.9, 0.8])

    def test_shipped_strategies_vectorize(self):
        assert collector_lanes(
            [TitForTatCollector(0.9, trigger=None) for _ in range(3)]
        ).vectorized
        assert collector_lanes(
            [ElasticCollector(0.9, 0.5) for _ in range(3)]
        ).vectorized
        assert adversary_lanes([NullAdversary() for _ in range(3)]).vectorized
        assert adversary_lanes(
            [MixedAdversary(0.5, seed=s) for s in range(3)]
        ).vectorized

    def test_fallback_quality_evaluator(self, data_1d):
        """A non-TailMass evaluator routes through the per-rep loop."""
        roots = _roots()

        def solo(rep):
            root = roots[rep]
            return CollectionGame(
                source=ArrayStream(data_1d, batch_size=80, seed=_child(root, 0)),
                collector=ElasticCollector(0.9, 0.5),
                adversary=FixedAdversary(0.99),
                injector=PoisonInjector(
                    0.2, mode="quantile", seed=_child(root, 3)
                ),
                trimmer=ValueTrimmer(),
                reference=data_1d,
                quality_evaluator=MeanShiftEvaluator(),
                rounds=6,
            ).run()

        batched = BatchedCollectionGame(
            source=ArrayStream(
                data_1d, batch_size=80, seed=[_child(r, 0) for r in roots]
            ),
            collectors=[ElasticCollector(0.9, 0.5) for _ in roots],
            adversaries=[FixedAdversary(0.99) for _ in roots],
            injectors=[
                PoisonInjector(0.2, mode="quantile", seed=_child(r, 3))
                for r in roots
            ],
            trimmer=ValueTrimmer(),
            reference=data_1d,
            quality_evaluators=[MeanShiftEvaluator() for _ in roots],
            rounds=6,
        ).run()
        for rep in range(N_REPS):
            assert solo(rep).to_records() == batched.result(rep).to_records()


class _TightenedTrimmer(ValueTrimmer):
    """Custom trim() override: exercises the per-rep trim_many loop."""

    def trim(self, batch, percentile):
        return ValueTrimmer.trim(self, batch, max(0.0, percentile - 0.02))


class _DriftingTrimmer(ValueTrimmer):
    """STATEFUL custom trimmer: cutoff tightens with every trim() call.

    Byte-identity to solo play requires one instance per rep — the
    engine must route each rep's rounds through its own instance when
    given a trimmer sequence.
    """

    def __init__(self):
        super().__init__()
        self._calls = 0

    def trim(self, batch, percentile):
        self._calls += 1
        drift = min(0.05, 0.002 * self._calls)
        return ValueTrimmer.trim(self, batch, max(0.0, percentile - drift))


class TestCustomTrimmer:
    def test_trim_override_routes_per_rep(self, data_1d):
        lanes_report = _TightenedTrimmer().trim_many(
            np.tile(data_1d[:50], (3, 1)), np.array([0.9, 0.95, 1.0])
        )
        assert lanes_report.kept.shape == (3, 50)
        _assert_batched_matches_solo(
            lambda s: StaticCollector(0.9),
            lambda s: FixedAdversary(0.99),
            data_1d,
            _TightenedTrimmer,
        )

    def test_stateful_trimmer_sequence_isolates_reps(self, data_1d):
        """A trimmer *sequence* gives each rep its own state path."""
        roots = _roots()

        def solo(rep):
            root = roots[rep]
            return CollectionGame(
                source=ArrayStream(data_1d, batch_size=80, seed=_child(root, 0)),
                collector=StaticCollector(0.9),
                adversary=FixedAdversary(0.99),
                injector=PoisonInjector(
                    0.2, mode="quantile", seed=_child(root, 3)
                ),
                trimmer=_DriftingTrimmer(),
                reference=data_1d,
                rounds=8,
            ).run()

        batched = BatchedCollectionGame(
            source=ArrayStream(
                data_1d, batch_size=80, seed=[_child(r, 0) for r in roots]
            ),
            collectors=[StaticCollector(0.9) for _ in roots],
            adversaries=[FixedAdversary(0.99) for _ in roots],
            injectors=[
                PoisonInjector(0.2, mode="quantile", seed=_child(r, 3))
                for r in roots
            ],
            trimmer=[_DriftingTrimmer() for _ in roots],
            reference=data_1d,
            rounds=8,
        ).run()
        for rep in range(N_REPS):
            assert solo(rep).to_records() == batched.result(rep).to_records()

    def test_runtime_builds_per_rep_trimmers(self, data_1d):
        """Sweep cells with a stateful custom trimmer batch correctly."""
        from repro.runtime import (
            ComponentSpec,
            StrategyPair,
            SweepGrid,
            SweepRunner,
        )

        class _DriftingRadial(RadialTrimmer):
            def __init__(self):
                super().__init__()
                self._calls = 0

            def trim(self, batch, percentile):
                self._calls += 1
                drift = min(0.05, 0.002 * self._calls)
                return RadialTrimmer.trim(
                    self, batch, max(0.0, percentile - drift)
                )

        # The factory must be importable for specs in general, but the
        # serial path never pickles — keep the sweep in-process.
        grid = SweepGrid(
            pairs=(
                StrategyPair(
                    "static-vs-extreme",
                    ComponentSpec(StaticCollector, {"threshold": 0.9}),
                    ComponentSpec(FixedAdversary, {"percentile": 0.99}),
                ),
            ),
            repetitions=3,
            rounds=5,
            batch_size=60,
            trimmer=ComponentSpec(_DriftingRadial),
            store_retained=False,
            seed=0,
        )
        solo = SweepRunner().run_grid(grid)
        batched = SweepRunner(rep_batch="auto").run_grid(grid)
        assert solo == batched


class TestValidation:
    def test_rejects_mismatched_lengths(self, data_1d):
        roots = _roots()
        with pytest.raises(ValueError, match="one entry per repetition"):
            BatchedCollectionGame(
                source=ArrayStream(
                    data_1d, batch_size=80, seed=[_child(r, 0) for r in roots]
                ),
                collectors=[OstrichCollector() for _ in roots],
                adversaries=[NullAdversary()],
                injectors=[PoisonInjector(0.2) for _ in roots],
                trimmer=ValueTrimmer(),
                reference=data_1d,
            )

    def test_rejects_wrong_lane_count(self, data_1d):
        with pytest.raises(ValueError, match="lanes"):
            BatchedCollectionGame(
                source=ArrayStream(data_1d, batch_size=80, seed=[0, 1]),
                collectors=[OstrichCollector() for _ in range(3)],
                adversaries=[NullAdversary() for _ in range(3)],
                injectors=[PoisonInjector(0.2) for _ in range(3)],
                trimmer=ValueTrimmer(),
                reference=data_1d,
            )

    def test_accepts_list_of_solo_sources(self, data_1d):
        roots = _roots()
        batched = BatchedCollectionGame(
            source=[
                ArrayStream(data_1d, batch_size=80, seed=_child(r, 0))
                for r in roots
            ],
            collectors=[OstrichCollector() for _ in roots],
            adversaries=[FixedAdversary(0.99) for _ in roots],
            injectors=[
                PoisonInjector(0.2, mode="quantile", seed=_child(r, 3))
                for r in roots
            ],
            trimmer=ValueTrimmer(),
            reference=data_1d,
            rounds=4,
        ).run()
        solo = CollectionGame(
            source=ArrayStream(data_1d, batch_size=80, seed=_child(roots[1], 0)),
            collector=OstrichCollector(),
            adversary=FixedAdversary(0.99),
            injector=PoisonInjector(0.2, mode="quantile", seed=_child(roots[1], 3)),
            trimmer=ValueTrimmer(),
            reference=data_1d,
            rounds=4,
        ).run()
        assert solo.to_records() == batched.result(1).to_records()


class TestObservationBatch:
    def test_rep_slices_scalar_observation(self):
        batch = RoundObservationBatch(
            index=3,
            trim_percentile=np.array([0.9, 0.95]),
            injection_percentile=np.array([np.nan, 0.92]),
            quality=np.array([0.1, 0.2]),
            observed_poison_ratio=np.array([0.0, 0.05]),
            betrayal=np.array([False, True]),
        )
        assert batch.n_reps == 2
        first = batch.rep(0)
        assert first.index == 3
        assert first.injection_percentile is None
        assert batch.rep(1).injection_percentile == 0.92
        assert batch.rep(1).betrayal is True
