"""Tests for repro.core.stackelberg — leader-follower equilibria and dynamics."""

import numpy as np
import pytest

from repro.core.payoffs import PayoffModel
from repro.core.stackelberg import (
    BestResponseDynamics,
    linear_response_fixed_point,
    solve_stackelberg,
)


class TestSolveStackelberg:
    def test_solution_in_strategy_interval(self):
        model = PayoffModel()
        sol = solve_stackelberg(model, grid_size=101)
        x_l, x_r = model.strategy_interval()
        assert x_l <= sol.leader_action <= x_r
        assert x_l <= sol.follower_action <= x_r

    def test_leader_payoff_is_best_over_grid(self):
        model = PayoffModel()
        sol = solve_stackelberg(model, grid_size=51)
        # Re-derive by brute force: no leader action should beat it.
        from repro.core.domain import percentile_grid

        x_l, x_r = model.strategy_interval()
        grid = percentile_grid(x_l, x_r, 51)
        adv, col = model.payoff_matrix(grid, grid)
        best = -np.inf
        for j in range(grid.size):
            follower = np.flatnonzero(np.isclose(adv[:, j], adv[:, j].max()))
            best = max(best, col[follower, j].min())
        assert sol.leader_payoff == pytest.approx(best)

    def test_pessimistic_not_better_than_optimistic(self):
        model = PayoffModel()
        pess = solve_stackelberg(model, grid_size=51, tie_break="pessimistic")
        opt = solve_stackelberg(model, grid_size=51, tie_break="optimistic")
        assert pess.leader_payoff <= opt.leader_payoff + 1e-12

    def test_invalid_tie_break_rejected(self):
        with pytest.raises(ValueError):
            solve_stackelberg(PayoffModel(), tie_break="?")

    def test_follower_best_responds(self):
        model = PayoffModel()
        sol = solve_stackelberg(model, grid_size=101)
        # The follower's payoff at the solution is (weakly) maximal against
        # the leader's action over the same grid.
        from repro.core.domain import percentile_grid

        x_l, x_r = model.strategy_interval()
        grid = percentile_grid(x_l, x_r, 101)
        payoffs = [model.profile_payoffs(x, sol.leader_action)[0] for x in grid]
        assert sol.follower_payoff == pytest.approx(max(payoffs), abs=1e-9)


def _reference_solve(model, grid_size, tie_break):
    """The pre-vectorization per-column loop, kept as ground truth."""
    from repro.core.domain import percentile_grid

    x_l, x_r = model.strategy_interval()
    grid = percentile_grid(x_l, x_r, grid_size)
    adv_payoffs, col_payoffs = model.payoff_matrix(grid, grid)
    best_leader_payoff = -np.inf
    best = None
    for j, x_c in enumerate(grid):
        column = adv_payoffs[:, j]
        follower_set = np.flatnonzero(np.isclose(column, column.max()))
        leader_outcomes = col_payoffs[follower_set, j]
        if tie_break == "pessimistic":
            idx = follower_set[int(np.argmin(leader_outcomes))]
        else:
            idx = follower_set[int(np.argmax(leader_outcomes))]
        leader_payoff = col_payoffs[idx, j]
        if leader_payoff > best_leader_payoff:
            best_leader_payoff = leader_payoff
            best = (
                float(x_c),
                float(grid[idx]),
                float(leader_payoff),
                float(adv_payoffs[idx, j]),
            )
    return best


class TestVectorizedSolverEquivalence:
    """The vectorized column selection must match the scalar loop exactly,
    including isclose-tie handling and first-extremum tie-breaking."""

    @pytest.mark.parametrize("tie_break", ["pessimistic", "optimistic"])
    @pytest.mark.parametrize("grid_size", [2, 3, 17, 101])
    def test_matches_reference_loop(self, tie_break, grid_size):
        from repro.core.payoffs import power_poison_gain, power_trim_cost

        for gain_scale, cost_scale in [(1.0, 1.0), (0.4, 2.5), (3.0, 0.3)]:
            model = PayoffModel(
                poison_gain=power_poison_gain(scale=gain_scale),
                trim_cost=power_trim_cost(scale=cost_scale),
            )
            sol = solve_stackelberg(model, grid_size=grid_size, tie_break=tie_break)
            ref = _reference_solve(model, grid_size, tie_break)
            assert (
                sol.leader_action,
                sol.follower_action,
                sol.leader_payoff,
                sol.follower_payoff,
            ) == ref

    def test_flat_adversary_ties_resolved_identically(self):
        # A constant poison gain makes *every* row a follower best
        # response in every column — maximal tie stress.
        model = PayoffModel(poison_gain=lambda x: 0.5)
        for tie_break in ("pessimistic", "optimistic"):
            sol = solve_stackelberg(model, grid_size=31, tie_break=tie_break)
            ref = _reference_solve(model, 31, tie_break)
            assert (
                sol.leader_action,
                sol.follower_action,
                sol.leader_payoff,
                sol.follower_payoff,
            ) == ref


class TestBestResponseDynamics:
    @staticmethod
    def _linear(t_th=0.9, k=0.5):
        return BestResponseDynamics(
            collector_response=lambda a: t_th + k * (a - t_th - 0.01),
            adversary_response=lambda t: t_th - 0.03 + k * (t - t_th),
        )

    def test_run_shapes(self):
        dyn = self._linear()
        coll, adv = dyn.run(0.87, 0.91, rounds=10)
        assert coll.shape == (10,) and adv.shape == (10,)
        assert coll[0] == 0.87 and adv[0] == 0.91

    def test_run_rejects_zero_rounds(self):
        with pytest.raises(ValueError):
            self._linear().run(0.87, 0.91, rounds=0)

    def test_fixed_point_matches_closed_form(self):
        for k in (0.1, 0.5, 0.9):
            dyn = self._linear(k=k)
            t_star, a_star = dyn.fixed_point(0.87, 0.91)
            t_expect, a_expect = linear_response_fixed_point(0.9, k)
            assert t_star == pytest.approx(t_expect, abs=1e-8)
            assert a_star == pytest.approx(a_expect, abs=1e-8)

    def test_fixed_point_is_stationary(self):
        dyn = self._linear(k=0.3)
        t_star, a_star = dyn.fixed_point(0.87, 0.91)
        assert dyn.collector_response(a_star) == pytest.approx(t_star)
        assert dyn.adversary_response(t_star) == pytest.approx(a_star)

    def test_divergent_map_raises(self):
        dyn = BestResponseDynamics(
            collector_response=lambda a: 2.0 * a + 1.0,
            adversary_response=lambda t: 2.0 * t - 1.0,
        )
        with pytest.raises(RuntimeError):
            dyn.fixed_point(0.0, 1.0, max_iter=50)


class TestLinearResponseFixedPoint:
    def test_paper_defaults_k_05(self):
        t_star, a_star = linear_response_fixed_point(0.9, 0.5)
        # t* = k(-0.04)/(1-k^2) = -0.02/0.75
        assert t_star == pytest.approx(0.9 - 0.0266667, abs=1e-6)
        assert a_star == pytest.approx(0.9 - 0.0433333, abs=1e-6)

    def test_paper_defaults_k_01(self):
        t_star, a_star = linear_response_fixed_point(0.9, 0.1)
        assert t_star == pytest.approx(0.9 - 0.0040404, abs=1e-6)
        assert a_star == pytest.approx(0.9 - 0.0304040, abs=1e-6)

    def test_zero_strength_pins_to_offsets(self):
        t_star, a_star = linear_response_fixed_point(0.9, 0.0)
        assert t_star == pytest.approx(0.9)
        assert a_star == pytest.approx(0.87)

    def test_equilibrium_injection_below_threshold(self):
        # At equilibrium the adversary parks below the collector's trim —
        # surviving but bounded poison (the cooperative outcome).
        for k in (0.1, 0.3, 0.5, 0.7):
            t_star, a_star = linear_response_fixed_point(0.9, k)
            assert a_star < t_star < 0.9

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            linear_response_fixed_point(0.9, 1.0)
