"""Property-based invariants of the collection game engine.

Hypothesis drives random attack ratios, thresholds and anchoring modes
through short games and asserts bookkeeping invariants that must hold for
*every* configuration: conservation of counts, bounded fractions, and
percentile-coordinate consistency between injection and trimming.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.engine import CollectionGame
from repro.core.strategies import FixedAdversary, StaticCollector
from repro.core.trimming import RadialTrimmer
from repro.streams import ArrayStream, PoisonInjector


@pytest.fixture(scope="module")
def reference_data():
    rng = np.random.default_rng(7)
    return rng.normal(size=(400, 6))


def _run(reference_data, ratio, trim_q, inject_q, anchor, rounds=3, seed=0):
    game = CollectionGame(
        source=ArrayStream(reference_data, batch_size=80, seed=seed),
        collector=StaticCollector(trim_q),
        adversary=FixedAdversary(inject_q),
        injector=PoisonInjector(attack_ratio=ratio, mode="radial", seed=seed),
        trimmer=RadialTrimmer(),
        reference=reference_data,
        rounds=rounds,
        anchor=anchor,
    )
    return game.run()


class TestEngineInvariants:
    @settings(max_examples=25, deadline=None)
    @given(
        ratio=st.floats(0.0, 0.5),
        trim_q=st.floats(0.5, 1.0),
        inject_q=st.floats(0.0, 1.0),
        anchor=st.sampled_from(["reference", "batch"]),
    )
    def test_bookkeeping_conservation(
        self, reference_data, ratio, trim_q, inject_q, anchor
    ):
        result = _run(reference_data, ratio, trim_q, inject_q, anchor)
        for entry in result.board.entries:
            # Retained is a subset of collected.
            assert 0 <= entry.retained.shape[0] <= entry.n_collected
            # Poison bookkeeping is conserved.
            assert 0 <= entry.n_poison_retained <= entry.n_poison_injected
            # Collected = benign batch + injected poison.
            assert entry.n_collected == 80 + entry.n_poison_injected
        assert 0.0 <= result.poison_retained_fraction() <= 1.0
        assert 0.0 <= result.trimmed_fraction() <= 1.0

    @settings(max_examples=15, deadline=None)
    @given(ratio=st.floats(0.05, 0.4), gap=st.floats(0.02, 0.2))
    def test_injection_above_reference_cutoff_is_trimmed(
        self, reference_data, ratio, gap
    ):
        # Reference anchoring: poison strictly above the trim percentile
        # (by at least the jitter width) never survives.
        trim_q = 0.85
        inject_q = min(0.99, trim_q + gap + 0.011)
        result = _run(reference_data, ratio, trim_q, inject_q, "reference")
        assert result.poison_retained_fraction() == pytest.approx(0.0, abs=0.02)

    @settings(max_examples=15, deadline=None)
    @given(ratio=st.floats(0.05, 0.4))
    def test_injection_well_below_cutoff_survives(self, reference_data, ratio):
        result = _run(reference_data, ratio, 0.95, 0.5, "reference")
        expected = ratio / (1.0 + ratio)
        assert result.poison_retained_fraction() == pytest.approx(
            expected, abs=0.05
        )

    @settings(max_examples=15, deadline=None)
    @given(
        ratio=st.floats(0.0, 0.5),
        trim_q=st.floats(0.5, 0.99),
    )
    def test_batch_anchor_trims_requested_fraction(
        self, reference_data, ratio, trim_q
    ):
        result = _run(reference_data, ratio, trim_q, 0.9, "batch")
        assert result.trimmed_fraction() == pytest.approx(1.0 - trim_q, abs=0.03)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 100))
    def test_determinism(self, reference_data, seed):
        a = _run(reference_data, 0.2, 0.9, 0.95, "reference", seed=seed)
        b = _run(reference_data, 0.2, 0.9, 0.95, "reference", seed=seed)
        np.testing.assert_array_equal(a.retained_data(), b.retained_data())
