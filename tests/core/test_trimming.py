"""Tests for repro.core.trimming — percentile trimming operators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.trimming import RadialTrimmer, TrimReport, ValueTrimmer


class TestTrimReport:
    def test_counts(self):
        report = TrimReport(
            kept=np.array([True, False, True, True]),
            threshold_score=1.0,
            percentile=0.75,
        )
        assert report.n_kept == 3
        assert report.n_trimmed == 1
        assert report.trimmed_fraction == pytest.approx(0.25)

    def test_kept_scores_requires_scores(self):
        report = TrimReport(
            kept=np.array([True, False]),
            threshold_score=1.0,
            percentile=0.5,
        )
        with pytest.raises(ValueError):
            report.kept_scores

    def test_kept_scores_masks_scores(self):
        report = TrimReport(
            kept=np.array([True, False, True]),
            threshold_score=1.0,
            percentile=0.5,
            scores=np.array([0.1, 2.0, 0.3]),
        )
        np.testing.assert_array_equal(report.kept_scores, [0.1, 0.3])


class TestReportScoresSinglePass:
    """The report's ``scores`` must equal a separate ``scores()`` pass.

    This is the contract that lets the engine's hot loop skip its second
    per-round scoring sweep.
    """

    @given(
        percentile=st.floats(min_value=0.0, max_value=1.0),
        n=st.integers(min_value=1, max_value=200),
        anchored=st.booleans(),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=60, deadline=None)
    def test_value_trimmer_scores_match(self, percentile, n, anchored, seed):
        rng = np.random.default_rng(seed)
        batch = rng.normal(size=n)
        trimmer = ValueTrimmer()
        if anchored:
            trimmer.fit_reference(rng.normal(size=300))
        report = trimmer.trim(batch, percentile)
        assert report.scores is not None
        np.testing.assert_array_equal(report.scores, trimmer.scores(batch))
        np.testing.assert_array_equal(
            report.kept_scores, trimmer.scores(batch)[report.kept]
        )

    @given(
        percentile=st.floats(min_value=0.0, max_value=1.0),
        n=st.integers(min_value=1, max_value=120),
        d=st.integers(min_value=1, max_value=6),
        anchored=st.booleans(),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=60, deadline=None)
    def test_radial_trimmer_scores_match(self, percentile, n, d, anchored, seed):
        rng = np.random.default_rng(seed)
        batch = rng.normal(size=(n, d))
        trimmer = RadialTrimmer()
        if anchored:
            trimmer.fit_reference(rng.normal(size=(200, d)))
        report = trimmer.trim(batch, percentile)
        assert report.scores is not None
        np.testing.assert_array_equal(report.scores, trimmer.scores(batch))


class TestValueTrimmer:
    def test_full_percentile_keeps_all(self, rng):
        batch = rng.normal(size=100)
        report = ValueTrimmer().trim(batch, 1.0)
        assert report.n_kept == 100

    def test_trims_expected_fraction(self, rng):
        batch = rng.normal(size=1000)
        report = ValueTrimmer().trim(batch, 0.9)
        assert report.trimmed_fraction == pytest.approx(0.1, abs=0.01)

    def test_keeps_lowest_values(self, rng):
        batch = rng.normal(size=500)
        trimmer = ValueTrimmer()
        report = trimmer.trim(batch, 0.8)
        assert batch[report.kept].max() <= batch[~report.kept].min()

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            ValueTrimmer().trim(np.zeros((3, 2)), 0.9)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ValueTrimmer().trim(np.array([]), 0.9)

    def test_apply_returns_values(self, rng):
        batch = rng.normal(size=50)
        kept = ValueTrimmer().apply(batch, 0.5)
        assert kept.size < 50

    def test_reference_anchored_cutoff_resists_inflation(self, rng):
        # Poison inflating the batch must not move a reference cutoff.
        reference = rng.normal(size=5000)
        trimmer = ValueTrimmer(anchor="reference").fit_reference(reference)
        cutoff = np.quantile(reference, 0.9)
        batch = np.concatenate([rng.normal(size=500), np.full(300, 50.0)])
        report = trimmer.trim(batch, 0.9)
        assert report.threshold_score == pytest.approx(cutoff)
        # All poison sits above the reference cutoff -> all removed.
        assert batch[report.kept].max() <= cutoff

    def test_batch_anchor_trims_fixed_fraction_despite_reference(self, rng):
        reference = rng.normal(size=5000)
        trimmer = ValueTrimmer(anchor="batch").fit_reference(reference)
        batch = np.concatenate([rng.normal(size=500), np.full(500, 50.0)])
        report = trimmer.trim(batch, 0.5)
        assert report.trimmed_fraction == pytest.approx(0.5, abs=0.01)

    def test_degenerate_batch_keeps_one_point(self):
        trimmer = ValueTrimmer(anchor="reference").fit_reference(
            np.linspace(0, 1, 100)
        )
        report = trimmer.trim(np.full(10, 99.0), 0.5)
        assert report.n_kept == 1

    @given(st.floats(0.0, 1.0))
    def test_trimmed_fraction_bounded_by_percentile(self, q):
        batch = np.arange(200.0)
        report = ValueTrimmer().trim(batch, q)
        assert report.trimmed_fraction <= 1.0 - q + 0.01

    @settings(max_examples=30)
    @given(st.floats(0.1, 0.9), st.floats(0.1, 0.9))
    def test_monotone_in_percentile(self, q1, q2):
        lo, hi = min(q1, q2), max(q1, q2)
        batch = np.arange(300.0)
        trimmer = ValueTrimmer()
        kept_lo = trimmer.trim(batch, lo).n_kept
        kept_hi = trimmer.trim(batch, hi).n_kept
        assert kept_lo <= kept_hi


class TestQuantileTableCutoffs:
    """Reference-anchored cutoffs ride the sort-once table and must be
    bit-identical to a fresh np.quantile over the reference scores."""

    @given(
        percentile=st.floats(min_value=0.0, max_value=0.999),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=50, deadline=None)
    def test_value_trimmer_cutoff_matches_numpy(self, percentile, seed):
        rng = np.random.default_rng(seed)
        reference = rng.normal(size=500)
        trimmer = ValueTrimmer(anchor="reference").fit_reference(reference)
        report = trimmer.trim(rng.normal(size=100), percentile)
        assert report.threshold_score == float(np.quantile(reference, percentile))

    def test_radial_trimmer_cutoff_matches_numpy(self, rng):
        reference = rng.normal(size=(400, 3))
        trimmer = RadialTrimmer(anchor="reference").fit_reference(reference)
        ref_scores = np.linalg.norm(
            reference - np.median(reference, axis=0), axis=1
        )
        report = trimmer.trim(rng.normal(size=(80, 3)), 0.87)
        assert report.threshold_score == float(np.quantile(ref_scores, 0.87))

    def test_refit_invalidates_cached_table(self, rng):
        # Regression: a refit on new reference data must not serve
        # cutoffs from the previous reference's cached quantile table.
        trimmer = ValueTrimmer(anchor="reference")
        trimmer.fit_reference(rng.normal(size=500))
        trimmer.trim(rng.normal(size=50), 0.9)  # builds the lazy table
        shifted = rng.normal(size=500) + 100.0
        trimmer.fit_reference(shifted)
        report = trimmer.trim(rng.normal(size=50) + 100.0, 0.9)
        assert report.threshold_score == float(np.quantile(shifted, 0.9))

    def test_batch_anchor_never_builds_reference_table(self, rng):
        trimmer = ValueTrimmer(anchor="batch")
        trimmer.fit_reference(rng.normal(size=500))
        trimmer.trim(rng.normal(size=100), 0.9)
        assert trimmer._reference_table is None  # lazy: never queried

    def test_reference_scores_property(self, rng):
        trimmer = ValueTrimmer()
        assert trimmer.reference_scores is None
        reference = rng.normal(size=100)
        trimmer.fit_reference(reference)
        np.testing.assert_array_equal(trimmer.reference_scores, reference)

    def test_score_kind_tags(self):
        assert ValueTrimmer().score_kind == "value"
        assert RadialTrimmer().score_kind == "radial"


class TestRadialTrimmer:
    def test_scores_are_distances_from_median(self, rng):
        batch = rng.normal(size=(200, 3))
        scores = RadialTrimmer().scores(batch)
        center = np.median(batch, axis=0)
        np.testing.assert_allclose(
            scores, np.linalg.norm(batch - center, axis=1)
        )

    def test_1d_special_case(self, rng):
        batch = rng.normal(size=100)
        scores = RadialTrimmer().scores(batch)
        np.testing.assert_allclose(scores, np.abs(batch - np.median(batch)))

    def test_outliers_trimmed_first(self, rng):
        bulk = rng.normal(0, 1, size=(500, 4))
        outliers = np.full((20, 4), 10.0)
        batch = np.vstack([bulk, outliers])
        trimmer = RadialTrimmer()
        report = trimmer.trim(batch, 0.95)
        assert not report.kept[-20:].any()

    def test_reference_center_used_after_fit(self, rng):
        reference = rng.normal(0, 1, size=(1000, 3))
        trimmer = RadialTrimmer().fit_reference(reference)
        ref_center = np.median(reference, axis=0)
        # A batch with a wildly different median: scores still use the
        # reference center, so colluding mass cannot drag the center.
        batch = rng.normal(5, 1, size=(100, 3))
        scores = trimmer.scores(batch)
        np.testing.assert_allclose(
            scores, np.linalg.norm(batch - ref_center, axis=1)
        )

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            RadialTrimmer().scores(np.zeros((2, 2, 2)))

    def test_invalid_anchor_rejected(self):
        with pytest.raises(ValueError):
            RadialTrimmer(anchor="weird")

    def test_fit_empty_reference_rejected(self):
        with pytest.raises(ValueError):
            RadialTrimmer().fit_reference(np.array([]))

    def test_1d_batch_after_2d_fit_raises_dimension_mismatch(self, rng):
        # Regression: this used to crash with numpy's cryptic "only
        # 0-dimensional arrays can be converted to Python scalars" when
        # float() hit the length-d center vector.
        trimmer = RadialTrimmer().fit_reference(rng.normal(size=(100, 3)))
        with pytest.raises(ValueError, match="dimension mismatch"):
            trimmer.scores(rng.normal(size=50))

    def test_1d_batch_after_single_feature_2d_fit_works(self, rng):
        # A (n, 1) reference has a commensurable length-1 center.
        reference = rng.normal(size=(100, 1))
        trimmer = RadialTrimmer().fit_reference(reference)
        batch = rng.normal(size=30)
        scores = trimmer.scores(batch)
        np.testing.assert_allclose(
            scores, np.abs(batch - float(np.median(reference, axis=0)[0]))
        )

    def test_is_reference_anchored_flag(self, rng):
        trimmer = RadialTrimmer(anchor="reference")
        assert not trimmer.is_reference_anchored
        trimmer.fit_reference(rng.normal(size=(50, 2)))
        assert trimmer.is_reference_anchored
        trimmer.anchor = "batch"
        assert not trimmer.is_reference_anchored


class TestBatchTrimReportParity:
    def test_nan_percentile_matches_solo_clip(self):
        """clip_percentile(nan) is 0.0 (Python min/max); trim_many must
        agree instead of propagating NaN and silently keeping all."""
        import numpy as np

        from repro.core.trimming import ValueTrimmer

        data = np.linspace(0.0, 1.0, 10)
        trimmer = ValueTrimmer()
        trimmer.fit_reference(data)
        solo = trimmer.trim(data, float("nan"))
        batch = trimmer.trim_many(
            np.stack([data, data]), np.array([np.nan, 0.5])
        )
        assert batch.kept[0].tobytes() == solo.kept.tobytes()
        assert float(batch.percentiles[0]) == solo.percentile == 0.0
        assert batch.n_kept[0] == solo.n_kept == 1

    def test_from_reports_stacks_solo_reports(self):
        import numpy as np

        from repro.core.trimming import BatchTrimReport, ValueTrimmer

        data = np.linspace(0.0, 1.0, 12)
        trimmer = ValueTrimmer()
        trimmer.fit_reference(data)
        reports = [trimmer.trim(data, q) for q in (0.5, 0.9, 1.0)]
        stacked = BatchTrimReport.from_reports(reports)
        assert stacked.n_reps == 3
        for r, report in enumerate(reports):
            assert stacked.kept[r].tobytes() == report.kept.tobytes()
            assert float(stacked.threshold_scores[r]) == report.threshold_score
            assert stacked.scores[r].tobytes() == report.scores.tobytes()
