"""Tests for repro.core.horizon — finite vs infinite horizon analysis."""

import numpy as np
import pytest

from repro.core.game import BimatrixGame, build_ultimatum_game
from repro.core.horizon import InfiniteHorizonAnalysis, backward_induction


class TestBackwardInduction:
    def test_ultimatum_game_unravels(self):
        game = build_ultimatum_game()
        path = backward_induction(game, rounds=10)
        assert len(path) == 10
        # Every round plays the unique (Hard, Hard) stage equilibrium.
        assert all(profile == (1, 1) for profile in path)

    def test_single_round(self):
        game = build_ultimatum_game()
        assert backward_induction(game, 1) == [(1, 1)]

    def test_invalid_rounds_rejected(self):
        with pytest.raises(ValueError):
            backward_induction(build_ultimatum_game(), 0)

    def test_no_pure_equilibrium_rejected(self):
        a = np.array([[1.0, -1.0], [-1.0, 1.0]])
        pennies = BimatrixGame(row_payoffs=a, col_payoffs=-a)
        with pytest.raises(ValueError):
            backward_induction(pennies, 5)


class TestInfiniteHorizonAnalysis:
    @pytest.fixture()
    def analysis(self):
        # Ultimatum-game reading: R = p_low, T = p_high, P = 0.
        return InfiniteHorizonAnalysis(reward=1.0, temptation=10.0, punishment=0.0)

    def test_critical_discount_formula(self, analysis):
        assert analysis.critical_discount == pytest.approx(9.0 / 10.0)

    def test_cooperation_above_threshold(self, analysis):
        assert analysis.cooperation_sustainable(0.95)
        assert not analysis.cooperation_sustainable(0.85)

    def test_values_consistent_with_decision(self, analysis):
        for d in (0.5, 0.89, 0.91, 0.99):
            sustainable = analysis.cooperation_sustainable(d)
            by_values = (
                analysis.cooperation_value(d) >= analysis.defection_value(d)
            )
            assert sustainable == by_values

    def test_non_pd_structure_rejected(self):
        with pytest.raises(ValueError):
            InfiniteHorizonAnalysis(reward=5.0, temptation=1.0, punishment=0.0)

    def test_invalid_discount_rejected(self, analysis):
        with pytest.raises(ValueError):
            analysis.cooperation_sustainable(1.0)

    def test_horizon_comparison_summary(self, analysis):
        summary = analysis.horizon_comparison(discount=0.95, rounds=20)
        assert summary["finite_cooperates"] is False
        assert summary["infinite_cooperates"] is True
        assert summary["rounds"] == 20

    def test_patient_players_always_cooperate_in_limit(self):
        analysis = InfiniteHorizonAnalysis(2.0, 3.0, 0.5)
        assert analysis.cooperation_sustainable(0.99)

    def test_easier_cooperation_with_smaller_temptation(self):
        greedy = InfiniteHorizonAnalysis(1.0, 10.0, 0.0)
        mild = InfiniteHorizonAnalysis(1.0, 2.0, 0.0)
        assert mild.critical_discount < greedy.critical_discount
