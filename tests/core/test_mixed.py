"""Tests for repro.core.mixed — mixed-strategy reduction (§III-C2)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.mixed import MixedStrategy, reduce_distribution


class TestMixedStrategy:
    def test_mean_interpolates_endpoints(self):
        m = MixedStrategy(x_left=0.8, x_right=1.0, p_left=0.25)
        assert m.mean == pytest.approx(0.25 * 0.8 + 0.75 * 1.0)

    def test_p_right_complements(self):
        m = MixedStrategy(0.8, 1.0, 0.3)
        assert m.p_left + m.p_right == pytest.approx(1.0)

    def test_pure_left(self):
        m = MixedStrategy(0.8, 1.0, 1.0)
        assert m.mean == 0.8

    def test_pure_right(self):
        m = MixedStrategy(0.8, 1.0, 0.0)
        assert m.mean == 1.0

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            MixedStrategy(0.8, 1.0, 1.5)

    def test_inverted_endpoints_rejected(self):
        with pytest.raises(ValueError):
            MixedStrategy(1.0, 0.8, 0.5)

    def test_sample_values_are_endpoints(self, rng):
        m = MixedStrategy(0.8, 1.0, 0.5)
        draws = m.sample(rng, 500)
        assert set(np.unique(draws)) <= {0.8, 1.0}

    def test_sample_frequency_matches_probability(self, rng):
        m = MixedStrategy(0.8, 1.0, 0.7)
        draws = m.sample(rng, 8000)
        assert np.mean(draws == 0.8) == pytest.approx(0.7, abs=0.03)

    def test_sample_negative_size_rejected(self, rng):
        with pytest.raises(ValueError):
            MixedStrategy(0.8, 1.0, 0.5).sample(rng, -1)

    def test_expected_payoff_linearity(self):
        m = MixedStrategy(0.0, 1.0, 0.4)
        assert m.expected_payoff(lambda x: x) == pytest.approx(m.mean)


class TestReduceDistribution:
    def test_preserves_mean(self):
        samples = [0.82, 0.9, 0.95, 0.99]
        m = reduce_distribution(samples, 0.8, 1.0)
        assert m.mean == pytest.approx(np.mean(samples))

    def test_point_mass_at_left(self):
        m = reduce_distribution([0.8] * 5, 0.8, 1.0)
        assert m.p_left == pytest.approx(1.0)

    def test_point_mass_at_right(self):
        m = reduce_distribution([1.0] * 5, 0.8, 1.0)
        assert m.p_left == pytest.approx(0.0)

    def test_clips_outside_support(self):
        m = reduce_distribution([0.5, 1.5], 0.8, 1.0)
        # clipped to [0.8, 1.0] -> mean 0.9 -> p_left 0.5
        assert m.p_left == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            reduce_distribution([], 0.8, 1.0)

    def test_degenerate_interval_rejected(self):
        with pytest.raises(ValueError):
            reduce_distribution([0.9], 0.9, 0.9)

    @given(
        st.lists(st.floats(0.8, 1.0), min_size=1, max_size=60),
    )
    def test_reduction_mean_matches_clipped_mean(self, samples):
        m = reduce_distribution(samples, 0.8, 1.0)
        assert abs(m.mean - float(np.mean(np.clip(samples, 0.8, 1.0)))) < 1e-9

    @given(st.lists(st.floats(0.0, 2.0), min_size=1, max_size=60))
    def test_probabilities_always_valid(self, samples):
        m = reduce_distribution(samples, 0.8, 1.0)
        assert 0.0 <= m.p_left <= 1.0

    def test_expected_payoff_matches_linear_payoff_of_samples(self, rng):
        # For payoffs linear in position, the reduced mixture's expected
        # payoff equals the original distribution's (the completeness
        # argument of §III-C2).
        samples = rng.uniform(0.8, 1.0, size=200)
        m = reduce_distribution(samples, 0.8, 1.0)

        def payoff(x):
            return 3.0 * x - 1.0

        direct = float(np.mean([payoff(s) for s in samples]))
        assert m.expected_payoff(payoff) == pytest.approx(direct, abs=1e-9)
