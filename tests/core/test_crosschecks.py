"""Cross-checks between independent implementations of the same theory.

The analytical model is implemented twice on purpose — closed form
(:mod:`repro.core.oscillator`) and variationally
(:mod:`repro.core.lagrangian`) — and the game dynamics three ways
(strategy objects, :class:`BestResponseDynamics`, closed-form fixed
point).  These tests pin the implementations against each other.
"""

import numpy as np
import pytest

from repro.core.engine import CollectionGame
from repro.core.lagrangian import (
    ElasticLagrangian,
    action,
    euler_lagrange_residual,
    least_action_path,
)
from repro.core.oscillator import CoupledUtilityOscillator
from repro.core.stackelberg import BestResponseDynamics, linear_response_fixed_point
from repro.core.strategies import (
    ElasticAdversary,
    ElasticCollector,
    FixedAdversary,
    StaticCollector,
)
from repro.core.strategies.base import RoundObservation
from repro.core.trimming import RadialTrimmer
from repro.streams import ArrayStream, PoisonInjector


class TestOscillatorVsLeastAction:
    def test_closed_form_is_variationally_stationary(self):
        osc = CoupledUtilityOscillator(
            stiffness=1.5,
            mass_adversary=1.0,
            mass_collector=2.0,
            u_adversary0=0.5,
            v_collector0=0.1,
        )
        dr = 0.02
        r = np.arange(0.0, 3.0 + dr / 2, dr)
        path = np.column_stack(osc.solve(r))
        lag = ElasticLagrangian(
            stiffness=1.5, mass_adversary=1.0, mass_collector=2.0
        )
        residual = euler_lagrange_residual(lag, path, dr)
        assert np.abs(residual).max() < 2e-2

    def test_least_action_matches_closed_form_endpoints(self):
        # Fix boundary conditions from the closed-form trajectory and let
        # the numerical minimizer find the interior: it must recover the
        # oscillator path.
        osc = CoupledUtilityOscillator(stiffness=1.0, u_adversary0=0.3)
        total_r = 1.2  # well under half a period: unique minimizer
        nodes = 25
        dr = total_r / (nodes - 1)
        r = np.linspace(0.0, total_r, nodes)
        exact = np.column_stack(osc.solve(r))
        lag = ElasticLagrangian(stiffness=1.0)
        numeric = least_action_path(
            lag, tuple(exact[0]), tuple(exact[-1]), nodes=nodes, dr=dr
        )
        assert np.abs(numeric - exact).max() < 5e-3

    def test_perturbed_path_has_larger_action(self):
        osc = CoupledUtilityOscillator(stiffness=2.0, u_adversary0=0.4)
        dr = 0.01
        r = np.arange(0.0, 1.0 + dr / 2, dr)
        exact = np.column_stack(osc.solve(r))
        lag = ElasticLagrangian(stiffness=2.0)
        bump = np.zeros_like(exact)
        bump[1:-1, 0] = 0.05 * np.sin(np.linspace(0, np.pi, exact.shape[0] - 2))
        assert action(lag, exact, dr) < action(lag, exact + bump, dr)


class TestDynamicsConsistency:
    def test_strategy_objects_match_response_dynamics(self):
        t_th, k, rounds = 0.9, 0.4, 40
        collector = ElasticCollector(t_th, k, rule="paper")
        adversary = ElasticAdversary(t_th, k, rule="paper")
        collector.reset()
        adversary.reset()
        t_strat = [collector.first()]
        a_strat = [adversary.first()]
        for i in range(rounds - 1):
            obs = RoundObservation(
                index=i + 1,
                trim_percentile=t_strat[-1],
                injection_percentile=a_strat[-1],
                quality=0.0,
                observed_poison_ratio=0.0,
                betrayal=False,
            )
            t_strat.append(collector.react(obs))
            a_strat.append(adversary.react(obs))

        dyn = BestResponseDynamics(
            collector_response=lambda a: t_th + k * (a - t_th - 0.01),
            adversary_response=lambda t: t_th - 0.03 + k * (t - t_th),
        )
        t_dyn, a_dyn = dyn.run(t_strat[0], a_strat[0], rounds)
        np.testing.assert_allclose(t_strat, t_dyn, atol=1e-12)
        np.testing.assert_allclose(a_strat, a_dyn, atol=1e-12)

    def test_engine_trajectory_matches_closed_form_fixed_point(self, control_data):
        data, _ = control_data
        t_th, k = 0.9, 0.5
        game = CollectionGame(
            source=ArrayStream(data, batch_size=100, seed=0),
            collector=ElasticCollector(t_th, k),
            adversary=ElasticAdversary(t_th, k),
            injector=PoisonInjector(0.2, mode="radial", seed=1),
            trimmer=RadialTrimmer(),
            reference=data,
            rounds=30,
        )
        result = game.run()
        t_star, a_star = linear_response_fixed_point(t_th, k)
        assert result.threshold_path()[-1] == pytest.approx(t_star, abs=1e-6)
        assert result.injection_path()[-1] == pytest.approx(a_star, abs=1e-6)


class TestGameResultRecords:
    def test_to_records_consistent_with_board(self, control_data):
        data, _ = control_data
        game = CollectionGame(
            source=ArrayStream(data, batch_size=100, seed=0),
            collector=StaticCollector(0.9),
            adversary=FixedAdversary(0.95),
            injector=PoisonInjector(0.2, seed=1),
            trimmer=RadialTrimmer(),
            reference=data,
            rounds=5,
        )
        result = game.run()
        records = result.to_records()
        assert len(records) == 5
        assert [r["round"] for r in records] == [1, 2, 3, 4, 5]
        total_retained = sum(r["n_retained"] for r in records)
        assert total_retained == result.retained_data().shape[0]
        for r in records:
            assert r["n_poison_retained"] <= r["n_poison_injected"]
            assert r["trim_percentile"] == pytest.approx(0.9)
