"""Tests for repro.core.payoffs — P, T, x_L, x_R, and profile payoffs."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.payoffs import PayoffModel, power_poison_gain, power_trim_cost


class TestGainCostFamilies:
    def test_poison_gain_increasing(self):
        gain = power_poison_gain(scale=2.0, exponent=2.0)
        xs = np.linspace(0, 1, 11)
        vals = [gain(x) for x in xs]
        assert all(b >= a for a, b in zip(vals, vals[1:], strict=False))

    def test_trim_cost_decreasing(self):
        cost = power_trim_cost(scale=1.5, exponent=1.0)
        xs = np.linspace(0, 1, 11)
        vals = [cost(x) for x in xs]
        assert all(b <= a for a, b in zip(vals, vals[1:], strict=False))

    def test_trim_cost_zero_at_one(self):
        assert power_trim_cost()(1.0) == 0.0

    def test_poison_gain_zero_at_zero(self):
        assert power_poison_gain()(0.0) == 0.0

    @pytest.mark.parametrize("bad", [0.0, -1.0])
    def test_invalid_parameters_rejected(self, bad):
        with pytest.raises(ValueError):
            power_poison_gain(scale=bad)
        with pytest.raises(ValueError):
            power_trim_cost(exponent=bad)


class TestBalancePoint:
    def test_balance_point_equalizes_payoffs(self):
        model = PayoffModel()
        x_l = model.balance_point()
        assert 0.0 < x_l < 1.0
        assert abs(model.poison_payoff(x_l) - model.trim_overhead(x_l)) < 1e-9

    def test_balance_point_moves_with_trim_cost(self):
        cheap_trim = PayoffModel(trim_cost=power_trim_cost(scale=0.1))
        pricey_trim = PayoffModel(trim_cost=power_trim_cost(scale=10.0))
        # More expensive trimming pushes the balance point right: the
        # collector tolerates more poison before trimming pays off.
        assert cheap_trim.balance_point() < pricey_trim.balance_point()

    def test_dominant_poison_returns_left_edge(self):
        model = PayoffModel(
            poison_gain=lambda x: 5.0 + x,
            trim_cost=power_trim_cost(),
        )
        assert model.balance_point() == 0.0

    def test_dominant_overhead_returns_right_edge(self):
        model = PayoffModel(
            poison_gain=power_poison_gain(scale=0.001),
            trim_cost=lambda x: 10.0 + (1 - x),
        )
        assert model.balance_point() == 1.0

    @given(st.floats(0.2, 5.0), st.floats(0.2, 5.0))
    def test_balance_point_root_property(self, gain_scale, cost_scale):
        model = PayoffModel(
            poison_gain=power_poison_gain(scale=gain_scale),
            trim_cost=power_trim_cost(scale=cost_scale),
        )
        x_l = model.balance_point()
        if 0.0 < x_l < 1.0:
            assert abs(model.poison_payoff(x_l) - model.trim_overhead(x_l)) < 1e-7


class TestRightBoundary:
    def test_right_boundary_from_tolerance(self):
        model = PayoffModel(tolerance=0.02)
        assert model.right_boundary() == pytest.approx(0.98)

    def test_strategy_interval_ordering(self):
        x_l, x_r = PayoffModel().strategy_interval()
        assert 0.0 <= x_l < x_r <= 1.0

    def test_invalid_tolerance_rejected(self):
        with pytest.raises(ValueError):
            PayoffModel(tolerance=0.7)


class TestProfilePayoffs:
    def test_surviving_poison_is_zero_sum(self):
        model = PayoffModel()
        adv, col = model.profile_payoffs(x_a=0.5, x_c=0.9)
        assert adv > 0.0
        # Collector loss = poison + overhead; the poison part is zero-sum.
        assert col == pytest.approx(-adv - model.trim_overhead(0.9))

    def test_trimmed_poison_gains_nothing(self):
        model = PayoffModel()
        adv, col = model.profile_payoffs(x_a=0.95, x_c=0.9)
        assert adv == 0.0
        assert col == pytest.approx(-model.trim_overhead(0.9))

    def test_equal_positions_mean_trimmed(self):
        adv, _ = PayoffModel().profile_payoffs(0.9, 0.9)
        assert adv == 0.0

    def test_collector_payoff_never_positive(self):
        model = PayoffModel()
        for x_a in np.linspace(0, 1, 7):
            for x_c in np.linspace(0, 1, 7):
                _, col = model.profile_payoffs(x_a, x_c)
                assert col <= 0.0

    @given(st.floats(0, 1), st.floats(0, 1))
    def test_adversary_payoff_bounded_by_gain(self, x_a, x_c):
        model = PayoffModel()
        adv, _ = model.profile_payoffs(x_a, x_c)
        assert 0.0 <= adv <= model.poison_payoff(x_a) + 1e-12


def scalar_reference_matrix(model, adversary_grid, collector_grid):
    """The naive double loop over ``profile_payoffs`` — the ground truth
    the broadcast ``payoff_matrix`` must reproduce exactly."""
    a_grid = np.asarray(adversary_grid, dtype=float)
    c_grid = np.asarray(collector_grid, dtype=float)
    adv = np.empty((a_grid.size, c_grid.size))
    col = np.empty_like(adv)
    for i, x_a in enumerate(a_grid):
        for j, x_c in enumerate(c_grid):
            adv[i, j], col[i, j] = model.profile_payoffs(x_a, x_c)
    return adv, col


def _scalar_only_gain(x):
    """A deliberately non-vectorizable poison gain (truth-tests its input)."""
    return 2.0 * x * x if x > 0.1 else 0.05 * x


def _scalar_only_cost(x):
    """A deliberately non-vectorizable trim cost."""
    return (1.0 - x) * (1.5 if x < 0.9 else 0.5)


class TestVectorizedKernels:
    def test_power_kernels_accept_arrays(self):
        xs = np.linspace(0.0, 1.0, 17)
        gain = power_poison_gain(scale=1.3, exponent=2.5)
        cost = power_trim_cost(scale=0.7, exponent=1.5)
        np.testing.assert_array_equal(gain(xs), [gain(float(x)) for x in xs])
        np.testing.assert_array_equal(cost(xs), [cost(float(x)) for x in xs])

    def test_power_kernels_scalar_returns_float(self):
        assert type(power_poison_gain()(0.5)) is float
        assert type(power_trim_cost()(0.5)) is float

    def test_model_payoffs_accept_arrays(self):
        model = PayoffModel()
        xs = np.linspace(-0.2, 1.2, 23)  # clipping exercised
        gains = model.poison_payoff(xs)
        overheads = model.trim_overhead(xs)
        np.testing.assert_array_equal(
            gains, [model.poison_payoff(float(x)) for x in xs]
        )
        np.testing.assert_array_equal(
            overheads, [model.trim_overhead(float(x)) for x in xs]
        )

    def test_scalar_only_callable_falls_back(self):
        model = PayoffModel(
            poison_gain=_scalar_only_gain, trim_cost=_scalar_only_cost
        )
        xs = np.linspace(0.0, 1.0, 11)
        np.testing.assert_array_equal(
            model.poison_payoff(xs), [model.poison_payoff(float(x)) for x in xs]
        )
        np.testing.assert_array_equal(
            model.trim_overhead(xs), [model.trim_overhead(float(x)) for x in xs]
        )

    def test_constant_lambda_kernel_supported(self):
        # Returns a scalar even for array input: wrong shape -> fallback.
        model = PayoffModel(poison_gain=lambda x: 0.25, trim_cost=power_trim_cost())
        out = model.poison_payoff(np.linspace(0, 1, 5))
        np.testing.assert_array_equal(out, np.full(5, 0.25))


class TestBroadcastMatrixEquivalence:
    """The broadcast matrix must match the scalar double loop bit-for-bit."""

    @given(
        n_a=st.integers(min_value=1, max_value=24),
        n_c=st.integers(min_value=1, max_value=24),
        seed=st.integers(min_value=0, max_value=2**16),
        gain_scale=st.floats(0.2, 4.0),
        gain_exp=st.floats(0.5, 3.0),
        cost_scale=st.floats(0.2, 4.0),
        cost_exp=st.floats(0.5, 3.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_grids_match_scalar_loop(
        self, n_a, n_c, seed, gain_scale, gain_exp, cost_scale, cost_exp
    ):
        rng = np.random.default_rng(seed)
        model = PayoffModel(
            poison_gain=power_poison_gain(gain_scale, gain_exp),
            trim_cost=power_trim_cost(cost_scale, cost_exp),
        )
        a_grid = np.sort(rng.random(n_a))
        c_grid = np.sort(rng.random(n_c))
        adv, col = model.payoff_matrix(a_grid, c_grid)
        ref_adv, ref_col = scalar_reference_matrix(model, a_grid, c_grid)
        np.testing.assert_array_equal(adv, ref_adv)
        np.testing.assert_array_equal(col, ref_col)

    def test_scalar_only_kernels_match_scalar_loop(self):
        model = PayoffModel(
            poison_gain=_scalar_only_gain, trim_cost=_scalar_only_cost
        )
        grid = np.linspace(0.0, 1.0, 31)
        adv, col = model.payoff_matrix(grid, grid)
        ref_adv, ref_col = scalar_reference_matrix(model, grid, grid)
        np.testing.assert_array_equal(adv, ref_adv)
        np.testing.assert_array_equal(col, ref_col)

    def test_grid_including_unit_endpoint_matches(self):
        # x_c = 1.0 makes T = 0 in the trimmed branch: the signed-zero
        # combination -0.0 - 0.0 must match the scalar path bytes too.
        model = PayoffModel()
        grid = np.linspace(0.0, 1.0, 9)
        adv, col = model.payoff_matrix(grid, grid)
        ref_adv, ref_col = scalar_reference_matrix(model, grid, grid)
        assert adv.tobytes() == ref_adv.tobytes()
        assert col.tobytes() == ref_col.tobytes()


class TestPayoffMatrix:
    def test_shapes(self):
        model = PayoffModel()
        adv, col = model.payoff_matrix(np.linspace(0, 1, 4), np.linspace(0, 1, 6))
        assert adv.shape == (4, 6)
        assert col.shape == (4, 6)

    def test_matrix_matches_pointwise(self):
        model = PayoffModel()
        grid = np.linspace(0.1, 0.9, 5)
        adv, col = model.payoff_matrix(grid, grid)
        for i, x_a in enumerate(grid):
            for j, x_c in enumerate(grid):
                a, c = model.profile_payoffs(x_a, x_c)
                assert adv[i, j] == pytest.approx(a)
                assert col[i, j] == pytest.approx(c)

    def test_adversary_prefers_just_below_threshold(self):
        model = PayoffModel()
        grid = np.linspace(0.0, 1.0, 101)
        adv, _ = model.payoff_matrix(grid, np.array([0.9]))
        best = grid[int(np.argmax(adv[:, 0]))]
        # Best response to trimming at 0.9 sits just below 0.9.
        assert 0.85 <= best < 0.9
