"""Tests for repro.core.payoffs — P, T, x_L, x_R, and profile payoffs."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.payoffs import PayoffModel, power_poison_gain, power_trim_cost


class TestGainCostFamilies:
    def test_poison_gain_increasing(self):
        gain = power_poison_gain(scale=2.0, exponent=2.0)
        xs = np.linspace(0, 1, 11)
        vals = [gain(x) for x in xs]
        assert all(b >= a for a, b in zip(vals, vals[1:]))

    def test_trim_cost_decreasing(self):
        cost = power_trim_cost(scale=1.5, exponent=1.0)
        xs = np.linspace(0, 1, 11)
        vals = [cost(x) for x in xs]
        assert all(b <= a for a, b in zip(vals, vals[1:]))

    def test_trim_cost_zero_at_one(self):
        assert power_trim_cost()(1.0) == 0.0

    def test_poison_gain_zero_at_zero(self):
        assert power_poison_gain()(0.0) == 0.0

    @pytest.mark.parametrize("bad", [0.0, -1.0])
    def test_invalid_parameters_rejected(self, bad):
        with pytest.raises(ValueError):
            power_poison_gain(scale=bad)
        with pytest.raises(ValueError):
            power_trim_cost(exponent=bad)


class TestBalancePoint:
    def test_balance_point_equalizes_payoffs(self):
        model = PayoffModel()
        x_l = model.balance_point()
        assert 0.0 < x_l < 1.0
        assert abs(model.poison_payoff(x_l) - model.trim_overhead(x_l)) < 1e-9

    def test_balance_point_moves_with_trim_cost(self):
        cheap_trim = PayoffModel(trim_cost=power_trim_cost(scale=0.1))
        pricey_trim = PayoffModel(trim_cost=power_trim_cost(scale=10.0))
        # More expensive trimming pushes the balance point right: the
        # collector tolerates more poison before trimming pays off.
        assert cheap_trim.balance_point() < pricey_trim.balance_point()

    def test_dominant_poison_returns_left_edge(self):
        model = PayoffModel(
            poison_gain=lambda x: 5.0 + x,
            trim_cost=power_trim_cost(),
        )
        assert model.balance_point() == 0.0

    def test_dominant_overhead_returns_right_edge(self):
        model = PayoffModel(
            poison_gain=power_poison_gain(scale=0.001),
            trim_cost=lambda x: 10.0 + (1 - x),
        )
        assert model.balance_point() == 1.0

    @given(st.floats(0.2, 5.0), st.floats(0.2, 5.0))
    def test_balance_point_root_property(self, gain_scale, cost_scale):
        model = PayoffModel(
            poison_gain=power_poison_gain(scale=gain_scale),
            trim_cost=power_trim_cost(scale=cost_scale),
        )
        x_l = model.balance_point()
        if 0.0 < x_l < 1.0:
            assert abs(model.poison_payoff(x_l) - model.trim_overhead(x_l)) < 1e-7


class TestRightBoundary:
    def test_right_boundary_from_tolerance(self):
        model = PayoffModel(tolerance=0.02)
        assert model.right_boundary() == pytest.approx(0.98)

    def test_strategy_interval_ordering(self):
        x_l, x_r = PayoffModel().strategy_interval()
        assert 0.0 <= x_l < x_r <= 1.0

    def test_invalid_tolerance_rejected(self):
        with pytest.raises(ValueError):
            PayoffModel(tolerance=0.7)


class TestProfilePayoffs:
    def test_surviving_poison_is_zero_sum(self):
        model = PayoffModel()
        adv, col = model.profile_payoffs(x_a=0.5, x_c=0.9)
        assert adv > 0.0
        # Collector loss = poison + overhead; the poison part is zero-sum.
        assert col == pytest.approx(-adv - model.trim_overhead(0.9))

    def test_trimmed_poison_gains_nothing(self):
        model = PayoffModel()
        adv, col = model.profile_payoffs(x_a=0.95, x_c=0.9)
        assert adv == 0.0
        assert col == pytest.approx(-model.trim_overhead(0.9))

    def test_equal_positions_mean_trimmed(self):
        adv, _ = PayoffModel().profile_payoffs(0.9, 0.9)
        assert adv == 0.0

    def test_collector_payoff_never_positive(self):
        model = PayoffModel()
        for x_a in np.linspace(0, 1, 7):
            for x_c in np.linspace(0, 1, 7):
                _, col = model.profile_payoffs(x_a, x_c)
                assert col <= 0.0

    @given(st.floats(0, 1), st.floats(0, 1))
    def test_adversary_payoff_bounded_by_gain(self, x_a, x_c):
        model = PayoffModel()
        adv, _ = model.profile_payoffs(x_a, x_c)
        assert 0.0 <= adv <= model.poison_payoff(x_a) + 1e-12


class TestPayoffMatrix:
    def test_shapes(self):
        model = PayoffModel()
        adv, col = model.payoff_matrix(np.linspace(0, 1, 4), np.linspace(0, 1, 6))
        assert adv.shape == (4, 6)
        assert col.shape == (4, 6)

    def test_matrix_matches_pointwise(self):
        model = PayoffModel()
        grid = np.linspace(0.1, 0.9, 5)
        adv, col = model.payoff_matrix(grid, grid)
        for i, x_a in enumerate(grid):
            for j, x_c in enumerate(grid):
                a, c = model.profile_payoffs(x_a, x_c)
                assert adv[i, j] == pytest.approx(a)
                assert col[i, j] == pytest.approx(c)

    def test_adversary_prefers_just_below_threshold(self):
        model = PayoffModel()
        grid = np.linspace(0.0, 1.0, 101)
        adv, _ = model.payoff_matrix(grid, np.array([0.9]))
        best = grid[int(np.argmax(adv[:, 0]))]
        # Best response to trimming at 0.9 sits just below 0.9.
        assert 0.85 <= best < 0.9
