"""Tests for repro.core.domain — percentile coordinate algebra."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.domain import (
    Domain,
    QuantileTable,
    clip_percentile,
    empirical_quantile,
    percentile_grid,
    percentile_of,
)


class TestDomain:
    def test_width_and_center(self):
        d = Domain(-1.0, 1.0)
        assert d.width == 2.0
        assert d.center == 0.0

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            Domain(1.0, -1.0)

    def test_rejects_equal_bounds(self):
        with pytest.raises(ValueError):
            Domain(0.5, 0.5)

    def test_rejects_non_finite(self):
        with pytest.raises(ValueError):
            Domain(0.0, np.inf)

    def test_contains_endpoints(self):
        d = Domain(0.0, 1.0)
        assert d.contains([0.0, 0.5, 1.0]).all()

    def test_contains_excludes_outside(self):
        d = Domain(0.0, 1.0)
        assert not d.contains(1.0001)
        assert not d.contains(-0.0001)

    def test_clip(self):
        d = Domain(-1.0, 1.0)
        np.testing.assert_allclose(d.clip([-5.0, 0.3, 5.0]), [-1.0, 0.3, 1.0])

    def test_normalize_maps_bounds_to_unit(self):
        d = Domain(0.0, 86340.0)
        np.testing.assert_allclose(d.normalize([0.0, 86340.0]), [-1.0, 1.0])

    def test_normalize_denormalize_roundtrip(self):
        d = Domain(3.0, 17.0)
        vals = np.linspace(3.0, 17.0, 11)
        np.testing.assert_allclose(d.denormalize(d.normalize(vals)), vals)

    def test_scale_enlarges_about_center(self):
        d = Domain(-1.0, 1.0).scale(2.0)
        assert d.low == -2.0 and d.high == 2.0

    def test_scale_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Domain(-1.0, 1.0).scale(0.0)

    @given(st.floats(-100, 100), st.floats(0.1, 100))
    def test_normalize_bounds_property(self, low, width):
        d = Domain(low, low + width)
        out = d.normalize([d.low, d.center, d.high])
        np.testing.assert_allclose(out, [-1.0, 0.0, 1.0], atol=1e-9)


class TestEmpiricalQuantile:
    def test_median(self):
        assert empirical_quantile([1.0, 2.0, 3.0], 0.5) == 2.0

    def test_extremes(self):
        vals = [5.0, 1.0, 9.0]
        assert empirical_quantile(vals, 0.0) == 1.0
        assert empirical_quantile(vals, 1.0) == 9.0

    def test_vector_fractions(self):
        out = empirical_quantile(np.arange(101.0), [0.0, 0.5, 1.0])
        np.testing.assert_allclose(out, [0.0, 50.0, 100.0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            empirical_quantile([], 0.5)

    def test_out_of_range_fraction_raises(self):
        with pytest.raises(ValueError):
            empirical_quantile([1.0], 1.5)

    @given(
        st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=50),
        st.floats(0.0, 1.0),
    )
    def test_quantile_within_range(self, values, q):
        out = float(empirical_quantile(values, q))
        assert min(values) <= out <= max(values)

    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=30))
    def test_quantile_monotone_in_fraction(self, values):
        lo = float(empirical_quantile(values, 0.25))
        hi = float(empirical_quantile(values, 0.75))
        assert lo <= hi


class TestEmpiricalQuantileReturnTypes:
    """Scalar ``q`` must yield a plain float, array ``q`` an ndarray."""

    def test_scalar_fraction_returns_float(self):
        out = empirical_quantile([3.0, 1.0, 2.0], 0.5)
        assert type(out) is float
        assert out == 2.0

    def test_zero_d_array_fraction_returns_float(self):
        out = empirical_quantile([3.0, 1.0, 2.0], np.float64(0.5))
        assert type(out) is float

    def test_array_fraction_returns_ndarray(self):
        out = empirical_quantile(np.arange(11.0), np.array([0.1, 0.9]))
        assert isinstance(out, np.ndarray)
        assert out.shape == (2,)

    def test_list_fraction_returns_ndarray(self):
        out = empirical_quantile(np.arange(11.0), [0.0, 0.5, 1.0])
        assert isinstance(out, np.ndarray)
        assert out.shape == (3,)


class TestQuantileTable:
    @given(
        n=st.integers(min_value=1, max_value=400),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=60, deadline=None)
    def test_quantile_bit_identical_to_numpy(self, n, seed):
        rng = np.random.default_rng(seed)
        values = rng.normal(size=n) * rng.lognormal()
        table = QuantileTable(values)
        qs = np.concatenate([rng.random(64), [0.0, 0.25, 0.5, 0.75, 1.0]])
        np.testing.assert_array_equal(table.quantile(qs), np.quantile(values, qs))
        for q in (0.0, 0.5, 0.9, 1.0, float(rng.random())):
            assert table.quantile(q) == float(np.quantile(values, q))

    def test_scalar_query_returns_float(self):
        table = QuantileTable([3.0, 1.0, 2.0])
        out = table.quantile(0.5)
        assert type(out) is float
        assert out == 2.0

    def test_array_query_returns_ndarray(self):
        table = QuantileTable(np.arange(10.0))
        out = table.quantile(np.array([0.0, 1.0]))
        assert isinstance(out, np.ndarray)
        np.testing.assert_array_equal(out, [0.0, 9.0])

    def test_single_element_table(self):
        table = QuantileTable([7.0])
        assert table.quantile(0.0) == 7.0
        assert table.quantile(1.0) == 7.0

    def test_values_sorted_and_read_only(self):
        table = QuantileTable([3.0, 1.0, 2.0])
        np.testing.assert_array_equal(table.values, [1.0, 2.0, 3.0])
        assert table.n == 3
        with pytest.raises(ValueError):
            table.values[0] = -1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            QuantileTable([])

    def test_out_of_range_fraction_rejected(self):
        with pytest.raises(ValueError):
            QuantileTable([1.0, 2.0]).quantile(1.5)

    @given(
        n=st.integers(min_value=1, max_value=200),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=40, deadline=None)
    def test_cdf_matches_percentile_of(self, n, seed):
        rng = np.random.default_rng(seed)
        values = rng.normal(size=n)
        table = QuantileTable(values)
        probes = np.concatenate([values[: min(n, 5)], rng.normal(size=5)])
        for x in probes:
            assert table.cdf(float(x)) == percentile_of(values, float(x))

    def test_tail_mass_counts_strictly_above(self):
        table = QuantileTable([1.0, 2.0, 2.0, 3.0])
        assert table.tail_mass(2.0) == pytest.approx(0.25)
        assert table.tail_mass(0.0) == 1.0
        assert table.tail_mass(3.0) == 0.0

    def test_cdf_array_query(self):
        table = QuantileTable([1.0, 2.0, 3.0, 4.0])
        out = table.cdf(np.array([1.0, 2.5, 10.0]))
        assert isinstance(out, np.ndarray)
        np.testing.assert_allclose(out, [0.0, 0.5, 1.0])


class TestPercentileOf:
    def test_inverse_of_quantile(self):
        values = np.arange(1000.0)
        x = empirical_quantile(values, 0.73)
        assert abs(percentile_of(values, x) - 0.73) < 0.01

    def test_below_minimum_is_zero(self):
        assert percentile_of([1.0, 2.0], 0.0) == 0.0

    def test_above_maximum_is_one(self):
        assert percentile_of([1.0, 2.0], 5.0) == 1.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile_of([], 1.0)

    @given(
        st.lists(st.floats(-100, 100), min_size=1, max_size=40),
        st.floats(-200, 200),
    )
    def test_result_is_probability(self, values, x):
        p = percentile_of(values, x)
        assert 0.0 <= p <= 1.0


class TestClipPercentile:
    @pytest.mark.parametrize(
        "raw, expected", [(-0.5, 0.0), (0.0, 0.0), (0.42, 0.42), (1.0, 1.0), (1.7, 1.0)]
    )
    def test_clip_values(self, raw, expected):
        assert clip_percentile(raw) == expected


class TestPercentileGrid:
    def test_inclusive_endpoints(self):
        grid = percentile_grid(0.2, 0.8, 7)
        assert grid[0] == 0.2 and grid[-1] == 0.8
        assert grid.size == 7

    def test_monotone(self):
        grid = percentile_grid(0.1, 0.9, 33)
        assert np.all(np.diff(grid) > 0)

    def test_clips_out_of_range_inputs(self):
        grid = percentile_grid(-1.0, 2.0, 3)
        assert grid[0] == 0.0 and grid[-1] == 1.0

    def test_rejects_tiny_grid(self):
        with pytest.raises(ValueError):
            percentile_grid(0.0, 1.0, 1)

    def test_rejects_degenerate_interval(self):
        with pytest.raises(ValueError):
            percentile_grid(0.9, 0.9, 5)
