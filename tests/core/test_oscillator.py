"""Tests for repro.core.oscillator — Theorem 4's coupled oscillation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.oscillator import CoupledUtilityOscillator


def _osc(**kwargs):
    defaults = dict(
        stiffness=2.0,
        mass_adversary=1.0,
        mass_collector=3.0,
        u_adversary0=1.0,
        u_collector0=0.0,
        v_adversary0=0.2,
        v_collector0=-0.1,
    )
    defaults.update(kwargs)
    return CoupledUtilityOscillator(**defaults)


class TestDerivedConstants:
    def test_reduced_mass(self):
        osc = _osc()
        assert osc.reduced_mass == pytest.approx(0.75)

    def test_angular_frequency_formula(self):
        osc = _osc()
        expected = np.sqrt(2.0 * 4.0 / 3.0)  # sqrt(k (ma+mc)/(ma mc))
        assert osc.angular_frequency == pytest.approx(expected)

    def test_period(self):
        osc = _osc()
        assert osc.period == pytest.approx(2 * np.pi / osc.angular_frequency)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            _osc(stiffness=0.0)
        with pytest.raises(ValueError):
            _osc(mass_adversary=-1.0)


class TestTrajectories:
    def test_initial_conditions_reproduced(self):
        osc = _osc()
        u_a, u_c = osc.solve(0.0)
        assert u_a == pytest.approx(1.0)
        assert u_c == pytest.approx(0.0)
        v_a, v_c = osc.velocities(0.0)
        assert v_a == pytest.approx(0.2, abs=1e-9)
        assert v_c == pytest.approx(-0.1, abs=1e-9)

    def test_relative_utility_is_cosine(self):
        # Theorem 4: y(r) = A cos(omega r + phi).
        osc = _osc(v_adversary0=0.0, v_collector0=0.0)
        r = np.linspace(0, 10, 301)
        y = osc.relative_utility(r)
        expected = 1.0 * np.cos(osc.angular_frequency * r)
        np.testing.assert_allclose(y, expected, atol=1e-9)

    def test_periodicity(self):
        osc = _osc()
        r = np.linspace(0, 3, 57)
        y1 = osc.relative_utility(r)
        y2 = osc.relative_utility(r + osc.period)
        np.testing.assert_allclose(y1, y2, atol=1e-9)

    def test_center_of_utility_drifts_uniformly(self):
        # The center-of-mass mode keeps Theorem 1's u-dot = const law.
        osc = _osc()
        r = np.linspace(0, 5, 11)
        x = osc.center_of_utility(r)
        np.testing.assert_allclose(np.diff(x), np.diff(x)[0], atol=1e-12)

    def test_solve_consistent_with_modes(self):
        osc = _osc()
        r = np.linspace(0, 7, 50)
        u_a, u_c = osc.solve(r)
        m = osc.mass_adversary * u_a + osc.mass_collector * u_c
        np.testing.assert_allclose(
            m / osc.total_mass, osc.center_of_utility(r), atol=1e-9
        )
        np.testing.assert_allclose(u_a - u_c, osc.relative_utility(r), atol=1e-9)

    def test_equal_utilities_stay_equal_without_relative_motion(self):
        osc = _osc(u_adversary0=0.5, u_collector0=0.5, v_adversary0=0.1,
                   v_collector0=0.1)
        r = np.linspace(0, 5, 20)
        u_a, u_c = osc.solve(r)
        np.testing.assert_allclose(u_a, u_c, atol=1e-9)


class TestInvariants:
    def test_energy_conserved(self):
        osc = _osc()
        r = np.linspace(0, 20, 400)
        energy = osc.energy(r)
        assert np.ptp(energy) < 1e-9 * max(1.0, abs(energy[0]))

    def test_equations_of_motion_residual(self):
        osc = _osc()
        r = np.linspace(0.5, 10, 40)
        res = osc.acceleration_residual(r)
        assert np.abs(res).max() < 1e-4

    @settings(max_examples=30, deadline=None)
    @given(
        st.floats(0.1, 10.0),
        st.floats(0.1, 10.0),
        st.floats(0.1, 10.0),
        st.floats(-2.0, 2.0),
        st.floats(-2.0, 2.0),
    )
    def test_energy_conservation_property(self, k, ma, mc, y0, vy0):
        osc = CoupledUtilityOscillator(
            stiffness=k,
            mass_adversary=ma,
            mass_collector=mc,
            u_adversary0=y0,
            v_adversary0=vy0,
        )
        r = np.linspace(0, 5, 50)
        energy = osc.energy(r)
        scale = max(1.0, abs(float(energy[0])))
        assert np.ptp(energy) < 1e-8 * scale

    def test_amplitude_matches_peak_relative_utility(self):
        osc = _osc()
        r = np.linspace(0, 4 * osc.period, 4001)
        assert np.abs(osc.relative_utility(r)).max() == pytest.approx(
            osc.amplitude, rel=1e-4
        )
