"""Tests for repro.core.strategies — collectors, adversaries, triggers."""

import numpy as np
import pytest

from repro.core.strategies import (
    ElasticAdversary,
    ElasticCollector,
    FixedAdversary,
    JustBelowAdversary,
    MixedAdversary,
    MixedStrategyTrigger,
    NullAdversary,
    OstrichCollector,
    QualityTrigger,
    StaticCollector,
    TitForTatCollector,
    UniformRangeAdversary,
)
from repro.core.strategies.base import RoundObservation


def obs(index=1, trim=0.9, inject=0.95, quality=0.0, ratio=0.0, betrayal=False):
    return RoundObservation(
        index=index,
        trim_percentile=trim,
        injection_percentile=inject,
        quality=quality,
        observed_poison_ratio=ratio,
        betrayal=betrayal,
    )


class TestBaselines:
    def test_ostrich_never_trims(self):
        c = OstrichCollector()
        assert c.first() == 1.0
        assert c.react(obs()) == 1.0

    def test_static_constant(self):
        c = StaticCollector(0.9)
        assert c.first() == 0.9
        assert c.react(obs(inject=0.1)) == 0.9

    def test_static_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            StaticCollector(0.0)

    def test_static_name_includes_threshold(self):
        assert "0.90" in StaticCollector(0.9).name


class TestTitForTatCollector:
    def test_soft_until_triggered(self):
        trig = QualityTrigger(reference_score=0.1, redundancy=0.05)
        c = TitForTatCollector(0.9, trigger=trig)
        assert c.first() == pytest.approx(0.91)
        assert c.react(obs(quality=0.12)) == pytest.approx(0.91)
        assert not c.triggered

    def test_trigger_fires_and_is_permanent(self):
        trig = QualityTrigger(reference_score=0.1, redundancy=0.05)
        c = TitForTatCollector(0.9, trigger=trig)
        c.first()
        assert c.react(obs(index=3, quality=0.3)) == pytest.approx(0.87)
        assert c.triggered
        assert c.terminated_round == 3
        # Even a pristine observation cannot restore soft trimming.
        assert c.react(obs(index=4, quality=0.0)) == pytest.approx(0.87)

    def test_no_trigger_configuration_never_hardens(self):
        c = TitForTatCollector(0.9, trigger=None)
        for i in range(1, 20):
            assert c.react(obs(index=i, quality=10.0)) == pytest.approx(0.91)
        assert c.terminated_round is None

    def test_reset_clears_trigger_state(self):
        trig = QualityTrigger(reference_score=0.0, redundancy=0.0)
        c = TitForTatCollector(0.9, trigger=trig)
        c.react(obs(quality=1.0))
        assert c.triggered
        c.reset()
        assert not c.triggered
        assert c.terminated_round is None
        assert c.first() == pytest.approx(0.91)

    def test_offsets_clipped_to_unit_interval(self):
        c = TitForTatCollector(0.995, soft_offset=0.01)
        assert c.soft_percentile == 1.0

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            TitForTatCollector(1.5)


class TestMixedStrategyTrigger:
    def test_tolerance_formula(self):
        t = MixedStrategyTrigger(0.7, redundancy=0.05)
        assert t.tolerance == pytest.approx(0.35)

    def test_no_fire_during_warmup(self):
        t = MixedStrategyTrigger(1.0, redundancy=0.05, warmup=5)
        for i in range(4):
            assert not t.fired(obs(index=i + 1, betrayal=True))

    def test_fires_after_warmup_when_ratio_exceeds(self):
        t = MixedStrategyTrigger(1.0, redundancy=0.05, warmup=3)
        t.fired(obs(betrayal=True))
        t.fired(obs(betrayal=True))
        assert t.fired(obs(betrayal=True))  # ratio 1 > 0.05 at warmup

    def test_p_zero_never_fires(self):
        t = MixedStrategyTrigger(0.0, redundancy=0.05, warmup=2)
        fired = [t.fired(obs(index=i, betrayal=True)) for i in range(1, 30)]
        assert not any(fired)  # tolerance 1.05 unreachable

    def test_ratio_tracks_judgements(self):
        t = MixedStrategyTrigger(0.5, warmup=100)
        t.fired(obs(betrayal=True))
        t.fired(obs(betrayal=False))
        assert t.betrayal_ratio == pytest.approx(0.5)

    def test_reset(self):
        t = MixedStrategyTrigger(0.5)
        t.fired(obs(betrayal=True))
        t.reset()
        assert t.betrayal_ratio == 0.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            MixedStrategyTrigger(1.5)
        with pytest.raises(ValueError):
            MixedStrategyTrigger(0.5, warmup=0)


class TestElasticCollector:
    def test_initial_position(self):
        c = ElasticCollector(0.9, 0.5)
        assert c.first() == pytest.approx(0.87)

    def test_paper_rule_update(self):
        c = ElasticCollector(0.9, 0.5, rule="paper")
        c.reset()
        new = c.react(obs(inject=0.99))
        assert new == pytest.approx(0.9 + 0.5 * (0.99 - 0.9 - 0.01))

    def test_relaxation_rule_moves_partway(self):
        c = ElasticCollector(0.9, 0.5, rule="relaxation")
        c.reset()
        target = 0.9 + 0.5 * (0.99 - 0.9 - 0.01)
        new = c.react(obs(inject=0.99))
        assert new == pytest.approx(0.5 * 0.87 + 0.5 * target)

    def test_converges_to_linear_fixed_point(self):
        from repro.core.stackelberg import linear_response_fixed_point

        for rule in ("paper", "relaxation"):
            collector = ElasticCollector(0.9, 0.5, rule=rule)
            adversary = ElasticAdversary(0.9, 0.5, rule=rule)
            collector.reset()
            adversary.reset()
            t, a = collector.first(), adversary.first()
            for i in range(200):
                o = obs(index=i + 1, trim=t, inject=a)
                t, a = collector.react(o), adversary.react(o)
            t_star, a_star = linear_response_fixed_point(0.9, 0.5)
            assert t == pytest.approx(t_star, abs=1e-6)
            assert a == pytest.approx(a_star, abs=1e-6)

    def test_quality_fallback_when_no_injection(self):
        c = ElasticCollector(0.9, 0.5)
        c.reset()
        calm = c.react(obs(inject=None, quality=0.0))
        assert calm == pytest.approx(0.91)  # no alarm -> soft endpoint
        c.reset()
        alarmed = c.react(obs(inject=None, quality=1.0))
        assert alarmed == pytest.approx(0.5 * 0.91 + 0.5 * 0.87)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ElasticCollector(0.9, 1.0)
        with pytest.raises(ValueError):
            ElasticCollector(0.9, 0.5, rule="nope")


class TestElasticAdversary:
    def test_initial_position(self):
        a = ElasticAdversary(0.9, 0.5)
        assert a.first() == pytest.approx(0.91)

    def test_paper_rule_update(self):
        a = ElasticAdversary(0.9, 0.5, rule="paper")
        a.reset()
        new = a.react(obs(trim=0.87))
        assert new == pytest.approx(0.9 - 0.03 + 0.5 * (0.87 - 0.9))

    def test_reset_restores_initial(self):
        a = ElasticAdversary(0.9, 0.5)
        a.react(obs(trim=0.5))
        a.reset()
        assert a.first() == pytest.approx(0.91)


class TestAdversaries:
    def test_null_adversary(self):
        a = NullAdversary()
        assert a.first() is None
        assert a.react(obs()) is None

    def test_fixed_adversary(self):
        a = FixedAdversary(0.99)
        assert a.first() == 0.99
        assert a.react(obs(trim=0.1)) == 0.99

    def test_fixed_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            FixedAdversary(1.2)

    def test_uniform_range_in_bounds(self):
        a = UniformRangeAdversary(0.9, 1.0, seed=0)
        draws = [a.react(obs()) for _ in range(100)]
        assert all(0.9 <= d <= 1.0 for d in draws)
        assert len(set(draws)) > 50  # actually random

    def test_uniform_rejects_bad_range(self):
        with pytest.raises(ValueError):
            UniformRangeAdversary(1.0, 0.9)

    def test_just_below_tracks_threshold(self):
        a = JustBelowAdversary(initial_threshold=0.9, margin=0.01)
        assert a.first() == pytest.approx(0.89)
        assert a.react(obs(trim=0.95)) == pytest.approx(0.94)

    def test_just_below_clips_at_zero(self):
        a = JustBelowAdversary(initial_threshold=0.9, margin=0.01)
        assert a.react(obs(trim=0.005)) == 0.0

    def test_mixed_adversary_extremes(self):
        always_eq = MixedAdversary(1.0, seed=0)
        assert all(always_eq.react(obs()) == 0.99 for _ in range(20))
        always_greedy = MixedAdversary(0.0, seed=0)
        assert all(always_greedy.react(obs()) == 0.90 for _ in range(20))

    def test_mixed_adversary_frequency(self):
        a = MixedAdversary(0.7, seed=1)
        draws = [a.react(obs()) for _ in range(4000)]
        assert np.mean(np.array(draws) == 0.99) == pytest.approx(0.7, abs=0.03)

    def test_mixed_tracks_last_play(self):
        a = MixedAdversary(0.0, seed=0)
        a.react(obs())
        assert a.last_was_greedy

    def test_mixed_rejects_bad_positions(self):
        with pytest.raises(ValueError):
            MixedAdversary(0.5, equilibrium_position=0.8, greedy_position=0.9)
