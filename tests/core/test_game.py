"""Tests for repro.core.game — matrix games and the Table I ultimatum game."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.game import (
    HARD,
    SOFT,
    BimatrixGame,
    UltimatumPayoffs,
    build_ultimatum_game,
    solve_zero_sum,
)


def _matching_pennies():
    a = np.array([[1.0, -1.0], [-1.0, 1.0]])
    return BimatrixGame(row_payoffs=a, col_payoffs=-a)


class TestBimatrixGame:
    def test_shape_and_labels(self):
        g = _matching_pennies()
        assert g.shape == (2, 2)
        assert list(g.row_labels) == ["r0", "r1"]

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            BimatrixGame(np.zeros((2, 2)), np.zeros((2, 3)))

    def test_zero_sum_detection(self):
        assert _matching_pennies().is_zero_sum()

    def test_non_zero_sum_detection(self):
        g = BimatrixGame(np.ones((2, 2)), np.ones((2, 2)))
        assert not g.is_zero_sum()

    def test_matching_pennies_has_no_pure_nash(self):
        assert _matching_pennies().pure_nash_equilibria() == []

    def test_prisoners_dilemma_equilibrium(self):
        # Classic PD: defect strictly dominates.
        row = np.array([[3.0, 0.0], [5.0, 1.0]])
        g = BimatrixGame(row_payoffs=row, col_payoffs=row.T)
        assert g.pure_nash_equilibria() == [(1, 1)]

    def test_best_responses(self):
        row = np.array([[3.0, 0.0], [5.0, 1.0]])
        g = BimatrixGame(row_payoffs=row, col_payoffs=row.T)
        assert list(g.row_best_responses(0)) == [1]
        assert list(g.col_best_responses(0)) == [1]

    def test_strict_dominance(self):
        row = np.array([[3.0, 0.0], [5.0, 1.0]])
        g = BimatrixGame(row_payoffs=row, col_payoffs=row.T)
        assert g.strictly_dominated_rows() == [0]
        assert g.strictly_dominated_cols() == [0]


class TestSolveZeroSum:
    def test_matching_pennies_value_and_mixtures(self):
        a = np.array([[1.0, -1.0], [-1.0, 1.0]])
        row, col, value = solve_zero_sum(a)
        assert value == pytest.approx(0.0, abs=1e-8)
        np.testing.assert_allclose(row, [0.5, 0.5], atol=1e-6)
        np.testing.assert_allclose(col, [0.5, 0.5], atol=1e-6)

    def test_dominant_row_gets_full_mass(self):
        a = np.array([[2.0, 2.0], [0.0, 0.0]])
        row, _, value = solve_zero_sum(a)
        assert value == pytest.approx(2.0, abs=1e-8)
        assert row[0] == pytest.approx(1.0, abs=1e-6)

    def test_value_shift_invariance(self):
        a = np.array([[1.0, -2.0], [-3.0, 4.0]])
        _, _, v1 = solve_zero_sum(a)
        _, _, v2 = solve_zero_sum(a + 10.0)
        assert v2 - v1 == pytest.approx(10.0, abs=1e-7)

    def test_mixtures_are_distributions(self):
        a = np.array([[1.0, -2.0, 0.5], [-3.0, 4.0, -1.0]])
        row, col, _ = solve_zero_sum(a)
        assert row.sum() == pytest.approx(1.0)
        assert col.sum() == pytest.approx(1.0)
        assert (row >= -1e-12).all() and (col >= -1e-12).all()

    def test_invalid_input_rejected(self):
        with pytest.raises(ValueError):
            solve_zero_sum(np.zeros((0, 0)))

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(2, 4),
        st.integers(2, 4),
        st.integers(0, 10_000),
    )
    def test_minimax_guarantee(self, n_rows, n_cols, seed):
        rng = np.random.default_rng(seed)
        a = rng.uniform(-5, 5, size=(n_rows, n_cols))
        row, col, value = solve_zero_sum(a)
        # Row mixture guarantees at least `value` against every column,
        # column mixture concedes at most `value` against every row.
        assert (row @ a >= value - 1e-6).all()
        assert (a @ col <= value + 1e-6).all()


class TestUltimatumGame:
    def test_default_payoffs_respect_ordering(self):
        p = UltimatumPayoffs()
        assert p.p_high > p.t_high > p.p_low > p.t_low > 0

    def test_bad_ordering_rejected(self):
        with pytest.raises(ValueError):
            UltimatumPayoffs(p_high=1.0, t_high=2.0, p_low=0.5, t_low=0.1)

    def test_unique_equilibrium_is_hard_hard(self):
        game = build_ultimatum_game()
        assert game.pure_nash_equilibria() == [(HARD, HARD)]

    def test_soft_soft_pareto_dominates_equilibrium_for_collector(self):
        game = build_ultimatum_game()
        # (Soft, Soft) is better for the collector than (Hard, Hard):
        # the prisoner's-dilemma tension motivating the repeated game.
        assert game.col_payoffs[SOFT, SOFT] > game.col_payoffs[HARD, HARD]

    def test_adversary_prefers_hard_against_soft(self):
        game = build_ultimatum_game()
        assert game.row_payoffs[HARD, SOFT] > game.row_payoffs[SOFT, SOFT]

    def test_hard_trim_nullifies_poison_payoff(self):
        game = build_ultimatum_game()
        assert game.row_payoffs[SOFT, HARD] == 0.0
        assert game.row_payoffs[HARD, HARD] == 0.0

    def test_labels(self):
        game = build_ultimatum_game()
        assert tuple(game.row_labels) == ("soft", "hard")
        assert tuple(game.col_labels) == ("soft", "hard")
