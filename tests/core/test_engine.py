"""Tests for repro.core.engine — the collection game loop and judges."""

import numpy as np
import pytest

from repro.core.engine import BandExcessJudge, CollectionGame, NoisyPositionJudge
from repro.core.quality import TailMassEvaluator
from repro.core.strategies import (
    ElasticAdversary,
    ElasticCollector,
    FixedAdversary,
    GenerousCollector,
    MixedStrategyTrigger,
    NullAdversary,
    OstrichCollector,
    StaticCollector,
    TitForTatCollector,
    TitForTwoTatsCollector,
)
from repro.core.trimming import RadialTrimmer, ValueTrimmer
from repro.streams import ArrayStream, PoisonInjector


def _game(data, collector, adversary, ratio=0.2, rounds=5, anchor="reference",
          trimmer=None, judge=None):
    return CollectionGame(
        source=ArrayStream(data, batch_size=100, seed=0),
        collector=collector,
        adversary=adversary,
        injector=PoisonInjector(attack_ratio=ratio, seed=1),
        trimmer=trimmer or RadialTrimmer(),
        reference=data,
        quality_evaluator=TailMassEvaluator(),
        judge=judge,
        rounds=rounds,
        anchor=anchor,
    )


class TestCollectionGame:
    def test_round_count(self, control_data):
        data, _ = control_data
        result = _game(data, OstrichCollector(), NullAdversary(), rounds=7).run()
        assert result.rounds == 7

    def test_groundtruth_keeps_everything(self, control_data):
        data, _ = control_data
        result = _game(data, OstrichCollector(), NullAdversary()).run()
        assert result.poison_retained_fraction() == 0.0
        assert result.trimmed_fraction() == 0.0
        assert result.retained_data().shape == (500, data.shape[1])

    def test_ostrich_keeps_all_poison(self, control_data):
        data, _ = control_data
        result = _game(data, OstrichCollector(), FixedAdversary(0.99)).run()
        assert result.poison_retained_fraction() == pytest.approx(
            0.2 / 1.2, abs=0.01
        )

    def test_reference_trim_removes_above_threshold_poison(self, control_data):
        data, _ = control_data
        result = _game(data, StaticCollector(0.9), FixedAdversary(0.99)).run()
        # Poison at the 99th reference percentile sits above the 0.9 cutoff.
        assert result.poison_retained_fraction() == pytest.approx(0.0, abs=0.01)

    def test_just_below_poison_survives_reference_trim(self, control_data):
        data, _ = control_data
        result = _game(data, StaticCollector(0.9), FixedAdversary(0.85)).run()
        assert result.poison_retained_fraction() > 0.12

    def test_batch_anchor_trims_fixed_fraction(self, control_data):
        data, _ = control_data
        result = _game(
            data, StaticCollector(0.9), FixedAdversary(0.99), anchor="batch"
        ).run()
        # 10% of each combined batch is removed, independent of inflation.
        assert result.trimmed_fraction() == pytest.approx(0.1, abs=0.01)

    def test_threshold_and_injection_paths_recorded(self, control_data):
        data, _ = control_data
        result = _game(data, StaticCollector(0.9), FixedAdversary(0.99)).run()
        np.testing.assert_allclose(result.threshold_path(), 0.9)
        np.testing.assert_allclose(result.injection_path(), 0.99)

    def test_null_adversary_injection_path_is_nan(self, control_data):
        data, _ = control_data
        result = _game(data, OstrichCollector(), NullAdversary()).run()
        assert np.isnan(result.injection_path()).all()

    def test_invalid_rounds_rejected(self, control_data):
        data, _ = control_data
        with pytest.raises(ValueError):
            _game(data, OstrichCollector(), NullAdversary(), rounds=0)

    def test_invalid_anchor_rejected(self, control_data):
        data, _ = control_data
        with pytest.raises(ValueError):
            _game(data, OstrichCollector(), NullAdversary(), anchor="nope")

    def test_scalar_stream_with_value_trimmer(self, rng):
        values = rng.normal(size=2000)
        game = CollectionGame(
            source=ArrayStream(values, batch_size=200, seed=0),
            collector=StaticCollector(0.95),
            adversary=FixedAdversary(0.99),
            injector=PoisonInjector(attack_ratio=0.1, seed=1),
            trimmer=ValueTrimmer(),
            reference=values,
            rounds=4,
        )
        result = game.run()
        assert result.poison_retained_fraction() < 0.02

    def test_run_is_reproducible_given_seeds(self, control_data):
        data, _ = control_data
        r1 = _game(data, StaticCollector(0.9), FixedAdversary(0.95)).run()
        r2 = _game(data, StaticCollector(0.9), FixedAdversary(0.95)).run()
        assert r1.poison_retained_fraction() == r2.poison_retained_fraction()
        np.testing.assert_array_equal(r1.retained_data(), r2.retained_data())


class TestStrategyReplay:
    """Reused strategy objects must replay identically after reset().

    ``CollectionGame.run`` resets both strategies, so playing the same
    game twice on the *same* instances is the engine-level contract the
    per-strategy ``reset`` implementations have to honor.
    """

    @pytest.mark.parametrize(
        "make_collector",
        [
            lambda: ElasticCollector(0.9, 0.5, rule="relaxation"),
            lambda: TitForTatCollector(
                0.9, trigger=MixedStrategyTrigger(0.5, warmup=2)
            ),
            lambda: GenerousCollector(0.9, generosity=0.5, seed=11),
            lambda: TitForTwoTatsCollector(0.9),
        ],
    )
    def test_same_game_twice_identical_paths(self, rng, make_collector):
        data = rng.normal(size=(500, 4))
        collector = make_collector()
        adversary = ElasticAdversary(0.9, 0.5, rule="relaxation")
        game = _game(data, collector, adversary, rounds=8)
        first = game.run()
        second = game.run()
        np.testing.assert_array_equal(
            first.threshold_path(), second.threshold_path()
        )
        np.testing.assert_array_equal(
            first.injection_path(), second.injection_path()
        )
        assert first.termination_round == second.termination_round
        assert (
            first.poison_retained_fraction()
            == second.poison_retained_fraction()
        )


class TestBandExcessJudge:
    def test_clean_scores_not_flagged(self, rng):
        reference = rng.normal(size=5000)
        judge = BandExcessJudge(noise_sigma=0.0).fit(np.abs(reference))
        assert not judge.judge(np.abs(rng.normal(size=3000)))

    def test_band_stuffing_flagged(self, rng):
        reference = np.abs(rng.normal(size=5000))
        judge = BandExcessJudge(band=(0.85, 0.95), margin=0.04, noise_sigma=0.0)
        judge.fit(reference)
        lo, hi = np.quantile(reference, [0.86, 0.94])
        batch = np.concatenate(
            [np.abs(rng.normal(size=1000)), rng.uniform(lo, hi, size=300)]
        )
        assert judge.judge(batch)

    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            BandExcessJudge().judge(np.ones(10))

    def test_empty_scores_not_flagged(self, rng):
        judge = BandExcessJudge().fit(np.abs(rng.normal(size=100)))
        assert not judge.judge(np.array([]))

    def test_invalid_band_rejected(self):
        with pytest.raises(ValueError):
            BandExcessJudge(band=(0.9, 0.8))


class TestNoisyPositionJudge:
    def test_noiseless_judgement(self):
        judge = NoisyPositionJudge(0.9, miss_rate=0.0, false_positive_rate=0.0)
        assert judge.judge_round(0.85, None)
        assert not judge.judge_round(0.95, None)
        assert not judge.judge_round(None, None)

    def test_miss_rate_frequency(self):
        judge = NoisyPositionJudge(0.9, miss_rate=0.3, false_positive_rate=0.0,
                                   seed=0)
        hits = [judge.judge_round(0.8, None) for _ in range(5000)]
        assert np.mean(hits) == pytest.approx(0.7, abs=0.03)

    def test_false_positive_frequency(self):
        judge = NoisyPositionJudge(0.9, miss_rate=0.0, false_positive_rate=0.2,
                                   seed=0)
        hits = [judge.judge_round(0.99, None) for _ in range(5000)]
        assert np.mean(hits) == pytest.approx(0.2, abs=0.03)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            NoisyPositionJudge(0.0)
        with pytest.raises(ValueError):
            NoisyPositionJudge(0.9, miss_rate=1.5)


class TestLeanMode:
    """store_retained=False must change memory, never results."""

    def test_records_byte_identical_to_full_mode(self, control_data):
        data, _ = control_data

        def build(store_retained):
            return CollectionGame(
                source=ArrayStream(data, batch_size=100, seed=0),
                collector=ElasticCollector(t_th=0.9, k=0.5),
                adversary=ElasticAdversary(t_th=0.9, k=0.5),
                injector=PoisonInjector(attack_ratio=0.2, seed=1),
                trimmer=RadialTrimmer(),
                reference=data,
                quality_evaluator=TailMassEvaluator(),
                judge=BandExcessJudge(noise_sigma=0.02, seed=3),
                rounds=6,
                store_retained=store_retained,
            )

        import json

        full = build(True).run()
        lean = build(False).run()
        assert json.dumps(full.to_records(), sort_keys=True) == json.dumps(
            lean.to_records(), sort_keys=True
        )
        assert lean.poison_retained_fraction() == full.poison_retained_fraction()
        assert lean.trimmed_fraction() == full.trimmed_fraction()

    def test_lean_result_has_no_retained_data(self, control_data):
        data, _ = control_data
        game = CollectionGame(
            source=ArrayStream(data, batch_size=100, seed=0),
            collector=OstrichCollector(),
            adversary=NullAdversary(),
            injector=PoisonInjector(attack_ratio=0.2, seed=1),
            trimmer=RadialTrimmer(),
            reference=data,
            rounds=3,
            store_retained=False,
        )
        result = game.run()
        with pytest.raises(ValueError, match="lean"):
            result.retained_data()
        assert all(e.retained is None for e in result.board.entries)


class TestSharedScoreSweep:
    """With a ValueTrimmer on 1-D data the evaluator reuses the trim
    report's scores — results must match an unshared evaluation."""

    def test_value_trimmer_shares_scores_with_tailmass(self, rng):
        data = rng.lognormal(size=2000)

        class NoShareEvaluator(TailMassEvaluator):
            def accepts_scores(self, score_kind):
                return False

        def build(evaluator):
            return CollectionGame(
                source=ArrayStream(data, batch_size=200, seed=0),
                collector=ElasticCollector(t_th=0.9, k=0.5),
                adversary=FixedAdversary(0.93),
                injector=PoisonInjector(attack_ratio=0.2, mode="quantile", seed=1),
                trimmer=ValueTrimmer(),
                reference=data,
                quality_evaluator=evaluator,
                rounds=5,
            )

        shared_game = build(TailMassEvaluator())
        assert shared_game._share_scores
        unshared_game = build(NoShareEvaluator())
        assert not unshared_game._share_scores

        import json

        shared = shared_game.run().to_records()
        unshared = unshared_game.run().to_records()
        assert json.dumps(shared, sort_keys=True) == json.dumps(
            unshared, sort_keys=True
        )

    def test_radial_trimmer_does_not_share(self, control_data):
        data, _ = control_data
        game = _game(data, OstrichCollector(), NullAdversary())
        assert not game._share_scores


class TestJudgeTableSharing:
    def test_band_judge_fit_accepts_quantile_table(self, rng):
        from repro.core.domain import QuantileTable

        scores = rng.normal(size=1000)
        from_scores = BandExcessJudge(noise_sigma=0.0).fit(scores)
        from_table = BandExcessJudge(noise_sigma=0.0).fit(QuantileTable(scores))
        assert from_scores._band_values == from_table._band_values

    def test_engine_shares_trimmer_table_with_band_judge(self, control_data):
        data, _ = control_data
        game = _game(data, OstrichCollector(), NullAdversary())
        # The judge's band cutoffs must equal quantiles of the trimmer's
        # reference scores (the single shared sorted table).
        expected = np.quantile(
            game.trimmer.reference_scores, game.judge.band
        )
        assert game.judge._band_values == (float(expected[0]), float(expected[1]))
