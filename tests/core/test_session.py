"""The push-driven session API: transition equality, lifecycle, snapshots.

The load-bearing contracts:

* ``CollectionGame.run()`` is a thin driver over ``GameSession.submit``
  — an external caller-owned loop reproduces it byte for byte;
* ``snapshot()`` → ``restore()`` mid-game continues byte-identically to
  the uninterrupted game, across the full shipped strategy matrix
  (property-tested here in-process; cross-process in
  ``test_session_process.py``);
* live mode (``adversary=None``) trims externally manipulated traffic;
* lifecycle errors (horizon exhaustion, submit-after-close) are loud.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import CollectionGame, ComponentSpec, GameSpec, PayoffModel
from repro.core.engine import BandExcessJudge, NoisyPositionJudge
from repro.core.session import (
    SNAPSHOT_FORMAT,
    GameSession,
    RoundDecision,
    round_payoffs,
)
from repro.core.strategies import (
    ElasticAdversary,
    ElasticCollector,
    FixedAdversary,
    GenerousCollector,
    JustBelowAdversary,
    MirrorCollector,
    MixedAdversary,
    NullAdversary,
    OstrichCollector,
    StaticCollector,
    TitForTatCollector,
    TitForTwoTatsCollector,
    UniformRangeAdversary,
)
from repro.core.strategies.titfortat import MixedStrategyTrigger, QualityTrigger
from repro.core.trimming import RadialTrimmer
from repro.streams import ArrayStream, PoisonInjector

#: The full shipped strategy matrix the snapshot contract is tested
#: over (shared with the cross-process test in test_session_process.py).
MATRIX_COLLECTORS = {
    "ostrich": ComponentSpec(OstrichCollector),
    "static": ComponentSpec(StaticCollector, {"threshold": 0.9}),
    "tft-quality": ComponentSpec(
        TitForTatCollector,
        {
            "t_th": 0.9,
            "trigger": ComponentSpec(
                QualityTrigger, {"reference_score": 0.05, "redundancy": 0.03}
            ),
        },
    ),
    "tft-mixed": ComponentSpec(
        TitForTatCollector,
        {
            "t_th": 0.9,
            "trigger": ComponentSpec(
                MixedStrategyTrigger,
                {"equilibrium_probability": 0.7, "warmup": 2},
            ),
        },
    ),
    "elastic-paper": ComponentSpec(ElasticCollector, {"t_th": 0.9, "k": 0.5}),
    "elastic-relax": ComponentSpec(
        ElasticCollector, {"t_th": 0.9, "k": 0.3, "rule": "relaxation"}
    ),
    "mirror": ComponentSpec(MirrorCollector, {"t_th": 0.9}),
    "generous": ComponentSpec(
        GenerousCollector, {"t_th": 0.9, "generosity": 0.4}, seeded=True
    ),
    "two-tats": ComponentSpec(TitForTwoTatsCollector, {"t_th": 0.9}),
}

MATRIX_ADVERSARIES = {
    "null": ComponentSpec(NullAdversary),
    "fixed": ComponentSpec(FixedAdversary, {"percentile": 0.99}),
    "uniform": ComponentSpec(
        UniformRangeAdversary, {"low": 0.9, "high": 1.0}, seeded=True
    ),
    "just-below": ComponentSpec(
        JustBelowAdversary, {"initial_threshold": 0.9}
    ),
    "mixed": ComponentSpec(MixedAdversary, {"p": 0.6}, seeded=True),
    "elastic": ComponentSpec(ElasticAdversary, {"t_th": 0.9, "k": 0.5}),
}

MATRIX_JUDGES = {
    "band": ComponentSpec(
        BandExcessJudge, {"noise_sigma": 0.02}, seeded=True
    ),
    "position": ComponentSpec(
        NoisyPositionJudge, {"boundary": 0.9}, seeded=True
    ),
}


def matrix_spec(collector, adversary, judge, seed=0, rounds=8) -> GameSpec:
    """One matrix cell as a spec (jittered injector, noisy judge)."""
    return GameSpec(
        collector=MATRIX_COLLECTORS[collector],
        adversary=MATRIX_ADVERSARIES[adversary],
        judge=MATRIX_JUDGES[judge],
        dataset="control",
        attack_ratio=0.2,
        injection_jitter=0.02,
        rounds=rounds,
        batch_size=60,
        seed=seed,
    )


def assert_results_identical(a, b):
    """Full byte-level equality of two GameResults."""
    assert a.to_records() == b.to_records()
    assert a.termination_round == b.termination_round
    assert a.collector_name == b.collector_name
    assert a.adversary_name == b.adversary_name
    assert (
        a.retained_data().tobytes() == b.retained_data().tobytes()
    )


@pytest.fixture(scope="module")
def reference(control_data):
    return control_data[0]


# --------------------------------------------------------------------- #
# run() as a thin driver / external loops
# --------------------------------------------------------------------- #
class TestExternalLoop:
    @pytest.mark.parametrize(
        "collector,adversary,judge",
        [
            ("tft-mixed", "mixed", "position"),
            ("elastic-paper", "elastic", "band"),
            ("generous", "uniform", "band"),
        ],
    )
    def test_external_loop_matches_run(self, collector, adversary, judge):
        spec = matrix_spec(collector, adversary, judge, seed=11)
        full = spec.play()

        game = spec.build()
        session = game.session()
        decisions = []
        while not session.done:
            decisions.append(session.submit(game.source.next_batch()))
        result = session.close()

        assert_results_identical(result, full)
        assert [d.index for d in decisions] == list(range(1, spec.rounds + 1))
        # The decisions mirror the board, round for round.
        for decision, record in zip(decisions, result.to_records(), strict=False):
            assert decision.threshold == record["trim_percentile"]
            assert decision.n_retained == record["n_retained"]
            assert decision.betrayal == record["betrayal"]
            assert decision.n_collected == record["n_collected"]

    def test_attached_source_pulls_identically(self):
        spec = matrix_spec("elastic-paper", "elastic", "band", seed=3)
        full = spec.play()
        session = spec.session()
        while not session.done:
            session.submit()
        assert_results_identical(session.close(), full)

    def test_accept_mask_matches_counts(self):
        session = matrix_spec("static", "fixed", "band", seed=5).session()
        decision = session.submit()
        assert decision.accept_mask.dtype == bool
        assert decision.accept_mask.shape == (decision.n_collected,)
        assert int(decision.accept_mask.sum()) == decision.n_retained
        assert decision.n_trimmed == decision.n_collected - decision.n_retained
        assert decision.retained.shape[0] == decision.n_retained

    def test_partial_horizon_close(self):
        session = matrix_spec("elastic-paper", "elastic", "band").session()
        session.submit()
        session.submit()
        result = session.close()
        assert result.rounds == 2
        assert session.is_closed

    def test_open_ended_session(self):
        spec = matrix_spec("static", "fixed", "band")
        session = spec.session(horizon=None)
        for _ in range(spec.rounds + 3):  # past the spec's own horizon
            session.submit()
        assert not session.done
        assert session.close().rounds == spec.rounds + 3


class TestLifecycleErrors:
    def test_horizon_exhaustion_raises(self):
        session = matrix_spec("static", "fixed", "band", rounds=2).session()
        session.submit()
        session.submit()
        assert session.done
        with pytest.raises(RuntimeError, match="horizon"):
            session.submit()

    def test_submit_after_close_raises(self):
        session = matrix_spec("static", "fixed", "band").session()
        session.submit()
        session.close()
        with pytest.raises(RuntimeError, match="closed"):
            session.submit()

    def test_newer_session_supersedes_older(self):
        # Engine-backed sessions share the engine's live components; a
        # second session()/run() resets them, so the first must die
        # loudly instead of silently diverging.
        game = matrix_spec("elastic-paper", "elastic", "band").build()
        first = game.session(attach_source=True)
        first.submit()
        result = game.run()  # resets components under `first`
        with pytest.raises(RuntimeError, match="superseded"):
            first.submit()
        with pytest.raises(RuntimeError, match="superseded"):
            first.snapshot()
        # The engine itself is unharmed: run() is still reproducible.
        assert game.run().to_records() == result.to_records()

    def test_batched_session_supersession(self):
        from repro.runtime.spec import build_batched_game

        engine = build_batched_game(
            [matrix_spec("static", "fixed", "band", seed=s) for s in range(2)]
        )
        first = engine.session()
        first.submit(engine.source.next_batches())
        engine.run()
        with pytest.raises(RuntimeError, match="superseded"):
            first.submit(engine.source.next_batches())

    def test_no_batch_without_source_raises(self, reference):
        session = GameSession.open(
            collector=StaticCollector(0.9),
            adversary=FixedAdversary(0.99),
            injector=PoisonInjector(attack_ratio=0.2, seed=0),
            trimmer=RadialTrimmer(),
            reference=reference,
        )
        with pytest.raises(ValueError, match="no attached"):
            session.submit()

    def test_adversary_without_injector_raises(self, reference):
        with pytest.raises(ValueError, match="injector"):
            GameSession.open(
                collector=StaticCollector(0.9),
                adversary=FixedAdversary(0.99),
                trimmer=RadialTrimmer(),
                reference=reference,
            )


# --------------------------------------------------------------------- #
# GameSession.open calibration parity
# --------------------------------------------------------------------- #
class TestOpenCalibration:
    def test_open_matches_collection_game(self, reference):
        def build(via_open: bool):
            kwargs = dict(
                collector=ElasticCollector(t_th=0.9, k=0.5),
                adversary=ElasticAdversary(t_th=0.9, k=0.5),
                injector=PoisonInjector(attack_ratio=0.2, seed=4),
                trimmer=RadialTrimmer(),
                judge=BandExcessJudge(noise_sigma=0.02, seed=9),
            )
            source = ArrayStream(reference, batch_size=60, seed=1)
            if via_open:
                return GameSession.open(
                    reference=reference, horizon=6, source=source, **kwargs
                )
            return CollectionGame(
                source=source, reference=reference, rounds=6, **kwargs
            ).session(attach_source=True)

        a, b = build(True), build(False)
        while not a.done:
            a.submit()
            b.submit()
        assert_results_identical(a.close(), b.close())


# --------------------------------------------------------------------- #
# live mode
# --------------------------------------------------------------------- #
class TestLiveMode:
    def test_live_session_trims_submitted_traffic(self, reference):
        session = GameSession.open(
            collector=TitForTatCollector(t_th=0.9, trigger=None),
            trimmer=RadialTrimmer(),
            reference=reference,
        )
        rng = np.random.default_rng(0)
        benign = reference[rng.integers(0, reference.shape[0], size=50)]
        manipulated = np.concatenate(
            [benign, benign[:10] * 3.0], axis=0
        )
        mask = np.zeros(60, dtype=bool)
        mask[50:] = True
        decision = session.submit(manipulated, poison_mask=mask)
        assert session.adversary_name == "live"
        assert decision.injection_percentile is None
        assert decision.n_collected == 60
        assert decision.n_poison_injected == 10
        # The inflated rows score far out and are trimmed.
        assert decision.n_poison_retained < 10
        assert decision.accept_mask.shape == (60,)
        result = session.close()
        assert result.to_records()[0]["n_poison_injected"] == 10

    def test_live_mode_rejects_bad_mask(self, reference):
        session = GameSession.open(
            collector=StaticCollector(0.9),
            trimmer=RadialTrimmer(),
            reference=reference,
        )
        with pytest.raises(ValueError, match="poison_mask"):
            session.submit(reference[:30], poison_mask=np.zeros(7, dtype=bool))

    def test_adversarial_session_rejects_mask(self):
        session = matrix_spec("static", "fixed", "band").session()
        with pytest.raises(ValueError, match="live mode"):
            session.submit(
                np.zeros((5, 60)), poison_mask=np.zeros(5, dtype=bool)
            )


# --------------------------------------------------------------------- #
# payoffs
# --------------------------------------------------------------------- #
class TestPayoffs:
    def test_payoffs_attached_and_consistent(self):
        spec = matrix_spec("elastic-paper", "elastic", "band", seed=2)
        model = PayoffModel()
        session = spec.session(payoff_model=model)
        decision = session.submit()
        expected = round_payoffs(
            model,
            decision.threshold,
            decision.injection_percentile,
            decision.n_poison_injected,
            decision.n_poison_retained,
        )
        assert decision.payoffs == expected
        # Zero-sum in the poison gain, minus the trimming overhead.
        overhead = model.trim_overhead(decision.threshold)
        assert decision.payoffs.collector == pytest.approx(
            -decision.payoffs.adversary - overhead
        )

    def test_payoff_model_does_not_change_the_game(self):
        spec = matrix_spec("tft-mixed", "mixed", "position", seed=2)
        without = spec.session()
        with_model = spec.session(payoff_model=PayoffModel())
        while not without.done:
            without.submit()
            with_model.submit()
        assert_results_identical(without.close(), with_model.close())

    def test_no_injection_payoff_is_pure_overhead(self):
        model = PayoffModel()
        payoffs = round_payoffs(model, 0.9, None, 0, 0)
        assert payoffs.adversary == 0.0
        assert payoffs.collector == pytest.approx(-model.trim_overhead(0.9))


# --------------------------------------------------------------------- #
# snapshot / restore (in-process; cross-process in test_session_process)
# --------------------------------------------------------------------- #
def play_split(spec: GameSpec, split: int):
    """Snapshot at ``split`` rounds, restore, finish; return the result."""
    session = spec.session()
    for _ in range(split):
        session.submit()
    blob = session.snapshot()
    resumed = GameSession.restore(blob)
    while not resumed.done:
        resumed.submit()
    return resumed.close()


class TestSnapshotRestore:
    @settings(max_examples=30, deadline=None)
    @given(
        collector=st.sampled_from(sorted(MATRIX_COLLECTORS)),
        adversary=st.sampled_from(sorted(MATRIX_ADVERSARIES)),
        judge=st.sampled_from(sorted(MATRIX_JUDGES)),
        split=st.integers(min_value=0, max_value=8),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_mid_game_roundtrip_is_byte_identical(
        self, collector, adversary, judge, split, seed
    ):
        spec = matrix_spec(collector, adversary, judge, seed=seed)
        assert_results_identical(play_split(spec, split), spec.play())

    def test_snapshot_of_closed_session_restores_closed(self):
        session = matrix_spec("static", "fixed", "band").session()
        session.submit()
        session.close()
        restored = GameSession.restore(session.snapshot())
        assert restored.is_closed
        with pytest.raises(RuntimeError, match="closed"):
            restored.submit()

    def test_restore_rejects_foreign_blobs(self):
        import pickle

        with pytest.raises(ValueError, match=SNAPSHOT_FORMAT.replace("/", "/")):
            GameSession.restore(pickle.dumps({"format": "something-else"}))
        with pytest.raises(ValueError):
            GameSession.restore(pickle.dumps([1, 2, 3]))

    def test_state_dict_covers_every_rng_consumer(self):
        spec = matrix_spec("generous", "mixed", "position", seed=1)
        session = spec.session()
        session.submit()
        state = session.state_dict()
        assert "rng" in state["collector"]     # generous forgiveness stream
        assert "rng" in state["adversary"]     # mixed draw stream
        assert "rng" in state["injector"]      # jitter stream
        assert "rng" in state["judge"]         # verdict noise stream
        assert "rng" in state["source"]        # epoch shuffling
        assert state["trimmer"] == {}          # stateless after fit

    def test_lean_session_snapshot_roundtrip(self):
        spec = GameSpec(
            collector=MATRIX_COLLECTORS["elastic-paper"],
            adversary=MATRIX_ADVERSARIES["elastic"],
            rounds=6,
            batch_size=60,
            store_retained=False,
            seed=8,
        )
        full = spec.play()
        result = play_split(spec, 3)
        assert result.to_records() == full.to_records()
        with pytest.raises(ValueError, match="lean"):
            result.retained_data()


# --------------------------------------------------------------------- #
# the batched session driver
# --------------------------------------------------------------------- #
class TestBatchedSession:
    def test_engine_drives_batched_session(self):
        from repro.runtime.spec import build_batched_game

        specs = [
            matrix_spec("tft-mixed", "mixed", "position", seed=s)
            for s in range(4)
        ]
        solo = [spec.play() for spec in specs]

        engine = build_batched_game(specs)
        session = engine.session()
        while not session.done:
            decision = session.submit(engine.source.next_batches())
        batched = session.close()
        for rep in range(4):
            assert_results_identical(batched.result(rep), solo[rep])
        assert decision.n_reps == 4
        assert decision.rep_observation(0).index == specs[0].rounds

    def test_batched_horizon_and_close_errors(self):
        from repro.runtime.spec import build_batched_game

        specs = [
            matrix_spec("static", "fixed", "band", seed=s, rounds=2)
            for s in range(3)
        ]
        engine = build_batched_game(specs)
        session = engine.session()
        session.submit(engine.source.next_batches())
        session.submit(engine.source.next_batches())
        with pytest.raises(RuntimeError, match="horizon"):
            session.submit(engine.source.next_batches())
