"""Tests for repro.core.lagrangian — least action and Euler–Lagrange."""

import numpy as np
import pytest

from repro.core.lagrangian import (
    ElasticLagrangian,
    FreeLagrangian,
    TitForTatLagrangian,
    action,
    euler_lagrange_residual,
    least_action_path,
)


class TestLagrangianValues:
    def test_free_lagrangian_is_kinetic_only(self):
        lag = FreeLagrangian(mass_adversary=2.0, mass_collector=3.0)
        value = lag(np.array([1.0, 2.0]), np.array([2.0, 1.0]))
        assert value == pytest.approx(0.5 * 2 * 4 + 0.5 * 3 * 1)

    def test_elastic_subtracts_spring_potential(self):
        lag = ElasticLagrangian(stiffness=4.0)
        value = lag(np.array([1.0, 0.0]), np.array([0.0, 0.0]))
        assert value == pytest.approx(-0.5 * 4.0 * 1.0)

    def test_elastic_energy_adds_potential(self):
        lag = ElasticLagrangian(stiffness=4.0)
        e = lag.energy(np.array([1.0, 0.0]), np.array([1.0, 1.0]))
        assert e == pytest.approx(0.5 + 0.5 + 2.0)

    def test_elastic_forces_antisymmetric(self):
        lag = ElasticLagrangian(stiffness=2.0)
        forces = lag.forces(np.array([1.0, 0.0]))[0]
        assert forces[0] == pytest.approx(-2.0)
        assert forces[1] == pytest.approx(2.0)

    def test_titfortat_wall_outside_corridor(self):
        lag = TitForTatLagrangian(tolerance=0.1, wall=1e6)
        inside = lag(np.array([0.05, 0.0]), np.zeros(2))
        outside = lag(np.array([0.5, 0.0]), np.zeros(2))
        assert inside == pytest.approx(0.0)
        assert outside <= -1e6 + 1.0

    def test_invalid_masses_rejected(self):
        with pytest.raises(ValueError):
            FreeLagrangian(mass_adversary=0.0)

    def test_invalid_stiffness_rejected(self):
        with pytest.raises(ValueError):
            ElasticLagrangian(stiffness=-1.0)


class TestAction:
    def test_straight_line_free_action(self):
        # Constant velocity 1 in both coordinates over r in [0, 1]:
        # S = (1/2 + 1/2) * 1 = 1.
        lag = FreeLagrangian()
        path = np.linspace([0.0, 0.0], [1.0, 1.0], 11)
        assert action(lag, path, dr=0.1) == pytest.approx(1.0)

    def test_action_additive_in_segments(self):
        lag = FreeLagrangian()
        path = np.linspace([0.0, 0.0], [2.0, 0.0], 21)
        first = action(lag, path[:11], dr=0.1)
        second = action(lag, path[10:], dr=0.1)
        total = action(lag, path, dr=0.1)
        assert total == pytest.approx(first + second)

    def test_rejects_bad_path(self):
        with pytest.raises(ValueError):
            action(FreeLagrangian(), np.zeros((1, 2)), dr=0.1)
        with pytest.raises(ValueError):
            action(FreeLagrangian(), np.zeros((5, 2)), dr=-1.0)


class TestLeastActionPath:
    def test_free_system_minimizer_is_straight_line(self):
        # Theorem 1: the stationary path of the free Lagrangian has
        # constant velocity — a straight line between boundary conditions.
        lag = FreeLagrangian()
        path = least_action_path(lag, start=(0.0, 0.0), end=(1.0, 2.0), nodes=17)
        line = np.linspace([0.0, 0.0], [1.0, 2.0], 17)
        np.testing.assert_allclose(path, line, atol=1e-4)

    def test_free_system_velocity_constant(self):
        lag = FreeLagrangian(mass_adversary=2.0)
        path = least_action_path(lag, (0.0, 1.0), (3.0, -1.0), nodes=21, dr=0.5)
        velocities = np.diff(path, axis=0) / 0.5
        assert np.ptp(velocities[:, 0]) < 1e-3
        assert np.ptp(velocities[:, 1]) < 1e-3

    def test_straight_line_cannot_be_beaten(self):
        lag = FreeLagrangian()
        line = np.linspace([0.0, 0.0], [1.0, 1.0], 9)
        bent = line.copy()
        bent[4] += np.array([0.3, -0.2])
        assert action(lag, line, 0.125) < action(lag, bent, 0.125)

    def test_rejects_tiny_node_count(self):
        with pytest.raises(ValueError):
            least_action_path(FreeLagrangian(), (0, 0), (1, 1), nodes=2)

    def test_titfortat_path_stays_in_corridor(self):
        # Leaving the cooperation corridor costs the wall, so the least
        # action path keeps |u_a - u_c| within tolerance.
        lag = TitForTatLagrangian(tolerance=0.05, wall=1e9)
        path = least_action_path(lag, (0.0, 0.0), (1.0, 1.0), nodes=15)
        gaps = np.abs(path[:, 0] - path[:, 1])
        assert gaps.max() <= 0.05 + 1e-6


class TestEulerLagrangeResidual:
    def test_free_straight_line_satisfies_el(self):
        lag = FreeLagrangian()
        path = np.linspace([0.0, 0.0], [2.0, -1.0], 41)
        res = euler_lagrange_residual(lag, path, dr=0.05)
        assert np.abs(res).max() < 1e-6

    def test_elastic_oscillator_solution_satisfies_el(self):
        # Equal masses, stiffness k: relative coordinate oscillates at
        # omega = sqrt(2k/m); center of mass stays put.
        k, m = 1.0, 1.0
        omega = np.sqrt(2.0 * k / m)
        dr = 0.01
        r = np.arange(0.0, 2.0, dr)
        y = 0.1 * np.cos(omega * r)
        path = np.column_stack([y / 2.0, -y / 2.0])
        lag = ElasticLagrangian(stiffness=k)
        res = euler_lagrange_residual(lag, path, dr=dr)
        assert np.abs(res).max() < 5e-3

    def test_non_solution_has_large_residual(self):
        lag = ElasticLagrangian(stiffness=5.0)
        path = np.column_stack([np.linspace(0, 1, 41), np.zeros(41)])
        res = euler_lagrange_residual(lag, path, dr=0.05)
        assert np.abs(res).max() > 0.5

    def test_requires_three_nodes(self):
        with pytest.raises(ValueError):
            euler_lagrange_residual(FreeLagrangian(), np.zeros((2, 2)), dr=0.1)
