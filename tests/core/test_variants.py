"""Tests for repro.core.strategies.variants — Tit-for-tat variants."""

import numpy as np
import pytest

from repro.core.strategies import (
    GenerousCollector,
    MirrorCollector,
    TitForTwoTatsCollector,
)
from repro.core.strategies.base import RoundObservation


def obs(index=1, betrayal=False):
    return RoundObservation(
        index=index,
        trim_percentile=0.9,
        injection_percentile=0.95,
        quality=0.0,
        observed_poison_ratio=0.0,
        betrayal=betrayal,
    )


class TestMirrorCollector:
    def test_opens_soft(self):
        c = MirrorCollector(0.9)
        assert c.first() == pytest.approx(0.91)

    def test_punishes_exactly_one_round(self):
        c = MirrorCollector(0.9)
        assert c.react(obs(betrayal=True)) == pytest.approx(0.87)
        assert c.react(obs(betrayal=False)) == pytest.approx(0.91)

    def test_never_escalates_permanently(self):
        c = MirrorCollector(0.9)
        for _ in range(5):
            c.react(obs(betrayal=True))
        assert c.react(obs(betrayal=False)) == pytest.approx(0.91)

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            MirrorCollector(0.0)


class TestGenerousCollector:
    def test_zero_generosity_is_mirror(self):
        c = GenerousCollector(0.9, generosity=0.0, seed=0)
        for _ in range(10):
            assert c.react(obs(betrayal=True)) == pytest.approx(0.87)

    def test_full_generosity_never_punishes(self):
        c = GenerousCollector(0.9, generosity=1.0, seed=0)
        for _ in range(10):
            assert c.react(obs(betrayal=True)) == pytest.approx(0.91)

    def test_forgiveness_frequency(self):
        c = GenerousCollector(0.9, generosity=0.3, seed=1)
        outcomes = [c.react(obs(betrayal=True)) for _ in range(4000)]
        forgiven = np.mean(np.isclose(outcomes, 0.91))
        assert forgiven == pytest.approx(0.3, abs=0.03)

    def test_cooperative_rounds_always_soft(self):
        c = GenerousCollector(0.9, generosity=0.3, seed=2)
        assert all(
            c.react(obs(betrayal=False)) == pytest.approx(0.91)
            for _ in range(50)
        )

    def test_invalid_generosity_rejected(self):
        with pytest.raises(ValueError):
            GenerousCollector(0.9, generosity=1.5)

    def test_reset_replays_the_forgiveness_stream(self):
        # Regression: reset() must rewind the RNG so a reused seeded
        # instance makes identical forgiveness decisions game over game.
        c = GenerousCollector(0.9, generosity=0.5, seed=5)
        first = [c.react(obs(betrayal=True)) for _ in range(30)]
        c.reset()
        second = [c.react(obs(betrayal=True)) for _ in range(30)]
        assert first == second


class TestTitForTwoTats:
    def test_single_betrayal_absorbed(self):
        c = TitForTwoTatsCollector(0.9)
        assert c.react(obs(betrayal=True)) == pytest.approx(0.91)
        assert c.react(obs(betrayal=False)) == pytest.approx(0.91)

    def test_two_consecutive_betrayals_punished(self):
        c = TitForTwoTatsCollector(0.9)
        c.react(obs(betrayal=True))
        assert c.react(obs(betrayal=True)) == pytest.approx(0.87)

    def test_alternating_betrayal_never_punished(self):
        c = TitForTwoTatsCollector(0.9)
        for i in range(10):
            out = c.react(obs(betrayal=(i % 2 == 0)))
            assert out == pytest.approx(0.91)

    def test_reset_clears_memory(self):
        c = TitForTwoTatsCollector(0.9)
        c.react(obs(betrayal=True))
        c.reset()
        assert c.react(obs(betrayal=True)) == pytest.approx(0.91)

    def test_noise_tolerance_vs_mirror(self):
        # Under iid false positives at rate alpha, tit-for-two-tats
        # punishes at roughly alpha^2 whereas mirror punishes at alpha.
        rng = np.random.default_rng(3)
        alpha = 0.2
        flags = rng.random(6000) < alpha
        mirror = MirrorCollector(0.9)
        tftt = TitForTwoTatsCollector(0.9)
        mirror_punish = sum(
            mirror.react(obs(betrayal=bool(b))) < 0.9 for b in flags
        )
        tftt_punish = sum(
            tftt.react(obs(betrayal=bool(b))) < 0.9 for b in flags
        )
        assert tftt_punish < 0.5 * mirror_punish
