"""Tests for repro.core.quality — Quality_Evaluation() implementations."""

import numpy as np
import pytest

from repro.core.quality import (
    KolmogorovSmirnovEvaluator,
    MeanShiftEvaluator,
    QualityEvaluator,
    TailMassEvaluator,
)


@pytest.fixture()
def reference(rng):
    return rng.normal(0.0, 1.0, size=5000)


class TestTailMassEvaluator:
    def test_clean_batch_scores_near_zero(self, reference, rng):
        ev = TailMassEvaluator().fit(reference)
        batch = rng.normal(0.0, 1.0, size=2000)
        assert ev.score(batch) < 0.02

    def test_tail_injection_detected(self, reference, rng):
        ev = TailMassEvaluator().fit(reference)
        benign = rng.normal(0.0, 1.0, size=1000)
        poison = np.full(200, 10.0)
        score = ev.score(np.concatenate([benign, poison]))
        assert score == pytest.approx(200 / 1200, abs=0.03)

    def test_low_injection_not_flagged(self, reference, rng):
        ev = TailMassEvaluator().fit(reference)
        benign = rng.normal(0.0, 1.0, size=1000)
        poison = np.full(200, -10.0)  # lower tail: not upper-tail excess
        assert ev.score(np.concatenate([benign, poison])) == 0.0

    def test_score_never_negative(self, reference, rng):
        ev = TailMassEvaluator().fit(reference)
        # A batch with an unusually light tail must not go negative.
        batch = rng.normal(-3.0, 0.1, size=500)
        assert ev.score(batch) >= 0.0

    def test_normalized_in_unit_interval(self, reference, rng):
        ev = TailMassEvaluator().fit(reference)
        batch = np.concatenate([rng.normal(size=100), np.full(500, 9.0)])
        assert 0.0 <= ev.normalized(batch) <= 1.0

    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            TailMassEvaluator().score([1.0, 2.0])

    def test_invalid_quantile_rejected(self):
        with pytest.raises(ValueError):
            TailMassEvaluator(reference_quantile=1.0)

    def test_multivariate_batches_use_norms(self, rng):
        ref = rng.normal(size=(2000, 5))
        ev = TailMassEvaluator().fit(ref)
        poison = np.full((100, 5), 8.0)
        batch = np.vstack([rng.normal(size=(400, 5)), poison])
        assert ev.score(batch) > 0.1


class TestKolmogorovSmirnovEvaluator:
    def test_identical_distribution_scores_low(self, reference, rng):
        ev = KolmogorovSmirnovEvaluator().fit(reference)
        assert ev.score(rng.normal(0.0, 1.0, size=3000)) < 0.05

    def test_shifted_distribution_scores_high(self, reference, rng):
        ev = KolmogorovSmirnovEvaluator().fit(reference)
        assert ev.score(rng.normal(3.0, 1.0, size=3000)) > 0.8

    def test_score_bounded_by_one(self, reference):
        ev = KolmogorovSmirnovEvaluator().fit(reference)
        assert ev.score(np.full(100, 1e9)) <= 1.0

    def test_max_score_is_one(self, reference):
        ev = KolmogorovSmirnovEvaluator().fit(reference)
        assert ev.max_score() == 1.0

    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            KolmogorovSmirnovEvaluator().score([0.0])

    def test_exact_same_sample_scores_zero(self, reference):
        ev = KolmogorovSmirnovEvaluator().fit(reference)
        assert ev.score(reference) == pytest.approx(0.0, abs=1e-12)


class TestMeanShiftEvaluator:
    def test_clean_batch_scores_near_zero(self, reference, rng):
        ev = MeanShiftEvaluator().fit(reference)
        assert ev.score(rng.normal(0.0, 1.0, size=5000)) < 0.1

    def test_shift_measured_in_reference_sigmas(self, reference, rng):
        ev = MeanShiftEvaluator().fit(reference)
        batch = rng.normal(2.0, 1.0, size=5000)
        assert ev.score(batch) == pytest.approx(2.0, abs=0.15)

    def test_cap_applied(self, reference):
        ev = MeanShiftEvaluator(cap=3.0).fit(reference)
        assert ev.score(np.full(10, 1e6)) == 3.0

    def test_normalized_uses_cap(self, reference):
        ev = MeanShiftEvaluator(cap=4.0).fit(reference)
        assert ev.normalized(np.full(10, 1e6)) == pytest.approx(1.0)

    def test_degenerate_reference_handled(self):
        ev = MeanShiftEvaluator().fit(np.full(100, 2.0))
        assert ev.score(np.full(10, 3.0)) == pytest.approx(1.0)

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError):
            MeanShiftEvaluator(cap=0.0)

    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            MeanShiftEvaluator().score([1.0])


class TestCommonBehaviour:
    @pytest.mark.parametrize(
        "evaluator",
        [TailMassEvaluator(), KolmogorovSmirnovEvaluator(), MeanShiftEvaluator()],
    )
    def test_empty_batch_rejected(self, evaluator, reference):
        evaluator.fit(reference)
        with pytest.raises(ValueError):
            evaluator.score(np.array([]))

    @pytest.mark.parametrize(
        "evaluator",
        [TailMassEvaluator(), KolmogorovSmirnovEvaluator(), MeanShiftEvaluator()],
    )
    def test_higher_poison_ratio_scores_worse(self, evaluator, reference, rng):
        evaluator.fit(reference)
        benign = rng.normal(0.0, 1.0, size=1000)
        scores = []
        for n_poison in (0, 100, 300):
            batch = np.concatenate([benign, np.full(n_poison, 8.0)])
            scores.append(evaluator.score(batch))
        assert scores[0] <= scores[1] <= scores[2]


class TestSinglePassEvaluate:
    """evaluate() must yield the same pair as separate score/normalized
    calls — from one scoring sweep — and honor precomputed scores."""

    @pytest.mark.parametrize(
        "evaluator_factory",
        [TailMassEvaluator, KolmogorovSmirnovEvaluator, MeanShiftEvaluator],
    )
    def test_evaluate_matches_separate_calls(
        self, evaluator_factory, reference, rng
    ):
        evaluator = evaluator_factory().fit(reference)
        batch = np.concatenate([rng.normal(size=800), np.full(150, 7.0)])
        score, normalized = evaluator.evaluate(batch)
        assert score == evaluator.score(batch)
        assert normalized == evaluator.normalized(batch)

    def test_evaluate_counts_scoring_sweeps(self, reference, rng):
        calls = {"n": 0}

        class CountingEvaluator(TailMassEvaluator):
            def score(self, batch, scores=None):
                calls["n"] += 1
                return super().score(batch, scores=scores)

        evaluator = CountingEvaluator().fit(reference)
        evaluator.evaluate(rng.normal(size=200))
        assert calls["n"] == 1

    def test_precomputed_scores_short_circuit(self, reference, rng):
        evaluator = TailMassEvaluator().fit(reference)
        batch = rng.normal(size=500)
        # For a 1-D batch the value scores *are* the batch.
        direct = evaluator.evaluate(batch)
        shared = evaluator.evaluate(batch, scores=batch)
        assert direct == shared

    def test_normalize_score_clips(self, reference):
        evaluator = TailMassEvaluator().fit(reference)
        assert evaluator.normalize_score(-1.0) == 0.0
        assert evaluator.normalize_score(1e9) == 1.0

    def test_accepts_scores_only_for_value_trimmers(self, reference):
        evaluator = TailMassEvaluator().fit(reference)
        assert evaluator.accepts_scores("value")
        assert not evaluator.accepts_scores("radial")
        assert not evaluator.accepts_scores(None)

    def test_accepts_scores_false_for_legacy_signature(self, reference):
        class LegacyEvaluator(QualityEvaluator):
            def fit(self, ref):
                return self

            def score(self, batch):  # no `scores` kwarg
                return 0.5

            def max_score(self):
                return 1.0

        assert not LegacyEvaluator().accepts_scores("value")
        # evaluate without shared scores must still work.
        assert LegacyEvaluator().evaluate([1.0, 2.0]) == (0.5, 0.5)

    def test_evaluate_preserves_overridden_normalized(self, reference, rng):
        class CustomNormalized(TailMassEvaluator):
            def normalized(self, batch):
                return 0.123  # bespoke normalization hook

        evaluator = CustomNormalized().fit(reference)
        batch = rng.normal(size=300)
        score, normalized = evaluator.evaluate(batch)
        assert normalized == 0.123
        assert score == evaluator.score(batch)

    def test_mismatched_precomputed_scores_rejected(self, reference, rng):
        evaluator = TailMassEvaluator().fit(reference)
        batch = rng.normal(size=100)
        with pytest.raises(ValueError, match="full.*batch"):
            evaluator.evaluate(batch, scores=batch[:40])
