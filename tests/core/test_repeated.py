"""Tests for repro.core.repeated — Theorem 3 and discounted values."""

import pytest
from hypothesis import given, strategies as st

from repro.core.repeated import RepeatedGameModel


def _model(d=0.9):
    return RepeatedGameModel(adversary_gain=4.0, collector_gain=2.0, discount=d)


class TestConstruction:
    def test_symmetric_gain(self):
        assert _model().symmetric_gain == pytest.approx(3.0)

    @pytest.mark.parametrize("d", [0.0, 1.0, -0.1, 1.5])
    def test_invalid_discount_rejected(self, d):
        with pytest.raises(ValueError):
            RepeatedGameModel(1.0, 1.0, d)

    def test_negative_gains_rejected(self):
        with pytest.raises(ValueError):
            RepeatedGameModel(-1.0, 1.0, 0.5)


class TestDiscountedValues:
    def test_compliance_value_geometric_series(self):
        m = _model(d=0.5)
        # g0 = 3 - 1 = 2; sum of 2 * 0.5^i = 4.
        assert m.compliance_value(delta=1.0) == pytest.approx(4.0)

    def test_defection_value_eq_11(self):
        m = _model(d=0.5)
        # g_def = g_ac / (1 - d p) with p = 0.5 -> 3 / 0.75 = 4.
        assert m.defection_value(0.5) == pytest.approx(4.0)

    def test_defection_value_p_zero(self):
        m = _model(d=0.9)
        assert m.defection_value(0.0) == pytest.approx(m.symmetric_gain)

    def test_negative_delta_rejected(self):
        with pytest.raises(ValueError):
            _model().compliance_value(-0.1)

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            _model().defection_value(1.2)


class TestTheorem3:
    def test_max_compromise_formula(self):
        m = _model(d=0.8)
        p = 0.5
        expected = (0.8 - 0.8 * 0.5) / (1.0 - 0.8 * 0.5) * 3.0
        assert m.max_compromise(p) == pytest.approx(expected)

    def test_p_one_gives_zero_compromise(self):
        # Never-flagged defection leaves no room for compromise.
        assert _model().max_compromise(1.0) == pytest.approx(0.0)

    def test_p_zero_gives_full_discount_compromise(self):
        m = _model(d=0.9)
        assert m.max_compromise(0.0) == pytest.approx(0.9 * m.symmetric_gain)

    def test_compliance_decision_consistent_with_values(self):
        m = _model(d=0.9)
        for p in (0.0, 0.3, 0.7, 0.95):
            for delta in (0.0, 0.5, 1.0, 2.0, 2.6):
                by_theorem = m.adversary_complies(delta, p)
                by_values = m.compliance_value(delta) > m.defection_value(p)
                assert by_theorem == by_values

    @given(st.floats(0.05, 0.95), st.floats(0.0, 0.999))
    def test_max_compromise_bounds(self, d, p):
        m = RepeatedGameModel(4.0, 2.0, d)
        delta_max = m.max_compromise(p)
        assert 0.0 <= delta_max <= d * m.symmetric_gain + 1e-12

    @given(st.floats(0.05, 0.95))
    def test_max_compromise_decreasing_in_p(self, d):
        m = RepeatedGameModel(4.0, 2.0, d)
        values = [m.max_compromise(p) for p in (0.0, 0.25, 0.5, 0.75, 1.0)]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:], strict=False))

    def test_boundary_delta_prefers_defection(self):
        # At delta exactly equal to the bound, compliance is not strict.
        m = _model(d=0.9)
        delta = m.max_compromise(0.5)
        assert not m.adversary_complies(delta, 0.5)


class TestThresholdFromDelta:
    def test_zero_delta_keeps_soft(self):
        m = _model()
        assert m.threshold_from_delta(0.0, 0.91, 0.87) == pytest.approx(0.91)

    def test_full_delta_reaches_hard(self):
        m = _model(d=0.9)
        full = 0.9 * m.symmetric_gain
        assert m.threshold_from_delta(full, 0.91, 0.87) == pytest.approx(0.87)

    def test_interpolation_midpoint(self):
        m = _model(d=0.9)
        half = 0.45 * m.symmetric_gain
        assert m.threshold_from_delta(half, 0.91, 0.87) == pytest.approx(0.89)

    def test_oversized_delta_clamps(self):
        m = _model(d=0.9)
        assert m.threshold_from_delta(100.0, 0.91, 0.87) == pytest.approx(0.87)

    def test_invalid_inputs_rejected(self):
        m = _model()
        with pytest.raises(ValueError):
            m.threshold_from_delta(-1.0, 0.91, 0.87)
        with pytest.raises(ValueError):
            m.threshold_from_delta(0.1, 1.2, 0.87)
