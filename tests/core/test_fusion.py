"""Cross-cell fusion unit tests: planner, trim program, poison program.

Every assertion here is an instance of the one contract the fusion
layer lives under — a fused lane's outputs are byte-identical to the
per-lane solo calls it replaces — exercised directly on the compiled
building blocks rather than through a full service round.
"""

import numpy as np
import pytest

from repro.core.fusion import (
    FusedAdversaryLanes,
    FusedCollectorLanes,
    InjectorLanes,
    TrimLanes,
    fused_adversary_lanes,
    fused_collector_lanes,
)
from repro.core.strategies import (
    ElasticAdversary,
    ElasticCollector,
    FixedAdversary,
    JustBelowAdversary,
    OstrichCollector,
    TitForTatCollector,
)
from repro.core.strategies.base import (
    CollectorStrategy,
    RoundObservation,
    RoundObservationBatch,
)
from repro.core.trimming import RadialTrimmer, ValueTrimmer
from repro.streams.injection import PoisonInjector


def _observation_batch(n, index=3, seed=0):
    rng = np.random.default_rng(seed)
    injection = rng.uniform(0.9, 1.0, size=n)
    injection[::4] = np.nan
    return RoundObservationBatch(
        index=index,
        trim_percentile=rng.uniform(0.8, 0.95, size=n),
        injection_percentile=injection,
        quality=rng.uniform(0.0, 0.3, size=n),
        observed_poison_ratio=rng.uniform(0.0, 0.2, size=n),
        betrayal=rng.uniform(size=n) < 0.3,
    )


class _UnregisteredCollector(CollectorStrategy):
    """A user strategy with no lane: must ride the fallback loop."""

    name = "unregistered"

    def __init__(self, base):
        self.base = base

    def first(self):
        return self.base

    def react(self, last: RoundObservation):
        return self.base - 0.01 * last.quality


class TestFusionPlanner:
    def test_single_family_skips_composite(self):
        lanes = fused_collector_lanes(
            [TitForTatCollector(t_th=0.9), TitForTatCollector(t_th=0.8)]
        )
        assert not isinstance(lanes, FusedCollectorLanes)
        assert lanes.vectorized
        assert lanes.fusion_family == "titfortat"

    def test_mixed_families_build_parts_in_lane_order(self):
        instances = [
            TitForTatCollector(t_th=0.9),
            ElasticCollector(t_th=0.9, k=0.5),
            TitForTatCollector(t_th=0.85),
            OstrichCollector(),
        ]
        lanes = fused_collector_lanes(instances)
        assert isinstance(lanes, FusedCollectorLanes)
        assert lanes.vectorized
        parts = lanes.parts
        assert [list(idx) for idx, _ in parts] == [[0, 2], [1], [3]]
        # Each part carries the original instances, in lane order.
        assert parts[0][1].instances == [instances[0], instances[2]]

    def test_fused_outputs_match_solo_calls(self):
        instances = [
            TitForTatCollector(t_th=0.9),
            ElasticCollector(t_th=0.9, k=0.5),
            TitForTatCollector(t_th=0.85),
            OstrichCollector(),
        ]
        solo = [
            TitForTatCollector(t_th=0.9),
            ElasticCollector(t_th=0.9, k=0.5),
            TitForTatCollector(t_th=0.85),
            OstrichCollector(),
        ]
        lanes = fused_collector_lanes(instances)
        lanes.reset_many()
        for inst in solo:
            inst.reset()
        first = lanes.first_many()
        assert list(first) == [inst.first() for inst in solo]
        batch = _observation_batch(4)
        reacted = lanes.react_many(batch)
        assert list(reacted) == [
            inst.react(batch.rep(r)) for r, inst in enumerate(solo)
        ]

    def test_adversary_fusion_matches_solo(self):
        instances = [
            FixedAdversary(percentile=0.99),
            JustBelowAdversary(initial_threshold=0.9),
            ElasticAdversary(t_th=0.9, k=0.5),
            FixedAdversary(percentile=0.95),
        ]
        solo = [
            FixedAdversary(percentile=0.99),
            JustBelowAdversary(initial_threshold=0.9),
            ElasticAdversary(t_th=0.9, k=0.5),
            FixedAdversary(percentile=0.95),
        ]
        lanes = fused_adversary_lanes(instances)
        assert isinstance(lanes, FusedAdversaryLanes)
        lanes.reset_many()
        for inst in solo:
            inst.reset()
        batch = _observation_batch(4, seed=7)
        reacted = lanes.react_many(batch)
        want = [inst.react(batch.rep(r)) for r, inst in enumerate(solo)]
        for got, expected in zip(reacted, want, strict=False):
            if expected is None:
                assert np.isnan(got)
            else:
                assert got == expected

    def test_unregistered_strategy_rides_fallback_part(self):
        instances = [
            TitForTatCollector(t_th=0.9),
            _UnregisteredCollector(0.88),
            _UnregisteredCollector(0.91),
        ]
        lanes = fused_collector_lanes(instances)
        assert isinstance(lanes, FusedCollectorLanes)
        assert not lanes.vectorized  # one part is the per-rep loop
        parts = lanes.parts
        assert parts[0][1].vectorized
        assert not parts[1][1].vectorized
        assert list(parts[1][0]) == [1, 2]
        batch = _observation_batch(3, seed=5)
        reacted = lanes.react_many(batch)
        assert reacted[1] == _UnregisteredCollector(0.88).react(batch.rep(1))

    def test_empty_cohort_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            fused_collector_lanes([])
        with pytest.raises(ValueError, match="at least one"):
            fused_adversary_lanes([])


REFERENCE_A = np.linspace(0.0, 1.0, 120)
REFERENCE_B = np.concatenate([np.linspace(0.2, 0.7, 80), np.full(6, 0.99)])


class TestTrimLanes:
    def test_mode_resolution(self):
        shared = ValueTrimmer()
        assert TrimLanes([shared, shared, shared]).mode == "shared"
        assert (
            TrimLanes([ValueTrimmer(), ValueTrimmer()]).mode == "stacked"
        )
        assert (
            TrimLanes([ValueTrimmer(), RadialTrimmer()]).mode == "loop"
        )

    def _assert_rows_match_solo(self, lanes, stack, percentiles):
        report = lanes.trim_stack(stack, percentiles)
        for j, trimmer in enumerate(lanes.trimmers):
            solo = trimmer.trim(stack[j], float(percentiles[j]))
            assert report.kept[j].tolist() == solo.kept.tolist()
            assert float(report.threshold_scores[j]) == solo.threshold_score
            assert float(report.percentiles[j]) == solo.percentile
            assert report.scores[j].tobytes() == solo.scores.tobytes()

    def test_stacked_value_trimmers_with_different_references(self):
        trimmers = [
            ValueTrimmer().fit_reference(REFERENCE_A),
            ValueTrimmer().fit_reference(REFERENCE_B),
            ValueTrimmer(anchor="batch"),
        ]
        lanes = TrimLanes(trimmers)
        assert lanes.mode == "stacked"
        rng = np.random.default_rng(11)
        stack = rng.uniform(0.0, 1.0, size=(3, 40))
        self._assert_rows_match_solo(lanes, stack, np.array([0.9, 0.8, 0.95]))

    def test_stacked_radial_trimmers_nd_centers(self):
        rng = np.random.default_rng(13)
        trimmers = [
            RadialTrimmer().fit_reference(rng.normal(size=(60, 4))),
            RadialTrimmer().fit_reference(rng.normal(1.0, 1.0, size=(60, 4))),
        ]
        lanes = TrimLanes(trimmers)
        assert lanes._centers_nd is not None
        stack = rng.normal(0.5, 1.0, size=(2, 30, 4))
        self._assert_rows_match_solo(lanes, stack, np.array([0.85, 0.9]))

    def test_loop_mode_mixed_classes(self):
        trimmers = [
            ValueTrimmer().fit_reference(REFERENCE_A),
            ValueTrimmer().fit_reference(REFERENCE_B),
        ]
        lanes = TrimLanes(trimmers)
        lanes.mode = "loop"  # force the documented per-lane loop
        rng = np.random.default_rng(17)
        stack = rng.uniform(0.0, 1.0, size=(2, 25))
        self._assert_rows_match_solo(lanes, stack, np.array([0.9, 0.7]))

    def test_degenerate_percentile_keeps_argmin(self):
        trimmers = [
            ValueTrimmer().fit_reference(REFERENCE_A),
            ValueTrimmer().fit_reference(REFERENCE_B),
        ]
        lanes = TrimLanes(trimmers)
        stack = np.full((2, 10), 5.0)  # every point above both cutoffs
        self._assert_rows_match_solo(lanes, stack, np.array([0.0, 0.0]))

    def test_lane_subset_rows(self):
        trimmers = [
            ValueTrimmer().fit_reference(REFERENCE_A),
            ValueTrimmer().fit_reference(REFERENCE_B),
            ValueTrimmer().fit_reference(REFERENCE_A * 0.5),
        ]
        lanes = TrimLanes(trimmers)
        rng = np.random.default_rng(19)
        stack = rng.uniform(0.0, 1.0, size=(2, 30))
        q = np.array([0.9, 0.8])
        report = lanes.trim_stack(stack, q, lanes=np.array([2, 0]))
        for j, r in enumerate((2, 0)):
            solo = trimmers[r].trim(stack[j], float(q[j]))
            assert report.kept[j].tolist() == solo.kept.tolist()
            assert float(report.threshold_scores[j]) == solo.threshold_score

    def test_shape_validation(self):
        lanes = TrimLanes([ValueTrimmer(), ValueTrimmer()])
        with pytest.raises(ValueError, match="percentile per rep"):
            lanes.trim_stack(np.zeros((2, 5)), np.array([0.9]))
        with pytest.raises(ValueError, match="empty"):
            lanes.trim_stack(np.zeros((2, 0)), np.array([0.9, 0.9]))


def _injector_pair(**kwargs):
    """Twin injectors (same seed) for fused-vs-solo comparison."""
    return PoisonInjector(**kwargs), PoisonInjector(**kwargs)


class TestInjectorLanes:
    def test_poison_counts_match_scalar_rule(self):
        ratios = (0.0, 0.05, 0.125, 0.2, 0.3)
        injectors = [
            PoisonInjector(attack_ratio=r, seed=i)
            for i, r in enumerate(ratios)
        ]
        lanes = InjectorLanes(injectors)
        for n in (1, 10, 60, 100, 101):
            assert lanes.poison_counts(n).tolist() == [
                inj.poison_count(n) for inj in injectors
            ]

    def test_quantile_lanes_match_solo_materialize(self):
        fused, solo = [], []
        for i, ratio in enumerate((0.2, 0.2, 0.2)):
            a, b = _injector_pair(
                attack_ratio=ratio, jitter=0.02, mode="quantile", seed=40 + i
            )
            ref = REFERENCE_A if i < 2 else REFERENCE_B
            a.fit_reference(ref)
            b.fit_reference(ref)
            fused.append(a)
            solo.append(b)
        lanes = InjectorLanes(fused)
        rng = np.random.default_rng(23)
        benign = rng.uniform(0.0, 1.0, size=(3, 50))
        q = np.array([0.99, 0.97, 0.98])
        out = lanes.materialize_many(benign, q)
        for j, injector in enumerate(solo):
            want = injector.materialize(benign[j], float(q[j]))
            assert out[j].tobytes() == want.tobytes()

    def test_radial_lanes_match_solo_materialize(self):
        rng = np.random.default_rng(29)
        reference = rng.normal(size=(80, 3))
        fused, solo = [], []
        for i in range(3):
            a, b = _injector_pair(
                attack_ratio=0.1, jitter=0.02, mode="radial", seed=50 + i
            )
            a.fit_reference(reference)
            b.fit_reference(reference)
            fused.append(a)
            solo.append(b)
        lanes = InjectorLanes(fused)
        benign = rng.normal(size=(3, 40, 3))
        q = np.array([0.99, 0.98, 0.995])
        out = lanes.materialize_many(benign, q)
        for j, injector in enumerate(solo):
            want = injector.materialize(benign[j], float(q[j]))
            assert out[j].tobytes() == want.tobytes()

    def test_count_uniform_segments_enforced(self):
        lanes = InjectorLanes(
            [
                PoisonInjector(attack_ratio=0.1, seed=1),
                PoisonInjector(attack_ratio=0.3, seed=2),
            ]
        )
        benign = np.zeros((2, 50))
        with pytest.raises(ValueError, match="count-uniform"):
            lanes.materialize_many(benign, np.array([0.99, 0.99]))

    def test_zero_count_returns_empty(self):
        lanes = InjectorLanes(
            [
                PoisonInjector(attack_ratio=0.0, seed=1),
                PoisonInjector(attack_ratio=0.0, seed=2),
            ]
        )
        out = lanes.materialize_many(np.zeros((2, 50)), np.array([0.99, 0.99]))
        assert out.shape == (2, 0)

    def test_reference_groups_partition_by_content(self):
        ref_copy = REFERENCE_A.copy()
        injectors = [
            PoisonInjector(attack_ratio=0.2, mode="quantile", seed=1)
            .fit_reference(REFERENCE_A),
            PoisonInjector(attack_ratio=0.2, mode="quantile", seed=2)
            .fit_reference(ref_copy),  # equal content, distinct array
            PoisonInjector(attack_ratio=0.2, mode="quantile", seed=3)
            .fit_reference(REFERENCE_B),
        ]
        lanes = InjectorLanes(injectors)
        gid, leads, tables = lanes._ensure_groups_1d()
        assert gid.tolist() == [0, 0, 1]
        assert len(leads) == 2
        assert all(table is not None for table in tables)
