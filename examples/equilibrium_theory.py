"""The analytical model end to end: payoffs, games, and the oscillator.

Walks through the paper's theory with the library's objects:

1. the payoff model and the strategy space [x_L, x_R] (Definition 1);
2. the one-shot ultimatum game of Table I and its hard/hard equilibrium;
3. the Stackelberg solution of the discretized trimming game;
4. Theorem 3's compliance condition for the repeated game;
5. Theorem 4's coupled oscillation under the Elastic interaction.

Run with::

    python examples/equilibrium_theory.py
"""

import numpy as np

from repro import (
    CoupledUtilityOscillator,
    PayoffModel,
    RepeatedGameModel,
    build_ultimatum_game,
    solve_stackelberg,
)
from repro.core.lagrangian import ElasticLagrangian, action
from repro.core.stackelberg import linear_response_fixed_point


def main() -> None:
    # 1. The strategy space.
    model = PayoffModel()
    x_l, x_r = model.strategy_interval()
    print(f"balance point x_L = {x_l:.4f} (P(x_L) = T(x_L) = "
          f"{model.poison_payoff(x_l):.4f})")
    print(f"right boundary x_R = {x_r:.4f}")

    # 2. The one-shot ultimatum game (Table I).
    game = build_ultimatum_game()
    (eq,) = game.pure_nash_equilibria()
    print(f"\none-shot equilibrium: adversary={game.row_labels[eq[0]]}, "
          f"collector={game.col_labels[eq[1]]} — the prisoner's dilemma")

    # 3. Stackelberg equilibrium over the discretized space.
    sol = solve_stackelberg(model, grid_size=201)
    print(f"\nStackelberg: collector trims at {sol.leader_action:.4f}, "
          f"adversary injects at {sol.follower_action:.4f}")
    print(f"payoffs: collector {sol.leader_payoff:.4f}, "
          f"adversary {sol.follower_payoff:.4f}")

    # 4. Theorem 3: how much utility compromise sustains cooperation.
    repeated = RepeatedGameModel(adversary_gain=4.0, collector_gain=2.0,
                                 discount=0.9)
    for p in (0.0, 0.5, 0.9):
        print(f"p = {p:.1f}: max sustainable compromise delta = "
              f"{repeated.max_compromise(p):.4f}")

    # 5. Theorem 4: the Elastic interaction oscillates.
    oscillator = CoupledUtilityOscillator(
        stiffness=1.0, mass_adversary=1.0, mass_collector=2.0,
        u_adversary0=1.0, v_collector0=0.3,
    )
    print(f"\nElastic oscillation: omega = {oscillator.angular_frequency:.4f}, "
          f"period = {oscillator.period:.2f} rounds, "
          f"amplitude = {oscillator.amplitude:.4f}")
    r = np.linspace(0.0, oscillator.period, 9)
    u_a, u_c = oscillator.solve(r)
    for ri, ua, uc in zip(r, u_a, u_c):
        print(f"  r = {ri:6.2f}: u_a = {ua:8.4f}, u_c = {uc:8.4f}, "
              f"gap = {ua - uc:8.4f}")
    print(f"energy drift over a period: "
          f"{np.ptp(oscillator.energy(r)):.2e} (conserved)")

    # The oscillator path is consistent with the discretized action.
    lag = ElasticLagrangian(stiffness=1.0, mass_collector=2.0)
    dr = oscillator.period / 400
    rr = np.arange(0.0, oscillator.period, dr)
    path = np.column_stack(oscillator.solve(rr))
    print(f"action along one period: {action(lag, path, dr):.4f}")

    # The experimental §VI-A responses share this equilibrium structure.
    t_star, a_star = linear_response_fixed_point(0.9, 0.5)
    print(f"\ninteractive equilibrium of the k=0.5 Elastic responses: "
          f"T* = {t_star:.4f}, A* = {a_star:.4f}")


if __name__ == "__main__":
    main()
