"""Quickstart: play one 20-round collection game and inspect the outcome.

An Elastic(k=0.5) collector faces its §VI-A interactive adversary on the
Control dataset with a 20% attack ratio.  Run with::

    python examples/quickstart.py
"""

from repro import CollectionGame, make_scheme
from repro.core.trimming import RadialTrimmer
from repro.datasets import load_dataset
from repro.streams import ArrayStream, PoisonInjector


def main() -> None:
    data, _ = load_dataset("control")

    collector, adversary = make_scheme("elastic0.5", t_th=0.9, seed=0)
    game = CollectionGame(
        source=ArrayStream(data, batch_size=100, seed=0),
        collector=collector,
        adversary=adversary,
        injector=PoisonInjector(attack_ratio=0.2, seed=0),
        trimmer=RadialTrimmer(),
        reference=data,
        rounds=20,
    )
    result = game.run()

    print(f"scheme:                {result.collector_name} vs {result.adversary_name}")
    print(f"rounds played:         {result.rounds}")
    print(f"data retained:         {result.retained_data().shape[0]} points")
    print(f"trimmed fraction:      {result.trimmed_fraction():.3f}")
    print(f"surviving poison:      {result.poison_retained_fraction():.3f}")
    print()
    print("round  trim position  injection position")
    thresholds = result.threshold_path()
    injections = result.injection_path()
    for i in range(result.rounds):
        print(f"{i + 1:5d}  {thresholds[i]:13.4f}  {injections[i]:18.4f}")
    print()
    print("The two positions converge to the interactive equilibrium of the")
    print("coupled Elastic responses (T* ~ 0.873, A* ~ 0.857 for k = 0.5).")
    print()
    print("run() owns the loop; to own it yourself — live traffic, partial")
    print("horizons, mid-game snapshots — open a session instead:")
    print("    session = game.session(attach_source=True)")
    print("    decision = session.submit()   # one round -> RoundDecision")
    print("    result = session.close()")
    print("(see examples/live_session.py for the full session + service demo)")


if __name__ == "__main__":
    main()
