"""Defending k-means clustering against online poisoning (mini Fig. 4).

Compares the six §VI-A schemes on the Control dataset at light, moderate
and heavy attack ratios, reporting the clustering SSE on clean data and
the centroid drift from the clean ground truth.  Run with::

    python examples/kmeans_defense.py
"""

from repro.experiments import (
    EquilibriumConfig,
    format_table,
    run_kmeans_experiment,
)


def main() -> None:
    config = EquilibriumConfig(
        dataset="control",
        t_th=0.9,
        attack_ratios=(0.01, 0.15, 0.4),
        repetitions=2,
        rounds=10,
    )
    cells = run_kmeans_experiment(config)

    print(
        format_table(
            ["scheme", "attack ratio", "SSE (clean data)", "centroid distance"],
            [(c.scheme, c.attack_ratio, c.sse, c.distance) for c in cells],
            title="k-means under online poisoning (Control, T_th = 0.9)",
        )
    )
    print()
    print("Reading the table: Ostrich (no defense) is fine at ratio 0.01 and")
    print("collapses at 0.4; Tit-for-tat pays a flat trimming overhead and")
    print("absorbs the heavy attack; Baseline static is always evaded by the")
    print("ideal sub-threshold attack.")


if __name__ == "__main__":
    main()
