"""Live sessions: drive the defense round by round from an external loop.

Part 1 opens a single :class:`repro.GameSession` and owns the loop
itself — the shape a deployment has, where data arrives from outside and
the defense is a reactive transition function: ``submit(batch)`` returns
the round's :class:`~repro.core.session.RoundDecision` (threshold,
accept mask, judge verdict, payoffs).  Midway it suspends the session to
a snapshot blob and resumes from it — byte-identically, even in another
process.

Part 2 serves two tenants of the same defense configuration through a
:class:`repro.DefenseService`, which multiplexes their rounds through
one vectorized lockstep step.  Run with::

    python examples/live_session.py
"""

import numpy as np

from repro import ComponentSpec, DefenseService, GameSession, GameSpec, PayoffModel
from repro.core.strategies import ElasticAdversary, ElasticCollector


def tenant_spec(seed: int) -> GameSpec:
    """One tenant's declarative game recipe (Elastic vs Elastic, §VI-A)."""
    return GameSpec(
        collector=ComponentSpec(ElasticCollector, {"t_th": 0.9, "k": 0.5}),
        adversary=ComponentSpec(ElasticAdversary, {"t_th": 0.9, "k": 0.5}),
        dataset="control",
        attack_ratio=0.2,
        rounds=10,
        seed=seed,
    )


def single_session() -> None:
    print("=== one live session, caller-owned loop ===")
    session = tenant_spec(seed=0).session(payoff_model=PayoffModel())

    for _ in range(4):
        decision = session.submit()  # pulls from the attached stream
        print(
            f"round {decision.index}: trim @ {decision.threshold:.3f}, "
            f"kept {decision.n_retained}/{decision.n_collected}, "
            f"betrayal={decision.betrayal}, "
            f"collector payoff {decision.payoffs.collector:+.3f}"
        )

    # Suspend mid-game: the blob carries strategy state, every RNG's
    # bit-state, the board and the horizon position.
    blob = session.snapshot()
    print(f"snapshot: {len(blob)} bytes; resuming a restored session ...")
    resumed = GameSession.restore(blob)

    while not resumed.done:
        decision = resumed.submit()
        print(
            f"round {decision.index}: trim @ {decision.threshold:.3f}, "
            f"kept {decision.n_retained}/{decision.n_collected}"
        )
    result = resumed.close()
    print(
        f"closed after {result.rounds} rounds, surviving poison "
        f"{result.poison_retained_fraction():.3f}\n"
    )


def two_tenants() -> None:
    print("=== two tenants, one DefenseService ===")
    service = DefenseService()
    alice = service.open(tenant_spec(seed=1), session_id="alice")
    bob = service.open(tenant_spec(seed=2), session_id="bob")

    for _ in range(10):
        # Same configuration + same round: the service steps both
        # tenants through one vectorized lockstep round.
        decisions = service.submit_many([alice, bob])
        a, b = decisions[alice], decisions[bob]
        print(
            f"round {a.index}: alice trim {a.threshold:.3f} "
            f"(kept {a.n_retained}), bob trim {b.threshold:.3f} "
            f"(kept {b.n_retained})"
        )

    for tenant in (alice, bob):
        result = service.close(tenant)
        print(
            f"{tenant}: {result.rounds} rounds, surviving poison "
            f"{result.poison_retained_fraction():.3f}"
        )
    print(f"service stats: {service.stats}")


def main() -> None:
    single_session()
    two_tenants()


if __name__ == "__main__":
    main()
