"""Evasive adversaries against the Tit-for-tat trigger (mini Table III).

Sweeps the §VI-D mixed-strategy parameter p — the probability that the
adversary plays the agreed equilibrium position instead of betraying
with sub-threshold poison — and reports how early the noisy trigger
terminates cooperation plus how much poison survives.  Run with::

    python examples/evasive_adversary.py
"""

from repro.experiments import (
    NonEquilibriumConfig,
    format_table,
    run_nonequilibrium,
)


def main() -> None:
    config = NonEquilibriumConfig(
        repetitions=5,
        p_values=(0.0, 0.25, 0.5, 0.75, 1.0),
    )
    rows = run_nonequilibrium(config)

    print(
        format_table(
            ["p (equilibrium play)", "avg termination round",
             "Titfortat poison share", "Elastic poison share"],
            [
                (
                    r.p,
                    r.average_termination_rounds,
                    r.titfortat_poison_fraction,
                    r.elastic_poison_fraction,
                )
                for r in rows
            ],
            title="Evasive mixed strategies vs the Tit-for-tat trigger "
            "(Control, attack ratio 0.2, redundancy 5%)",
        )
    )
    print()
    print("A fully greedy adversary (p = 0) stays inside the declared")
    print("tolerance, so the trigger never fires — but every round's poison")
    print("sits just under the soft trim.  Compliant play (p = 1) is only")
    print("terminated by judgement noise, and its poison is trimmed away.")


if __name__ == "__main__":
    main()
