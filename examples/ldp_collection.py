"""Privacy-preserving collection under manipulation attacks (mini Fig. 9).

Honest users report Taxi pickup times through the Piecewise Mechanism;
colluding attackers run the input manipulation attack (poison the input,
then follow the protocol — individually undetectable).  The collector
compares doing nothing, plain trimming via the Tit-for-tat threshold,
and the EMF baseline.  Run with::

    python examples/ldp_collection.py
"""

import numpy as np

from repro.datasets import generate_taxi
from repro.experiments import format_table
from repro.ldp import (
    ExpectationMaximizationFilter,
    InputManipulationAttack,
    PiecewiseMechanism,
    SquareWaveMechanism,
    TrimmedMeanEstimator,
    mean_estimate,
)


def main() -> None:
    n_users, attack_ratio = 20_000, 0.2
    n_attackers = int(attack_ratio * n_users)
    rows = []

    for epsilon in (1.0, 2.0, 4.0):
        rng = np.random.default_rng(int(epsilon * 10))
        honest_inputs = generate_taxi(n_users, seed=int(epsilon * 100))
        truth = float(np.mean(honest_inputs))

        # --- trimming pipeline on Piecewise-Mechanism reports ---------- #
        mech = PiecewiseMechanism(epsilon, seed=1)
        reference = mech.perturb(generate_taxi(n_users, seed=999))
        estimator = TrimmedMeanEstimator(reference)
        attack = InputManipulationAttack(target=1.0)
        reports = np.concatenate(
            [mech.perturb(honest_inputs), attack.reports(mech, n_attackers)]
        )
        undefended = mean_estimate(reports)
        trimmed = estimator.estimate(reports, 0.92)  # Tit-for-tat hard trim

        # --- EMF baseline on Square-Wave reports ----------------------- #
        sw = SquareWaveMechanism(epsilon, seed=2)
        sw_reports = np.concatenate(
            [
                sw.perturb((honest_inputs + 1.0) / 2.0),
                sw.perturb(np.ones(n_attackers)),
            ]
        )
        emf = ExpectationMaximizationFilter(
            sw, attack_fraction=n_attackers / (n_users + n_attackers),
            n_input_bins=32, n_output_bins=64, n_iter=60,
        )
        emf_mean = emf.fit(sw_reports).mean

        rows.append(
            (
                epsilon,
                truth,
                undefended,
                trimmed,
                emf_mean,
                abs(trimmed - truth) < abs(emf_mean - truth),
            )
        )

    print(
        format_table(
            ["epsilon", "true mean", "no defense", "trimmed", "EMF",
             "trimming wins"],
            rows,
            title="LDP mean estimation under input manipulation "
            f"(attack ratio {attack_ratio})",
        )
    )
    print()
    print("The attack inflates the undefended estimate everywhere.  At small")
    print("epsilon the mechanism noise dominates, so trimming pays heavy")
    print("false-positive overhead (the paper's inflection near eps = 1.5);")
    print("past the crossover, trimming removes the attackers' upper-tail")
    print("report mass while EMF cannot separate channel-consistent reports.")


if __name__ == "__main__":
    main()
