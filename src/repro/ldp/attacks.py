"""Manipulation attacks against LDP data collection ([7], §VI-E).

Cheu, Smith & Ullman's taxonomy, both implemented:

* :class:`InputManipulationAttack` — attackers counterfeit their *input*
  (here: the domain value that maximizes the estimated-mean deviation)
  and then follow the perturbation protocol honestly.  Deniable and
  evasive: each attacker's report is individually indistinguishable from
  an honest user who truly holds that input — the "potent evasion
  strategy against detection mechanisms" used as the Fig. 9 adversary.
* :class:`OutputManipulationAttack` — the general manipulation attack:
  Byzantine attackers skip the protocol and report an arbitrary value in
  the output domain (default: the output bound), maximizing per-report
  damage at the cost of detectability.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["InputManipulationAttack", "OutputManipulationAttack"]


class InputManipulationAttack:
    """Poison inputs, then perturb honestly (deniable evasion).

    Parameters
    ----------
    target:
        The counterfeit input value every colluding attacker uses; for
        mean estimation on ``[-1, 1]`` the opportunistic choice is the
        domain maximum ``+1`` (or the value the adversary strategy's
        percentile position maps to).
    """

    name = "input-manipulation"

    def __init__(self, target: float = 1.0):
        self.target = float(target)

    def reports(self, mechanism, n_attackers: int) -> np.ndarray:
        """Generate attacker reports through the honest mechanism."""
        if n_attackers < 0:
            raise ValueError("n_attackers must be non-negative")
        if n_attackers == 0:
            return np.empty(0)
        inputs = np.full(n_attackers, self.target)
        return mechanism.perturb(inputs)


class OutputManipulationAttack:
    """Report arbitrary output-domain values (general manipulation).

    ``value=None`` reports the mechanism's output bound — the most
    damaging admissible report for mean inflation.  A finite explicit
    ``value`` supports colluding attackers that park reports at a chosen
    evasive location instead.
    """

    name = "output-manipulation"

    def __init__(self, value: Optional[float] = None, jitter: float = 0.0,
                 seed: Optional[int] = None):
        if jitter < 0.0:
            raise ValueError("jitter must be non-negative")
        self.value = value
        self.jitter = float(jitter)
        self._rng = np.random.default_rng(seed)

    def reports(self, mechanism, n_attackers: int) -> np.ndarray:
        """Generate fabricated reports, bypassing the mechanism."""
        if n_attackers < 0:
            raise ValueError("n_attackers must be non-negative")
        if n_attackers == 0:
            return np.empty(0)
        if self.value is None:
            bound = mechanism.output_bound()
            if not np.isfinite(bound):
                raise ValueError(
                    "mechanism has unbounded outputs; provide an explicit value"
                )
            base = bound
        else:
            base = self.value
        out = np.full(n_attackers, float(base))
        if self.jitter > 0.0:
            out = out - self._rng.random(n_attackers) * self.jitter
        return out
