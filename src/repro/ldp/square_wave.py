"""Square Wave mechanism and EM reconstruction (distribution estimation).

The EMF baseline of §VI-E ([8]) operates on LDP distribution-estimation
reports; the Square Wave (SW) mechanism of Li et al. is the standard
numeric mechanism for that task and the one the EMF pipeline builds on
here.  For input ``x ∈ [0, 1]`` and budget ε, SW reports ``y ∈ [-b, 1+b]``
with density ``p`` inside the window ``|y - x| ≤ b`` and ``q`` outside,
where

    ``b = (ε e^ε - e^ε + 1) / (2 e^ε (e^ε - 1 - ε))``,
    ``p = e^ε q``,  ``q = 1 / (2 b e^ε + 1)``  (window mass ``2bp`` plus
    the unit-length outside mass ``q`` integrate to 1).

Reconstruction discretizes inputs and outputs into histograms and runs
expectation-maximization, optionally with the smoothing step (EMS) that
regularizes the recovered density.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = ["SquareWaveMechanism", "em_reconstruct"]


class SquareWaveMechanism:
    """SW mechanism over inputs in [0, 1]."""

    def __init__(self, epsilon: float, seed: Optional[int] = None):
        if epsilon <= 0.0:
            raise ValueError("privacy budget epsilon must be positive")
        self.epsilon = float(epsilon)
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------ #
    @property
    def b(self) -> float:
        """Half-width of the high-density reporting window."""
        eps = self.epsilon
        e = np.exp(eps)
        return float((eps * e - e + 1.0) / (2.0 * e * (e - 1.0 - eps)))

    @property
    def q_density(self) -> float:
        """Low (outside-window) report density."""
        b = self.b
        e = np.exp(self.epsilon)
        return float(1.0 / (2.0 * b * e + 1.0))

    @property
    def p_density(self) -> float:
        """High (inside-window) report density ``p = e^ε q``."""
        return float(np.exp(self.epsilon) * self.q_density)

    # ------------------------------------------------------------------ #
    def perturb(self, values) -> np.ndarray:
        """Perturb inputs in [0, 1]; reports lie in ``[-b, 1 + b]``."""
        arr = np.asarray(values, dtype=float).ravel()
        if arr.size == 0:
            raise ValueError("cannot perturb an empty batch")
        if np.any((arr < -1e-12) | (arr > 1.0 + 1e-12)):
            raise ValueError("SW inputs must lie in [0, 1]")
        arr = np.clip(arr, 0.0, 1.0)

        b = self.b
        p, q = self.p_density, self.q_density
        window_mass = 2.0 * b * p
        in_window = self._rng.random(arr.size) < window_mass

        out = np.empty(arr.size)
        u = self._rng.random(arr.size)
        out[in_window] = arr[in_window] - b + 2.0 * b * u[in_window]

        outside = ~in_window
        if np.any(outside):
            # Outside region is [-b, x - b) ∪ (x + b, 1 + b], total length
            # (1 + 2b) - 2b = 1; pick a segment weighted by its length.
            x = arr[outside]
            left_len = x  # length of [-b, x - b)
            right_len = 1.0 - x  # length of (x + b, 1 + b]
            pick_left = self._rng.random(outside.sum()) < left_len / (
                left_len + right_len
            )
            v = self._rng.random(outside.sum())
            out[outside] = np.where(
                pick_left,
                -b + v * left_len,
                x + b + v * right_len,
            )
        return out

    def density(self, y, x: float):
        """Report density ``p(y|x)``: ``p`` inside the window, ``q`` outside.

        Zero outside the output domain ``[-b, 1 + b]``; the in/out ratio
        is exactly ``e^ε`` — the privacy guarantee the tests verify.
        """
        y = np.asarray(y, dtype=float)
        x = float(np.clip(x, 0.0, 1.0))
        b = self.b
        in_domain = (y >= -b) & (y <= 1.0 + b)
        in_window = np.abs(y - x) <= b
        return np.where(
            in_domain, np.where(in_window, self.p_density, self.q_density), 0.0
        )

    def transition_matrix(self, n_input_bins: int, n_output_bins: int) -> np.ndarray:
        """Discretized channel ``M[j, i] = P(report bin j | input bin i)``.

        Inputs are binned uniformly on [0, 1], outputs on ``[-b, 1+b]``.
        Computed by integrating the piecewise-constant SW density over
        each (input center, output bin) pair.
        """
        if n_input_bins < 1 or n_output_bins < 1:
            raise ValueError("bin counts must be >= 1")
        b, p, q = self.b, self.p_density, self.q_density
        in_centers = (np.arange(n_input_bins) + 0.5) / n_input_bins
        out_edges = np.linspace(-b, 1.0 + b, n_output_bins + 1)

        matrix = np.empty((n_output_bins, n_input_bins))
        for i, x in enumerate(in_centers):
            lo, hi = x - b, x + b
            # Mass of [edge_j, edge_j+1] = q*len + (p - q)*overlap_with_window
            seg_len = out_edges[1:] - out_edges[:-1]
            overlap = np.clip(
                np.minimum(out_edges[1:], hi) - np.maximum(out_edges[:-1], lo),
                0.0,
                None,
            )
            matrix[:, i] = q * seg_len + (p - q) * overlap
        # Normalize columns against discretization drift.
        matrix /= matrix.sum(axis=0, keepdims=True)
        return matrix


def em_reconstruct(
    report_hist,
    transition: np.ndarray,
    n_iter: int = 200,
    tol: float = 1e-9,
    smoothing: bool = True,
) -> np.ndarray:
    """EM / EMS estimation of the input histogram from report counts.

    Standard missing-data EM for a discrete channel: with input histogram
    ``f`` and channel ``M``, iterate

        ``f_i ← f_i · Σ_j  w_j M[j, i] / (M f)_j``  (normalized),

    where ``w`` is the observed report histogram.  With
    ``smoothing=True`` each iterate is convolved with the [1, 2, 1]/4
    kernel (the EMS variant), which suppresses the spiky solutions plain
    EM is known to produce for SW.
    Returns the estimated input distribution (sums to 1).
    """
    w = np.asarray(report_hist, dtype=float).ravel()
    if w.sum() <= 0:
        raise ValueError("report histogram must contain observations")
    w = w / w.sum()
    n_out, n_in = transition.shape
    if w.size != n_out:
        raise ValueError("histogram length must match transition rows")

    f = np.full(n_in, 1.0 / n_in)
    for _ in range(n_iter):
        mixture = transition @ f
        mixture = np.maximum(mixture, 1e-300)
        f_new = f * (transition.T @ (w / mixture))
        f_new = np.maximum(f_new, 0.0)
        total = f_new.sum()
        if total <= 0:
            raise RuntimeError("EM iterate collapsed to zero mass")
        f_new /= total
        if smoothing and n_in >= 3:
            smoothed = f_new.copy()
            smoothed[1:-1] = 0.25 * f_new[:-2] + 0.5 * f_new[1:-1] + 0.25 * f_new[2:]
            smoothed[0] = 0.75 * f_new[0] + 0.25 * f_new[1]
            smoothed[-1] = 0.75 * f_new[-1] + 0.25 * f_new[-2]
            f_new = smoothed / smoothed.sum()
        if np.max(np.abs(f_new - f)) < tol:
            f = f_new
            break
        f = f_new
    return f
