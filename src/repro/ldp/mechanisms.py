"""Numeric LDP perturbation mechanisms on the domain [-1, 1] (§V, §VI-E).

The case study's non-deterministic utility comes from local differential
privacy: each user perturbs their value before reporting, so even a fully
honest round has probabilistic quality.  Three classic ε-LDP mechanisms
for numeric mean estimation are implemented from scratch:

* :class:`LaplaceMechanism` — add Laplace(2/ε) noise (sensitivity 2).
* :class:`DuchiMechanism` — Duchi et al.'s two-point mechanism: report
  ``±B`` with ``B = (e^ε + 1)/(e^ε - 1)``; minimax-optimal variance at
  small ε.
* :class:`PiecewiseMechanism` — Wang et al.'s piecewise mechanism:
  continuous reports in ``[-C, C]`` with ``C = (e^{ε/2} + 1)/(e^{ε/2}-1)``,
  concentrated near the true value; preferred here because percentile
  *trimming* of reports is meaningful on its continuous output domain.

All mechanisms are unbiased: ``E[perturb(x)] = x`` for ``x ∈ [-1, 1]``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = [
    "Mechanism",
    "LaplaceMechanism",
    "DuchiMechanism",
    "PiecewiseMechanism",
]


class Mechanism:
    """Base ε-LDP mechanism over inputs in [-1, 1]."""

    def __init__(self, epsilon: float, seed: Optional[int] = None):
        if epsilon <= 0.0:
            raise ValueError("privacy budget epsilon must be positive")
        self.epsilon = float(epsilon)
        self._rng = np.random.default_rng(seed)

    @staticmethod
    def _check_inputs(values) -> np.ndarray:
        arr = np.asarray(values, dtype=float).ravel()
        if arr.size == 0:
            raise ValueError("cannot perturb an empty batch")
        if np.any(np.abs(arr) > 1.0 + 1e-12):
            raise ValueError("inputs must lie in [-1, 1]")
        return np.clip(arr, -1.0, 1.0)

    def perturb(self, values) -> np.ndarray:
        """Perturb a batch of values; one independent report each."""
        raise NotImplementedError

    def output_bound(self) -> float:
        """A bound ``b`` such that reports lie in ``[-b, b]`` (inf if none)."""
        return float("inf")

    def variance(self, x: float = 0.0) -> float:
        """Per-report variance at input ``x`` (worst case if not exact)."""
        raise NotImplementedError

    def density(self, y, x: float):
        """Report density (or pmf) ``p(y | x)`` at report(s) ``y``.

        Used by the ε-LDP verification tests: for every pair of inputs
        ``x, x'`` and every report ``y``, ``p(y|x) <= e^ε p(y|x')``.
        """
        raise NotImplementedError


class LaplaceMechanism(Mechanism):
    """``y = x + Lap(2/ε)``: the textbook numeric mechanism."""

    @property
    def scale(self) -> float:
        """Laplace scale ``2/ε`` (sensitivity of [-1, 1] inputs is 2)."""
        return 2.0 / self.epsilon

    def perturb(self, values) -> np.ndarray:
        arr = self._check_inputs(values)
        return arr + self._rng.laplace(0.0, self.scale, size=arr.size)

    def variance(self, x: float = 0.0) -> float:
        """``2 (2/ε)²`` independent of the input."""
        return 2.0 * self.scale**2

    def density(self, y, x: float):
        """Laplace density centered at ``x`` with scale ``2/ε``."""
        y = np.asarray(y, dtype=float)
        return np.exp(-np.abs(y - float(x)) / self.scale) / (2.0 * self.scale)


class DuchiMechanism(Mechanism):
    """Duchi et al.'s two-point mechanism: report ``±B``.

    ``B = (e^ε + 1)/(e^ε - 1)``; report ``+B`` with probability
    ``(1 + x (e^ε - 1)/(e^ε + 1))/2``, which makes the report unbiased.
    """

    @property
    def magnitude(self) -> float:
        """The output magnitude ``B``."""
        e = np.exp(self.epsilon)
        return float((e + 1.0) / (e - 1.0))

    def perturb(self, values) -> np.ndarray:
        arr = self._check_inputs(values)
        e = np.exp(self.epsilon)
        prob_plus = 0.5 * (1.0 + arr * (e - 1.0) / (e + 1.0))
        plus = self._rng.random(arr.size) < prob_plus
        b = self.magnitude
        return np.where(plus, b, -b)

    def output_bound(self) -> float:
        return self.magnitude

    def variance(self, x: float = 0.0) -> float:
        """``B² - x²`` (exact for the two-point output)."""
        return self.magnitude**2 - float(x) ** 2

    def density(self, y, x: float):
        """Two-point pmf: mass at ``+B`` and ``-B``, zero elsewhere."""
        y = np.asarray(y, dtype=float)
        e = np.exp(self.epsilon)
        prob_plus = 0.5 * (1.0 + float(x) * (e - 1.0) / (e + 1.0))
        b = self.magnitude
        out = np.zeros_like(y)
        out = np.where(np.isclose(y, b), prob_plus, out)
        out = np.where(np.isclose(y, -b), 1.0 - prob_plus, out)
        return out


class PiecewiseMechanism(Mechanism):
    """Wang et al.'s piecewise mechanism with continuous reports.

    Output domain ``[-C, C]`` with ``C = (e^{ε/2} + 1)/(e^{ε/2} - 1)``.
    With probability ``e^{ε/2}/(e^{ε/2} + 1)`` the report is uniform on
    the high-density band ``[l(x), r(x)]`` of width ``C - 1`` centered
    (affinely) on ``x``; otherwise uniform on the complement of the band.
    """

    @property
    def c_bound(self) -> float:
        """The output bound ``C``."""
        t = np.exp(self.epsilon / 2.0)
        return float((t + 1.0) / (t - 1.0))

    def _band(self, arr: np.ndarray):
        c = self.c_bound
        left = (c + 1.0) / 2.0 * arr - (c - 1.0) / 2.0
        right = left + c - 1.0
        return left, right

    def perturb(self, values) -> np.ndarray:
        arr = self._check_inputs(values)
        t = np.exp(self.epsilon / 2.0)
        c = self.c_bound
        left, right = self._band(arr)
        in_band = self._rng.random(arr.size) < t / (t + 1.0)

        out = np.empty(arr.size)
        # High-density band: uniform on [l, r].
        u = self._rng.random(arr.size)
        out[in_band] = left[in_band] + u[in_band] * (right[in_band] - left[in_band])

        # Tails: uniform on [-C, l) ∪ (r, C], weighted by segment length.
        tails = ~in_band
        if np.any(tails):
            l_t, r_t = left[tails], right[tails]
            left_len = l_t + c  # length of [-C, l)
            right_len = c - r_t  # length of (r, C]
            total = left_len + right_len
            pick_left = self._rng.random(tails.sum()) < left_len / total
            v = self._rng.random(tails.sum())
            tail_out = np.where(
                pick_left,
                -c + v * left_len,
                r_t + v * right_len,
            )
            out[tails] = tail_out
        return out

    def output_bound(self) -> float:
        return self.c_bound

    def variance(self, x: float = 0.0) -> float:
        """Exact per-report variance of the piecewise mechanism.

        ``Var = x²/(e^{ε/2} - 1) + (e^{ε/2} + 3)/(3 (e^{ε/2} - 1)²) ``
        (Wang et al. 2019, Eq. for the PM).
        """
        t = np.exp(self.epsilon / 2.0)
        return float(x) ** 2 / (t - 1.0) + (t + 3.0) / (3.0 * (t - 1.0) ** 2)

    def density(self, y, x: float):
        """Piecewise-constant density: high inside ``[l(x), r(x)]``.

        The in-band density is ``p = (e^ε - e^{ε/2}) / (2 e^{ε/2} + 2)``
        and the out-of-band density ``p / e^ε`` — their ratio is exactly
        ``e^ε``, the mechanism's privacy guarantee.
        """
        y = np.asarray(y, dtype=float)
        x_arr = np.full_like(y, np.clip(float(x), -1.0, 1.0))
        left, right = self._band(x_arr)
        t = np.exp(self.epsilon / 2.0)
        e = np.exp(self.epsilon)
        high = (e - t) / (2.0 * t + 2.0)
        low = high / e
        c = self.c_bound
        in_domain = (y >= -c) & (y <= c)
        in_band = (y >= left) & (y <= right)
        return np.where(in_domain, np.where(in_band, high, low), 0.0)
