"""Categorical LDP frequency oracles and poisoning attacks (§VII context).

The paper's related work ([5] Cao et al., [12] LDPGuard, [29] LDPRecover)
studies manipulation attacks against *frequency estimation* under LDP,
where a small fraction of Byzantine users can inflate chosen items.  This
module provides the two canonical frequency oracles and the standard
attack, completing the LDP substrate:

* :class:`GeneralizedRandomizedResponse` (GRR / k-RR): report the true
  item with probability ``p = e^ε / (e^ε + k - 1)``, otherwise a uniform
  other item.
* :class:`OptimizedUnaryEncoding` (OUE): one-hot encode, keep the true
  bit with probability 1/2 and flip others on with ``q = 1/(e^ε + 1)`` —
  variance-optimal unary encoding.
* :class:`MaximalGainAttack` (MGA): colluding attackers craft the report
  that maximizes the estimated frequency of their target items — for GRR
  the target item itself, for OUE a bit vector with the target bits set
  plus enough random padding bits to match the expected report weight
  (the detection-evasion refinement of Cao et al.).

Both oracles expose unbiased frequency estimators, so the attack's
*frequency gain* has the closed form the tests verify.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

__all__ = [
    "GeneralizedRandomizedResponse",
    "OptimizedUnaryEncoding",
    "MaximalGainAttack",
]


class GeneralizedRandomizedResponse:
    """GRR (k-ary randomized response) over items ``0..k-1``."""

    def __init__(self, domain_size: int, epsilon: float, seed: Optional[int] = None):
        if domain_size < 2:
            raise ValueError("domain_size must be >= 2")
        if epsilon <= 0.0:
            raise ValueError("epsilon must be positive")
        self.domain_size = int(domain_size)
        self.epsilon = float(epsilon)
        self._rng = np.random.default_rng(seed)

    @property
    def p_true(self) -> float:
        """Probability of reporting the true item."""
        e = np.exp(self.epsilon)
        return float(e / (e + self.domain_size - 1))

    @property
    def q_false(self) -> float:
        """Probability of reporting one specific other item."""
        e = np.exp(self.epsilon)
        return float(1.0 / (e + self.domain_size - 1))

    def perturb(self, items) -> np.ndarray:
        """Perturb integer items; returns integer reports."""
        arr = np.asarray(items, dtype=int).ravel()
        if arr.size == 0:
            raise ValueError("cannot perturb an empty batch")
        if np.any((arr < 0) | (arr >= self.domain_size)):
            raise ValueError("items must lie in [0, domain_size)")
        keep = self._rng.random(arr.size) < self.p_true
        noise = self._rng.integers(0, self.domain_size - 1, size=arr.size)
        # Map the k-1 noise values onto "every item except the true one".
        noise = np.where(noise >= arr, noise + 1, noise)
        return np.where(keep, arr, noise)

    def estimate_frequencies(self, reports) -> np.ndarray:
        """Unbiased frequency estimate ``(f_obs - q) / (p - q)``."""
        arr = np.asarray(reports, dtype=int).ravel()
        if arr.size == 0:
            raise ValueError("cannot estimate from an empty batch")
        observed = np.bincount(arr, minlength=self.domain_size) / arr.size
        return (observed - self.q_false) / (self.p_true - self.q_false)

    def pmf(self, report: int, item: int) -> float:
        """Report pmf ``P(report | item)`` for the privacy tests."""
        if not 0 <= report < self.domain_size or not 0 <= item < self.domain_size:
            raise ValueError("report and item must lie in the domain")
        return self.p_true if report == item else self.q_false


class OptimizedUnaryEncoding:
    """OUE: one-hot encoding with asymmetric bit perturbation."""

    def __init__(self, domain_size: int, epsilon: float, seed: Optional[int] = None):
        if domain_size < 2:
            raise ValueError("domain_size must be >= 2")
        if epsilon <= 0.0:
            raise ValueError("epsilon must be positive")
        self.domain_size = int(domain_size)
        self.epsilon = float(epsilon)
        self._rng = np.random.default_rng(seed)

    @property
    def p_keep(self) -> float:
        """Probability a true bit stays 1 (OUE fixes this at 1/2)."""
        return 0.5

    @property
    def q_flip(self) -> float:
        """Probability a zero bit flips to 1: ``1 / (e^ε + 1)``."""
        return float(1.0 / (np.exp(self.epsilon) + 1.0))

    def perturb(self, items) -> np.ndarray:
        """Perturb items into bit matrices of shape ``(n, domain_size)``."""
        arr = np.asarray(items, dtype=int).ravel()
        if arr.size == 0:
            raise ValueError("cannot perturb an empty batch")
        if np.any((arr < 0) | (arr >= self.domain_size)):
            raise ValueError("items must lie in [0, domain_size)")
        bits = self._rng.random((arr.size, self.domain_size)) < self.q_flip
        true_draw = self._rng.random(arr.size) < self.p_keep
        bits[np.arange(arr.size), arr] = true_draw
        return bits.astype(np.int8)

    def estimate_frequencies(self, reports) -> np.ndarray:
        """Unbiased estimate ``(f_obs - q) / (p - q)`` per bit position."""
        bits = np.asarray(reports)
        if bits.ndim != 2 or bits.shape[1] != self.domain_size:
            raise ValueError("reports must be (n, domain_size) bit rows")
        if bits.shape[0] == 0:
            raise ValueError("cannot estimate from an empty batch")
        observed = bits.mean(axis=0)
        return (observed - self.q_flip) / (self.p_keep - self.q_flip)

    def expected_report_weight(self) -> float:
        """Expected number of set bits in an honest report."""
        return self.p_keep + (self.domain_size - 1) * self.q_flip


class MaximalGainAttack:
    """MGA: craft reports that maximally inflate target items ([5]).

    Attackers collude on a set of target items.  Against GRR the optimal
    fabricated report is simply a target item; against OUE it is a bit
    vector with all target bits set, padded with random non-target bits
    so the report weight matches an honest report's expectation (naively
    setting only target bits is detectable by a weight test).
    """

    def __init__(self, targets: Sequence[int], seed: Optional[int] = None):
        self.targets = tuple(int(t) for t in targets)
        if not self.targets:
            raise ValueError("need at least one target item")
        self._rng = np.random.default_rng(seed)

    def _check_targets(self, domain_size: int) -> None:
        if any(not 0 <= t < domain_size for t in self.targets):
            raise ValueError("targets must lie in the oracle's domain")

    def reports_grr(self, oracle: GeneralizedRandomizedResponse, n: int) -> np.ndarray:
        """Fabricated GRR reports: target items, round-robin."""
        if n < 0:
            raise ValueError("n must be non-negative")
        self._check_targets(oracle.domain_size)
        idx = self._rng.integers(0, len(self.targets), size=n)
        return np.asarray(self.targets, dtype=int)[idx]

    def reports_oue(self, oracle: OptimizedUnaryEncoding, n: int) -> np.ndarray:
        """Fabricated OUE bit rows: target bits set + weight-matched padding."""
        if n < 0:
            raise ValueError("n must be non-negative")
        self._check_targets(oracle.domain_size)
        d = oracle.domain_size
        bits = np.zeros((n, d), dtype=np.int8)
        bits[:, list(self.targets)] = 1
        pad_total = oracle.expected_report_weight() - len(self.targets)
        pad_count = max(0, int(round(pad_total)))
        non_targets = np.setdiff1d(np.arange(d), np.asarray(self.targets))
        if pad_count > 0 and non_targets.size > 0:
            pad_count = min(pad_count, non_targets.size)
            for row in range(n):
                chosen = self._rng.choice(non_targets, size=pad_count, replace=False)
                bits[row, chosen] = 1
        return bits

    def expected_gain_grr(
        self, oracle: GeneralizedRandomizedResponse, attack_fraction: float
    ) -> float:
        """Closed-form per-target frequency gain under GRR.

        With attacker share β splitting fabricated reports evenly over
        ``|T|`` targets, a target's observed report frequency becomes
        ``(1-β) f_obs + β/|T|``, so its unbiased estimate rises to
        ``(1-β)·estimate + β (1/|T| - q) / (p - q)`` — the second term is
        the attack's frequency gain, verified empirically by the tests.
        """
        if not 0.0 <= attack_fraction < 1.0:
            raise ValueError("attack_fraction must lie in [0, 1)")
        beta = attack_fraction
        return (
            beta
            * (1.0 / len(self.targets) - oracle.q_false)
            / (oracle.p_true - oracle.q_false)
        )
