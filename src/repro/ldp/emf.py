"""Expectation-Maximization Filter — the §VI-E baseline ([8]).

Du et al.'s EMF defends LDP collection against colluding attackers by
maximum-likelihood recovery of the *attack distribution*: observed
reports are modeled as a mixture of (i) honest inputs pushed through the
known LDP channel and (ii) an unconstrained attack component over the
report domain.  EM alternates between estimating the honest input
histogram and the attack report histogram; the final mean estimate uses
only the honest component.

The documented limitation — inherited faithfully — is that attackers who
*mimic honest behaviour* (the input manipulation attack: poison the
input, then follow the protocol) present exactly the channel-consistent
signature the honest component explains, so the filter cannot separate
them.  This is the failure mode the paper's Fig. 9 exploits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .square_wave import SquareWaveMechanism, em_reconstruct

__all__ = ["EMFResult", "ExpectationMaximizationFilter"]


@dataclass(frozen=True)
class EMFResult:
    """Outcome of an EMF fit.

    ``honest_distribution`` is the recovered input histogram (unit mass)
    over ``n_input_bins`` uniform bins of [0, 1]; ``attack_distribution``
    the recovered attack *report* histogram; ``attack_mass`` the mixture
    weight assigned to the attack component; ``mean`` the honest-component
    mean mapped back to the [-1, 1] domain.
    """

    honest_distribution: np.ndarray
    attack_distribution: np.ndarray
    attack_mass: float
    mean: float


class ExpectationMaximizationFilter:
    """Mixture-EM filter over Square-Wave LDP reports.

    Parameters
    ----------
    mechanism:
        The :class:`~repro.ldp.square_wave.SquareWaveMechanism` the honest
        users apply (the channel is public knowledge).
    attack_fraction:
        The mixture weight γ of the attack component.  The original EMF
        estimates this; here the defender supplies her estimate of the
        attacker share (the experiments pass the true attack fraction,
        which is the *charitable* setting for the baseline).
    n_input_bins / n_output_bins:
        Histogram resolutions for the input and report domains.
    n_iter:
        Outer EM iterations alternating responsibilities and components.
    """

    def __init__(
        self,
        mechanism: SquareWaveMechanism,
        attack_fraction: float,
        n_input_bins: int = 64,
        n_output_bins: int = 128,
        n_iter: int = 100,
        seed: Optional[int] = None,
    ):
        if not 0.0 <= attack_fraction < 1.0:
            raise ValueError("attack_fraction must lie in [0, 1)")
        self.mechanism = mechanism
        self.attack_fraction = float(attack_fraction)
        self.n_input_bins = int(n_input_bins)
        self.n_output_bins = int(n_output_bins)
        self.n_iter = int(n_iter)
        self._transition = mechanism.transition_matrix(n_input_bins, n_output_bins)

    # ------------------------------------------------------------------ #
    def _report_histogram(self, reports: np.ndarray) -> np.ndarray:
        b = self.mechanism.b
        edges = np.linspace(-b, 1.0 + b, self.n_output_bins + 1)
        hist, _ = np.histogram(np.clip(reports, -b, 1.0 + b), bins=edges)
        return hist.astype(float)

    def fit(self, reports) -> EMFResult:
        """Run mixture EM on a batch of SW reports (values in [-b, 1+b])."""
        arr = np.asarray(reports, dtype=float).ravel()
        if arr.size == 0:
            raise ValueError("cannot filter an empty report batch")
        w = self._report_histogram(arr)
        w_norm = w / w.sum()

        gamma = self.attack_fraction
        f = np.full(self.n_input_bins, 1.0 / self.n_input_bins)
        a = np.full(self.n_output_bins, 1.0 / self.n_output_bins)

        if gamma == 0.0:
            f = em_reconstruct(w, self._transition, n_iter=self.n_iter * 2)
            return EMFResult(f, a, 0.0, self._mean_from_hist(f))

        for _ in range(self.n_iter):
            honest_pred = np.maximum(self._transition @ f, 1e-300)
            mix = (1.0 - gamma) * honest_pred + gamma * a
            mix = np.maximum(mix, 1e-300)
            resp_honest = (1.0 - gamma) * honest_pred / mix

            # Honest component: one EM step on responsibility-weighted counts.
            w_honest = w_norm * resp_honest
            f_new = f * (self._transition.T @ (w_honest / honest_pred))
            total = f_new.sum()
            if total <= 0:
                break
            f = f_new / total

            # Attack component: responsibility-weighted report histogram.
            w_attack = w_norm * (1.0 - resp_honest)
            a_total = w_attack.sum()
            a = w_attack / a_total if a_total > 0 else a

        return EMFResult(
            honest_distribution=f,
            attack_distribution=a,
            attack_mass=gamma,
            mean=self._mean_from_hist(f),
        )

    def _mean_from_hist(self, f: np.ndarray) -> float:
        """Honest mean on [-1, 1] from the [0, 1] input histogram."""
        centers01 = (np.arange(self.n_input_bins) + 0.5) / self.n_input_bins
        mean01 = float(np.sum(f * centers01))
        return 2.0 * mean01 - 1.0
