"""LDP substrate: mechanisms, attacks, EM reconstruction, and the EMF baseline."""

from .attacks import InputManipulationAttack, OutputManipulationAttack
from .emf import EMFResult, ExpectationMaximizationFilter
from .estimators import TrimmedMeanEstimator, mean_estimate
from .frequency import (
    GeneralizedRandomizedResponse,
    MaximalGainAttack,
    OptimizedUnaryEncoding,
)
from .mechanisms import (
    DuchiMechanism,
    LaplaceMechanism,
    Mechanism,
    PiecewiseMechanism,
)
from .square_wave import SquareWaveMechanism, em_reconstruct

__all__ = [
    "Mechanism",
    "LaplaceMechanism",
    "DuchiMechanism",
    "PiecewiseMechanism",
    "SquareWaveMechanism",
    "em_reconstruct",
    "InputManipulationAttack",
    "OutputManipulationAttack",
    "EMFResult",
    "ExpectationMaximizationFilter",
    "TrimmedMeanEstimator",
    "mean_estimate",
    "GeneralizedRandomizedResponse",
    "OptimizedUnaryEncoding",
    "MaximalGainAttack",
]
