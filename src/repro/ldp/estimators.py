"""Mean estimation from (possibly trimmed) LDP reports (§VI-E).

Numeric LDP mechanisms are unbiased, so the plain report mean estimates
the population mean.  Trimming reports breaks unbiasedness; the
:class:`TrimmedMeanEstimator` restores calibration by measuring — on a
clean reference pushed through the same public mechanism — how much a
given trim threshold shifts the mean, and adding that shift back.  This
keeps the defense honest under no attack while still removing
upper-tail attack mass.
"""

from __future__ import annotations

import numpy as np

from ..core.domain import QuantileTable

__all__ = ["mean_estimate", "TrimmedMeanEstimator"]


def mean_estimate(reports) -> float:
    """Plain unbiased mean of LDP reports."""
    arr = np.asarray(reports, dtype=float).ravel()
    if arr.size == 0:
        raise ValueError("cannot estimate from an empty report batch")
    return float(np.mean(arr))


class TrimmedMeanEstimator:
    """Percentile-trimmed report mean with reference bias correction.

    Parameters
    ----------
    reference_reports:
        A clean calibration batch pushed through the same mechanism; its
        quantiles anchor the trim cutoffs (the public data quality
        standard applied in the perturbed domain) and its trim-induced
        mean shift provides the bias correction.
    """

    def __init__(self, reference_reports):
        ref = np.asarray(reference_reports, dtype=float).ravel()
        if ref.size < 10:
            raise ValueError("need at least 10 reference reports to calibrate")
        # Sort-once table: cutoffs become O(1) quantile lookups and the
        # bias correction a searchsorted prefix instead of a full scan.
        self._table = QuantileTable(ref)
        self._reference = self._table.values
        self._reference_mean = float(np.mean(ref))

    def cutoff(self, percentile: float) -> float:
        """The report-value cutoff realizing a trim percentile."""
        if percentile >= 1.0:
            return float("inf")
        return float(self._table.quantile(percentile))

    def bias_correction(self, percentile: float) -> float:
        """Mean shift trimming at ``percentile`` induces on clean data.

        ``correction = mean(reference) - mean(reference below cutoff)`` —
        added back to the trimmed estimate so the estimator stays
        calibrated when no attack is present.  The kept mass is a prefix
        of the sorted reference, located by binary search.
        """
        cut = self.cutoff(percentile)
        kept_count = int(np.searchsorted(self._reference, cut, side="right"))
        if kept_count == 0:
            return 0.0
        return self._reference_mean - float(np.mean(self._reference[:kept_count]))

    def estimate(self, reports, percentile: float) -> float:
        """Trim reports above the cutoff, average, and de-bias."""
        arr = np.asarray(reports, dtype=float).ravel()
        if arr.size == 0:
            raise ValueError("cannot estimate from an empty report batch")
        cut = self.cutoff(percentile)
        kept = arr[arr <= cut]
        if kept.size == 0:
            kept = np.array([float(np.min(arr))])
        return float(np.mean(kept)) + self.bias_correction(percentile)

    def trimmed_fraction(self, reports, percentile: float) -> float:
        """Fraction of reports removed at the given threshold."""
        arr = np.asarray(reports, dtype=float).ravel()
        if arr.size == 0:
            return 0.0
        return float(np.mean(arr > self.cutoff(percentile)))
