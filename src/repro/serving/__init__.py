"""Multi-tenant serving layer: many live defense sessions, one process.

:class:`DefenseService` is the facade a deployment talks to — it opens
:class:`~repro.core.session.GameSession` tenants from declarative
:class:`~repro.runtime.spec.GameSpec` recipes, routes per-tenant
``submit`` calls, transparently multiplexes same-configuration tenants
through the vectorized lockstep kernels, and evicts idle tenants to
snapshots (in memory or in a
:class:`~repro.runtime.store.ResultStore`), restoring them on their
next submit.
"""

from .service import DefenseService, ServiceStats, TenantFailure

__all__ = ["DefenseService", "ServiceStats", "TenantFailure"]
