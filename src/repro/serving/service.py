"""The multi-tenant defense multiplexer.

A deployment serves *many* concurrent collection games — one per tenant
feed — and most of them run the same defense configuration.  Playing
each round tenant-by-tenant wastes exactly the Python-loop overhead the
rep-batched engine already eliminated for Monte-Carlo repetitions, so
:class:`DefenseService` reuses that machinery across *live sessions*:

* tenants are opened from :class:`~repro.runtime.spec.GameSpec` recipes
  and grouped by :func:`~repro.runtime.spec.fusion_group_key` — the
  lockstep *family* relation: strategies, datasets, attack ratios and
  seeds may all differ, as long as the cohort shares one injection
  mode, one trimmer/quality/judge class and one batch geometry;
* :meth:`DefenseService.submit_many` steps every same-family,
  same-round cohort through one fused
  :class:`~repro.core.session.BatchedGameSession` round — strategy
  lanes fused per family with heterogeneous parameters packed into
  ``(L,)`` columns (:mod:`repro.core.fusion`), trims, quality scores
  and judge verdicts computed on ``(L, n)`` stacks — and distributes
  the per-lane decisions back onto each tenant's own board.  Compiled
  cohort programs are cached between rounds (invalidated on any
  out-of-band touch of a member) and oversized cohorts stream through
  ``max_fused_lanes``-row chunks.  Tenants that cannot join a cohort
  (odd round position, odd batch shape, singleton group) fall back to
  their solo :meth:`~repro.core.session.GameSession.submit`,
  byte-identically;
* idle tenants are evicted to snapshots — in memory, or persisted in a
  :class:`~repro.runtime.store.ResultStore` — and transparently
  restored on their next submit, so resident memory is bounded by
  ``max_resident`` rather than by the tenant count.

The byte-identity contract of the lockstep path (every multiplexed
round equals the tenant's solo round, bit for bit) is asserted by the
test suite and re-asserted on every run of
``benchmarks/bench_service.py``.
"""

from __future__ import annotations

import hashlib
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    AbstractSet,
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from ..core.engine import _JudgeLanes, _QualityLanes
from ..core.fusion import (
    InjectorLanes,
    TrimLanes,
    fused_adversary_lanes,
    fused_collector_lanes,
)
from ..core.session import (
    BatchedGameSession,
    GameSession,
    LaneRoundDecision,
    RoundDecision,
    SnapshotError,
    stack_observations,
)
from ..runtime.spec import GameSpec, fusion_group_key, rep_keys_equal
from ..streams.board import ColumnarBoard

if TYPE_CHECKING:  # annotation-only imports
    from ..core.engine import GameResult
    from ..runtime.store import ResultStore

__all__ = ["DefenseService", "ServiceStats", "TenantFailure"]

#: What one tenant's slot of a ``submit_many`` round resolves to: a full
#: :class:`RoundDecision` on the solo path, a lazily-materialized
#: :class:`LaneRoundDecision` column view on the lockstep path (same
#: attribute surface, same values).
AnyRoundDecision = Union[RoundDecision, LaneRoundDecision]


@dataclass
class ServiceStats:
    """Running operation counters of one :class:`DefenseService`.

    The ``*_seconds`` fields are cumulative wall-clock phase timers of
    the lockstep path: ``lane_build_seconds`` covers cohort compilation
    (including the wholesale flush of any deferred rounds a rebuild
    forces), ``kernel_seconds`` the fused round kernels, and
    ``absorb_seconds`` the per-round decision distribution (columnar
    sink append + lane decision views).
    """

    opened: int = 0
    closed: int = 0
    solo_rounds: int = 0
    lockstep_rounds: int = 0
    lockstep_lanes: int = 0
    lane_builds: int = 0
    lane_cache_hits: int = 0
    evictions: int = 0
    restores: int = 0
    quarantined: int = 0
    lane_build_seconds: float = 0.0
    kernel_seconds: float = 0.0
    absorb_seconds: float = 0.0


@dataclass(frozen=True)
class TenantFailure:
    """Why one tenant was quarantined out of a :meth:`submit_many` call.

    ``kind`` classifies the failure stage: ``"snapshot"`` (the tenant's
    persisted snapshot would not restore — :class:`SnapshotError`),
    ``"lifecycle"`` (closed / superseded / missing source / unknown id)
    or ``"round"`` (its solo round raised).  ``error`` is the rendered
    exception.
    """

    session_id: str
    kind: str
    error: str


class DefenseService:
    """Holds and multiplexes many concurrent defense sessions.

    Parameters
    ----------
    store:
        Optional :class:`~repro.runtime.store.ResultStore`; evicted
        sessions persist their snapshots there (surviving the process —
        a later service re-attaches them with :meth:`adopt`), otherwise
        snapshots are kept in memory.
    namespace:
        Key prefix isolating this service's snapshots inside a shared
        store.  Two services sharing one store must use distinct
        namespaces (or distinct session ids); a restore additionally
        verifies that the stored snapshot belongs to this session id
        and spec, so a collision fails loudly instead of silently
        resuming another tenant's game.
    max_resident:
        Soft cap on live (non-evicted) sessions.  When an ``open`` or
        restore pushes the resident count above it, the least recently
        used idle sessions are evicted automatically.
    min_multiplex:
        Smallest cohort :meth:`submit_many` plays in lockstep; smaller
        cohorts use the solo path (default 2).
    max_fused_lanes:
        Optional cap on lanes per fused lockstep round.  Oversized
        cohorts stream through chunks of at most this many ``(L, batch)``
        rows — bounding the working-set memory of one kernel pass —
        instead of one monolithic stack.  ``None`` (default) fuses whole
        cohorts.
    cohort_cache_size:
        How many built lane cohorts to keep resident (default 16, LRU).
        A cohort whose membership, sessions and round position are
        unchanged since its last lockstep round reuses its compiled
        lane programs instead of rebuilding them; any out-of-band touch
        of a member (solo round, eviction, restore, ``session()``
        access …) invalidates every cohort it belongs to.  ``0``
        disables the cache (lanes rebuild every round).
    """

    def __init__(
        self,
        store: Optional["ResultStore"] = None,
        namespace: str = "default",
        max_resident: Optional[int] = None,
        min_multiplex: int = 2,
        max_fused_lanes: Optional[int] = None,
        cohort_cache_size: int = 16,
    ):
        if max_resident is not None and max_resident < 1:
            raise ValueError("max_resident must be >= 1 (or None)")
        if min_multiplex < 2:
            raise ValueError("min_multiplex must be >= 2")
        if max_fused_lanes is not None and max_fused_lanes < 2:
            raise ValueError("max_fused_lanes must be >= 2 (or None)")
        if cohort_cache_size < 0:
            raise ValueError("cohort_cache_size must be >= 0")
        self._store = store
        self.namespace = str(namespace)
        self.max_resident = max_resident
        self.min_multiplex = int(min_multiplex)
        self.max_fused_lanes = (
            None if max_fused_lanes is None else int(max_fused_lanes)
        )
        self.cohort_cache_size = int(cohort_cache_size)
        self._sessions: Dict[str, GameSession] = {}
        self._specs: Dict[str, GameSpec] = {}
        self._group_of: Dict[str, int] = {}
        self._group_keys: List[tuple] = []
        #: Evicted session ids -> in-memory snapshot blob (None when the
        #: blob lives in the result store instead).
        self._evicted: Dict[str, Optional[bytes]] = {}
        #: Tenants pulled out of service by a quarantining submit_many.
        self._quarantined: Dict[str, TenantFailure] = {}
        #: Cohort members tuple -> built lockstep session + validity
        #: witnesses (see :meth:`_cohort_lockstep`).
        self._cohort_cache: "OrderedDict[Tuple[str, ...], dict]" = (
            OrderedDict()
        )
        #: Per-tenant state epoch; bumped on every out-of-band touch,
        #: checked before a cached cohort may play.
        self._epochs: Dict[str, int] = {}
        self._clock = 0
        self._touched: Dict[str, int] = {}
        self._next_id = 0
        self.stats = ServiceStats()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def open(
        self,
        spec: GameSpec,
        session_id: Optional[str] = None,
        horizon: Union[int, str, None] = "spec",
        payoff_model: Any = None,
    ) -> str:
        """Open a new tenant session from a declarative game recipe.

        Returns the session id (generated ``session-N`` when not
        given).  ``horizon`` defaults to the spec's ``rounds``; pass
        ``None`` for an open-ended tenant.  The spec's stream is
        attached, so ``submit`` calls without a batch serve the spec's
        own traffic.
        """
        if session_id is None:
            # Skip over ids the caller already claimed explicitly.
            while (
                f"session-{self._next_id}" in self._sessions
                or f"session-{self._next_id}" in self._evicted
            ):
                self._next_id += 1
            session_id = f"session-{self._next_id}"
            self._next_id += 1
        if session_id in self._sessions or session_id in self._evicted:
            raise ValueError(f"session id {session_id!r} already exists")
        session = spec.session(
            horizon=spec.rounds if horizon == "spec" else horizon,
            payoff_model=payoff_model,
        )
        # Reusing a quarantined tenant's id replaces it; the stale
        # failure record must not shadow the healthy newcomer.
        self._quarantined.pop(session_id, None)
        self._sessions[session_id] = session
        self._specs[session_id] = spec
        self._group_of[session_id] = self._group_index(spec)
        self._invalidate(session_id)
        self._touch(session_id)
        self.stats.opened += 1
        self._enforce_residency(protect={session_id})
        return session_id

    def _group_index(self, spec: GameSpec) -> int:
        key = fusion_group_key(spec)
        for index, existing in enumerate(self._group_keys):
            if rep_keys_equal(existing, key):
                return index
        self._group_keys.append(key)
        return len(self._group_keys) - 1

    def _touch(self, session_id: str) -> None:
        self._clock += 1
        self._touched[session_id] = self._clock

    def _invalidate(self, session_id: str) -> None:
        """Bump a tenant's epoch: its cached cohorts must rebuild.

        Called on every path that can change a session's identity or
        state outside a cohort's own lockstep rounds — solo submits,
        ``session()`` handle exposure, open/close, evict/restore,
        quarantine, adopt.
        """
        self._epochs[session_id] = self._epochs.get(session_id, 0) + 1

    def session_ids(self) -> List[str]:
        """All known session ids (resident and evicted), oldest first."""
        return list(self._specs)

    def __len__(self) -> int:
        return len(self._specs)

    @property
    def resident_ids(self) -> List[str]:
        """Ids of sessions currently held live in memory."""
        return list(self._sessions)

    @property
    def evicted_ids(self) -> List[str]:
        """Ids of sessions currently parked as snapshots."""
        return list(self._evicted)

    @property
    def quarantined_ids(self) -> List[str]:
        """Ids of tenants quarantined by failing ``submit_many`` rounds."""
        return list(self._quarantined)

    def quarantine_reason(self, session_id: str) -> TenantFailure:
        """The :class:`TenantFailure` that quarantined one tenant."""
        return self._quarantined[session_id]

    def session(self, session_id: str) -> GameSession:
        """The live :class:`GameSession` (restoring it if evicted).

        Handing out the live handle invalidates the tenant's cached
        cohorts — the caller may step or mutate the session directly —
        and flushes any deferred lockstep rounds first, so the handle's
        board and round position are authoritative.
        """
        session = self._resident(session_id)
        session._flush_deferred()
        self._invalidate(session_id)
        return session

    def _resident(self, session_id: str) -> GameSession:
        session = self._sessions.get(session_id)
        if session is not None:
            return session
        if session_id in self._evicted:
            return self._restore(session_id)
        raise KeyError(f"unknown session id {session_id!r}")

    # ------------------------------------------------------------------ #
    # submit
    # ------------------------------------------------------------------ #
    def submit(
        self,
        session_id: str,
        batch: Optional[Any] = None,
        poison_mask: Optional[Any] = None,
    ) -> RoundDecision:
        """Play one round of one tenant (the solo routing path)."""
        session = self._resident(session_id)
        decision = session.submit(batch, poison_mask=poison_mask)
        self._invalidate(session_id)
        self._touch(session_id)
        self.stats.solo_rounds += 1
        self._enforce_residency(protect={session_id})
        return decision

    def submit_many(
        self,
        batches: Union[Mapping[str, object], Sequence[str]],
        on_error: str = "raise",
    ) -> Dict[str, AnyRoundDecision]:
        """Play one round for many tenants, multiplexing where possible.

        ``batches`` maps session ids to their round batches (``None``
        pulls from the tenant's attached source), or is a plain
        sequence of ids (all pulled from their sources).  Tenants that
        share a configuration group, sit at the same round and receive
        same-shaped batches step through one vectorized lockstep round;
        everyone else is routed solo.  Either way each tenant's
        decision, board and strategy state are byte-identical to solo
        play.

        ``on_error="raise"`` (default): a tenant failing pre-flight —
        unknown id, closed session, missing source, a snapshot that
        will not restore (:class:`SnapshotError`) — fails the whole
        call with no state advanced anywhere.  ``"quarantine"``: the
        failing tenant is pulled out of service (recorded on
        :attr:`quarantined_ids` with a :class:`TenantFailure`, its
        persisted snapshot blob left in the store for forensics) and
        the rest of the cohort plays on, byte-identically to a call
        that never named the broken tenant; quarantined tenants are
        absent from the returned mapping.  Solo rounds that raise are
        quarantined too; an error *inside* a lockstep kernel still
        propagates — mid-round failures cannot be attributed to a
        single lane.
        """
        if on_error not in ("raise", "quarantine"):
            raise ValueError("on_error must be 'raise' or 'quarantine'")
        if not isinstance(batches, Mapping):
            ids = list(batches)
            if len(set(ids)) != len(ids):
                raise ValueError(
                    "duplicate session ids in one submit_many call"
                )
            batches = {session_id: None for session_id in ids}
        order = list(batches)

        # Pre-flight *before* any stream or strategy advances: restore
        # evicted members, check lifecycles, check batch availability.
        # Under on_error="raise" a tenant failing these checks fails the
        # whole call with no state advanced anywhere; under
        # "quarantine" it is isolated here, before it can touch the
        # cohort.  (A kernel error *during* a lockstep round — e.g. a
        # malformed batch a trimmer rejects — still aborts the call
        # mid-way: cohorts that already played keep their rounds.)
        sessions: Dict[str, GameSession] = {}
        for sid in order:
            if sid in self._quarantined and on_error == "quarantine":
                # Already pulled out of service; callers that keep
                # naming it just don't get a decision for it — the
                # original TenantFailure stays authoritative.
                continue
            try:
                session = self._resident(sid)
                session._check_submittable()
                if batches[sid] is None and session.source is None:
                    raise ValueError(
                        f"session {sid!r} has no attached source; "
                        "pass its batch explicitly"
                    )
            except (SnapshotError, KeyError, ValueError, RuntimeError) as exc:
                if on_error == "raise":
                    raise
                kind = "snapshot" if isinstance(exc, SnapshotError) else (
                    "lifecycle"
                )
                self._quarantine(sid, kind, exc)
                continue
            sessions[sid] = session
        order = [sid for sid in order if sid in sessions]

        cohorts: Dict[tuple, List[str]] = {}
        for sid in order:
            cohorts.setdefault(
                (self._group_of[sid], sessions[sid].round_index), []
            ).append(sid)

        decisions: Dict[str, AnyRoundDecision] = {}
        for members in cohorts.values():
            arrays: Dict[str, np.ndarray] = {}
            for sid in members:
                batch = batches[sid]
                if batch is None:
                    batch = sessions[sid].source.next_batch()
                arrays[sid] = np.asarray(batch, dtype=float)
            # Fused cohorts mix datasets, so one family cohort may carry
            # several batch geometries; each same-shape run fuses on its
            # own, chunked to ``max_fused_lanes`` rows per kernel pass.
            by_shape: Dict[tuple, List[str]] = {}
            for sid in members:
                by_shape.setdefault(arrays[sid].shape, []).append(sid)
            step = self.max_fused_lanes
            for shaped in by_shape.values():
                chunks = (
                    [shaped]
                    if step is None
                    else [
                        shaped[i:i + step]
                        for i in range(0, len(shaped), step)
                    ]
                )
                for chunk in chunks:
                    if len(chunk) >= self.min_multiplex:
                        stack = np.stack([arrays[sid] for sid in chunk])
                        for sid, decision in zip(
                            chunk, self._submit_lockstep(chunk, sessions, stack)
                        , strict=False):
                            decisions[sid] = decision
                        self.stats.lockstep_rounds += 1
                        self.stats.lockstep_lanes += len(chunk)
                    else:
                        for sid in chunk:
                            try:
                                decisions[sid] = sessions[sid].submit(
                                    arrays[sid]
                                )
                            except Exception as exc:
                                if on_error == "raise":
                                    raise
                                self._quarantine(sid, "round", exc)
                                continue
                            self._invalidate(sid)
                            self.stats.solo_rounds += 1
            for sid in members:
                if sid in decisions:
                    self._touch(sid)
        survivors = {sid for sid in order if sid in decisions}
        self._enforce_residency(protect=survivors)
        return {sid: decisions[sid] for sid in order if sid in decisions}

    def _quarantine(
        self, session_id: str, kind: str, exc: BaseException
    ) -> None:
        """Pull a broken tenant out of service, leaving the rest intact.

        The tenant's live/evicted registration is dropped so later calls
        do not trip over it again; a *persisted* snapshot blob stays in
        the store untouched — it is the forensic artifact (and a fixed
        deployment can :meth:`adopt` it back).
        """
        self._sessions.pop(session_id, None)
        self._evicted.pop(session_id, None)
        self._specs.pop(session_id, None)
        self._group_of.pop(session_id, None)
        self._touched.pop(session_id, None)
        self._invalidate(session_id)
        self._quarantined[session_id] = TenantFailure(
            session_id=session_id,
            kind=kind,
            error=f"{type(exc).__name__}: {exc}",
        )
        self.stats.quarantined += 1

    def _submit_lockstep(
        self,
        members: List[str],
        sessions: Dict[str, GameSession],
        benign: np.ndarray,
    ) -> List[LaneRoundDecision]:
        """One fused round across same-family, same-round tenants.

        The cohort's compiled lane programs come from
        :meth:`_cohort_lockstep` — reused from the cohort cache when the
        membership, session identities and round position are unchanged
        since the cohort's last lockstep round, rebuilt from the
        tenants' live instances otherwise.

        The round itself is *deferred*: the batched decision is appended
        to the cohort's :class:`ColumnarBoard` sink as one ``(L,)``
        row-batch and the tenants receive lazy
        :class:`LaneRoundDecision` views — no per-lane board entries,
        no per-round ``sync_lanes()``.  Diverged lane state is written
        back wholesale when the sink flushes (membership change, solo
        round, eviction, handle exposure, ``result()``), keeping every
        tenant byte-identical to solo play.
        """
        lane_sessions = [sessions[sid] for sid in members]
        lockstep, sink = self._cohort_lockstep(members, lane_sessions)
        t0 = time.perf_counter()
        decision = lockstep.submit(benign)
        t1 = time.perf_counter()
        sink.record_decision(decision)
        views = [
            LaneRoundDecision(decision, rep, session)
            for rep, session in enumerate(lane_sessions)
        ]
        t2 = time.perf_counter()
        self.stats.kernel_seconds += t1 - t0
        self.stats.absorb_seconds += t2 - t1
        return views

    def _cohort_lockstep(
        self, members: List[str], lane_sessions: List[GameSession]
    ) -> Tuple[BatchedGameSession, ColumnarBoard]:
        """The cohort's lockstep session: cached, else built and cached.

        A cached cohort is valid only when every member's epoch is
        unchanged (no solo round, eviction, restore or handle exposure
        since the build), the live session objects are identical, the
        compiled program sits at exactly the cohort's round, *and* the
        cohort's deferred sink has not been flushed (a flush means some
        member's authoritative state was read out-of-band) — the
        silent-divergence bug class that made the pre-fusion service
        rebuild lanes every round is ruled out by construction.
        """
        key = tuple(members)
        lead = lane_sessions[0]
        entry = self._cohort_cache.get(key)
        if entry is not None:
            lockstep = entry["lockstep"]
            if (
                all(
                    entry["epochs"][sid] == self._epochs.get(sid, 0)
                    for sid in members
                )
                and all(
                    cached is live
                    for cached, live in zip(
                        entry["sessions"], lane_sessions
                    , strict=False)
                )
                and lockstep.round_index == lead.round_index
                and not entry["sink"].flushed
            ):
                self._cohort_cache.move_to_end(key)
                self.stats.lane_cache_hits += 1
                return lockstep, entry["sink"]
            del self._cohort_cache[key]
        t0 = time.perf_counter()
        lockstep, sink = self._build_lockstep(lane_sessions)
        self.stats.lane_build_seconds += time.perf_counter() - t0
        self.stats.lane_builds += 1
        if self.cohort_cache_size > 0:
            self._cohort_cache[key] = {
                "lockstep": lockstep,
                "sink": sink,
                "sessions": list(lane_sessions),
                "epochs": {
                    sid: self._epochs.get(sid, 0) for sid in members
                },
            }
            while len(self._cohort_cache) > self.cohort_cache_size:
                self._cohort_cache.popitem(last=False)
        return lockstep, sink

    def _build_lockstep(
        self, sessions: List[GameSession]
    ) -> Tuple[BatchedGameSession, ColumnarBoard]:
        """Compile one fused round program from the tenants' live state.

        Strategy lanes fuse by family (heterogeneous specs pack into
        per-lane parameter columns), trimmers compile into a
        :class:`~repro.core.fusion.TrimLanes` program, and injectors
        into an :class:`~repro.core.fusion.InjectorLanes` program —
        every lane still drawing from its own components' Generators,
        byte-identically to its solo session.

        Any deferred rounds a member still carries from a previous
        cohort are flushed first (the build reads live strategy state
        and round positions), then every member is attached to a fresh
        :class:`ColumnarBoard` sink that collects this cohort's rounds
        until the next flush.
        """
        for session in sessions:
            session._flush_deferred()
        lead = sessions[0]
        trim_lanes = TrimLanes([session.trimmer for session in sessions])
        last = None
        if lead.last_observation is not None:
            last = stack_observations(
                [session.last_observation for session in sessions]
            )
        lockstep = BatchedGameSession(
            collector_lanes=fused_collector_lanes(
                [session.collector for session in sessions]
            ),
            adversary_lanes=fused_adversary_lanes(
                [session.adversary for session in sessions]
            ),
            injector=InjectorLanes(
                [session.injector for session in sessions]
            ),
            trim_lanes=trim_lanes,
            quality_lanes=_QualityLanes(
                [session.quality_evaluator for session in sessions],
                trim_lanes,
            ),
            judge_lanes=_JudgeLanes(
                [session.judge for session in sessions]
            ),
            horizon=None,
            store_retained=lead.store_retained,
            board=None,
            start_index=lead.round_index,
            last=last,
        )
        sink = ColumnarBoard(
            len(sessions),
            store_retained=lead.store_retained,
            start_index=lead.round_index,
            sync=lockstep.sync_lanes,
        )
        for lane, session in enumerate(sessions):
            session._attach_sink(sink, lane)
        return lockstep, sink

    # ------------------------------------------------------------------ #
    # close / evict / restore
    # ------------------------------------------------------------------ #
    def close(self, session_id: str) -> "GameResult":
        """Seal a tenant and return its final ``GameResult``.

        Any persisted snapshot blob of the tenant is removed from the
        store — a closed session id leaves nothing behind that a later
        tenant reusing the id could accidentally resurrect.
        """
        session = self._resident(session_id)
        result = session.close()
        del self._sessions[session_id]
        del self._specs[session_id]
        del self._group_of[session_id]
        self._touched.pop(session_id, None)
        self._invalidate(session_id)
        if self._store is not None:
            self._store.record_path(self._session_key(session_id)).unlink(
                missing_ok=True
            )
        self.stats.closed += 1
        return result

    def _session_key(self, session_id: str) -> str:
        """Store key of a session snapshot (namespace + id, hex form)."""
        return hashlib.sha256(
            f"repro-defense-session:{self.namespace}:{session_id}".encode(
                "utf-8"
            )
        ).hexdigest()

    def evict(self, session_id: str) -> None:
        """Park a tenant as a snapshot, freeing its live state.

        With a result store attached, the snapshot blob persists on
        disk (surviving the process); otherwise it is kept in memory.
        The next ``submit`` touching the session restores it
        transparently.
        """
        session = self._sessions.pop(session_id, None)
        if session is None:
            if session_id in self._evicted:
                return  # already parked
            raise KeyError(f"unknown session id {session_id!r}")
        blob = session.snapshot()
        # The snapshot is now the authoritative copy; a caller-held
        # handle to the popped object must die loudly, not silently
        # diverge from its restored twin.
        session._supersede()
        if self._store is not None:
            self._store.save(
                self._session_key(session_id),
                {
                    "session_id": session_id,
                    "spec_key": self._store.key(self._specs[session_id]),
                    "blob": blob,
                },
            )
            self._evicted[session_id] = None
        else:
            self._evicted[session_id] = blob
        self._touched.pop(session_id, None)
        self._invalidate(session_id)
        self.stats.evictions += 1

    def adopt(self, spec: GameSpec, session_id: str) -> None:
        """Re-attach a store-persisted tenant to this service.

        The public half of the cross-process persistence story: a
        service that evicted a tenant to the store may have exited;
        a fresh service (same store, same ``namespace``) adopts the
        tenant by re-registering its recipe under its session id.  The
        persisted snapshot is validated to belong to exactly this
        (namespace, session id, spec) before it is accepted; the next
        ``submit`` restores it like any evicted tenant.
        """
        if self._store is None:
            raise RuntimeError("adopt() needs a result store")
        if session_id in self._sessions or session_id in self._evicted:
            raise ValueError(f"session id {session_id!r} already exists")
        missing = object()
        record = self._store.load(self._session_key(session_id), missing)
        if record is missing:
            raise KeyError(
                f"no persisted snapshot of session {session_id!r} in "
                f"namespace {self.namespace!r} under {self._store.root}"
            )
        self._validate_snapshot_record(record, session_id, spec)
        self._quarantined.pop(session_id, None)
        self._specs[session_id] = spec
        self._group_of[session_id] = self._group_index(spec)
        self._evicted[session_id] = None
        self._invalidate(session_id)

    def _validate_snapshot_record(
        self, record: Any, session_id: str, spec: GameSpec
    ) -> bytes:
        """Check a persisted snapshot belongs to (session_id, spec)."""
        if (
            not isinstance(record, dict)
            or not isinstance(record.get("blob"), bytes)
        ):
            raise SnapshotError(
                f"stored record for session {session_id!r} is not a "
                "service snapshot"
            )
        if record.get("session_id") != session_id or record.get(
            "spec_key"
        ) != self._store.key(spec):
            raise SnapshotError(
                f"stored snapshot under session id {session_id!r} belongs "
                "to a different tenant or spec — use distinct session ids "
                "or service namespaces when sharing a store"
            )
        return record["blob"]

    def _restore(self, session_id: str) -> GameSession:
        # The session stays parked until the restore fully succeeds, so
        # a failed restore (missing/foreign blob) is retryable.
        blob = self._evicted[session_id]
        if blob is None:
            missing = object()
            record = self._store.load(self._session_key(session_id), missing)
            if record is missing:
                raise KeyError(
                    f"snapshot of evicted session {session_id!r} is missing "
                    f"from the store under {self._store.root}"
                )
            blob = self._validate_snapshot_record(
                record, session_id, self._specs[session_id]
            )
        session = GameSession.restore(blob)
        del self._evicted[session_id]
        self._sessions[session_id] = session
        self._invalidate(session_id)
        self._touch(session_id)
        self.stats.restores += 1
        return session

    def _enforce_residency(self, protect: AbstractSet[str] = frozenset()) -> None:
        """Evict least-recently-used sessions above ``max_resident``."""
        if self.max_resident is None:
            return
        while len(self._sessions) > self.max_resident:
            candidates = [
                sid for sid in self._sessions if sid not in protect
            ]
            if not candidates:
                return
            victim = min(
                candidates, key=lambda sid: self._touched.get(sid, 0)
            )
            self.evict(victim)
