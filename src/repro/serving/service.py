"""The multi-tenant defense multiplexer.

A deployment serves *many* concurrent collection games — one per tenant
feed — and most of them run the same defense configuration.  Playing
each round tenant-by-tenant wastes exactly the Python-loop overhead the
rep-batched engine already eliminated for Monte-Carlo repetitions, so
:class:`DefenseService` reuses that machinery across *live sessions*:

* tenants are opened from :class:`~repro.runtime.spec.GameSpec` recipes
  and grouped by :func:`~repro.runtime.spec.rep_group_key` — the "same
  cell up to seed and tags" relation that already defines lockstep
  compatibility;
* :meth:`DefenseService.submit_many` steps every same-group,
  same-round cohort through one
  :class:`~repro.core.session.BatchedGameSession` round — strategy
  lanes built *from the tenants' live instances* (they seed from
  current state, see :mod:`repro.core.strategies.batched`), trims,
  quality scores and judge verdicts computed on ``(R, n)`` stacks —
  and distributes the per-lane decisions back onto each tenant's own
  board.  Tenants that cannot join a cohort (odd round position, odd
  batch shape, singleton group) fall back to their solo
  :meth:`~repro.core.session.GameSession.submit`, byte-identically;
* idle tenants are evicted to snapshots — in memory, or persisted in a
  :class:`~repro.runtime.store.ResultStore` — and transparently
  restored on their next submit, so resident memory is bounded by
  ``max_resident`` rather than by the tenant count.

The byte-identity contract of the lockstep path (every multiplexed
round equals the tenant's solo round, bit for bit) is asserted by the
test suite and re-asserted on every run of
``benchmarks/bench_service.py``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    AbstractSet,
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Union,
)

import numpy as np

from ..core.engine import _JudgeLanes, _QualityLanes
from ..core.session import (
    BatchedGameSession,
    GameSession,
    RoundDecision,
    SnapshotError,
    stack_observations,
)
from ..core.strategies.batched import adversary_lanes, collector_lanes
from ..core.trimming import RadialTrimmer, ValueTrimmer
from ..runtime.spec import GameSpec, rep_group_key, rep_keys_equal
from ..streams.injection import BatchedInjector

if TYPE_CHECKING:  # annotation-only imports
    from ..core.engine import GameResult
    from ..runtime.store import ResultStore

__all__ = ["DefenseService", "ServiceStats", "TenantFailure"]


@dataclass
class ServiceStats:
    """Running operation counters of one :class:`DefenseService`."""

    opened: int = 0
    closed: int = 0
    solo_rounds: int = 0
    lockstep_rounds: int = 0
    lockstep_lanes: int = 0
    evictions: int = 0
    restores: int = 0
    quarantined: int = 0


@dataclass(frozen=True)
class TenantFailure:
    """Why one tenant was quarantined out of a :meth:`submit_many` call.

    ``kind`` classifies the failure stage: ``"snapshot"`` (the tenant's
    persisted snapshot would not restore — :class:`SnapshotError`),
    ``"lifecycle"`` (closed / superseded / missing source / unknown id)
    or ``"round"`` (its solo round raised).  ``error`` is the rendered
    exception.
    """

    session_id: str
    kind: str
    error: str


class DefenseService:
    """Holds and multiplexes many concurrent defense sessions.

    Parameters
    ----------
    store:
        Optional :class:`~repro.runtime.store.ResultStore`; evicted
        sessions persist their snapshots there (surviving the process —
        a later service re-attaches them with :meth:`adopt`), otherwise
        snapshots are kept in memory.
    namespace:
        Key prefix isolating this service's snapshots inside a shared
        store.  Two services sharing one store must use distinct
        namespaces (or distinct session ids); a restore additionally
        verifies that the stored snapshot belongs to this session id
        and spec, so a collision fails loudly instead of silently
        resuming another tenant's game.
    max_resident:
        Soft cap on live (non-evicted) sessions.  When an ``open`` or
        restore pushes the resident count above it, the least recently
        used idle sessions are evicted automatically.
    min_multiplex:
        Smallest cohort :meth:`submit_many` plays in lockstep; smaller
        cohorts use the solo path (default 2).
    """

    def __init__(
        self,
        store: Optional["ResultStore"] = None,
        namespace: str = "default",
        max_resident: Optional[int] = None,
        min_multiplex: int = 2,
    ):
        if max_resident is not None and max_resident < 1:
            raise ValueError("max_resident must be >= 1 (or None)")
        if min_multiplex < 2:
            raise ValueError("min_multiplex must be >= 2")
        self._store = store
        self.namespace = str(namespace)
        self.max_resident = max_resident
        self.min_multiplex = int(min_multiplex)
        self._sessions: Dict[str, GameSession] = {}
        self._specs: Dict[str, GameSpec] = {}
        self._group_of: Dict[str, int] = {}
        self._group_keys: List[tuple] = []
        #: Evicted session ids -> in-memory snapshot blob (None when the
        #: blob lives in the result store instead).
        self._evicted: Dict[str, Optional[bytes]] = {}
        #: Tenants pulled out of service by a quarantining submit_many.
        self._quarantined: Dict[str, TenantFailure] = {}
        self._clock = 0
        self._touched: Dict[str, int] = {}
        self._next_id = 0
        self.stats = ServiceStats()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def open(
        self,
        spec: GameSpec,
        session_id: Optional[str] = None,
        horizon: Union[int, str, None] = "spec",
        payoff_model: Any = None,
    ) -> str:
        """Open a new tenant session from a declarative game recipe.

        Returns the session id (generated ``session-N`` when not
        given).  ``horizon`` defaults to the spec's ``rounds``; pass
        ``None`` for an open-ended tenant.  The spec's stream is
        attached, so ``submit`` calls without a batch serve the spec's
        own traffic.
        """
        if session_id is None:
            # Skip over ids the caller already claimed explicitly.
            while (
                f"session-{self._next_id}" in self._sessions
                or f"session-{self._next_id}" in self._evicted
            ):
                self._next_id += 1
            session_id = f"session-{self._next_id}"
            self._next_id += 1
        if session_id in self._sessions or session_id in self._evicted:
            raise ValueError(f"session id {session_id!r} already exists")
        session = spec.session(
            horizon=spec.rounds if horizon == "spec" else horizon,
            payoff_model=payoff_model,
        )
        # Reusing a quarantined tenant's id replaces it; the stale
        # failure record must not shadow the healthy newcomer.
        self._quarantined.pop(session_id, None)
        self._sessions[session_id] = session
        self._specs[session_id] = spec
        self._group_of[session_id] = self._group_index(spec)
        self._touch(session_id)
        self.stats.opened += 1
        self._enforce_residency(protect={session_id})
        return session_id

    def _group_index(self, spec: GameSpec) -> int:
        key = rep_group_key(spec)
        for index, existing in enumerate(self._group_keys):
            if rep_keys_equal(existing, key):
                return index
        self._group_keys.append(key)
        return len(self._group_keys) - 1

    def _touch(self, session_id: str) -> None:
        self._clock += 1
        self._touched[session_id] = self._clock

    def session_ids(self) -> List[str]:
        """All known session ids (resident and evicted), oldest first."""
        return list(self._specs)

    def __len__(self) -> int:
        return len(self._specs)

    @property
    def resident_ids(self) -> List[str]:
        """Ids of sessions currently held live in memory."""
        return list(self._sessions)

    @property
    def evicted_ids(self) -> List[str]:
        """Ids of sessions currently parked as snapshots."""
        return list(self._evicted)

    @property
    def quarantined_ids(self) -> List[str]:
        """Ids of tenants quarantined by failing ``submit_many`` rounds."""
        return list(self._quarantined)

    def quarantine_reason(self, session_id: str) -> TenantFailure:
        """The :class:`TenantFailure` that quarantined one tenant."""
        return self._quarantined[session_id]

    def session(self, session_id: str) -> GameSession:
        """The live :class:`GameSession` (restoring it if evicted)."""
        return self._resident(session_id)

    def _resident(self, session_id: str) -> GameSession:
        session = self._sessions.get(session_id)
        if session is not None:
            return session
        if session_id in self._evicted:
            return self._restore(session_id)
        raise KeyError(f"unknown session id {session_id!r}")

    # ------------------------------------------------------------------ #
    # submit
    # ------------------------------------------------------------------ #
    def submit(
        self,
        session_id: str,
        batch: Optional[Any] = None,
        poison_mask: Optional[Any] = None,
    ) -> RoundDecision:
        """Play one round of one tenant (the solo routing path)."""
        session = self._resident(session_id)
        decision = session.submit(batch, poison_mask=poison_mask)
        self._touch(session_id)
        self.stats.solo_rounds += 1
        self._enforce_residency(protect={session_id})
        return decision

    def submit_many(
        self,
        batches: Union[Mapping[str, object], Sequence[str]],
        on_error: str = "raise",
    ) -> Dict[str, RoundDecision]:
        """Play one round for many tenants, multiplexing where possible.

        ``batches`` maps session ids to their round batches (``None``
        pulls from the tenant's attached source), or is a plain
        sequence of ids (all pulled from their sources).  Tenants that
        share a configuration group, sit at the same round and receive
        same-shaped batches step through one vectorized lockstep round;
        everyone else is routed solo.  Either way each tenant's
        decision, board and strategy state are byte-identical to solo
        play.

        ``on_error="raise"`` (default): a tenant failing pre-flight —
        unknown id, closed session, missing source, a snapshot that
        will not restore (:class:`SnapshotError`) — fails the whole
        call with no state advanced anywhere.  ``"quarantine"``: the
        failing tenant is pulled out of service (recorded on
        :attr:`quarantined_ids` with a :class:`TenantFailure`, its
        persisted snapshot blob left in the store for forensics) and
        the rest of the cohort plays on, byte-identically to a call
        that never named the broken tenant; quarantined tenants are
        absent from the returned mapping.  Solo rounds that raise are
        quarantined too; an error *inside* a lockstep kernel still
        propagates — mid-round failures cannot be attributed to a
        single lane.
        """
        if on_error not in ("raise", "quarantine"):
            raise ValueError("on_error must be 'raise' or 'quarantine'")
        if not isinstance(batches, Mapping):
            ids = list(batches)
            if len(set(ids)) != len(ids):
                raise ValueError(
                    "duplicate session ids in one submit_many call"
                )
            batches = {session_id: None for session_id in ids}
        order = list(batches)

        # Pre-flight *before* any stream or strategy advances: restore
        # evicted members, check lifecycles, check batch availability.
        # Under on_error="raise" a tenant failing these checks fails the
        # whole call with no state advanced anywhere; under
        # "quarantine" it is isolated here, before it can touch the
        # cohort.  (A kernel error *during* a lockstep round — e.g. a
        # malformed batch a trimmer rejects — still aborts the call
        # mid-way: cohorts that already played keep their rounds.)
        sessions: Dict[str, GameSession] = {}
        for sid in order:
            if sid in self._quarantined and on_error == "quarantine":
                # Already pulled out of service; callers that keep
                # naming it just don't get a decision for it — the
                # original TenantFailure stays authoritative.
                continue
            try:
                session = self._resident(sid)
                session._check_submittable()
                if batches[sid] is None and session.source is None:
                    raise ValueError(
                        f"session {sid!r} has no attached source; "
                        "pass its batch explicitly"
                    )
            except (SnapshotError, KeyError, ValueError, RuntimeError) as exc:
                if on_error == "raise":
                    raise
                kind = "snapshot" if isinstance(exc, SnapshotError) else (
                    "lifecycle"
                )
                self._quarantine(sid, kind, exc)
                continue
            sessions[sid] = session
        order = [sid for sid in order if sid in sessions]

        cohorts: Dict[tuple, List[str]] = {}
        for sid in order:
            cohorts.setdefault(
                (self._group_of[sid], sessions[sid].round_index), []
            ).append(sid)

        decisions: Dict[str, RoundDecision] = {}
        for members in cohorts.values():
            arrays = []
            for sid in members:
                batch = batches[sid]
                if batch is None:
                    batch = sessions[sid].source.next_batch()
                arrays.append(np.asarray(batch, dtype=float))
            if (
                len(members) >= self.min_multiplex
                and len({a.shape for a in arrays}) == 1
            ):
                lane_sessions = [sessions[sid] for sid in members]
                for sid, decision in zip(
                    members,
                    self._submit_lockstep(lane_sessions, np.stack(arrays)),
                ):
                    decisions[sid] = decision
                self.stats.lockstep_rounds += 1
                self.stats.lockstep_lanes += len(members)
            else:
                for sid, batch in zip(members, arrays):
                    try:
                        decisions[sid] = sessions[sid].submit(batch)
                    except Exception as exc:
                        if on_error == "raise":
                            raise
                        self._quarantine(sid, "round", exc)
                        continue
                    self.stats.solo_rounds += 1
            for sid in members:
                if sid in decisions:
                    self._touch(sid)
        survivors = {sid for sid in order if sid in decisions}
        self._enforce_residency(protect=survivors)
        return {sid: decisions[sid] for sid in order if sid in decisions}

    def _quarantine(
        self, session_id: str, kind: str, exc: BaseException
    ) -> None:
        """Pull a broken tenant out of service, leaving the rest intact.

        The tenant's live/evicted registration is dropped so later calls
        do not trip over it again; a *persisted* snapshot blob stays in
        the store untouched — it is the forensic artifact (and a fixed
        deployment can :meth:`adopt` it back).
        """
        self._sessions.pop(session_id, None)
        self._evicted.pop(session_id, None)
        self._specs.pop(session_id, None)
        self._group_of.pop(session_id, None)
        self._touched.pop(session_id, None)
        self._quarantined[session_id] = TenantFailure(
            session_id=session_id,
            kind=kind,
            error=f"{type(exc).__name__}: {exc}",
        )
        self.stats.quarantined += 1

    def _submit_lockstep(
        self, sessions: List[GameSession], benign: np.ndarray
    ) -> List[RoundDecision]:
        """One vectorized round across same-group, same-round tenants.

        Lanes are rebuilt from the tenants' live instances each round —
        they seed from current state by construction — and
        ``sync_lanes()`` writes diverged state straight back, so the
        per-tenant instances stay authoritative between calls no matter
        how tenants mix lockstep and solo rounds.  The rebuild is a
        deliberate trade-off: caching lanes per cohort would shave the
        per-round dispatch/validation cost but needs invalidation on
        every solo submit, eviction and membership change — the exact
        silent-divergence bug class the rebuild rules out; the bench
        gate passes with margin as is.
        """
        lead = sessions[0]
        trimmers = [session.trimmer for session in sessions]
        shared_trimmer = type(trimmers[0]) in (ValueTrimmer, RadialTrimmer)
        last = None
        if lead.last_observation is not None:
            last = stack_observations(
                [session.last_observation for session in sessions]
            )
        lockstep = BatchedGameSession(
            collector_lanes=collector_lanes(
                [session.collector for session in sessions]
            ),
            adversary_lanes=adversary_lanes(
                [session.adversary for session in sessions]
            ),
            injector=BatchedInjector(
                [session.injector for session in sessions]
            ),
            trimmer=trimmers[0],
            per_rep_trimmers=None if shared_trimmer else trimmers,
            quality_lanes=_QualityLanes(
                [session.quality_evaluator for session in sessions],
                trimmers[0],
            ),
            judge_lanes=_JudgeLanes(
                [session.judge for session in sessions]
            ),
            horizon=None,
            store_retained=lead.store_retained,
            board=None,
            start_index=lead.round_index,
            last=last,
        )
        decision = lockstep.submit(benign)
        lockstep.sync_lanes()
        return [
            session.absorb_round(decision, rep)
            for rep, session in enumerate(sessions)
        ]

    # ------------------------------------------------------------------ #
    # close / evict / restore
    # ------------------------------------------------------------------ #
    def close(self, session_id: str) -> "GameResult":
        """Seal a tenant and return its final ``GameResult``.

        Any persisted snapshot blob of the tenant is removed from the
        store — a closed session id leaves nothing behind that a later
        tenant reusing the id could accidentally resurrect.
        """
        session = self._resident(session_id)
        result = session.close()
        del self._sessions[session_id]
        del self._specs[session_id]
        del self._group_of[session_id]
        self._touched.pop(session_id, None)
        if self._store is not None:
            self._store.record_path(self._session_key(session_id)).unlink(
                missing_ok=True
            )
        self.stats.closed += 1
        return result

    def _session_key(self, session_id: str) -> str:
        """Store key of a session snapshot (namespace + id, hex form)."""
        return hashlib.sha256(
            f"repro-defense-session:{self.namespace}:{session_id}".encode(
                "utf-8"
            )
        ).hexdigest()

    def evict(self, session_id: str) -> None:
        """Park a tenant as a snapshot, freeing its live state.

        With a result store attached, the snapshot blob persists on
        disk (surviving the process); otherwise it is kept in memory.
        The next ``submit`` touching the session restores it
        transparently.
        """
        session = self._sessions.pop(session_id, None)
        if session is None:
            if session_id in self._evicted:
                return  # already parked
            raise KeyError(f"unknown session id {session_id!r}")
        blob = session.snapshot()
        # The snapshot is now the authoritative copy; a caller-held
        # handle to the popped object must die loudly, not silently
        # diverge from its restored twin.
        session._supersede()
        if self._store is not None:
            self._store.save(
                self._session_key(session_id),
                {
                    "session_id": session_id,
                    "spec_key": self._store.key(self._specs[session_id]),
                    "blob": blob,
                },
            )
            self._evicted[session_id] = None
        else:
            self._evicted[session_id] = blob
        self._touched.pop(session_id, None)
        self.stats.evictions += 1

    def adopt(self, spec: GameSpec, session_id: str) -> None:
        """Re-attach a store-persisted tenant to this service.

        The public half of the cross-process persistence story: a
        service that evicted a tenant to the store may have exited;
        a fresh service (same store, same ``namespace``) adopts the
        tenant by re-registering its recipe under its session id.  The
        persisted snapshot is validated to belong to exactly this
        (namespace, session id, spec) before it is accepted; the next
        ``submit`` restores it like any evicted tenant.
        """
        if self._store is None:
            raise RuntimeError("adopt() needs a result store")
        if session_id in self._sessions or session_id in self._evicted:
            raise ValueError(f"session id {session_id!r} already exists")
        missing = object()
        record = self._store.load(self._session_key(session_id), missing)
        if record is missing:
            raise KeyError(
                f"no persisted snapshot of session {session_id!r} in "
                f"namespace {self.namespace!r} under {self._store.root}"
            )
        self._validate_snapshot_record(record, session_id, spec)
        self._quarantined.pop(session_id, None)
        self._specs[session_id] = spec
        self._group_of[session_id] = self._group_index(spec)
        self._evicted[session_id] = None

    def _validate_snapshot_record(
        self, record: Any, session_id: str, spec: GameSpec
    ) -> bytes:
        """Check a persisted snapshot belongs to (session_id, spec)."""
        if (
            not isinstance(record, dict)
            or not isinstance(record.get("blob"), bytes)
        ):
            raise SnapshotError(
                f"stored record for session {session_id!r} is not a "
                "service snapshot"
            )
        if record.get("session_id") != session_id or record.get(
            "spec_key"
        ) != self._store.key(spec):
            raise SnapshotError(
                f"stored snapshot under session id {session_id!r} belongs "
                "to a different tenant or spec — use distinct session ids "
                "or service namespaces when sharing a store"
            )
        return record["blob"]

    def _restore(self, session_id: str) -> GameSession:
        # The session stays parked until the restore fully succeeds, so
        # a failed restore (missing/foreign blob) is retryable.
        blob = self._evicted[session_id]
        if blob is None:
            missing = object()
            record = self._store.load(self._session_key(session_id), missing)
            if record is missing:
                raise KeyError(
                    f"snapshot of evicted session {session_id!r} is missing "
                    f"from the store under {self._store.root}"
                )
            blob = self._validate_snapshot_record(
                record, session_id, self._specs[session_id]
            )
        session = GameSession.restore(blob)
        del self._evicted[session_id]
        self._sessions[session_id] = session
        self._touch(session_id)
        self.stats.restores += 1
        return session

    def _enforce_residency(self, protect: AbstractSet[str] = frozenset()) -> None:
        """Evict least-recently-used sessions above ``max_resident``."""
        if self.max_resident is None:
            return
        while len(self._sessions) > self.max_resident:
            candidates = [
                sid for sid in self._sessions if sid not in protect
            ]
            if not candidates:
                return
            victim = min(
                candidates, key=lambda sid: self._touched.get(sid, 0)
            )
            self.evict(victim)
