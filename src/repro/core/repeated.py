"""Repeated-game analysis with non-deterministic utility (Section V).

When the collection system's utility is probabilistic (e.g. under LDP
noise), a rigid Tit-for-tat trigger can terminate cooperation on benign
jitter.  The collector therefore concedes a *compromise* ``δ`` of roundwise
data utility, expecting ``g0 = g_ac - δ`` instead of the full cooperative
gain ``g_ac``.  Theorem 3 characterizes when a rational adversary still
complies:

    comply  ⇔  δ < (d - d·p) / (1 - d·p) · g_ac

where ``d`` is the common discount rate of future data utility and ``p``
the probability that a defecting adversary is *not* flagged (the judge
errs toward compliance) due to the noise.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RepeatedGameModel"]


@dataclass(frozen=True)
class RepeatedGameModel:
    """Discounted repeated trimming game with noisy compliance judgement.

    Parameters
    ----------
    adversary_gain:
        ``g_a`` — the adversary's roundwise gain from cooperation (payoff
        of compliance minus betrayal).
    collector_gain:
        ``g_c`` — the collector's roundwise cooperation gain.
    discount:
        ``d`` — the roundwise discount rate of data utility acknowledged by
        both parties, in (0, 1).
    """

    adversary_gain: float
    collector_gain: float
    discount: float

    def __post_init__(self) -> None:
        if not 0.0 < self.discount < 1.0:
            raise ValueError("discount must lie strictly in (0, 1)")
        if self.adversary_gain < 0.0 or self.collector_gain < 0.0:
            raise ValueError("cooperation gains must be non-negative")

    # ------------------------------------------------------------------ #
    # the symmetric cooperative gain and compromise
    # ------------------------------------------------------------------ #
    @property
    def symmetric_gain(self) -> float:
        """``g_ac = (g_a + g_c) / 2`` — the symmetry axiom of Section V."""
        return 0.5 * (self.adversary_gain + self.collector_gain)

    def expected_gain(self, delta: float) -> float:
        """``g0 = g_ac - δ``: the collector's compromised roundwise target."""
        if delta < 0.0:
            raise ValueError("the compromise delta must be non-negative")
        return self.symmetric_gain - delta

    # ------------------------------------------------------------------ #
    # Eq. 10 / Eq. 11: discounted values of compliance and defection
    # ------------------------------------------------------------------ #
    def compliance_value(self, delta: float) -> float:
        """``g_com = g0 / (1 - d)`` — Eq. 10.

        The total discounted gain of an adversary who complies forever:
        compliance is observed deterministically (utility below ``g0`` has
        negligible probability when both parties cooperate), so the stream
        of ``g0`` gains recurs with discount ``d``.
        """
        return self.expected_gain(delta) / (1.0 - self.discount)

    def defection_value(self, flag_miss_probability: float) -> float:
        """``g_def = g_ac / (1 - d·p)`` — Eq. 11.

        A defector grabs the full ``g_ac`` each round but is flagged as
        defecting with probability ``1 - p`` (after which cooperation — and
        his gain stream — ends), so the continuation recurs with ``d·p``.
        """
        p = float(flag_miss_probability)
        if not 0.0 <= p <= 1.0:
            raise ValueError("flag_miss_probability must be a probability")
        return self.symmetric_gain / (1.0 - self.discount * p)

    # ------------------------------------------------------------------ #
    # Theorem 3
    # ------------------------------------------------------------------ #
    def max_compromise(self, flag_miss_probability: float) -> float:
        """The Theorem 3 bound ``δ_max = (d - d·p) / (1 - d·p) · g_ac``.

        Any ``δ`` strictly below this keeps compliance optimal; as
        ``p → 1`` (defection never flagged) the bound collapses to zero —
        no concession sustains cooperation — and as ``p → 0`` it rises to
        ``d·g_ac``.
        """
        p = float(flag_miss_probability)
        if not 0.0 <= p <= 1.0:
            raise ValueError("flag_miss_probability must be a probability")
        d = self.discount
        return (d - d * p) / (1.0 - d * p) * self.symmetric_gain

    def adversary_complies(self, delta: float, flag_miss_probability: float) -> bool:
        """Theorem 3: does a rational adversary comply under compromise δ?

        Equivalent to ``compliance_value(δ) > defection_value(p)``.
        """
        return delta < self.max_compromise(flag_miss_probability)

    # ------------------------------------------------------------------ #
    # threshold selection
    # ------------------------------------------------------------------ #
    def threshold_from_delta(
        self, delta: float, soft_threshold: float, hard_threshold: float
    ) -> float:
        """Map a utility compromise δ onto a Tit-for-tat trimming threshold.

        The compromise is spent as trimming slack: δ = 0 keeps the soft
        (lenient) threshold, δ = δ_max(p=0) = d·g_ac moves all the way to
        the hard threshold, and intermediate values interpolate linearly.
        This is the "given T̄, T̲, P̄, P̲, p, d one can ascertain T_th by
        selecting a δ according to their preference" recipe of Section V-A.
        """
        if delta < 0.0:
            raise ValueError("delta must be non-negative")
        if not 0.0 <= hard_threshold <= 1.0 or not 0.0 <= soft_threshold <= 1.0:
            raise ValueError("thresholds are percentile coordinates in [0, 1]")
        full_scale = self.discount * self.symmetric_gain
        if full_scale <= 0.0:
            return soft_threshold
        frac = min(1.0, delta / full_scale)
        return soft_threshold + frac * (hard_threshold - soft_threshold)
