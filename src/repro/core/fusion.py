"""Cross-cell lane fusion: family planner + compiled round programs.

The batched engine and the :class:`~repro.serving.service.DefenseService`
originally multiplexed only lanes with *identical* spec configuration
(same ``rep_group_key``) — heterogeneous grids, the common case in every
paper sweep, degraded to the solo per-round loop.  This module closes
that gap in three pieces:

* **Fusion planner** — :func:`fused_collector_lanes` /
  :func:`fused_adversary_lanes` group live strategy instances by lane
  *family* (the registered lane class, refined by its ``group_key``)
  and build one vector lane program per family, packing heterogeneous
  per-lane parameters into ``(L,)`` columns.  Unregistered or declined
  instances land on the per-rep fallback loop for *their sub-group
  only*; everything else stays vectorized.  The composite lane scatters
  each round's observation columns to the family programs and gathers
  their percentile outputs — O(#families) Python calls per round
  instead of O(L).
* **Compiled trim program** — :class:`TrimLanes` resolves the
  per-lane trimmer dispatch (shared instance / exact-class stack /
  custom loop) once at build time; per round it runs one vector score
  sweep plus per-lane scalar cutoffs, byte-identical to L solo
  :meth:`~repro.core.trimming.Trimmer.trim` calls.
* **Compiled poison program** — :class:`InjectorLanes` packs attack
  ratios into a column, partitions lanes by shared reference content
  once at build time, and materializes each reference group's poison
  in a single vectorized quantile pass, with per-lane jitter draws
  still taken from each lane's own Generator.

Byte-identity contract (unchanged from the rep-batched engine): every
fused lane's outputs equal, bit for bit, what its solo
:class:`~repro.core.session.GameSession` would have produced.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..streams.injection import LanePositionServer
from .arrays import Array
from .domain import QuantileTable, empirical_quantile
from .strategies.base import RoundObservationBatch
from .strategies.batched import (
    _ADVERSARY_LANES,
    _COLLECTOR_LANES,
    AdversaryLanes,
    CollectorLanes,
    FallbackAdversaryLanes,
    FallbackCollectorLanes,
)
from .trimming import BatchTrimReport, RadialTrimmer, Trimmer, ValueTrimmer

__all__ = [
    "FusedCollectorLanes",
    "FusedAdversaryLanes",
    "fused_collector_lanes",
    "fused_adversary_lanes",
    "TrimLanes",
    "InjectorLanes",
]


# --------------------------------------------------------------------- #
# fusion planner: group lanes by family, build one program per group
# --------------------------------------------------------------------- #
def _plan_parts(
    instances: Sequence[Any],
    registry: dict[type, type],
    fallback_cls: type,
) -> List[Tuple[Array, Any]]:
    """Partition instances into (lane_indices, lanes) family parts.

    Instances group by ``(registered lane class, group_key(inst))`` —
    unregistered classes share one fallback part.  Build order follows
    first appearance, and each part's index array restores the original
    lane order on scatter/gather.
    """
    order: List[Tuple[Any, Any]] = []
    members: dict[Tuple[Any, Any], Tuple[List[int], List[Any]]] = {}
    for i, inst in enumerate(instances):
        lanes_cls = registry.get(type(inst))
        if lanes_cls is None:
            key = (None, None)
        else:
            key = (lanes_cls, lanes_cls.group_key(inst))
        if key not in members:
            members[key] = ([], [])
            order.append(key)
        members[key][0].append(i)
        members[key][1].append(inst)
    parts = []
    for key in order:
        idx, insts = members[key]
        lanes_cls = key[0]
        lanes = lanes_cls.build(insts) if lanes_cls is not None else None
        if lanes is None:
            # Unregistered strategy, or a registered lane declining the
            # sub-group (e.g. a user-defined tit-for-tat trigger).
            lanes = fallback_cls(insts)
        parts.append((np.asarray(idx, dtype=np.intp), lanes))
    return parts


class _FusedLanes:
    """Shared scatter/gather plumbing of the composite lanes."""

    fusion_family = "fused"
    fusion_params = ()

    def _init_parts(self, parts: List[Tuple[Array, Any]]) -> None:
        self._parts = parts
        self.vectorized = all(lanes.vectorized for _, lanes in parts)

    @property
    def parts(self) -> List[Tuple[Array, Any]]:
        """The (lane_indices, family_lanes) partition, in build order."""
        return list(self._parts)

    def _gather(self, produce: Callable[[Array, Any], Any]) -> Array:
        out = np.empty(self.n_reps)
        for idx, lanes in self._parts:
            out[idx] = produce(idx, lanes)
        return out

    def first_many(self) -> Array:
        return self._gather(lambda idx, lanes: lanes.first_many())

    def react_many(self, last: RoundObservationBatch) -> Array:
        return self._gather(
            lambda idx, lanes: lanes.react_many(last.take(idx))
        )

    def reset_many(self) -> None:
        for _, lanes in self._parts:
            lanes.reset_many()

    def finalize(self) -> None:
        for _, lanes in self._parts:
            lanes.finalize()


class FusedCollectorLanes(_FusedLanes, CollectorLanes):
    """Composite collector: one vector program per strategy family.

    Each round the observation batch is scattered (``take``) to the
    family programs and their percentile outputs gathered back into
    lane order — every value the same float64 the lane's family program
    (and hence its solo game) computes.
    """

    def __init__(
        self, instances: Sequence[Any], parts: List[Tuple[Array, Any]]
    ) -> None:
        CollectorLanes.__init__(self, instances)
        self._init_parts(parts)

    def terminated_rounds(self) -> List[Optional[int]]:
        out: List[Optional[int]] = [None] * self.n_reps
        for idx, lanes in self._parts:
            sub = lanes.terminated_rounds()
            for j, r in enumerate(idx):
                out[r] = sub[j]
        return out


class FusedAdversaryLanes(_FusedLanes, AdversaryLanes):
    """Composite adversary: one vector program per strategy family."""

    def __init__(
        self, instances: Sequence[Any], parts: List[Tuple[Array, Any]]
    ) -> None:
        AdversaryLanes.__init__(self, instances)
        self._init_parts(parts)


def fused_collector_lanes(instances: Sequence[Any]) -> CollectorLanes:
    """Family-fused lanes for L heterogeneous collector instances.

    A single-family cohort returns the family's own lane program (no
    composite indirection); mixed cohorts return a
    :class:`FusedCollectorLanes` that multiplexes the family programs.
    """
    instances = list(instances)
    if not instances:
        raise ValueError("need at least one strategy instance")
    parts = _plan_parts(instances, _COLLECTOR_LANES, FallbackCollectorLanes)
    if len(parts) == 1:
        return parts[0][1]
    return FusedCollectorLanes(instances, parts)


def fused_adversary_lanes(instances: Sequence[Any]) -> AdversaryLanes:
    """Family-fused lanes for L heterogeneous adversary instances."""
    instances = list(instances)
    if not instances:
        raise ValueError("need at least one strategy instance")
    parts = _plan_parts(instances, _ADVERSARY_LANES, FallbackAdversaryLanes)
    if len(parts) == 1:
        return parts[0][1]
    return FusedAdversaryLanes(instances, parts)


# --------------------------------------------------------------------- #
# compiled trim program
# --------------------------------------------------------------------- #
class TrimLanes:
    """Per-lane trimmers compiled into one round program.

    The dispatch chain (shared instance?  exact shipped class?  custom
    ``trim`` override?) is resolved once at build time:

    * ``"shared"`` — every lane is literally the same instance: the
      existing rep-batched :meth:`Trimmer.trim_many` kernel runs as-is.
    * ``"stacked"`` — one shipped trimmer class, per-lane instances
      (own anchors/references): a single vector score sweep, then each
      lane's scalar cutoff from *its own* reference table — the exact
      expressions of the solo :meth:`Trimmer.trim` body.
    * ``"loop"`` — mixed classes or custom ``trim`` overrides: the
      documented per-lane loop through each instance's own ``trim``.
    """

    def __init__(self, trimmers: Sequence[Trimmer]):
        self.trimmers = list(trimmers)
        if not self.trimmers:
            raise ValueError("need at least one trimmer")
        lead = self.trimmers[0]
        if all(t is lead for t in self.trimmers):
            self.mode = "shared"
        elif type(lead) in (ValueTrimmer, RadialTrimmer) and all(
            type(t) is type(lead) for t in self.trimmers
        ):
            self.mode = "stacked"
        else:
            self.mode = "loop"
        # Reference-group partition for the cutoff sweep, built lazily:
        # lanes whose sorted reference tables are byte-equal share one
        # vectorized QuantileTable.quantile call (group id -1 marks
        # batch-anchored lanes, whose cutoff depends on the round's own
        # scores).
        self._cutoff_groups: Optional[Tuple[Array, List[QuantileTable]]] = None
        # Pack radial centers into a column when every lane has a fitted
        # scalar (1-D) or same-dimension center; otherwise the score
        # sweep falls back to a per-lane loop for the odd lanes.
        self._centers_1d: Optional[Array] = None
        self._centers_nd: Optional[Array] = None
        if self.mode == "stacked" and type(lead) is RadialTrimmer:
            centers = [t._center for t in self.trimmers]
            if all(c is not None and np.size(c) == 1 for c in centers):
                self._centers_1d = np.array(
                    [float(np.reshape(c, ())) for c in centers]
                )
            if all(
                c is not None
                and np.ndim(c) == 1
                and c.shape == centers[0].shape
                for c in centers
            ):
                self._centers_nd = np.stack(
                    [np.asarray(c, dtype=float) for c in centers]
                )

    @property
    def n_reps(self) -> int:
        """Number of trim lanes."""
        return len(self.trimmers)

    @property
    def lead(self) -> Trimmer:
        """The first lane's trimmer."""
        return self.trimmers[0]

    def _ensure_cutoff_groups(self) -> Tuple[Array, List[QuantileTable]]:
        """(lane -> group id, group tables); -1 = batch-anchored lane."""
        if self._cutoff_groups is None:
            gid = np.full(self.n_reps, -1, dtype=np.intp)
            tables: List[QuantileTable] = []
            for r, trimmer in enumerate(self.trimmers):
                if not trimmer.is_reference_anchored:
                    continue
                table = trimmer.reference_table
                for g, lead in enumerate(tables):
                    if lead is table or np.array_equal(
                        lead.values, table.values
                    ):
                        gid[r] = g
                        break
                else:
                    gid[r] = len(tables)
                    tables.append(table)
            self._cutoff_groups = (gid, tables)
        return self._cutoff_groups

    def scores_stack(self, stack: Array, lanes: Array) -> Array:
        """(rows, n) per-point scores; row ``j`` scored by lane ``lanes[j]``."""
        if self.mode == "shared":
            return self.lead.scores_many(stack)
        if self.mode == "stacked" and type(self.lead) is ValueTrimmer:
            if stack.ndim != 2:
                raise ValueError("ValueTrimmer expects (R, n) stacks")
            return stack
        if self.mode == "stacked":  # RadialTrimmer
            if stack.ndim == 2 and self._centers_1d is not None:
                return np.abs(stack - self._centers_1d[lanes][:, None])
            if stack.ndim == 3 and self._centers_nd is not None:
                centers = self._centers_nd[lanes]
                if centers.shape[1] == stack.shape[2]:
                    # Same contiguous-axis reduction as the solo norm.
                    return np.linalg.norm(
                        stack - centers[:, None, :], axis=2
                    )
        return np.stack(
            [
                self.trimmers[r].scores(stack[j])
                for j, r in enumerate(lanes)
            ]
        )

    def trim_stack(
        self,
        stack: Array,
        percentiles: Array,
        lanes: Optional[Array] = None,
    ) -> BatchTrimReport:
        """One compiled trimming pass; row ``j`` is lane ``lanes[j]``.

        Row ``j`` of the report is byte-identical to
        ``self.trimmers[lanes[j]].trim(stack[j], percentiles[j])``.
        """
        arr = np.asarray(stack, dtype=float)
        if arr.ndim not in (2, 3):
            raise ValueError("stacks must be (R, n) or (R, n, d)")
        if arr.shape[0] == 0 or arr.shape[1] == 0:
            raise ValueError("cannot trim an empty stack")
        q_in = np.asarray(percentiles, dtype=float)
        if q_in.shape != (arr.shape[0],):
            raise ValueError("need one percentile per rep")
        if lanes is None:
            lanes = np.arange(self.n_reps)
        if self.mode == "shared":
            return self.lead.trim_many(arr, q_in)
        if self.mode == "loop":
            return BatchTrimReport.from_reports(
                self.trimmers[r].trim(arr[j], float(q_in[j]))
                for j, r in enumerate(lanes)
            )
        scores = self.scores_stack(arr, lanes)
        n_rows, n = scores.shape
        # Identical to clip_percentile, elementwise (incl. NaN -> 0.0).
        q = np.where(
            np.isnan(q_in), 0.0, np.minimum(1.0, np.maximum(0.0, q_in))
        )
        kept = np.ones((n_rows, n), dtype=bool)
        cutoffs = np.full(n_rows, np.inf)
        active = np.flatnonzero(q < 1.0)
        if active.size:
            # One QuantileTable.quantile sweep per reference group — the
            # vector path is elementwise identical to the solo scalar
            # `_cutoff` call against each lane's own sorted-once table.
            gid, tables = self._ensure_cutoff_groups()
            row_gids = gid[np.asarray(lanes)[active]]
            for g in np.unique(row_gids[row_gids >= 0]):
                rows = active[row_gids == g]
                cutoffs[rows] = tables[g].quantile(q[rows])
            for j in active[row_gids < 0]:
                # Batch-anchored lanes: the cutoff is a quantile of the
                # round's own scores, per lane by construction.
                cutoffs[j] = float(
                    empirical_quantile(scores[j], float(q[j]))
                )
            kept[active] = scores[active] <= cutoffs[active, None]
            for j in active[~kept[active].any(axis=1)]:
                # Same degenerate-batch fallback as the solo path.
                kept[j, int(np.argmin(scores[j]))] = True
        return BatchTrimReport(
            kept=kept, threshold_scores=cutoffs, percentiles=q, scores=scores
        )


# --------------------------------------------------------------------- #
# compiled poison program
# --------------------------------------------------------------------- #
def _refs_equal(a: Optional[Array], b: Optional[Array]) -> bool:
    if a is None or b is None:
        return a is b
    return a is b or (a.shape == b.shape and np.array_equal(a, b))


class InjectorLanes:
    """Per-lane poison injectors compiled into one round program.

    Lanes carry *different* attack ratios, jitters and reference
    datasets; the program packs the ratios into an ``(L,)`` column (the
    session segments rounds by poison count) and partitions lanes into
    reference groups **once at build time** — lanes whose calibration
    arrays are byte-equal share one vectorized quantile pass per round,
    exactly the rep-batched fast path, while each lane's jitter
    positions still come from its own Generator.
    """

    def __init__(self, injectors: Sequence[Any]) -> None:
        self.injectors = list(injectors)
        if not self.injectors:
            raise ValueError("need at least one injector")
        self._ratios = np.array(
            [float(inj.attack_ratio) for inj in self.injectors]
        )
        self._groups_1d: Optional[Tuple[Array, List[Any], List[Optional[QuantileTable]]]] = None
        self._groups_2d: Optional[Tuple[Array, List[Any], List[Optional[QuantileTable]]]] = None
        self._position_server: Optional[LanePositionServer] = None

    @property
    def n_reps(self) -> int:
        """Number of injector lanes."""
        return len(self.injectors)

    @property
    def lead(self) -> Any:
        """The first lane's injector."""
        return self.injectors[0]

    def poison_counts(self, n_benign: int) -> Array:
        """(L,) per-lane poison counts for ``n_benign`` benign rows.

        ``np.rint`` rounds half to even — the same rule as the scalar
        ``int(round(...))`` in ``PoisonInjector.poison_count``.
        """
        return np.rint(self._ratios * float(n_benign)).astype(np.int64)

    def finalize(self) -> None:
        """Advance the real jitter Generators past the served draws.

        The deferred-writeback flush (``BatchedGameSession.sync_lanes``)
        calls this so each lane's own ``Generator`` lands exactly where
        its solo game would have left it.
        """
        if self._position_server is not None:
            self._position_server.sync()

    def _group(self, match: Callable[[Any, Any], bool]) -> Tuple[Array, List[Any]]:
        """(lane -> group id, group lead injectors) under ``match``."""
        gid = np.empty(self.n_reps, dtype=np.intp)
        leads: List[Any] = []
        for r, injector in enumerate(self.injectors):
            for g, lead in enumerate(leads):
                if match(injector, lead):
                    gid[r] = g
                    break
            else:
                gid[r] = len(leads)
                leads.append(injector)
        return gid, leads

    def _ensure_groups_1d(self) -> Tuple[Array, List[Any], List[Optional[QuantileTable]]]:
        if self._groups_1d is None:
            gid, leads = self._group(
                lambda a, b: _refs_equal(a._ref_values, b._ref_values)
            )
            # Sort-once tables: QuantileTable.quantile is bit-identical
            # to np.quantile's linear method, minus the per-call
            # partition of the full reference.
            tables = [
                None
                if lead._ref_values is None
                else QuantileTable(lead._ref_values)
                for lead in leads
            ]
            self._groups_1d = (gid, leads, tables)
        return self._groups_1d

    def _ensure_groups_2d(self) -> Tuple[Array, List[Any], List[Optional[QuantileTable]]]:
        if self._groups_2d is None:
            gid, leads = self._group(
                lambda a, b: a.mode == b.mode
                and _refs_equal(a._ref_center, b._ref_center)
                and _refs_equal(a._ref_scores, b._ref_scores)
                and _refs_equal(a._ref_corner, b._ref_corner)
            )
            tables = [
                None
                if lead._ref_scores is None
                else QuantileTable(lead._ref_scores)
                for lead in leads
            ]
            self._groups_2d = (gid, leads, tables)
        return self._groups_2d

    def materialize_many(
        self,
        benign: Array,
        percentiles: Array,
        idx: Optional[Array] = None,
    ) -> Array:
        """Poison stacks for one count-uniform lane segment.

        ``benign`` is ``(rows, b[, d])`` with row ``j`` belonging to
        lane ``idx[j]`` (``idx=None`` means lane ``j``); all rows must
        share one poison count (the session segments rounds by count).
        Row ``j`` is byte-identical to lane ``j``'s solo
        ``materialize`` call.
        """
        stack = np.asarray(benign, dtype=float)
        if stack.ndim not in (2, 3):
            raise ValueError("benign stacks must be (R, b) or (R, b, d)")
        lanes = np.arange(self.n_reps) if idx is None else np.asarray(idx)
        if stack.shape[0] != lanes.shape[0]:
            raise ValueError(
                f"stack carries {stack.shape[0]} rows for "
                f"{lanes.shape[0]} lanes"
            )
        counts = self.poison_counts(stack.shape[1])[lanes]
        if counts.size == 0 or int(counts.max(initial=0)) == 0:
            return stack[:, :0]
        count = int(counts[0])
        if not np.all(counts == count):
            raise ValueError(
                "materialize_many needs a count-uniform lane segment"
            )
        if self._position_server is None:
            # Built lazily so the shadow Generators copy each lane's
            # bit-state at the moment draws actually start.
            self._position_server = LanePositionServer(self.injectors)
        positions = self._position_server.positions(lanes, percentiles, count)
        if stack.ndim == 2:
            gid, leads, tables = self._ensure_groups_1d()
            out = np.empty((lanes.shape[0], count))
            row_gids = gid[lanes]
            for g in np.unique(row_gids):
                rows = np.flatnonzero(row_gids == g)
                if tables[g] is not None:
                    out[rows] = tables[g].quantile(
                        positions[rows].ravel()
                    ).reshape(rows.size, count)
                else:
                    # Unfitted lanes anchor on their own benign row.
                    for j in rows:
                        out[j] = self.injectors[lanes[j]]._materialize_1d(
                            stack[j], positions[j]
                        )
            return out
        gid, leads, tables = self._ensure_groups_2d()
        out = np.empty((lanes.shape[0], count, stack.shape[2]))
        row_gids = gid[lanes]
        for g in np.unique(row_gids):
            rows = np.flatnonzero(row_gids == g)
            lead = leads[g]
            if (
                lead.mode == "radial"
                and lead._ref_center is not None
                and tables[g] is not None
            ):
                targets = tables[g].quantile(
                    positions[rows].ravel()
                ).reshape(rows.size, count)
                direction = lead._ref_corner - lead._ref_center
                norm = float(np.linalg.norm(direction))
                if norm <= 0.0:
                    direction = np.zeros(stack.shape[2])
                    direction[0] = 1.0
                    norm = 1.0
                direction = direction / norm
                out[rows] = (
                    lead._ref_center[None, None, :]
                    + targets[:, :, None] * direction[None, None, :]
                )
            else:
                # Corner mode (batch-anchored) and unfitted radial
                # lanes: per-lane passes, exactly like the solo path.
                for j in rows:
                    injector = self.injectors[lanes[j]]
                    if injector.mode == "radial":
                        out[j] = injector._materialize_radial(
                            stack[j], positions[j]
                        )
                    else:
                        out[j] = injector._materialize_corner(
                            stack[j], positions[j]
                        )
        return out
