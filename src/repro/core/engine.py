"""The multi-round collection game engine (Fig. 3).

Each round the engine

1. draws a benign batch from the stream (step ③),
2. asks the adversary strategy for an injection percentile and
   materializes the poison (step ②),
3. asks the collector strategy for a trimming percentile and trims the
   combined batch (step ④),
4. evaluates the public quality standard and the compliance judgement,
5. records everything on the public board (steps ① ⑥), which both
   strategies observe when choosing the next round's positions (step ⑤).

The engine also keeps ground-truth bookkeeping (which retained points are
poison) that strategies never see but experiments report on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..streams.board import BoardEntry, PublicBoard
from ..streams.injection import PoisonInjector
from ..streams.source import StreamSource
from .domain import QuantileTable
from .quality import QualityEvaluator, TailMassEvaluator
from .strategies.base import AdversaryStrategy, CollectorStrategy, RoundObservation
from .trimming import Trimmer

__all__ = [
    "BandExcessJudge",
    "NoisyPositionJudge",
    "GameResult",
    "CollectionGame",
]


class BandExcessJudge:
    """Noisy per-round compliance judgement (§V, §VI-D).

    Betrayal in the §VI-D sense is *sub-threshold* poisoning: mass parked
    just under the soft trim position where it survives.  The judge
    measures the retained batch's score mass inside a reference band
    (default: between the 85th and 95th reference percentiles — the
    corridor between the balance point and the soft threshold), compares
    it against the clean band mass, and adds Gaussian noise modeling the
    non-deterministic utility of §V.  The false-positive rate this noise
    induces is what eventually terminates even fully compliant play
    (§V-B).
    """

    def __init__(
        self,
        band: tuple = (0.85, 0.95),
        margin: float = 0.04,
        noise_sigma: float = 0.02,
        seed: Optional[int] = None,
    ):
        lo, hi = band
        if not 0.0 <= lo < hi <= 1.0:
            raise ValueError("band must satisfy 0 <= lo < hi <= 1")
        if margin < 0.0 or noise_sigma < 0.0:
            raise ValueError("margin and noise_sigma must be non-negative")
        self.band = (float(lo), float(hi))
        self.margin = float(margin)
        self.noise_sigma = float(noise_sigma)
        self._seed = seed
        self._rng = np.random.default_rng(seed)
        self._band_values: Optional[tuple] = None
        self._clean_mass = hi - lo

    def reset(self) -> None:
        """Rewind the noise stream so a reused judge replays identically."""
        self._rng = np.random.default_rng(self._seed)

    def fit(self, reference_scores) -> "BandExcessJudge":
        """Calibrate the band value cutoffs on clean reference scores.

        Accepts either the raw scores or an already-built
        :class:`~repro.core.domain.QuantileTable` over them — the engine
        passes the trimmer's table so the shared reference is sorted
        exactly once per game.
        """
        if isinstance(reference_scores, QuantileTable):
            table = reference_scores
        else:
            scores = np.asarray(reference_scores, dtype=float).ravel()
            if scores.size == 0:
                raise ValueError("reference scores must be non-empty")
            table = QuantileTable(scores)
        lo_v, hi_v = table.quantile(np.asarray(self.band))
        self._band_values = (float(lo_v), float(hi_v))
        return self

    def judge(self, retained_scores: np.ndarray) -> bool:
        """True when the retained band mass exceeds clean mass + margin."""
        if self._band_values is None:
            raise RuntimeError("judge must be fit on reference scores first")
        scores = np.asarray(retained_scores, dtype=float).ravel()
        if scores.size == 0:
            return False
        lo_v, hi_v = self._band_values
        mass = float(np.mean((scores > lo_v) & (scores <= hi_v)))
        excess = mass - self._clean_mass
        if self.noise_sigma > 0.0:
            excess += float(self._rng.normal(0.0, self.noise_sigma))
        return excess > self.margin

    def judge_round(self, injection_percentile, retained_scores) -> bool:
        """Engine entry point; the band judge only inspects the scores."""
        return self.judge(retained_scores)


class NoisyPositionJudge:
    """Noisy compliance judgement on the observed injection position (§V).

    Under the white-box / complete-information model both parties can
    reconstruct the previous round's positions from the public board, so
    the collector can in principle *see* whether the adversary betrayed —
    injected below the agreed boundary where poison survives the soft
    trim.  Non-deterministic utility (LDP noise, §V) makes the judgement
    probabilistic: a true betrayal is missed with ``miss_rate`` (the
    paper's "judges compliance with probability p" when the adversary
    defects), and compliant play is falsely flagged with
    ``false_positive_rate`` (the benign jitter that eventually terminates
    even honest cooperation, §V-B).
    """

    def __init__(
        self,
        boundary: float,
        miss_rate: float = 0.15,
        false_positive_rate: float = 0.075,
        seed: Optional[int] = None,
    ):
        if not 0.0 < boundary < 1.0:
            raise ValueError("boundary must be a percentile in (0, 1)")
        for rate in (miss_rate, false_positive_rate):
            if not 0.0 <= rate <= 1.0:
                raise ValueError("rates must be probabilities")
        self.boundary = float(boundary)
        self.miss_rate = float(miss_rate)
        self.false_positive_rate = float(false_positive_rate)
        self._seed = seed
        self._rng = np.random.default_rng(seed)

    def reset(self) -> None:
        """Rewind the noise stream so a reused judge replays identically."""
        self._rng = np.random.default_rng(self._seed)

    def fit(self, reference_scores) -> "NoisyPositionJudge":
        """Stateless; present for engine-interface uniformity."""
        return self

    def judge_round(self, injection_percentile, retained_scores) -> bool:
        """Noisy verdict on whether the round's injection was a betrayal."""
        if injection_percentile is None:
            truly_betrayed = False
        else:
            truly_betrayed = float(injection_percentile) < self.boundary
        if truly_betrayed:
            return bool(self._rng.random() >= self.miss_rate)
        return bool(self._rng.random() < self.false_positive_rate)


@dataclass
class GameResult:
    """Outcome of one full collection game."""

    board: PublicBoard
    collector_name: str
    adversary_name: str
    termination_round: Optional[int]

    @property
    def rounds(self) -> int:
        """Number of completed rounds."""
        return len(self.board)

    def retained_data(self) -> np.ndarray:
        """All data surviving trimming, across every round."""
        return self.board.retained_data()

    def poison_retained_fraction(self) -> float:
        """Fraction of retained points that are poison (Table III metric)."""
        return self.board.poison_retained_fraction()

    def trimmed_fraction(self) -> float:
        """Fraction of all collected points that were trimmed."""
        return self.board.trimmed_fraction()

    def threshold_path(self) -> np.ndarray:
        """Per-round trimming percentiles the collector played."""
        return np.array([o.trim_percentile for o in self.board.observations])

    def injection_path(self) -> np.ndarray:
        """Per-round injection percentiles (NaN where no injection)."""
        return np.array(
            [
                np.nan if o.injection_percentile is None else o.injection_percentile
                for o in self.board.observations
            ]
        )

    def to_records(self) -> list:
        """Per-round summary dicts for external analysis/plotting.

        One dict per round with the public observation fields plus the
        ground-truth bookkeeping (counts of collected/retained/poison) —
        ready for ``csv.DictWriter`` or a dataframe constructor.
        """
        records = []
        for entry in self.board.entries:
            obs = entry.observation
            records.append(
                {
                    "round": obs.index,
                    "trim_percentile": obs.trim_percentile,
                    "injection_percentile": obs.injection_percentile,
                    "quality": obs.quality,
                    "observed_poison_ratio": obs.observed_poison_ratio,
                    "betrayal": obs.betrayal,
                    "n_collected": entry.n_collected,
                    "n_retained": int(entry.n_retained),
                    "n_poison_injected": entry.n_poison_injected,
                    "n_poison_retained": entry.n_poison_retained,
                }
            )
        return records


class CollectionGame:
    """Orchestrates the repeated trimming game between two strategies.

    Parameters
    ----------
    source:
        Benign stream (one batch per round).
    collector / adversary:
        The two strategies.
    injector:
        Poison materializer carrying the attack ratio.
    trimmer:
        Trimming operator.  If ``reference`` is given and the trimmer has
        not been fitted yet, the engine fits it (reference anchoring);
        pass a plain unfitted trimmer and ``anchor="batch"`` for
        batch-percentile trimming.
    reference:
        Clean calibration data ``X0`` for the quality standard, the
        trimmer (under reference anchoring) and the judge.
    quality_evaluator:
        The public ``Quality_Evaluation()``; defaults to a
        :class:`~repro.core.quality.TailMassEvaluator` at the 0.9
        reference quantile.
    judge:
        Per-round compliance judge; defaults to a noiseless
        :class:`BandExcessJudge`.
    rounds:
        Number of rounds to play.
    anchor:
        ``"reference"`` (default) or ``"batch"`` trimming anchoring, see
        :mod:`repro.core.trimming`.
    store_retained:
        ``True`` (default) keeps every round's retained array on the
        public board; ``False`` plays the game on a lean board that
        keeps only running counts — callers that consume the result
        through summary records (sweep reducers in particular) save the
        O(rounds × batch) retained storage.  ``retained_data()`` is
        unavailable on a lean result.
    """

    def __init__(
        self,
        source: StreamSource,
        collector: CollectorStrategy,
        adversary: AdversaryStrategy,
        injector: PoisonInjector,
        trimmer: Trimmer,
        reference,
        quality_evaluator: Optional[QualityEvaluator] = None,
        judge: Optional[BandExcessJudge] = None,
        rounds: int = 20,
        anchor: str = "reference",
        store_retained: bool = True,
    ):
        if rounds < 1:
            raise ValueError("rounds must be >= 1")
        if anchor not in ("reference", "batch"):
            raise ValueError("anchor must be 'reference' or 'batch'")
        self.source = source
        self.collector = collector
        self.adversary = adversary
        self.injector = injector
        self.trimmer = trimmer
        self.rounds = int(rounds)
        self.reference = np.asarray(reference, dtype=float)
        self.store_retained = bool(store_retained)

        # The score center always comes from the public reference (a
        # batch-local center is evadable — see trimming module docs);
        # ``anchor`` only selects the cutoff-quantile source.  The
        # injector is calibrated on the same reference: the white-box
        # adversary knows the public standard too.
        self.trimmer.anchor = anchor
        self.trimmer.fit_reference(self.reference)
        self.injector.fit_reference(self.reference)

        self.quality_evaluator = quality_evaluator or TailMassEvaluator()
        self.quality_evaluator.fit(self.reference)
        # Whether the evaluator can score rounds straight off the trim
        # report's batch scores (commensurable score families) instead
        # of running its own sweep over the combined batch.
        self._share_scores = self.quality_evaluator.accepts_scores(
            getattr(self.trimmer, "score_kind", None)
        )

        self.judge = judge or BandExcessJudge(noise_sigma=0.0)
        # fit_reference above already scored the reference; reuse those
        # scores rather than running a second sweep for the judge, and
        # hand a BandExcessJudge the trimmer's quantile table outright
        # so the shared reference is sorted exactly once per game.
        reference_scores = getattr(self.trimmer, "reference_scores", None)
        if reference_scores is None:
            reference_scores = self.trimmer.scores(self.reference)
        if isinstance(self.judge, BandExcessJudge):
            table = getattr(self.trimmer, "reference_table", None)
            self.judge.fit(table if table is not None else reference_scores)
        else:
            self.judge.fit(reference_scores)

    # ------------------------------------------------------------------ #
    def _combine(self, benign: np.ndarray, poison: np.ndarray) -> np.ndarray:
        if poison.shape[0] == 0:
            return benign
        return np.concatenate([benign, poison], axis=0)

    def run(self) -> GameResult:
        """Play all rounds and return the game outcome.

        Every stochastic component is rewound first, so calling ``run``
        again on the same engine replays the identical game — the
        contract sweep repetitions and regression tests rely on.
        """
        self.source.reset()
        self.collector.reset()
        self.adversary.reset()
        self.injector.reset()
        judge_reset = getattr(self.judge, "reset", None)
        if callable(judge_reset):  # custom judges may be stateless
            judge_reset()
        board = PublicBoard(store_retained=self.store_retained)
        last_obs: Optional[RoundObservation] = None

        for index in range(1, self.rounds + 1):
            benign = self.source.next_batch()

            if last_obs is None:
                trim_q = self.collector.first()
                inject_q = self.adversary.first()
            else:
                trim_q = self.collector.react(last_obs)
                inject_q = self.adversary.react(last_obs)

            if inject_q is None:
                poison = benign[:0]
            else:
                poison = self.injector.materialize(benign, inject_q)

            combined = self._combine(benign, poison)
            poison_mask = np.zeros(combined.shape[0], dtype=bool)
            poison_mask[benign.shape[0]:] = True

            report = self.trimmer.trim(combined, trim_q)
            # Single-pass scoring: the trim report carries the batch
            # scores, so the judge reuses them instead of a second
            # ``Trimmer.scores`` sweep (custom trimmers may omit them),
            # and the quality evaluator computes score and normalized
            # value from one sweep — reusing the trimmer's scores too
            # when the families are commensurable.
            if report.scores is not None:
                retained_scores = report.kept_scores
                shared_scores = report.scores if self._share_scores else None
            else:
                retained_scores = self.trimmer.scores(combined)[report.kept]
                shared_scores = None

            observed_ratio, quality = self.quality_evaluator.evaluate(
                combined, scores=shared_scores
            )
            betrayal = self.judge.judge_round(inject_q, retained_scores)

            observation = RoundObservation(
                index=index,
                trim_percentile=float(trim_q),
                injection_percentile=None if inject_q is None else float(inject_q),
                quality=quality,
                observed_poison_ratio=float(observed_ratio),
                betrayal=bool(betrayal),
            )
            # In lean mode the retained rows are never materialized —
            # the board only needs the count.
            retained = combined[report.kept] if self.store_retained else None
            board.record(
                BoardEntry(
                    observation=observation,
                    retained=retained,
                    n_collected=combined.shape[0],
                    n_poison_injected=int(poison.shape[0]),
                    n_poison_retained=int(
                        np.count_nonzero(report.kept & poison_mask)
                    ),
                    n_retained=report.n_kept,
                )
            )
            last_obs = observation

        termination = getattr(self.collector, "terminated_round", None)
        return GameResult(
            board=board,
            collector_name=self.collector.name,
            adversary_name=self.adversary.name,
            termination_round=termination,
        )
