"""The multi-round collection game engine (Fig. 3).

Each round the engine

1. draws a benign batch from the stream (step ③),
2. asks the adversary strategy for an injection percentile and
   materializes the poison (step ②),
3. asks the collector strategy for a trimming percentile and trims the
   combined batch (step ④),
4. evaluates the public quality standard and the compliance judgement,
5. records everything on the public board (steps ① ⑥), which both
   strategies observe when choosing the next round's positions (step ⑤).

The engine also keeps ground-truth bookkeeping (which retained points are
poison) that strategies never see but experiments report on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .arrays import Array, ArrayLike

if TYPE_CHECKING:
    from .payoffs import PayoffModel
    from .session import BatchedGameSession, GameSession

from ..streams.board import PublicBoard, StackedBoard
from ..streams.injection import BatchedInjector, PoisonInjector
from ..streams.source import StreamSource
from .domain import QuantileTable
from .quality import QualityEvaluator, TailMassEvaluator
from .strategies.base import (
    AdversaryStrategy,
    CollectorStrategy,
    rng_state,
    set_rng_state,
)
from .strategies.batched import adversary_lanes, collector_lanes
from .trimming import RadialTrimmer, Trimmer, ValueTrimmer

__all__ = [
    "BandExcessJudge",
    "NoisyPositionJudge",
    "GameResult",
    "CollectionGame",
    "BatchedGameResult",
    "BatchedCollectionGame",
]


class BandExcessJudge:
    """Noisy per-round compliance judgement (§V, §VI-D).

    Betrayal in the §VI-D sense is *sub-threshold* poisoning: mass parked
    just under the soft trim position where it survives.  The judge
    measures the retained batch's score mass inside a reference band
    (default: between the 85th and 95th reference percentiles — the
    corridor between the balance point and the soft threshold), compares
    it against the clean band mass, and adds Gaussian noise modeling the
    non-deterministic utility of §V.  The false-positive rate this noise
    induces is what eventually terminates even fully compliant play
    (§V-B).
    """

    def __init__(
        self,
        band: Tuple[float, float] = (0.85, 0.95),
        margin: float = 0.04,
        noise_sigma: float = 0.02,
        seed: Optional[int] = None,
    ):
        lo, hi = band
        if not 0.0 <= lo < hi <= 1.0:
            raise ValueError("band must satisfy 0 <= lo < hi <= 1")
        if margin < 0.0 or noise_sigma < 0.0:
            raise ValueError("margin and noise_sigma must be non-negative")
        self.band = (float(lo), float(hi))
        self.margin = float(margin)
        self.noise_sigma = float(noise_sigma)
        self._seed = seed
        self._rng = np.random.default_rng(seed)
        self._band_values: Optional[Tuple[float, float]] = None
        self._clean_mass = hi - lo

    def reset(self) -> None:
        """Rewind the noise stream so a reused judge replays identically."""
        self._rng = np.random.default_rng(self._seed)

    def export_state(self) -> dict[str, Any]:
        """The noise Generator's bit-state (session snapshot contract)."""
        return {"rng": rng_state(self._rng)}

    def import_state(self, state: dict[str, Any]) -> None:
        """Restore the noise stream captured by :meth:`export_state`."""
        set_rng_state(self._rng, state["rng"])

    def fit(self, reference_scores: Any) -> "BandExcessJudge":
        """Calibrate the band value cutoffs on clean reference scores.

        Accepts either the raw scores or an already-built
        :class:`~repro.core.domain.QuantileTable` over them — the engine
        passes the trimmer's table so the shared reference is sorted
        exactly once per game.
        """
        if isinstance(reference_scores, QuantileTable):
            table = reference_scores
        else:
            scores = np.asarray(reference_scores, dtype=float).ravel()
            if scores.size == 0:
                raise ValueError("reference scores must be non-empty")
            table = QuantileTable(scores)
        lo_v, hi_v = table.quantile(np.asarray(self.band))
        self._band_values = (float(lo_v), float(hi_v))
        return self

    def judge(self, retained_scores: Array) -> bool:
        """True when the retained band mass exceeds clean mass + margin."""
        if self._band_values is None:
            raise RuntimeError("judge must be fit on reference scores first")
        scores = np.asarray(retained_scores, dtype=float).ravel()
        if scores.size == 0:
            return False
        lo_v, hi_v = self._band_values
        mass = float(np.mean((scores > lo_v) & (scores <= hi_v)))
        excess = mass - self._clean_mass
        if self.noise_sigma > 0.0:
            excess += float(self._rng.normal(0.0, self.noise_sigma))
        return excess > self.margin

    def judge_round(
        self, injection_percentile: Optional[float], retained_scores: Array
    ) -> bool:
        """Engine entry point; the band judge only inspects the scores."""
        return self.judge(retained_scores)


class NoisyPositionJudge:
    """Noisy compliance judgement on the observed injection position (§V).

    Under the white-box / complete-information model both parties can
    reconstruct the previous round's positions from the public board, so
    the collector can in principle *see* whether the adversary betrayed —
    injected below the agreed boundary where poison survives the soft
    trim.  Non-deterministic utility (LDP noise, §V) makes the judgement
    probabilistic: a true betrayal is missed with ``miss_rate`` (the
    paper's "judges compliance with probability p" when the adversary
    defects), and compliant play is falsely flagged with
    ``false_positive_rate`` (the benign jitter that eventually terminates
    even honest cooperation, §V-B).
    """

    def __init__(
        self,
        boundary: float,
        miss_rate: float = 0.15,
        false_positive_rate: float = 0.075,
        seed: Optional[int] = None,
    ):
        if not 0.0 < boundary < 1.0:
            raise ValueError("boundary must be a percentile in (0, 1)")
        for rate in (miss_rate, false_positive_rate):
            if not 0.0 <= rate <= 1.0:
                raise ValueError("rates must be probabilities")
        self.boundary = float(boundary)
        self.miss_rate = float(miss_rate)
        self.false_positive_rate = float(false_positive_rate)
        self._seed = seed
        self._rng = np.random.default_rng(seed)

    def reset(self) -> None:
        """Rewind the noise stream so a reused judge replays identically."""
        self._rng = np.random.default_rng(self._seed)

    def export_state(self) -> dict[str, Any]:
        """The noise Generator's bit-state (session snapshot contract)."""
        return {"rng": rng_state(self._rng)}

    def import_state(self, state: dict[str, Any]) -> None:
        """Restore the noise stream captured by :meth:`export_state`."""
        set_rng_state(self._rng, state["rng"])

    def fit(self, reference_scores: Any) -> "NoisyPositionJudge":
        """Stateless; present for engine-interface uniformity."""
        return self

    def judge_round(
        self, injection_percentile: Optional[float], retained_scores: Array
    ) -> bool:
        """Noisy verdict on whether the round's injection was a betrayal."""
        if injection_percentile is None:
            truly_betrayed = False
        else:
            truly_betrayed = float(injection_percentile) < self.boundary
        if truly_betrayed:
            return bool(self._rng.random() >= self.miss_rate)
        return bool(self._rng.random() < self.false_positive_rate)


@dataclass
class GameResult:
    """Outcome of one full collection game."""

    board: PublicBoard
    collector_name: str
    adversary_name: str
    termination_round: Optional[int]

    @property
    def rounds(self) -> int:
        """Number of completed rounds."""
        return len(self.board)

    def retained_data(self) -> Array:
        """All data surviving trimming, across every round."""
        return self.board.retained_data()

    def poison_retained_fraction(self) -> float:
        """Fraction of retained points that are poison (Table III metric)."""
        return self.board.poison_retained_fraction()

    def trimmed_fraction(self) -> float:
        """Fraction of all collected points that were trimmed."""
        return self.board.trimmed_fraction()

    def threshold_path(self) -> Array:
        """Per-round trimming percentiles the collector played.

        Served straight from the board's append-only column arrays —
        O(1) after the first access, no per-observation iteration.  The
        returned array is read-only (it aliases the board's cache).
        """
        return self.board.columns.trim_percentile

    def injection_path(self) -> Array:
        """Per-round injection percentiles (NaN where no injection).

        Column-backed and read-only, like :meth:`threshold_path`.
        """
        return self.board.columns.injection_percentile

    def to_records(self) -> List[Dict[str, Any]]:
        """Per-round summary dicts for external analysis/plotting.

        One dict per round with the public observation fields plus the
        ground-truth bookkeeping (counts of collected/retained/poison) —
        ready for ``csv.DictWriter`` or a dataframe constructor.  Built
        from the board's column arrays, never from observation objects.
        """
        cols = self.board.columns
        records = []
        for t in range(cols.rounds):
            injection = cols.injection_percentile[t]
            records.append(
                {
                    "round": int(cols.index[t]),
                    "trim_percentile": float(cols.trim_percentile[t]),
                    "injection_percentile": (
                        None if np.isnan(injection) else float(injection)
                    ),
                    "quality": float(cols.quality[t]),
                    "observed_poison_ratio": float(
                        cols.observed_poison_ratio[t]
                    ),
                    "betrayal": bool(cols.betrayal[t]),
                    "n_collected": int(cols.n_collected[t]),
                    "n_retained": int(cols.n_retained[t]),
                    "n_poison_injected": int(cols.n_poison_injected[t]),
                    "n_poison_retained": int(cols.n_poison_retained[t]),
                }
            )
        return records


class CollectionGame:
    """Orchestrates the repeated trimming game between two strategies.

    Parameters
    ----------
    source:
        Benign stream (one batch per round).
    collector / adversary:
        The two strategies.
    injector:
        Poison materializer carrying the attack ratio.
    trimmer:
        Trimming operator.  If ``reference`` is given and the trimmer has
        not been fitted yet, the engine fits it (reference anchoring);
        pass a plain unfitted trimmer and ``anchor="batch"`` for
        batch-percentile trimming.
    reference:
        Clean calibration data ``X0`` for the quality standard, the
        trimmer (under reference anchoring) and the judge.
    quality_evaluator:
        The public ``Quality_Evaluation()``; defaults to a
        :class:`~repro.core.quality.TailMassEvaluator` at the 0.9
        reference quantile.
    judge:
        Per-round compliance judge; defaults to a noiseless
        :class:`BandExcessJudge`.
    rounds:
        Number of rounds to play.
    anchor:
        ``"reference"`` (default) or ``"batch"`` trimming anchoring, see
        :mod:`repro.core.trimming`.
    store_retained:
        ``True`` (default) keeps every round's retained array on the
        public board; ``False`` plays the game on a lean board that
        keeps only running counts — callers that consume the result
        through summary records (sweep reducers in particular) save the
        O(rounds × batch) retained storage.  ``retained_data()`` is
        unavailable on a lean result.
    """

    def __init__(
        self,
        source: StreamSource,
        collector: CollectorStrategy,
        adversary: AdversaryStrategy,
        injector: PoisonInjector,
        trimmer: Trimmer,
        reference: ArrayLike,
        quality_evaluator: Optional[QualityEvaluator] = None,
        judge: Optional[BandExcessJudge] = None,
        rounds: int = 20,
        anchor: str = "reference",
        store_retained: bool = True,
    ) -> None:
        if rounds < 1:
            raise ValueError("rounds must be >= 1")
        if anchor not in ("reference", "batch"):
            raise ValueError("anchor must be 'reference' or 'batch'")
        self.source = source
        self.collector = collector
        self.adversary = adversary
        self.injector = injector
        self.trimmer = trimmer
        self.rounds = int(rounds)
        self.reference = np.asarray(reference, dtype=float)
        self.store_retained = bool(store_retained)

        # The score center always comes from the public reference (a
        # batch-local center is evadable — see trimming module docs);
        # ``anchor`` only selects the cutoff-quantile source.  The
        # injector is calibrated on the same reference: the white-box
        # adversary knows the public standard too.
        self.trimmer.anchor = anchor
        self.trimmer.fit_reference(self.reference)
        self.injector.fit_reference(self.reference)

        self.quality_evaluator = quality_evaluator or TailMassEvaluator()
        self.quality_evaluator.fit(self.reference)
        # Whether the evaluator can score rounds straight off the trim
        # report's batch scores (commensurable score families) instead
        # of running its own sweep over the combined batch.
        self._share_scores = self.quality_evaluator.accepts_scores(
            getattr(self.trimmer, "score_kind", None)
        )

        self.judge = judge or BandExcessJudge(noise_sigma=0.0)
        # fit_reference above already scored the reference; reuse those
        # scores rather than running a second sweep for the judge, and
        # hand a BandExcessJudge the trimmer's quantile table outright
        # so the shared reference is sorted exactly once per game.
        reference_scores = getattr(self.trimmer, "reference_scores", None)
        if reference_scores is None:
            reference_scores = self.trimmer.scores(self.reference)
        if isinstance(self.judge, BandExcessJudge):
            table = getattr(self.trimmer, "reference_table", None)
            self.judge.fit(table if table is not None else reference_scores)
        else:
            self.judge.fit(reference_scores)

    # ------------------------------------------------------------------ #
    def session(
        self,
        horizon: Union[int, str, None] = "rounds",
        payoff_model: "Optional[PayoffModel]" = None,
        attach_source: bool = False,
    ) -> "GameSession":
        """Open a push-driven :class:`~repro.core.session.GameSession`.

        Hands the engine's calibrated components to a session whose
        *caller* owns the loop: ``submit(batch)`` plays one round,
        ``close()`` returns the :class:`GameResult`.  Every stochastic
        component is rewound first — exactly the :meth:`run` contract —
        so a fresh session replays the identical game.

        ``horizon`` defaults to the engine's ``rounds``; pass ``None``
        for an open-ended session.  ``attach_source=True`` hands the
        engine's stream to the session so ``submit()`` may be called
        without a batch (and the stream's position rides along in
        snapshots).

        Sessions share the engine's live component instances, so only
        one can be active per engine: opening a new session (or calling
        :meth:`run`) resets those components and *supersedes* any
        previous session, whose further ``submit``/``snapshot`` calls
        raise instead of silently diverging.
        """
        from .session import GameSession

        previous = getattr(self, "_active_session", None)
        if previous is not None:
            previous._supersede()
        self.source.reset()
        self._active_session = session = GameSession(
            collector=self.collector,
            adversary=self.adversary,
            injector=self.injector,
            trimmer=self.trimmer,
            quality_evaluator=self.quality_evaluator,
            judge=self.judge,
            share_scores=self._share_scores,
            horizon=self.rounds if horizon == "rounds" else horizon,
            store_retained=self.store_retained,
            payoff_model=payoff_model,
            source=self.source if attach_source else None,
        )
        return session

    def run(self) -> GameResult:
        """Play all rounds and return the game outcome.

        Every stochastic component is rewound first, so calling ``run``
        again on the same engine replays the identical game — the
        contract sweep repetitions and regression tests rely on.  The
        loop itself is a thin driver over the session transition: one
        :meth:`GameSession.submit <repro.core.session.GameSession.submit>`
        per round, byte-identical to the historical in-engine loop.
        """
        session = self.session()
        for _ in range(self.rounds):
            session.submit(self.source.next_batch())
        return session.close()


# --------------------------------------------------------------------- #
# rep-batched engine: play R repetitions of one cell in lockstep
# --------------------------------------------------------------------- #
class _SourceLanes:
    """Adapter: a list of per-rep sources served as one stacked stream."""

    def __init__(self, sources: Sequence[StreamSource]):
        self.sources = list(sources)

    def reset(self) -> None:
        for source in self.sources:
            source.reset()

    def next_batches(self) -> Array:
        return np.stack([source.next_batch() for source in self.sources])


class _QualityLanes:
    """Per-rep quality evaluators with a vectorized tail-mass fast path.

    Rep ``r`` keeps its own evaluator instance (solo games do too; a
    seeded or stateful user evaluator diverges per rep).  When every
    instance is exactly a :class:`TailMassEvaluator` — *regardless* of
    its reference quantile or calibrated cutoff, which pack into
    per-lane ``(L,)`` columns — the whole stack is scored by one array
    sweep; otherwise the documented per-rep loop runs each instance on
    its own row.  ``trimmer`` may be one shared trimmer, a per-lane
    sequence, or a :class:`~repro.core.fusion.TrimLanes`; it only
    informs the per-lane score-sharing probe.
    """

    def __init__(
        self, evaluators: Sequence[QualityEvaluator], trimmer: Any
    ) -> None:
        self.evaluators = list(evaluators)
        lead = self.evaluators[0]
        kinds = self._score_kinds(trimmer, len(self.evaluators))
        if all(type(ev) is type(lead) for ev in self.evaluators) and (
            len(set(kinds)) == 1
        ):
            # Same concrete class everywhere: the (signature-inspecting)
            # share probe runs once instead of once per rep.
            self.share_flags = [lead.accepts_scores(kinds[0])] * len(
                self.evaluators
            )
        else:
            self.share_flags = [
                evaluator.accepts_scores(kind)
                for evaluator, kind in zip(self.evaluators, kinds, strict=False)
            ]
        # The vector program needs one shared score-reuse decision; a
        # mixed-flag cohort (possible only with per-lane trimmer kinds)
        # takes the loop.
        self.vectorized = all(
            type(ev) is TailMassEvaluator for ev in self.evaluators
        ) and len(set(self.share_flags)) == 1
        self._columns: Optional[Tuple[Array, ...]] = None

    @staticmethod
    def _score_kinds(trimmer: Any, n_lanes: int) -> List[Optional[str]]:
        per_lane = getattr(trimmer, "trimmers", None)  # TrimLanes
        if per_lane is None and isinstance(trimmer, (list, tuple)):
            per_lane = trimmer
        if per_lane is None:
            return [getattr(trimmer, "score_kind", None)] * n_lanes
        return [getattr(t, "score_kind", None) for t in per_lane]

    def fit(self, reference: ArrayLike) -> "_QualityLanes":
        """Calibrate every rep's evaluator on the clean reference.

        Fitting is deterministic, so identical TailMass lanes fit the
        lead once and share the cutoff — byte-identical to R
        independent fits at 1/R of the cost.  Heterogeneous quantiles
        fit per lane.
        """
        lead = self.evaluators[0]
        lead.fit(reference)
        if self.vectorized and all(
            ev.reference_quantile == lead.reference_quantile
            for ev in self.evaluators
        ):
            for evaluator in self.evaluators[1:]:
                evaluator._cutoff = lead._cutoff
        else:
            for evaluator in self.evaluators[1:]:
                evaluator.fit(reference)
        self._columns = None
        return self

    def evaluate_many(
        self,
        stacks: Array,
        scores: Optional[Array],
        idx: Optional[Array] = None,
    ) -> Tuple[Array, Array]:
        """(observed_ratio, quality) ``(L,)`` pairs for one round stack.

        ``scores`` is the trimmer's ``(L, n)`` batch-score stack (or
        ``None``); each rep reuses it only when its own evaluator
        accepts the trimmer's score family — exactly the solo rule.
        ``idx`` maps stack rows onto lane indices for segmented rounds.
        """
        if self.vectorized:
            if self._columns is None:
                cutoffs = [ev._cutoff for ev in self.evaluators]
                if any(cutoff is None for cutoff in cutoffs):
                    raise RuntimeError(
                        "evaluator must be fit on reference data first"
                    )
                self._columns = (
                    np.array([float(cutoff) for cutoff in cutoffs]),
                    np.array(
                        [
                            float(ev.reference_quantile)
                            for ev in self.evaluators
                        ]
                    ),
                )
            cut, ref_q = self._columns
            if idx is not None:
                cut = cut[idx]
                ref_q = ref_q[idx]
            shared = (
                scores if (scores is not None and self.share_flags[0]) else None
            )
            # The per-lane cutoff/quantile columns broadcast through the
            # same elementwise expressions as TailMassEvaluator — exact
            # 0/1 tail sums, so bit-identical to L solo evaluate calls.
            batch_scores = QualityEvaluator._as_scores_many(stacks, shared)
            excess = np.mean(batch_scores > cut[:, None], axis=1) - (
                1.0 - ref_q
            )
            raws = np.maximum(0.0, excess)
            normalized = np.clip(raws / ref_q, 0.0, 1.0)
            return raws, normalized
        lanes = (
            np.arange(len(self.evaluators)) if idx is None else np.asarray(idx)
        )
        raws = np.empty(lanes.shape[0])
        normalized = np.empty(lanes.shape[0])
        for j, r in enumerate(lanes):
            evaluator = self.evaluators[r]
            shared = (
                scores[j]
                if (scores is not None and self.share_flags[r])
                else None
            )
            raws[j], normalized[j] = evaluator.evaluate(
                stacks[j], scores=shared
            )
        return raws, normalized


class _JudgeLanes:
    """Per-rep compliance judges with vector paths for the shipped two.

    Each rep owns its judge instance (own noise Generator).  Exact-type
    stacks of :class:`BandExcessJudge` / :class:`NoisyPositionJudge`
    compute the verdict for all reps in array expressions, drawing each
    rep's noise from that rep's own Generator under the same conditions
    as the solo path; anything else loops ``judge_round`` per rep.
    """

    def __init__(self, judges: Sequence[Any]):
        self.judges = list(judges)
        lead = self.judges[0]
        cls = type(lead)
        self.mode = "loop"
        if all(type(judge) is cls for judge in self.judges):
            # Heterogeneous bands/margins/noise levels pack into (L,)
            # parameter columns, so exact-type stacks always vectorize.
            if cls is BandExcessJudge:
                self.mode = "band"
            elif cls is NoisyPositionJudge:
                self.mode = "position"
        self._band_columns: Optional[Tuple[Array, ...]] = None
        if self.mode == "position":
            self._boundary = np.array(
                [float(judge.boundary) for judge in self.judges]
            )
            self._miss = np.array(
                [float(judge.miss_rate) for judge in self.judges]
            )
            self._fp = np.array(
                [float(judge.false_positive_rate) for judge in self.judges]
            )

    def reset(self) -> None:
        self._band_columns = None
        for judge in self.judges:
            judge_reset = getattr(judge, "reset", None)
            if callable(judge_reset):
                judge_reset()

    def judge_round_many(
        self,
        injections: Array,
        scores: Array,
        kept: Array,
        idx: Optional[Array] = None,
    ) -> Array:
        """(L,) betrayal verdicts for one lockstep round (or segment).

        ``idx`` maps stack rows onto lane indices for segmented rounds;
        ``None`` means row ``r`` is lane ``r``.
        """
        if self.mode == "band":
            return self._band_many(scores, kept, idx)
        if self.mode == "position":
            return self._position_many(injections, idx)
        lanes = np.arange(len(self.judges)) if idx is None else np.asarray(idx)
        verdicts = np.empty(lanes.shape[0], dtype=bool)
        for j, r in enumerate(lanes):
            injection = injections[j]
            verdicts[j] = self.judges[r].judge_round(
                None if np.isnan(injection) else float(injection),
                scores[j][kept[j]],
            )
        return verdicts

    def _band_many(
        self, scores: Array, kept: Array, idx: Optional[Array] = None
    ) -> Array:
        if self._band_columns is None:
            for judge in self.judges:
                if judge._band_values is None:
                    raise RuntimeError(
                        "judge must be fit on reference scores first"
                    )
            self._band_columns = (
                np.array([float(j._band_values[0]) for j in self.judges]),
                np.array([float(j._band_values[1]) for j in self.judges]),
                np.array([float(j._clean_mass) for j in self.judges]),
                np.array([float(j.margin) for j in self.judges]),
                np.array([float(j.noise_sigma) for j in self.judges]),
            )
        lo_v, hi_v, clean, margin, sigma = self._band_columns
        lanes = np.arange(len(self.judges)) if idx is None else np.asarray(idx)
        if idx is not None:
            lo_v = lo_v[lanes]
            hi_v = hi_v[lanes]
            clean = clean[lanes]
            margin = margin[lanes]
            sigma = sigma[lanes]
        n_kept = np.count_nonzero(kept, axis=1)
        in_band = (scores > lo_v[:, None]) & (scores <= hi_v[:, None]) & kept
        # Exact 0/1 sums: identical to the solo np.mean over kept scores.
        mass = np.count_nonzero(in_band, axis=1) / np.maximum(n_kept, 1)
        excess = mass - clean
        # The solo judge returns early (no draw) on an empty batch and
        # draws only when its own sigma is positive.
        drawing = np.flatnonzero((n_kept > 0) & (sigma > 0.0))
        if drawing.size:
            noise = np.zeros(lanes.shape[0])
            for j in drawing:
                noise[j] = float(
                    self.judges[lanes[j]]._rng.normal(0.0, sigma[j])
                )
            excess = excess + noise
        return (excess > margin) & (n_kept > 0)

    def _position_many(
        self, injections: Array, idx: Optional[Array] = None
    ) -> Array:
        lanes = np.arange(len(self.judges)) if idx is None else np.asarray(idx)
        boundary = self._boundary[lanes]
        miss = self._miss[lanes]
        fp = self._fp[lanes]
        # Exactly one draw per rep per round, as in the solo judge.
        draws = np.array([float(self.judges[r]._rng.random()) for r in lanes])
        betrayed = np.zeros(lanes.shape[0], dtype=bool)
        observed = ~np.isnan(injections)
        betrayed[observed] = injections[observed] < boundary[observed]
        return np.where(betrayed, draws >= miss, draws < fp)


@dataclass
class BatchedGameResult:
    """Outcome of R lockstep repetitions of one collection game.

    Per-rep :class:`GameResult` views are sliced on demand; rep ``r`` is
    byte-identical to the result of the corresponding solo
    :class:`CollectionGame` run.
    """

    board: StackedBoard
    collector_name: str
    adversary_name: str
    termination_rounds: List[Optional[int]]

    @property
    def n_reps(self) -> int:
        """Number of repetitions played."""
        return self.board.n_reps

    @property
    def rounds(self) -> int:
        """Number of completed rounds (shared by all reps)."""
        return self.board.n_rounds

    def result(self, rep: int) -> GameResult:
        """Rep ``rep``'s game as a standalone :class:`GameResult`."""
        return GameResult(
            board=self.board.rep_board(rep),
            collector_name=self.collector_name,
            adversary_name=self.adversary_name,
            termination_round=self.termination_rounds[rep],
        )

    def results(self) -> List[GameResult]:
        """All per-rep results, in repetition order."""
        return [self.result(rep) for rep in range(self.n_reps)]

    def poison_retained_fractions(self) -> Array:
        """(R,) per-rep poison fractions (Table III metric)."""
        return self.board.poison_retained_fractions()

    def trimmed_fractions(self) -> Array:
        """(R,) per-rep overall trimmed fractions."""
        return self.board.trimmed_fractions()


class BatchedCollectionGame:
    """Plays R repetitions of one collection game in lockstep.

    The third layer of the performance stack: PR 1 parallelized *across
    cells*, PR 2 vectorized *within rounds*, this engine vectorizes
    *across repetitions* — one Python loop over the T rounds total,
    with every per-round step (stream draws, strategy reactions, poison
    materialization, trimming, quality evaluation, compliance judgement,
    board recording) operating on ``(R, batch)`` stacks.

    Reproducibility contract (asserted by the test suite and the
    ``bench_batched_engine`` gate): every rep of a batched run is
    **byte-identical** to the corresponding solo :class:`CollectionGame`
    seeded from the same ``SeedSequence`` children.  The ingredients:
    per-rep component instances wherever state or randomness lives
    (strategies, injector jitter, judge noise, stream lanes), shared
    deterministic calibration (trimmer, reference tables), and
    vectorized kernels whose per-rep rows are elementwise-identical to
    the scalar paths.

    Parameters mirror :class:`CollectionGame`, with per-rep sequences
    where the solo engine takes single components:

    source:
        A rep-lane :class:`~repro.streams.source.StreamSource`
        (constructed with one seed per rep) or a sequence of R
        single-lane sources.
    collectors / adversaries / injectors:
        One instance per rep.  Strategies are routed through
        :func:`~repro.core.strategies.batched.collector_lanes` /
        ``adversary_lanes``: shipped strategies run array-native, user
        strategies fall back to a per-rep loop (still byte-identical).
    trimmer:
        A single :class:`~repro.core.trimming.Trimmer` shared by all
        reps (correct for the stateless shipped trimmers), or a
        sequence of R instances.  With a sequence, custom trimmer
        classes run rep ``r``'s rounds through rep ``r``'s own instance
        — the per-rep isolation a *stateful* custom ``trim`` override
        needs to stay byte-identical to solo play (shipped classes
        still share the lead instance's vectorized kernel).
    quality_evaluators / judges:
        Optional sequences of R instances (defaults: per-rep
        :class:`~repro.core.quality.TailMassEvaluator` /
        noiseless :class:`BandExcessJudge`, as in the solo engine).
    """

    def __init__(
        self,
        source: Any,
        collectors: Sequence[CollectorStrategy],
        adversaries: Sequence[AdversaryStrategy],
        injectors: Sequence[PoisonInjector],
        trimmer: Trimmer,
        reference: ArrayLike,
        quality_evaluators: Optional[Sequence[QualityEvaluator]] = None,
        judges: Optional[Sequence[Any]] = None,
        rounds: int = 20,
        anchor: str = "reference",
        store_retained: bool = True,
    ) -> None:
        if rounds < 1:
            raise ValueError("rounds must be >= 1")
        if anchor not in ("reference", "batch"):
            raise ValueError("anchor must be 'reference' or 'batch'")
        n_reps = len(collectors)
        if n_reps < 1:
            raise ValueError("need at least one repetition")
        if len(adversaries) != n_reps or len(injectors) != n_reps:
            raise ValueError(
                "collectors, adversaries and injectors must have one entry "
                "per repetition"
            )
        self.n_reps = n_reps
        self.rounds = int(rounds)
        self.reference = np.asarray(reference, dtype=float)
        self.store_retained = bool(store_retained)

        if isinstance(source, StreamSource):
            if source.lanes != n_reps:
                raise ValueError(
                    f"rep-lane source carries {source.lanes} lanes for "
                    f"{n_reps} repetitions"
                )
            self.source = source
        else:
            sources = list(source)
            if len(sources) != n_reps:
                raise ValueError("need one stream source per repetition")
            self.source = _SourceLanes(sources)

        self.collectors = list(collectors)
        self.adversaries = list(adversaries)
        self._collector_lanes = collector_lanes(self.collectors)
        self._adversary_lanes = adversary_lanes(self.adversaries)

        if isinstance(trimmer, Trimmer):
            trimmers = [trimmer]
        else:
            trimmers = list(trimmer)
            if len(trimmers) not in (1, n_reps):
                raise ValueError(
                    "trimmer must be a single instance or one per repetition"
                )
        # Shipped trimmers are stateless after fitting, so one shared
        # instance drives the vectorized kernel for every rep.  Any
        # other class gets per-rep instances when the caller provides
        # them — the isolation a stateful custom trim()/scores() needs
        # to match R solo games.
        per_rep = len(trimmers) == n_reps and type(trimmers[0]) not in (
            ValueTrimmer,
            RadialTrimmer,
        )
        self._trimmers = trimmers if per_rep else None
        self.trimmer = trimmers[0]

        # Mirror the solo engine's calibration order exactly.
        for one_trimmer in trimmers if per_rep else trimmers[:1]:
            one_trimmer.anchor = anchor
            one_trimmer.fit_reference(self.reference)
        self.injector = BatchedInjector(injectors)
        self.injector.fit_reference(self.reference)

        if quality_evaluators is None:
            quality_evaluators = [TailMassEvaluator() for _ in range(n_reps)]
        else:
            quality_evaluators = list(quality_evaluators)
            if len(quality_evaluators) != n_reps:
                raise ValueError("need one quality evaluator per repetition")
        self._quality = _QualityLanes(quality_evaluators, self.trimmer)
        self._quality.fit(self.reference)

        if judges is None:
            judges = [BandExcessJudge(noise_sigma=0.0) for _ in range(n_reps)]
        else:
            judges = list(judges)
            if len(judges) != n_reps:
                raise ValueError("need one judge per repetition")
        reference_scores = getattr(self.trimmer, "reference_scores", None)
        if reference_scores is None:
            reference_scores = self.trimmer.scores(self.reference)
        table = getattr(self.trimmer, "reference_table", None)
        for judge in judges:
            if isinstance(judge, BandExcessJudge):
                judge.fit(table if table is not None else reference_scores)
            else:
                judge.fit(reference_scores)
        self._judges = _JudgeLanes(judges)

    # ------------------------------------------------------------------ #
    def session(
        self, horizon: Union[int, str, None] = "rounds"
    ) -> "BatchedGameSession":
        """Open a :class:`~repro.core.session.BatchedGameSession`.

        The rep-lane counterpart of :meth:`CollectionGame.session`:
        every stochastic component is rewound, then the caller drives
        the lockstep transition one ``submit((R, batch, ...))`` at a
        time.  ``horizon`` defaults to the engine's ``rounds``.  As
        with the solo engine, a newer ``session()``/``run()`` on the
        same engine supersedes any previous session.
        """
        from .session import BatchedGameSession

        previous = getattr(self, "_active_session", None)
        if previous is not None:
            previous._supersede()
        self.source.reset()
        self._collector_lanes.reset_many()
        self._adversary_lanes.reset_many()
        self.injector.reset()
        self._judges.reset()
        self._active_session = session = BatchedGameSession(
            collector_lanes=self._collector_lanes,
            adversary_lanes=self._adversary_lanes,
            injector=self.injector,
            trimmer=self.trimmer,
            per_rep_trimmers=self._trimmers,
            quality_lanes=self._quality,
            judge_lanes=self._judges,
            horizon=self.rounds if horizon == "rounds" else horizon,
            store_retained=self.store_retained,
            board=StackedBoard(self.n_reps, store_retained=self.store_retained),
        )
        return session

    def run(self) -> BatchedGameResult:
        """Play all rounds for every rep and return the stacked outcome.

        As with the solo engine, every stochastic component is rewound
        first, so running the same engine twice replays all R games
        identically.  The loop is a thin driver over
        :meth:`BatchedGameSession.submit
        <repro.core.session.BatchedGameSession.submit>` — the same
        lockstep transition the
        :class:`~repro.serving.DefenseService` multiplexes live
        sessions through.
        """
        session = self.session()
        for _ in range(self.rounds):
            session.submit(self.source.next_batches())
        return session.close()
