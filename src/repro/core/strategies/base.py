"""Strategy protocols for the online collection game.

Both parties play in percentile coordinates (§VI-A).  After every round the
public board (Fig. 3) exposes a :class:`RoundObservation` to both sides —
the complete-information / white-box setting of the threat model: each
party knows the other's previous-round position and the public quality
standard's verdict.

Collector strategies map the last observation to the next trimming
percentile; adversary strategies map it to the next injection percentile
(or ``None`` for no injection).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from ..arrays import Array, ArrayLike

__all__ = [
    "RoundObservation",
    "RoundObservationBatch",
    "CollectorStrategy",
    "AdversaryStrategy",
    "rng_state",
    "set_rng_state",
]


def rng_state(rng: np.random.Generator) -> dict[str, Any]:
    """The exact bit-state of a :class:`numpy.random.Generator`.

    The returned dict is a deep copy of ``rng.bit_generator.state`` — a
    plain-data document that fully determines every future draw.  The
    session snapshot layer (:mod:`repro.core.session`) carries these for
    every RNG consumer so a restored game replays byte-identically.
    """
    state: dict[str, Any] = copy.deepcopy(rng.bit_generator.state)
    return state


def set_rng_state(rng: np.random.Generator, state: dict[str, Any]) -> None:
    """Restore a Generator to a bit-state captured by :func:`rng_state`."""
    rng.bit_generator.state = copy.deepcopy(state)


@dataclass(frozen=True)
class RoundObservation:
    """Public-board record of one completed round.

    Attributes
    ----------
    index:
        1-based round number.
    trim_percentile:
        The trimming position the collector used this round.
    injection_percentile:
        The adversary's injection position (``None`` when no poison was
        injected).  Visible under the white-box/complete-information
        model — both parties can reconstruct it from the board.
    quality:
        ``Quality_Evaluation()`` score of the round's batch (higher =
        worse quality).
    observed_poison_ratio:
        The collector's (noisy) estimate of the fraction of the batch
        that was poisoned, as measured by the public quality standard.
    betrayal:
        The round-level compliance judgement: True when the observed
        behaviour deviated from the agreed standard.  Under
        non-deterministic utility this judgement is itself noisy (§V).
    """

    index: int
    trim_percentile: float
    injection_percentile: Optional[float]
    quality: float
    observed_poison_ratio: float
    betrayal: bool


@dataclass(frozen=True)
class RoundObservationBatch:
    """One completed round observed across R lockstep repetitions.

    The column-array counterpart of :class:`RoundObservation`: every
    public field is an ``(R,)`` array indexed by repetition, with
    ``injection_percentile`` using ``NaN`` where that rep's adversary
    injected nothing.  Vectorized strategy lanes
    (:mod:`repro.core.strategies.batched`) react to these columns in one
    array expression; :meth:`rep` slices out the scalar observation rep
    ``r``'s solo game would have seen — byte-identical field for field —
    which is what the per-rep fallback loop hands to non-vectorizable
    user strategies.
    """

    index: int
    trim_percentile: Array        # (R,) float
    injection_percentile: Array   # (R,) float, NaN = no injection
    quality: Array                # (R,) float
    observed_poison_ratio: Array  # (R,) float
    betrayal: Array               # (R,) bool

    @property
    def n_reps(self) -> int:
        """Number of repetition lanes."""
        return int(self.trim_percentile.shape[0])

    def rep(self, r: int) -> RoundObservation:
        """The scalar :class:`RoundObservation` of repetition ``r``."""
        injection = self.injection_percentile[r]
        return RoundObservation(
            index=self.index,
            trim_percentile=float(self.trim_percentile[r]),
            injection_percentile=(
                None if np.isnan(injection) else float(injection)
            ),
            quality=float(self.quality[r]),
            observed_poison_ratio=float(self.observed_poison_ratio[r]),
            betrayal=bool(self.betrayal[r]),
        )

    def take(self, indices: ArrayLike) -> "RoundObservationBatch":
        """The sub-batch of the given lane indices, in the given order.

        A fused cohort scatters one round's columns into per-family
        sub-groups; each value is the same float64 the lane's solo game
        observed, so downstream lane arithmetic stays byte-identical.
        """
        idx = np.asarray(indices, dtype=np.intp)
        return RoundObservationBatch(
            index=self.index,
            trim_percentile=self.trim_percentile[idx],
            injection_percentile=self.injection_percentile[idx],
            quality=self.quality[idx],
            observed_poison_ratio=self.observed_poison_ratio[idx],
            betrayal=self.betrayal[idx],
        )


class CollectorStrategy:
    """A trimming policy for the data collector.

    Lifecycle: :meth:`reset` at the start of a game, :meth:`first` for the
    opening round's threshold, then :meth:`react` once per subsequent
    round with the previous round's observation.
    """

    #: Human-readable scheme name used by experiment reports.
    name: str = "collector"

    def reset(self) -> None:
        """Clear internal state before a new game."""

    def first(self) -> float:
        """Trimming percentile for round 1."""
        raise NotImplementedError

    def react(self, last: RoundObservation) -> float:
        """Trimming percentile for the round after ``last``."""
        raise NotImplementedError

    def export_state(self) -> dict[str, Any]:
        """The strategy's *mutable* mid-game state as a plain-data dict.

        Everything :meth:`reset` would clear — and nothing else: static
        configuration (thresholds, offsets, seeds) stays on the object.
        The contract, relied on by session snapshots
        (:mod:`repro.core.session`): ``reset()`` followed by
        ``import_state(state)`` reproduces the exact point of play at
        which ``state`` was exported, including RNG bit-state.  Stateless
        strategies inherit this empty default.
        """
        return {}

    def import_state(self, state: dict[str, Any]) -> None:
        """Restore mid-game state captured by :meth:`export_state`."""


class AdversaryStrategy:
    """A poison-injection policy for the adversary.

    Mirrors :class:`CollectorStrategy`; returning ``None`` from
    :meth:`first`/:meth:`react` means no poison is injected that round
    (the Groundtruth scenario).
    """

    #: Human-readable scheme name used by experiment reports.
    name: str = "adversary"

    def reset(self) -> None:
        """Clear internal state before a new game."""

    def first(self) -> Optional[float]:
        """Injection percentile for round 1 (``None`` = no injection)."""
        raise NotImplementedError

    def react(self, last: RoundObservation) -> Optional[float]:
        """Injection percentile for the round after ``last``."""
        raise NotImplementedError

    def export_state(self) -> dict[str, Any]:
        """Mutable mid-game state (see ``CollectorStrategy.export_state``)."""
        return {}

    def import_state(self, state: dict[str, Any]) -> None:
        """Restore mid-game state captured by :meth:`export_state`."""
