"""The Elastic trigger strategy (Algorithm 2, Definition 2, §VI-A).

Instead of terminating cooperation, the Elastic collector applies a
*forgiving, proportional penalty*: the next round's threshold responds to
the observed deviation with strength ``k`` — the spring constant of the
interaction term ``U = k (u_a - u_c)² / 2`` whose Euler–Lagrange dynamics
oscillate (Theorem 4) instead of collapsing.

Two update rules are implemented (see DESIGN.md §4):

* ``rule="paper"`` — the §VI-A experimental rule, anchored at ``T_th``:

      ``T(i+1) = T_th + k · (A(i) - T_th - 1%)``

  where ``A(i)`` is the adversary's previous injection percentile (known
  under the white-box model).  The coupled collector/adversary map
  contracts at rate ``k`` per round.

* ``rule="relaxation"`` — an exponentially smoothed variant of the same
  target with smoothing weight ``k`` (the response-strength reading of
  Algorithm 2): the *stronger* the response, the *faster* the system
  reaches the interactive equilibrium — the behaviour Table IV reports
  (k = 0.5 converging quicker and cheaper than k = 0.1).

When the adversary's position is unobservable in a round (no injection),
the collector falls back to the quality-proportional rule of Algorithm 2:
``T = (1 - k·QE) · T_soft + k·QE · T_hard``.
"""

from __future__ import annotations

from typing import Any

from .base import AdversaryStrategy, CollectorStrategy, RoundObservation

__all__ = ["ElasticCollector", "ElasticAdversary"]

_RULES = ("paper", "relaxation")


class ElasticCollector(CollectorStrategy):
    """Algorithm 2: elastic proportional-response trimming.

    Parameters
    ----------
    t_th:
        Headline threshold ``T_th``.
    k:
        Response strength / spring constant in (0, 1).
    rule:
        ``"paper"`` or ``"relaxation"`` (see module docstring).
    init_offset:
        Initial trim position offset: §VI-A starts Elastic at
        ``T_th - 3%``.
    target_offset:
        The ``-1%`` in the paper rule: the collector aims just below the
        observed injection position.
    soft_offset / hard_offset:
        The lenient/punitive endpoints ``T̄``, ``T̲`` used by the
        quality-based fallback (Algorithm 2's convex combination).
    """

    def __init__(
        self,
        t_th: float,
        k: float,
        rule: str = "paper",
        init_offset: float = -0.03,
        target_offset: float = -0.01,
        soft_offset: float = 0.01,
        hard_offset: float = -0.03,
    ):
        if not 0.0 < t_th < 1.0:
            raise ValueError("t_th must be a percentile in (0, 1)")
        if not 0.0 < k < 1.0:
            raise ValueError("k must lie in (0, 1) for a contracting response")
        if rule not in _RULES:
            raise ValueError(f"rule must be one of {_RULES}")
        self.t_th = float(t_th)
        self.k = float(k)
        self.rule = rule
        self.init_offset = float(init_offset)
        self.target_offset = float(target_offset)
        self.soft_offset = float(soft_offset)
        self.hard_offset = float(hard_offset)
        self.name = f"elastic{self.k:g}"
        # Initialize through reset() so construction and game-over-game
        # reuse share one state path (the engine replays reset + first).
        self.reset()

    def _clip(self, q: float) -> float:
        return min(1.0, max(0.0, q))

    def reset(self) -> None:
        self._current = self.first()

    def export_state(self) -> dict[str, Any]:
        return {"current": self._current}

    def import_state(self, state: dict[str, Any]) -> None:
        self._current = float(state["current"])

    def first(self) -> float:
        """Initial trim position ``T_th - 3%`` (§VI-A)."""
        return self._clip(self.t_th + self.init_offset)

    def _paper_target(self, injection: float) -> float:
        """``T_th + k (A(i) - T_th + target_offset)``."""
        return self.t_th + self.k * (injection - self.t_th + self.target_offset)

    def _quality_fallback(self, quality_normalized: float) -> float:
        """Algorithm 2 verbatim: ``(1 - k·QE)·T̄ + k·QE·T̲``."""
        qe = min(1.0, max(0.0, quality_normalized))
        soft = self.t_th + self.soft_offset
        hard = self.t_th + self.hard_offset
        weight = self.k * qe
        return (1.0 - weight) * soft + weight * hard

    def react(self, last: RoundObservation) -> float:
        if last.injection_percentile is None:
            new = self._quality_fallback(last.quality)
        else:
            target = self._paper_target(last.injection_percentile)
            if self.rule == "paper":
                new = target
            else:  # relaxation: EMA toward the target with weight k
                new = (1.0 - self.k) * self._current + self.k * target
        self._current = self._clip(new)
        return self._current


class ElasticAdversary(AdversaryStrategy):
    """The adversary side of the §VI-A interactive Elastic dynamics.

    Opens at ``T_th + 1%`` and then responds to the collector's previous
    threshold with

        ``A(i+1) = T_th - 3% + k · (T(i) - T_th)``

    (rule ``"paper"``), or its exponentially smoothed counterpart
    (``"relaxation"``), mirroring :class:`ElasticCollector`.
    """

    def __init__(
        self,
        t_th: float,
        k: float,
        rule: str = "paper",
        init_offset: float = 0.01,
        base_offset: float = -0.03,
    ):
        if not 0.0 < t_th < 1.0:
            raise ValueError("t_th must be a percentile in (0, 1)")
        if not 0.0 < k < 1.0:
            raise ValueError("k must lie in (0, 1)")
        if rule not in _RULES:
            raise ValueError(f"rule must be one of {_RULES}")
        self.t_th = float(t_th)
        self.k = float(k)
        self.rule = rule
        self.init_offset = float(init_offset)
        self.base_offset = float(base_offset)
        self.name = f"elastic-adversary{self.k:g}"
        self.reset()

    def _clip(self, q: float) -> float:
        return min(1.0, max(0.0, q))

    def reset(self) -> None:
        self._current = self.first()

    def export_state(self) -> dict[str, Any]:
        return {"current": self._current}

    def import_state(self, state: dict[str, Any]) -> None:
        self._current = float(state["current"])

    def first(self) -> float:
        """Initial injection position ``T_th + 1%`` (§VI-A)."""
        return self._clip(self.t_th + self.init_offset)

    def react(self, last: RoundObservation) -> float:
        target = self.t_th + self.base_offset + self.k * (
            last.trim_percentile - self.t_th
        )
        if self.rule == "paper":
            new = target
        else:
            new = (1.0 - self.k) * self._current + self.k * target
        self._current = self._clip(new)
        return self._current
