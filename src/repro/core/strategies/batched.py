"""Vectorized strategy lanes: R repetitions react in one array op.

The batched engine (:class:`~repro.core.engine.BatchedCollectionGame`)
plays the R repetitions of one sweep cell in lockstep.  Strategies are
the only per-round Python it cannot vectorize generically — each rep
carries its own instance (own parameters resolved from the same recipe,
own RNG seeded with that rep's derivation-channel child, own diverging
state once the games differ).  This module closes that gap with the
**lane** protocol:

* :class:`CollectorLanes` / :class:`AdversaryLanes` — the vectorized
  strategy protocol: ``first_many() -> (R,)`` and
  ``react_many(observation_batch) -> (R,)`` percentile arrays (adversary
  lanes use ``NaN`` for "no injection").
* :func:`collector_lanes` / :func:`adversary_lanes` — dispatch a list of
  per-rep instances onto an array-native lane implementation.  Every
  shipped strategy (tit-for-tat, elastic, the baselines, the adversary
  family, the tit-for-tat variants) has one; anything else — including
  *subclasses* of shipped strategies, which may override ``react`` —
  lands on the documented per-rep fallback loop
  (:class:`FallbackCollectorLanes` / :class:`FallbackAdversaryLanes`)
  that simply calls each instance round by round.

Byte-identity contract: lane outputs equal, bit for bit, what the R solo
instances would have returned — vector implementations use the same
elementwise float64 expressions as the scalar ``react`` bodies, and any
per-rep RNG draw (mixed/uniform adversaries, generous forgiveness) is
taken from that rep's own Generator under exactly the solo call
conditions.  After the game, :meth:`CollectorLanes.finalize` writes
diverged state (grim-trigger flags, elastic positions) back onto the
instances so post-game inspection matches solo play.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from ..arrays import Array
from .adversaries import (
    FixedAdversary,
    JustBelowAdversary,
    MixedAdversary,
    NullAdversary,
    UniformRangeAdversary,
)
from .base import (
    AdversaryStrategy,
    CollectorStrategy,
    RoundObservationBatch,
)
from .baselines import OstrichCollector, StaticCollector
from .elastic import ElasticAdversary, ElasticCollector
from .titfortat import MixedStrategyTrigger, QualityTrigger, TitForTatCollector
from .variants import (
    GenerousCollector,
    MirrorCollector,
    TitForTwoTatsCollector,
)

__all__ = [
    "CollectorLanes",
    "AdversaryLanes",
    "FallbackCollectorLanes",
    "FallbackAdversaryLanes",
    "collector_lanes",
    "adversary_lanes",
    "register_collector_lanes",
    "register_adversary_lanes",
]


def _column(instances: Sequence[Any], attr: str) -> Array:
    """(L,) float64 parameter column packed from per-lane attributes."""
    return np.array([float(getattr(inst, attr)) for inst in instances])


class _Lanes:
    """Shared plumbing: per-rep instances plus the lockstep lifecycle."""

    #: Whether this implementation is a vectorized fast path (False for
    #: the per-rep fallback loops) — surfaced for tests and diagnostics.
    vectorized = True

    #: Fusion contract (audited by conformance rule CONF006): the
    #: strategy *family* this lane vectorizes — instances of one family
    #: fuse into a single lane group even when their parameters differ —
    #: and the names of the per-lane parameters the lane packs into
    #: ``(L,)`` columns.  Empty family means "never fuses" (the
    #: fallback loops); registered lane classes must declare both.
    #: ``fusion_params`` lists *constants* only — packed at build and
    #: never mutated (audited statically by REP006); running per-lane
    #: state columns (EMAs, betrayal latches) are declared separately
    #: in ``fusion_state``.
    fusion_family: str = ""
    fusion_params: Tuple[str, ...] = ()
    fusion_state: Tuple[str, ...] = ()

    @classmethod
    def group_key(cls, inst: Any) -> object:
        """Sub-family key: instances fuse only within one key.

        ``None`` (the default) means every instance of the strategy
        class fuses together.  Lanes whose vector program depends on a
        structural property (e.g. the tit-for-tat *trigger kind*)
        return that property so the planner splits on it.
        """
        return None

    def __init__(self, instances: Sequence[Any]) -> None:
        self.instances = list(instances)
        if not self.instances:
            raise ValueError("lanes need at least one instance")

    @property
    def n_reps(self) -> int:
        """Number of repetition lanes."""
        return len(self.instances)

    @property
    def name(self) -> str:
        """Display name (the shared strategy name of the lanes)."""
        return self.instances[0].name

    def reset_many(self) -> None:
        """Reset every rep's instance (solo ``run()`` parity)."""
        for inst in self.instances:
            inst.reset()

    def finalize(self) -> None:
        """Write diverged lane state back onto the instances (optional)."""


class CollectorLanes(_Lanes):
    """Vectorized collector protocol across R repetition lanes."""

    def first_many(self) -> Array:
        """(R,) trimming percentiles for round 1."""
        raise NotImplementedError

    def react_many(self, last: RoundObservationBatch) -> Array:
        """(R,) trimming percentiles for the round after ``last``."""
        raise NotImplementedError

    def terminated_rounds(self) -> List[Optional[int]]:
        """Per-rep ``terminated_round`` (None where cooperation held)."""
        return [
            getattr(inst, "terminated_round", None) for inst in self.instances
        ]


class AdversaryLanes(_Lanes):
    """Vectorized adversary protocol; ``NaN`` marks "no injection"."""

    def first_many(self) -> Array:
        """(R,) injection percentiles for round 1 (NaN = none)."""
        raise NotImplementedError

    def react_many(self, last: RoundObservationBatch) -> Array:
        """(R,) injection percentiles for the round after ``last``."""
        raise NotImplementedError


# --------------------------------------------------------------------- #
# fallback loops (any strategy, unconditionally byte-identical)
# --------------------------------------------------------------------- #
class FallbackCollectorLanes(CollectorLanes):
    """Per-rep loop for collectors without an array-native lane.

    Each round, rep ``r``'s instance receives the scalar
    :class:`~repro.core.strategies.base.RoundObservation` sliced from the
    observation batch — exactly the object its solo game would have seen
    — so arbitrary user strategies (stateful, randomized, anything)
    batch correctly at the cost of R Python calls per round.
    """

    vectorized = False
    fusion_family = "fallback"
    fusion_params = ()

    def first_many(self) -> Array:
        return np.array([float(inst.first()) for inst in self.instances])

    def react_many(self, last: RoundObservationBatch) -> Array:
        return np.array(
            [
                float(inst.react(last.rep(r)))
                for r, inst in enumerate(self.instances)
            ]
        )


class FallbackAdversaryLanes(AdversaryLanes):
    """Per-rep loop for adversaries without an array-native lane."""

    vectorized = False
    fusion_family = "fallback"
    fusion_params = ()

    @staticmethod
    def _as_position(value: Optional[float]) -> float:
        return np.nan if value is None else float(value)

    def first_many(self) -> Array:
        return np.array(
            [self._as_position(inst.first()) for inst in self.instances]
        )

    def react_many(self, last: RoundObservationBatch) -> Array:
        return np.array(
            [
                self._as_position(inst.react(last.rep(r)))
                for r, inst in enumerate(self.instances)
            ]
        )


# --------------------------------------------------------------------- #
# collectors
# --------------------------------------------------------------------- #
class _ConstantCollectorLanes(CollectorLanes):
    """Ostrich / static: the same position every round, per rep."""

    fusion_family = "constant"
    fusion_params = ("threshold",)

    @classmethod
    def build(cls, instances: Sequence[Any]) -> Optional["_ConstantCollectorLanes"]:
        return cls(instances)

    def __init__(self, instances: Sequence[Any]) -> None:
        super().__init__(instances)
        self._values = np.array([float(inst.first()) for inst in instances])

    def first_many(self) -> Array:
        return self._values

    def react_many(self, last: RoundObservationBatch) -> Array:
        return self._values


class _TitForTatLanes(CollectorLanes):
    """Algorithm 1 vectorized: per-rep grim-trigger state as arrays.

    Supports the shipped triggers: ``None`` (never fires),
    :class:`QualityTrigger` (stateless vector comparison) and
    :class:`MixedStrategyTrigger` (per-rep running betrayal counters).
    Mirroring the solo path, a rep's trigger stops updating once fired.
    Per-lane parameters (thresholds, trigger levels, counters) are
    packed into ``(L,)`` columns, so lanes with *different* parameters
    fuse as long as they share a trigger kind (the ``group_key``).
    """

    fusion_family = "titfortat"
    fusion_params = (
        "soft_percentile",
        "hard_percentile",
        "fire_level",
        "tolerance",
        "warmup",
    )

    @classmethod
    def group_key(cls, inst: Any) -> object:
        return type(inst.trigger)

    @classmethod
    def build(cls, instances: Sequence[Any]) -> Optional["_TitForTatLanes"]:
        triggers = [inst.trigger for inst in instances]
        kinds = {type(t) for t in triggers}
        if len(kinds) != 1:
            return None
        kind = kinds.pop()
        if kind is type(None):
            return cls(instances, mode="none")
        if kind is QualityTrigger:
            return cls(instances, mode="quality")
        if kind is MixedStrategyTrigger:
            return cls(instances, mode="mixed")
        return None  # user trigger: per-rep fallback

    def __init__(self, instances: Sequence[Any], mode: str) -> None:
        super().__init__(instances)
        self._mode = mode
        self._soft = _column(instances, "soft_percentile")
        self._hard = _column(instances, "hard_percentile")
        # Lane state seeds from the instances' *current* state (not a
        # fresh game), so lanes built mid-game — the DefenseService
        # multiplexing live sessions — continue each lane exactly where
        # its solo instance stands.  reset_many() rewinds to fresh.
        self._triggered = np.array(
            [bool(inst._triggered) for inst in instances]
        )
        self._terminated: List[Optional[int]] = [
            inst._terminated_round for inst in instances
        ]
        if mode == "quality":
            # Precomputing the scalar sum per lane reproduces the solo
            # trigger's `quality > reference_score + redundancy` bytes.
            self._fire_level = np.array(
                [
                    float(inst.trigger.reference_score)
                    + float(inst.trigger.redundancy)
                    for inst in instances
                ]
            )
        elif mode == "mixed":
            self._tolerance = np.array(
                [float(inst.trigger.tolerance) for inst in instances]
            )
            self._warmup = np.array(
                [int(inst.trigger.warmup) for inst in instances],
                dtype=np.int64,
            )
            self._rounds = np.array(
                [inst.trigger._rounds for inst in instances], dtype=np.int64
            )
            self._betrayals = np.array(
                [inst.trigger._betrayals for inst in instances],
                dtype=np.int64,
            )

    def reset_many(self) -> None:
        super().reset_many()
        self._triggered[:] = False
        self._terminated = [None] * self.n_reps
        if self._mode == "mixed":
            self._rounds[:] = 0
            self._betrayals[:] = 0

    def _fired(self, last: RoundObservationBatch, active: Array) -> Array:
        if self._mode == "none":
            return np.zeros(self.n_reps, dtype=bool)
        if self._mode == "quality":
            return last.quality > self._fire_level
        # mixed: counters only advance while the rep is untriggered,
        # matching the solo short-circuit in TitForTatCollector.react.
        self._rounds[active] += 1
        self._betrayals[active] += last.betrayal[active]
        with np.errstate(invalid="ignore"):
            ratio = self._betrayals / np.maximum(self._rounds, 1)
        return (self._rounds >= self._warmup) & (ratio > self._tolerance)

    def react_many(self, last: RoundObservationBatch) -> Array:
        active = ~self._triggered
        if active.any() and self._mode != "none":
            newly = active & self._fired(last, active)
            for r in np.flatnonzero(newly):
                self._terminated[r] = last.index
            self._triggered |= newly
        return np.where(self._triggered, self._hard, self._soft)

    def first_many(self) -> Array:
        return self._soft.copy()

    def terminated_rounds(self) -> List[Optional[int]]:
        return list(self._terminated)

    def finalize(self) -> None:
        for r, inst in enumerate(self.instances):
            inst._triggered = bool(self._triggered[r])
            inst._terminated_round = self._terminated[r]
            if self._mode == "mixed":
                # Restore the per-rep trigger counters so post-game
                # inspection (betrayal_ratio etc.) matches solo play.
                inst.trigger._rounds = int(self._rounds[r])
                inst.trigger._betrayals = int(self._betrayals[r])


class _ElasticCollectorLanes(CollectorLanes):
    """Algorithm 2 vectorized: the proportional response as array math.

    Every parameter is an ``(L,)`` column, the update rule a boolean
    mask — lanes with different ``t_th``/``k``/offsets and even
    different rules (`paper` vs `relaxation`) fuse into one program.
    """

    fusion_family = "elastic"
    fusion_params = (
        "t_th",
        "k",
        "rule",
        "target_offset",
        "soft_offset",
        "hard_offset",
    )
    fusion_state = ("current",)

    @classmethod
    def build(cls, instances: Sequence[Any]) -> Optional["_ElasticCollectorLanes"]:
        return cls(instances)

    def __init__(self, instances: Sequence[Any]) -> None:
        super().__init__(instances)
        self._t_th = _column(instances, "t_th")
        self._k = _column(instances, "k")
        self._target_offset = _column(instances, "target_offset")
        # Precomputed per lane exactly as the scalar body sums them.
        self._soft = np.array(
            [float(inst.t_th + inst.soft_offset) for inst in instances]
        )
        self._hard = np.array(
            [float(inst.t_th + inst.hard_offset) for inst in instances]
        )
        self._paper = np.array(
            [inst.rule == "paper" for inst in instances], dtype=bool
        )
        self._first = np.array([float(inst.first()) for inst in instances])
        # Seed from current instance positions (mid-game lane builds).
        self._current = np.array([float(inst._current) for inst in instances])

    def reset_many(self) -> None:
        super().reset_many()
        self._current = self._first.copy()

    def first_many(self) -> Array:
        return self._first.copy()

    def react_many(self, last: RoundObservationBatch) -> Array:
        injection = last.injection_percentile
        observed = ~np.isnan(injection)
        # Algorithm 2's quality fallback, elementwise identical to the
        # scalar `_quality_fallback`.
        qe = np.minimum(1.0, np.maximum(0.0, last.quality))
        weight = self._k * qe
        fallback = (1.0 - weight) * self._soft + weight * self._hard
        target = self._t_th + self._k * (
            injection - self._t_th + self._target_offset
        )
        # Both rules evaluate elementwise; the mask selects per lane.
        ema = (1.0 - self._k) * self._current + self._k * target
        responded = np.where(self._paper, target, ema)
        new = np.where(observed, responded, fallback)
        self._current = np.minimum(1.0, np.maximum(0.0, new))
        return self._current

    def finalize(self) -> None:
        for r, inst in enumerate(self.instances):
            inst._current = float(self._current[r])


class _MirrorLanes(CollectorLanes):
    """True tit-for-tat: echo the judged betrayal one round."""

    fusion_family = "mirror"
    fusion_params = ("soft_percentile", "hard_percentile")

    @classmethod
    def build(cls, instances: Sequence[Any]) -> Optional["_MirrorLanes"]:
        return cls(instances)

    def __init__(self, instances: Sequence[Any]) -> None:
        super().__init__(instances)
        self._soft = _column(instances, "soft_percentile")
        self._hard = _column(instances, "hard_percentile")

    def first_many(self) -> Array:
        return self._soft.copy()

    def react_many(self, last: RoundObservationBatch) -> Array:
        return np.where(last.betrayal, self._hard, self._soft)


class _GenerousLanes(_MirrorLanes):
    """Generous tit-for-tat: the forgiveness draw stays per rep.

    The solo path draws from the forgiveness stream **only on judged
    betrayals** (Python short-circuit), so the lanes replicate exactly
    that: rep ``r``'s Generator advances iff ``betrayal[r]``.
    """

    fusion_family = "generous"
    fusion_params = ("soft_percentile", "hard_percentile", "generosity")

    @classmethod
    def build(cls, instances: Sequence[Any]) -> Optional["_GenerousLanes"]:
        return cls(instances)

    def react_many(self, last: RoundObservationBatch) -> Array:
        out = self._soft.copy()
        for r in np.flatnonzero(last.betrayal):
            inst = self.instances[r]
            if inst._rng.random() >= inst.generosity:
                out[r] = self._hard[r]
        return out


class _TwoTatsLanes(_MirrorLanes):
    """Tit-for-two-tats: punish only two consecutive judged betrayals."""

    fusion_family = "two-tats"
    fusion_params = ("soft_percentile", "hard_percentile")
    fusion_state = ("previous_betrayal",)

    def __init__(self, instances: Sequence[Any]) -> None:
        super().__init__(instances)
        # Seed from current instance state (mid-game lane builds).
        self._previous = np.array(
            [bool(inst._previous_betrayal) for inst in instances]
        )

    def reset_many(self) -> None:
        super().reset_many()
        self._previous[:] = False

    def react_many(self, last: RoundObservationBatch) -> Array:
        punish = last.betrayal & self._previous
        self._previous = last.betrayal.copy()
        return np.where(punish, self._hard, self._soft)

    def finalize(self) -> None:
        for r, inst in enumerate(self.instances):
            inst._previous_betrayal = bool(self._previous[r])


# --------------------------------------------------------------------- #
# adversaries
# --------------------------------------------------------------------- #
class _NullAdversaryLanes(AdversaryLanes):
    """No injection in any lane, ever."""

    fusion_family = "null"
    fusion_params = ()

    @classmethod
    def build(cls, instances: Sequence[Any]) -> "_NullAdversaryLanes":
        return cls(instances)

    def first_many(self) -> Array:
        return np.full(self.n_reps, np.nan)

    def react_many(self, last: RoundObservationBatch) -> Array:
        return np.full(self.n_reps, np.nan)


class _FixedAdversaryLanes(AdversaryLanes):
    """One fixed percentile per lane."""

    fusion_family = "fixed"
    fusion_params = ("percentile",)

    @classmethod
    def build(cls, instances: Sequence[Any]) -> "_FixedAdversaryLanes":
        return cls(instances)

    def __init__(self, instances: Sequence[Any]) -> None:
        super().__init__(instances)
        self._values = np.array([float(inst.percentile) for inst in instances])

    def first_many(self) -> Array:
        return self._values

    def react_many(self, last: RoundObservationBatch) -> Array:
        return self._values


class _DrawAdversaryLanes(AdversaryLanes):
    """Uniform-range / mixed adversaries: per-rep Generator draws.

    The draw itself cannot be shared (each rep owns an independent
    stream), but a draw is O(1); the lanes just skip the observation
    slicing the fallback loop would pay.
    """

    fusion_family = "draw"
    fusion_params = ("draw",)

    @classmethod
    def build(cls, instances: Sequence[Any]) -> "_DrawAdversaryLanes":
        return cls(instances)

    def _draw_many(self) -> Array:
        return np.array([float(inst._draw()) for inst in self.instances])

    def first_many(self) -> Array:
        return self._draw_many()

    def react_many(self, last: RoundObservationBatch) -> Array:
        return self._draw_many()


class _JustBelowLanes(AdversaryLanes):
    """The ideal evasive attack, vectorized over the observed thresholds."""

    fusion_family = "just-below"
    fusion_params = ("initial_threshold", "margin")

    @classmethod
    def build(cls, instances: Sequence[Any]) -> Optional["_JustBelowLanes"]:
        return cls(instances)

    def __init__(self, instances: Sequence[Any]) -> None:
        super().__init__(instances)
        self._margin = _column(instances, "margin")
        self._first = np.array([float(inst.first()) for inst in instances])

    def first_many(self) -> Array:
        return self._first.copy()

    def react_many(self, last: RoundObservationBatch) -> Array:
        return np.maximum(
            0.0, np.minimum(1.0, last.trim_percentile - self._margin)
        )


class _ElasticAdversaryLanes(AdversaryLanes):
    """The elastic responder, vectorized like its collector twin."""

    fusion_family = "elastic-adversary"
    fusion_params = ("t_th", "k", "rule", "base_offset")
    fusion_state = ("current",)

    @classmethod
    def build(cls, instances: Sequence[Any]) -> Optional["_ElasticAdversaryLanes"]:
        return cls(instances)

    def __init__(self, instances: Sequence[Any]) -> None:
        super().__init__(instances)
        self._t_th = _column(instances, "t_th")
        self._k = _column(instances, "k")
        self._base = np.array(
            [float(inst.t_th + inst.base_offset) for inst in instances]
        )
        self._paper = np.array(
            [inst.rule == "paper" for inst in instances], dtype=bool
        )
        self._first = np.array([float(inst.first()) for inst in instances])
        # Seed from current instance positions (mid-game lane builds).
        self._current = np.array([float(inst._current) for inst in instances])

    def reset_many(self) -> None:
        super().reset_many()
        self._current = self._first.copy()

    def first_many(self) -> Array:
        return self._first.copy()

    def react_many(self, last: RoundObservationBatch) -> Array:
        # Same association as the scalar body: (t_th + base_offset) is
        # precomputed, then the response term is added.
        target = self._base + self._k * (last.trim_percentile - self._t_th)
        ema = (1.0 - self._k) * self._current + self._k * target
        new = np.where(self._paper, target, ema)
        self._current = np.minimum(1.0, np.maximum(0.0, new))
        return self._current

    def finalize(self) -> None:
        for r, inst in enumerate(self.instances):
            inst._current = float(self._current[r])


# --------------------------------------------------------------------- #
# dispatch
# --------------------------------------------------------------------- #
#: Exact-type lane registries.  Keyed on the concrete class (``type(x)
#: is cls``), *not* ``isinstance``: a user subclass may override
#: ``react`` with arbitrary logic, so it must land on the fallback loop.
_COLLECTOR_LANES = {
    OstrichCollector: _ConstantCollectorLanes,
    StaticCollector: _ConstantCollectorLanes,
    TitForTatCollector: _TitForTatLanes,
    ElasticCollector: _ElasticCollectorLanes,
    MirrorCollector: _MirrorLanes,
    GenerousCollector: _GenerousLanes,
    TitForTwoTatsCollector: _TwoTatsLanes,
}

_ADVERSARY_LANES = {
    NullAdversary: _NullAdversaryLanes,
    FixedAdversary: _FixedAdversaryLanes,
    UniformRangeAdversary: _DrawAdversaryLanes,
    MixedAdversary: _DrawAdversaryLanes,
    JustBelowAdversary: _JustBelowLanes,
    ElasticAdversary: _ElasticAdversaryLanes,
}


def register_collector_lanes(strategy_cls: type, lanes_cls: type) -> None:
    """Register an array-native lane implementation for a collector class.

    ``lanes_cls`` must provide a ``build(instances)`` classmethod
    returning the lanes (or ``None`` to decline, e.g. on parameter
    mismatch).  Registration is exact-type: subclasses still fall back.
    """
    _COLLECTOR_LANES[strategy_cls] = lanes_cls


def register_adversary_lanes(strategy_cls: type, lanes_cls: type) -> None:
    """Adversary-side counterpart of :func:`register_collector_lanes`."""
    _ADVERSARY_LANES[strategy_cls] = lanes_cls


def _dispatch(
    instances: Sequence[Any],
    registry: dict[type, type],
    fallback: type,
) -> Any:
    instances = list(instances)
    if not instances:
        raise ValueError("need at least one strategy instance")
    cls = type(instances[0])
    if all(type(inst) is cls for inst in instances):
        lanes_cls = registry.get(cls)
        if lanes_cls is not None:
            lanes = lanes_cls.build(instances)
            if lanes is not None:
                return lanes
    return fallback(instances)


def collector_lanes(instances: Sequence[CollectorStrategy]) -> CollectorLanes:
    """Vectorized (or fallback) lanes for R per-rep collector instances."""
    return _dispatch(instances, _COLLECTOR_LANES, FallbackCollectorLanes)


def adversary_lanes(instances: Sequence[AdversaryStrategy]) -> AdversaryLanes:
    """Vectorized (or fallback) lanes for R per-rep adversary instances."""
    return _dispatch(instances, _ADVERSARY_LANES, FallbackAdversaryLanes)
