"""Tit-for-tat variants (§V: "numerous variants of Tit-for-tat exist").

The paper's Algorithm 1 is a *grim trigger* — one judged betrayal ends
cooperation permanently.  §V notes the classic variants — the original
mirroring Tit-for-tat, Tit-for-two-tats [2] and Generous Tit-for-tat
[23] — "can also be adapted through Elastic strategies for repeated games
with uncertainty".  This module provides those adaptations in trimming
space, all reusing the per-round betrayal judgement of the engine:

* :class:`MirrorCollector` — true Tit-for-tat: punish exactly one round
  after a judged betrayal (hard trim), then return to soft trimming.
* :class:`GenerousCollector` — Generous Tit-for-tat: mirror, but forgive
  a judged betrayal with probability ``generosity``, which breaks the
  echo chains that noisy judgements otherwise sustain.
* :class:`TitForTwoTatsCollector` — only punish after two *consecutive*
  judged betrayals, absorbing isolated false positives entirely.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from .base import CollectorStrategy, RoundObservation, rng_state, set_rng_state

__all__ = ["MirrorCollector", "GenerousCollector", "TitForTwoTatsCollector"]


class _TwoLevelCollector(CollectorStrategy):
    """Shared soft/hard position plumbing for the variants."""

    def __init__(
        self,
        t_th: float,
        soft_offset: float = 0.01,
        hard_offset: float = -0.03,
    ):
        if not 0.0 < t_th < 1.0:
            raise ValueError("t_th must be a percentile in (0, 1)")
        self.t_th = float(t_th)
        self.soft_offset = float(soft_offset)
        self.hard_offset = float(hard_offset)

    @property
    def soft_percentile(self) -> float:
        """The lenient position ``T_th + soft_offset``, clipped."""
        return min(1.0, max(0.0, self.t_th + self.soft_offset))

    @property
    def hard_percentile(self) -> float:
        """The punitive position ``T_th + hard_offset``, clipped."""
        return min(1.0, max(0.0, self.t_th + self.hard_offset))

    def first(self) -> float:
        return self.soft_percentile


class MirrorCollector(_TwoLevelCollector):
    """True Tit-for-tat: echo the opponent's last judged action.

    Hard trim exactly in the round following a judged betrayal; soft trim
    otherwise.  Cooperation is never terminated — but under noisy
    judgements the strategy echoes false positives one-for-one, which is
    the §V motivation for redundancy and the Elastic relaxation.
    """

    name = "mirror"

    def react(self, last: RoundObservation) -> float:
        return self.hard_percentile if last.betrayal else self.soft_percentile


class GenerousCollector(_TwoLevelCollector):
    """Generous Tit-for-tat: mirror, but forgive with probability g.

    Forgiveness probabilistically breaks retaliation chains; Nowak &
    Sigmund's analysis puts the optimal ``g`` near
    ``min(1 - (T-R)/(R-S), (R-P)/(T-P))`` for prisoner's-dilemma payoffs
    — here it is simply a parameter.
    """

    def __init__(
        self,
        t_th: float,
        generosity: float = 0.3,
        soft_offset: float = 0.01,
        hard_offset: float = -0.03,
        seed: Optional[int] = None,
    ):
        super().__init__(t_th, soft_offset, hard_offset)
        if not 0.0 <= generosity <= 1.0:
            raise ValueError("generosity must be a probability")
        self.generosity = float(generosity)
        self._seed = seed
        self._rng = np.random.default_rng(seed)
        self.name = f"generous{self.generosity:g}"

    def reset(self) -> None:
        # Rewind the forgiveness stream so a reused (seeded) instance
        # replays identically game over game.
        self._rng = np.random.default_rng(self._seed)

    def export_state(self) -> dict[str, Any]:
        return {"rng": rng_state(self._rng)}

    def import_state(self, state: dict[str, Any]) -> None:
        set_rng_state(self._rng, state["rng"])

    def react(self, last: RoundObservation) -> float:
        if last.betrayal and self._rng.random() >= self.generosity:
            return self.hard_percentile
        return self.soft_percentile


class TitForTwoTatsCollector(_TwoLevelCollector):
    """Punish only after two consecutive judged betrayals.

    A single (possibly spurious) judgement is absorbed; two in a row
    trigger one punitive round.  With per-round false-positive rate α the
    spurious-punishment rate drops from α to roughly α², the cheap route
    to noise tolerance Axelrod & Hamilton's variant embodies.
    """

    name = "tit-for-two-tats"

    def __init__(
        self,
        t_th: float,
        soft_offset: float = 0.01,
        hard_offset: float = -0.03,
    ):
        super().__init__(t_th, soft_offset, hard_offset)
        self._previous_betrayal = False

    def reset(self) -> None:
        self._previous_betrayal = False

    def export_state(self) -> dict[str, Any]:
        return {"previous_betrayal": self._previous_betrayal}

    def import_state(self, state: dict[str, Any]) -> None:
        self._previous_betrayal = bool(state["previous_betrayal"])

    def react(self, last: RoundObservation) -> float:
        punish = last.betrayal and self._previous_betrayal
        self._previous_betrayal = last.betrayal
        return self.hard_percentile if punish else self.soft_percentile
