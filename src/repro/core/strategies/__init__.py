"""Collector and adversary strategies of the online trimming game."""

from .adversaries import (
    FixedAdversary,
    JustBelowAdversary,
    MixedAdversary,
    NullAdversary,
    UniformRangeAdversary,
)
from .base import AdversaryStrategy, CollectorStrategy, RoundObservation
from .baselines import OstrichCollector, StaticCollector
from .elastic import ElasticAdversary, ElasticCollector
from .titfortat import MixedStrategyTrigger, QualityTrigger, TitForTatCollector
from .variants import GenerousCollector, MirrorCollector, TitForTwoTatsCollector

__all__ = [
    "AdversaryStrategy",
    "CollectorStrategy",
    "RoundObservation",
    "OstrichCollector",
    "StaticCollector",
    "TitForTatCollector",
    "QualityTrigger",
    "MixedStrategyTrigger",
    "ElasticCollector",
    "ElasticAdversary",
    "NullAdversary",
    "FixedAdversary",
    "UniformRangeAdversary",
    "JustBelowAdversary",
    "MixedAdversary",
    "MirrorCollector",
    "GenerousCollector",
    "TitForTwoTatsCollector",
]
