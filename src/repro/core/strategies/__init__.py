"""Collector and adversary strategies of the online trimming game."""

from .adversaries import (
    FixedAdversary,
    JustBelowAdversary,
    MixedAdversary,
    NullAdversary,
    UniformRangeAdversary,
)
from .base import (
    AdversaryStrategy,
    CollectorStrategy,
    RoundObservation,
    RoundObservationBatch,
)
from .baselines import OstrichCollector, StaticCollector
from .batched import (
    AdversaryLanes,
    CollectorLanes,
    FallbackAdversaryLanes,
    FallbackCollectorLanes,
    adversary_lanes,
    collector_lanes,
    register_adversary_lanes,
    register_collector_lanes,
)
from .elastic import ElasticAdversary, ElasticCollector
from .titfortat import MixedStrategyTrigger, QualityTrigger, TitForTatCollector
from .variants import GenerousCollector, MirrorCollector, TitForTwoTatsCollector

__all__ = [
    "AdversaryStrategy",
    "CollectorStrategy",
    "RoundObservation",
    "RoundObservationBatch",
    "CollectorLanes",
    "AdversaryLanes",
    "FallbackCollectorLanes",
    "FallbackAdversaryLanes",
    "collector_lanes",
    "adversary_lanes",
    "register_collector_lanes",
    "register_adversary_lanes",
    "OstrichCollector",
    "StaticCollector",
    "TitForTatCollector",
    "QualityTrigger",
    "MixedStrategyTrigger",
    "ElasticCollector",
    "ElasticAdversary",
    "NullAdversary",
    "FixedAdversary",
    "UniformRangeAdversary",
    "JustBelowAdversary",
    "MixedAdversary",
    "MirrorCollector",
    "GenerousCollector",
    "TitForTwoTatsCollector",
]
