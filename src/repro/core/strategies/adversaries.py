"""Adversary strategies (§III-A threat model, §VI-A schemes, §VI-D).

The threat model is colluding (Sybil poison mass is coordinated),
opportunistic (positions chosen to maximize deviation) and evasive
(positions adapt to the observed defense).  Each class below realizes one
of the attack behaviours used in the experiments:

* :class:`NullAdversary` — no injection (the Groundtruth scheme).
* :class:`FixedAdversary` — always inject at one percentile (the Ostrich
  opponent injects at the 99th).
* :class:`UniformRangeAdversary` — inject uniformly in a percentile range
  (the Baseline 0.9 opponent uses [0.9, 1]).
* :class:`JustBelowAdversary` — the *ideal attack* of Baseline static:
  perfectly evades a known static threshold by injecting at
  ``T_th - 1%``, always just under the knife.
* :class:`MixedAdversary` — the §VI-D evasion family: play the
  equilibrium position with probability ``p`` and the greedy position
  with ``1 - p`` (a mixed strategy over the two basis points of
  §III-C2).
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from .base import AdversaryStrategy, RoundObservation, rng_state, set_rng_state

__all__ = [
    "NullAdversary",
    "FixedAdversary",
    "UniformRangeAdversary",
    "JustBelowAdversary",
    "MixedAdversary",
]


class NullAdversary(AdversaryStrategy):
    """Injects nothing — the Groundtruth scenario."""

    name = "groundtruth"

    def first(self) -> Optional[float]:
        return None

    def react(self, last: RoundObservation) -> Optional[float]:
        return None


class FixedAdversary(AdversaryStrategy):
    """Always inject at a fixed percentile (Ostrich's opponent: 0.99)."""

    def __init__(self, percentile: float = 0.99):
        if not 0.0 <= percentile <= 1.0:
            raise ValueError("percentile must lie in [0, 1]")
        self.percentile = float(percentile)
        self.name = f"fixed@{self.percentile:.2f}"

    def first(self) -> float:
        return self.percentile

    def react(self, last: RoundObservation) -> float:
        return self.percentile


class UniformRangeAdversary(AdversaryStrategy):
    """Inject uniformly at random inside a percentile range.

    The Baseline 0.9 opponent randomizes over [0.9, 1] — an unsophisticated
    randomized evasion against a static defense.
    """

    def __init__(self, low: float = 0.9, high: float = 1.0, seed: Optional[int] = None):
        if not 0.0 <= low < high <= 1.0:
            raise ValueError("need 0 <= low < high <= 1")
        self.low = float(low)
        self.high = float(high)
        self._seed = seed
        self._rng = np.random.default_rng(seed)
        self.name = f"uniform[{self.low:.2f},{self.high:.2f}]"

    def reset(self) -> None:
        # Rewind the position stream: the engine resets every component
        # at the start of run(), so a reused seeded instance replays the
        # identical game.  Sweeps wanting fresh positions per repetition
        # build fresh instances with per-cell derived seeds.
        self._rng = np.random.default_rng(self._seed)

    def export_state(self) -> dict[str, Any]:
        return {"rng": rng_state(self._rng)}

    def import_state(self, state: dict[str, Any]) -> None:
        set_rng_state(self._rng, state["rng"])

    def _draw(self) -> float:
        return float(self._rng.uniform(self.low, self.high))

    def first(self) -> float:
        return self._draw()

    def react(self, last: RoundObservation) -> float:
        return self._draw()


class JustBelowAdversary(AdversaryStrategy):
    """The ideal evasive attack: inject just below the observed threshold.

    Baseline static (§VI-A): the adversary "has the ability to accurately
    determine the data collector's T_th for each round and always adds
    poison values at the location that benefits itself the most" —
    ``T_th - margin`` with margin 1%.
    """

    name = "just-below"

    def __init__(self, initial_threshold: float, margin: float = 0.01):
        if not 0.0 < initial_threshold <= 1.0:
            raise ValueError("initial_threshold must be a percentile")
        if margin <= 0.0:
            raise ValueError("margin must be positive")
        self.initial_threshold = float(initial_threshold)
        self.margin = float(margin)

    def _position(self, threshold: float) -> float:
        return max(0.0, min(1.0, threshold - self.margin))

    def first(self) -> float:
        return self._position(self.initial_threshold)

    def react(self, last: RoundObservation) -> float:
        return self._position(last.trim_percentile)


class MixedAdversary(AdversaryStrategy):
    """The §VI-D two-point mixed strategy, parameterized by ``p``.

    Each round, play the *equilibrium* position (99th percentile — the
    Stackelberg-compliant behaviour) with probability ``p`` and the
    *greedy* position (90th percentile — short-sighted betrayal that slips
    under the soft trim) with probability ``1 - p``.  ``p = 1`` is the
    fully rational equilibrium adversary; ``p = 0`` the greedy and
    shortsighted one; every evasion strategy in between is a mixture
    (§III-C2).
    """

    def __init__(
        self,
        p: float,
        equilibrium_position: float = 0.99,
        greedy_position: float = 0.90,
        seed: Optional[int] = None,
    ):
        if not 0.0 <= p <= 1.0:
            raise ValueError("p must be a probability")
        if not 0.0 <= greedy_position < equilibrium_position <= 1.0:
            raise ValueError("need 0 <= greedy < equilibrium <= 1")
        self.p = float(p)
        self.equilibrium_position = float(equilibrium_position)
        self.greedy_position = float(greedy_position)
        self._seed = seed
        self._rng = np.random.default_rng(seed)
        self.name = f"mixed(p={self.p:g})"
        self.last_was_greedy = False

    def reset(self) -> None:
        self.last_was_greedy = False
        # Rewind the draw stream so a reused seeded instance replays
        # identically (see UniformRangeAdversary.reset).
        self._rng = np.random.default_rng(self._seed)

    def export_state(self) -> dict[str, Any]:
        return {
            "rng": rng_state(self._rng),
            "last_was_greedy": self.last_was_greedy,
        }

    def import_state(self, state: dict[str, Any]) -> None:
        set_rng_state(self._rng, state["rng"])
        self.last_was_greedy = bool(state["last_was_greedy"])

    def _draw(self) -> float:
        if self._rng.random() < self.p:
            self.last_was_greedy = False
            return self.equilibrium_position
        self.last_was_greedy = True
        return self.greedy_position

    def first(self) -> float:
        return self._draw()

    def react(self, last: RoundObservation) -> float:
        return self._draw()
