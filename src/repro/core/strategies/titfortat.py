"""The Tit-for-tat collector strategy (Algorithm 1, §V-A, §VI-A, §VI-D).

Tit-for-tat is a rigid trigger strategy: the collector opens with a
*soft* (lenient) trimming position and, upon the first judged betrayal,
permanently switches to a *hard* (aggressive) position — the grim-trigger
flavour of the classic strategy adapted to trimming.

Two trigger policies are provided:

* :class:`QualityTrigger` — Algorithm 1 verbatim: fire when the round's
  ``Quality_Evaluation`` score exceeds the clean-reference score plus a
  redundancy ``Red``.  Redundancy protects against benign jitter when
  utility is non-deterministic (§V).
* :class:`MixedStrategyTrigger` — the §VI-D experimental trigger: both
  parties acknowledge a declared mixed strategy with equilibrium
  probability ``p``; the collector tracks the running fraction of judged
  betrayals and fires when it exceeds the expectation ``1 - p`` plus the
  redundancy.  With noisy per-round judgements this reproduces the
  Table III termination behaviour (earlier termination for larger ``p``,
  never for ``p = 0``).
"""

from __future__ import annotations

from typing import Any, Optional

from .base import CollectorStrategy, RoundObservation

__all__ = ["QualityTrigger", "MixedStrategyTrigger", "TitForTatCollector"]


class QualityTrigger:
    """Fire when the quality score exceeds ``reference + redundancy``.

    Scores follow the library convention *higher = worse quality*, so the
    Algorithm 1 comparison ``QE(X_i) < QE(X_0) + Red`` (stated for a
    goodness metric) becomes ``score > reference + redundancy`` here.
    """

    def __init__(self, reference_score: float, redundancy: float):
        if redundancy < 0.0:
            raise ValueError("redundancy must be non-negative")
        self.reference_score = float(reference_score)
        self.redundancy = float(redundancy)

    def reset(self) -> None:
        """Stateless; present for interface uniformity."""

    def export_state(self) -> dict[str, Any]:
        """Stateless: nothing survives :meth:`reset`."""
        return {}

    def import_state(self, state: dict[str, Any]) -> None:
        """Stateless; present for interface uniformity."""

    def fired(self, last: RoundObservation) -> bool:
        """True when the observed quality breaches the tolerance band."""
        return last.quality > self.reference_score + self.redundancy


class MixedStrategyTrigger:
    """Running-betrayal-ratio trigger against a declared mixed strategy.

    The adversary declares playing the equilibrium position with
    probability ``p`` (and betraying with ``1 - p``); the collector
    tolerates an observed betrayal *rate* up to ``1 - p + redundancy``
    (§VI-D: the stopping condition is the first observation where the
    betrayal ratio exceeds ``1 - p + 0.05``).

    The per-round betrayal judgement comes from the observation and may be
    noisy — false positives are what terminate even fully compliant play
    in the long run (the "probability of termination converges to 1"
    remark of §V-B).  The running *ratio* is only tested after ``warmup``
    judged rounds, realizing the Algorithm 1 role of redundancy "to
    ensure that the termination round is not too small": a single early
    judgement would otherwise swing the ratio across any tolerance.
    """

    def __init__(
        self,
        equilibrium_probability: float,
        redundancy: float = 0.05,
        warmup: int = 10,
    ):
        if not 0.0 <= equilibrium_probability <= 1.0:
            raise ValueError("equilibrium_probability must be a probability")
        if redundancy < 0.0:
            raise ValueError("redundancy must be non-negative")
        if warmup < 1:
            raise ValueError("warmup must be >= 1")
        self.equilibrium_probability = float(equilibrium_probability)
        self.redundancy = float(redundancy)
        self.warmup = int(warmup)
        self._rounds = 0
        self._betrayals = 0

    @property
    def tolerance(self) -> float:
        """The trigger threshold ``1 - p + Red`` on the betrayal rate."""
        return 1.0 - self.equilibrium_probability + self.redundancy

    @property
    def betrayal_ratio(self) -> float:
        """The current running betrayal ratio."""
        if self._rounds == 0:
            return 0.0
        return self._betrayals / self._rounds

    def reset(self) -> None:
        self._rounds = 0
        self._betrayals = 0

    def export_state(self) -> dict[str, Any]:
        """The running betrayal counters (see base ``export_state``)."""
        return {"rounds": self._rounds, "betrayals": self._betrayals}

    def import_state(self, state: dict[str, Any]) -> None:
        self._rounds = int(state["rounds"])
        self._betrayals = int(state["betrayals"])

    def fired(self, last: RoundObservation) -> bool:
        """Update the running ratio with ``last`` and test the threshold."""
        self._rounds += 1
        if last.betrayal:
            self._betrayals += 1
        if self._rounds < self.warmup:
            return False
        return self.betrayal_ratio > self.tolerance


class TitForTatCollector(CollectorStrategy):
    """Algorithm 1: soft trimming until triggered, then hard forever.

    Parameters
    ----------
    t_th:
        The headline threshold ``T_th`` of §VI-A (e.g. 0.9 or 0.97).
    trigger:
        A trigger policy (:class:`QualityTrigger` or
        :class:`MixedStrategyTrigger`); ``None`` disables triggering —
        the "assumed not to experience early terminations" setting of the
        equilibrium experiments (§VI-B).
    soft_offset / hard_offset:
        Percentile offsets of the two positions: untriggered trims at
        ``T_th + 1%`` and triggered at ``T_th - 3%`` per §VI-A.
    """

    name = "titfortat"

    def __init__(
        self,
        t_th: float,
        trigger: Any = None,
        soft_offset: float = 0.01,
        hard_offset: float = -0.03,
    ):
        if not 0.0 < t_th < 1.0:
            raise ValueError("t_th must be a percentile in (0, 1)")
        self.t_th = float(t_th)
        self.trigger = trigger
        self.soft_offset = float(soft_offset)
        self.hard_offset = float(hard_offset)
        self._triggered = False
        self._terminated_round: Optional[int] = None
        self.reset()

    # ------------------------------------------------------------------ #
    @property
    def soft_percentile(self) -> float:
        """The lenient position ``T_th + soft_offset``, clipped to [0, 1]."""
        return min(1.0, max(0.0, self.t_th + self.soft_offset))

    @property
    def hard_percentile(self) -> float:
        """The punitive position ``T_th + hard_offset``, clipped to [0, 1]."""
        return min(1.0, max(0.0, self.t_th + self.hard_offset))

    @property
    def triggered(self) -> bool:
        """Whether the grim trigger has fired in this game."""
        return self._triggered

    @property
    def terminated_round(self) -> Optional[int]:
        """Round index at which cooperation terminated (None = never).

        ``Round_terminate`` of Algorithm 1: the round whose observation
        fired the trigger.
        """
        return self._terminated_round

    # ------------------------------------------------------------------ #
    def reset(self) -> None:
        self._triggered = False
        self._terminated_round = None
        if self.trigger is not None:
            self.trigger.reset()

    def export_state(self) -> dict[str, Any]:
        state = {
            "triggered": self._triggered,
            "terminated_round": self._terminated_round,
        }
        if self.trigger is not None:
            exporter = getattr(self.trigger, "export_state", None)
            state["trigger"] = exporter() if callable(exporter) else {}
        return state

    def import_state(self, state: dict[str, Any]) -> None:
        self._triggered = bool(state["triggered"])
        terminated = state["terminated_round"]
        self._terminated_round = None if terminated is None else int(terminated)
        if self.trigger is not None and "trigger" in state:
            importer = getattr(self.trigger, "import_state", None)
            if callable(importer):
                importer(state["trigger"])

    def first(self) -> float:
        return self.soft_percentile

    def react(self, last: RoundObservation) -> float:
        if not self._triggered and self.trigger is not None:
            if self.trigger.fired(last):
                self._triggered = True
                self._terminated_round = last.index
        return self.hard_percentile if self._triggered else self.soft_percentile
