"""Baseline collector schemes of §VI-A.

* **Ostrich** — no defensive measures: accepts every value (trimming
  percentile 1.0).  Named after the bird; optimal when almost nothing is
  poisoned, catastrophic otherwise.
* **Static threshold** — trims at a fixed percentile every round; the
  collector side of both ``Baseline 0.9`` and ``Baseline static``.  Static
  defenses are exactly what evasive adversaries circumvent (§I), which the
  ``Baseline static`` ideal attack demonstrates.
"""

from __future__ import annotations

from .base import CollectorStrategy, RoundObservation

__all__ = ["OstrichCollector", "StaticCollector"]


class OstrichCollector(CollectorStrategy):
    """Accept everything: trimming percentile pinned to 1.0."""

    name = "ostrich"

    def first(self) -> float:
        return 1.0

    def react(self, last: RoundObservation) -> float:
        return 1.0


class StaticCollector(CollectorStrategy):
    """Trim at a fixed percentile ``threshold`` every round."""

    name = "static"

    def __init__(self, threshold: float):
        if not 0.0 < threshold <= 1.0:
            raise ValueError("threshold must be a percentile in (0, 1]")
        self.threshold = float(threshold)
        self.name = f"static@{self.threshold:.2f}"

    def first(self) -> float:
        return self.threshold

    def react(self, last: RoundObservation) -> float:
        return self.threshold
