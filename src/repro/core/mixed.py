"""Mixed-strategy reduction of arbitrary poison distributions (§III-C2).

The paper's completeness argument: any poison-value distribution supported
on the strategy interval ``[x_L, x_R]`` is, in expectation, equivalent to a
*mixed strategy* that plays the left endpoint ``x_L`` with probability
``p_L`` and the right endpoint ``x_R`` with probability ``p_R = 1 - p_L``
(Fig. 1b).  Because payoffs are additive over injected values, matching the
first moment of the distribution suffices for the game analysis, which
collapses the infinite-dimensional distribution space onto a single point
of the two-endpoint simplex.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .arrays import Array, ArrayLike
from .domain import clip_percentile

__all__ = ["MixedStrategy", "reduce_distribution"]


@dataclass(frozen=True)
class MixedStrategy:
    """A two-endpoint mixed strategy ``p_L·x_L + p_R·x_R``.

    ``p_left`` is the probability mass on the soft endpoint ``x_L``; the
    complement sits on the hard endpoint ``x_R``.
    """

    x_left: float
    x_right: float
    p_left: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.p_left <= 1.0:
            raise ValueError("p_left must be a probability")
        if self.x_left > self.x_right:
            raise ValueError("x_left must not exceed x_right")

    @property
    def p_right(self) -> float:
        """Probability mass on the hard endpoint ``x_R``."""
        return 1.0 - self.p_left

    @property
    def mean(self) -> float:
        """Expected injection position ``p_L·x_L + p_R·x_R``."""
        return self.p_left * self.x_left + self.p_right * self.x_right

    def sample(self, rng: np.random.Generator, size: int) -> Array:
        """Draw ``size`` injection positions from the mixed strategy."""
        if size < 0:
            raise ValueError("size must be non-negative")
        hard = rng.random(size) >= self.p_left
        out = np.full(size, self.x_left, dtype=float)
        out[hard] = self.x_right
        return out

    def expected_payoff(self, payoff: Callable[[float], float]) -> float:
        """Expectation of a pointwise payoff function under the mixture."""
        return self.p_left * float(payoff(self.x_left)) + self.p_right * float(
            payoff(self.x_right)
        )


def reduce_distribution(
    samples: ArrayLike, x_left: float, x_right: float
) -> MixedStrategy:
    """Reduce an arbitrary poison-position distribution to a mixed strategy.

    Given empirical injection positions ``samples`` (percentile
    coordinates), returns the unique two-endpoint mixture on
    ``[x_left, x_right]`` with the same mean.  Samples outside the interval
    are clipped first — by Definition 1 no rational play falls outside the
    strategy space, and clipping is how the collector would perceive such
    positions anyway (below ``x_L`` poison is indistinguishable from benign
    mass, above ``x_R`` it is trimmed unconditionally).
    """
    arr = np.asarray(samples, dtype=float).ravel()
    if arr.size == 0:
        raise ValueError("cannot reduce an empty distribution")
    x_l = clip_percentile(x_left)
    x_r = clip_percentile(x_right)
    if x_l >= x_r:
        raise ValueError("x_left must be strictly below x_right")
    clipped = np.clip(arr, x_l, x_r)
    mean = float(np.mean(clipped))
    p_left = (x_r - mean) / (x_r - x_l)
    return MixedStrategy(x_left=x_l, x_right=x_r, p_left=float(np.clip(p_left, 0.0, 1.0)))
