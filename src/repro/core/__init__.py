"""Core game-theoretic model: payoffs, games, analytics, strategies, engine."""

from .domain import (
    Domain,
    QuantileTable,
    empirical_quantile,
    percentile_grid,
    percentile_of,
)
from .engine import (
    BandExcessJudge,
    BatchedCollectionGame,
    BatchedGameResult,
    CollectionGame,
    GameResult,
    NoisyPositionJudge,
)
from .game import (
    HARD,
    SOFT,
    BimatrixGame,
    UltimatumPayoffs,
    build_ultimatum_game,
    solve_zero_sum,
)
from .horizon import InfiniteHorizonAnalysis, backward_induction
from .lagrangian import (
    ElasticLagrangian,
    FreeLagrangian,
    TitForTatLagrangian,
    action,
    euler_lagrange_residual,
    least_action_path,
)
from .mixed import MixedStrategy, reduce_distribution
from .oscillator import CoupledUtilityOscillator
from .payoffs import PayoffModel, power_poison_gain, power_trim_cost
from .quality import (
    KolmogorovSmirnovEvaluator,
    MeanShiftEvaluator,
    QualityEvaluator,
    TailMassEvaluator,
)
from .repeated import RepeatedGameModel
from .stackelberg import (
    BestResponseDynamics,
    StackelbergSolution,
    linear_response_fixed_point,
    solve_stackelberg,
)
from .trimming import (
    BatchTrimReport,
    RadialTrimmer,
    Trimmer,
    TrimReport,
    ValueTrimmer,
)

__all__ = [
    "Domain",
    "QuantileTable",
    "empirical_quantile",
    "percentile_of",
    "percentile_grid",
    "PayoffModel",
    "power_poison_gain",
    "power_trim_cost",
    "MixedStrategy",
    "reduce_distribution",
    "BimatrixGame",
    "UltimatumPayoffs",
    "build_ultimatum_game",
    "solve_zero_sum",
    "SOFT",
    "HARD",
    "backward_induction",
    "InfiniteHorizonAnalysis",
    "StackelbergSolution",
    "solve_stackelberg",
    "BestResponseDynamics",
    "linear_response_fixed_point",
    "RepeatedGameModel",
    "FreeLagrangian",
    "ElasticLagrangian",
    "TitForTatLagrangian",
    "action",
    "euler_lagrange_residual",
    "least_action_path",
    "CoupledUtilityOscillator",
    "QualityEvaluator",
    "TailMassEvaluator",
    "KolmogorovSmirnovEvaluator",
    "MeanShiftEvaluator",
    "Trimmer",
    "ValueTrimmer",
    "RadialTrimmer",
    "TrimReport",
    "BandExcessJudge",
    "NoisyPositionJudge",
    "CollectionGame",
    "GameResult",
    "BatchedCollectionGame",
    "BatchedGameResult",
    "BatchTrimReport",
]
