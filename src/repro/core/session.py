"""Push-driven game sessions: the engine's round transition, inverted.

:class:`~repro.core.engine.CollectionGame.run` owns a pull loop — it
drains a pre-materialized stream and returns only when the horizon ends.
That shape cannot serve live traffic: a deployable defense is a *reactive
transition function* whose caller owns the loop, supplies the data, and
may stop, pause or migrate at any round.  This module extracts that
transition:

* :class:`GameSession` — one tenant's live game.  ``submit(batch)`` plays
  exactly one round of the §IV collection game (adversary reaction,
  poison materialization, trimming, quality evaluation, compliance
  judgement, board recording) and returns a :class:`RoundDecision`;
  ``close()`` seals the session into the familiar
  :class:`~repro.core.engine.GameResult`.  ``CollectionGame.run()`` is
  now a thin driver over this transition — byte-identical to the
  historical loop, pinned by the test suite.
* :meth:`GameSession.snapshot` / :meth:`GameSession.restore` — complete
  mid-game state capture: strategy state, every RNG consumer's
  ``Generator`` bit-state, the board's column arrays and the horizon
  position.  A session suspended in one process resumes byte-identically
  in another.
* :class:`BatchedGameSession` — the rep-lane counterpart: one
  ``submit((R, batch, ...))`` call steps R lockstep games through the
  PR-3 vectorized kernels.  ``BatchedCollectionGame.run()`` drives it,
  and the :class:`~repro.serving.DefenseService` multiplexer uses it to
  batch *across live tenants* the way the sweep runtime batches across
  repetitions.

Snapshot format
---------------
``snapshot()`` returns a pickled envelope tagged :data:`SNAPSHOT_FORMAT`
that carries (a) the calibrated components themselves and (b) the
structured ``state_dict()`` — each stateful component's
``export_state()`` document.  ``restore()`` rebuilds the components,
``reset()``s every one that exports authoritative state, and replays the
state document through ``import_state()``; the byte-identity of the
continued game (tested across the full shipped strategy matrix) is the
proof that the exported state is complete.  Snapshots are a *process
migration* format, not an archival one: they are tied to the package
version that wrote them and to pickle availability (see README,
"Serving live streams").
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .arrays import Array, ArrayLike

if TYPE_CHECKING:
    from .engine import BatchedGameResult, GameResult
    from .payoffs import PayoffModel

from ..streams.board import BoardEntry, PublicBoard, StackedBoard
from ..streams.injection import BatchedInjector, PoisonInjector
from ..streams.source import StreamSource
from .strategies.base import (
    AdversaryStrategy,
    CollectorStrategy,
    RoundObservation,
    RoundObservationBatch,
)
from .trimming import BatchTrimReport, Trimmer

__all__ = [
    "SNAPSHOT_FORMAT",
    "SnapshotError",
    "RoundPayoffs",
    "RoundDecision",
    "BatchedRoundDecision",
    "LaneRoundDecision",
    "GameSession",
    "BatchedGameSession",
    "round_payoffs",
    "stack_observations",
]

#: Snapshot envelope tag; bumped when the layout changes incompatibly.
SNAPSHOT_FORMAT = "repro.session/1"


class SnapshotError(ValueError):
    """A session snapshot blob could not be restored.

    Raised for every failure mode of :meth:`GameSession.restore` —
    corrupt or truncated bytes, a foreign/stale envelope format, a
    structurally broken payload, or pickled components referencing code
    that no longer exists — so callers (notably the
    :class:`~repro.serving.DefenseService` tenant quarantine) get one
    typed failure path instead of raw ``pickle`` internals.  Subclasses
    :class:`ValueError` for backward compatibility with callers that
    caught the old untyped error.
    """


# --------------------------------------------------------------------- #
# per-round outputs
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class RoundPayoffs:
    """Realized §III-B payoffs of one round.

    ``adversary`` is the poison gain ``P(x_a)`` scaled by the fraction
    of injected poison that survived trimming; ``collector`` is the
    zero-sum mirror minus the trimming overhead ``T(x_c)``.
    """

    adversary: float
    collector: float


def round_payoffs(
    model: "PayoffModel",
    threshold: float,
    injection_percentile: Optional[float],
    n_poison_injected: int,
    n_poison_retained: int,
) -> RoundPayoffs:
    """Realized payoffs of one round under a :class:`PayoffModel`.

    A deterministic function of the round's public record — evaluating
    it never advances any RNG, so sessions with and without a payoff
    model play byte-identical games.
    """
    overhead = float(model.trim_overhead(float(threshold)))
    if injection_percentile is None or n_poison_injected == 0:
        gain = 0.0
    else:
        gain = float(model.poison_payoff(float(injection_percentile))) * (
            int(n_poison_retained) / int(n_poison_injected)
        )
    return RoundPayoffs(adversary=gain, collector=-(gain + overhead))


@dataclass(frozen=True)
class RoundDecision:
    """Everything one :meth:`GameSession.submit` call decided.

    ``accept_mask`` is the boolean trim verdict over the round's
    *combined* batch (submitted rows followed by any materialized
    poison) — the actionable output a live collector applies to the
    round's traffic.  ``observation`` is the public-board record both
    strategies will react to next round; the ``n_*`` counts are the
    ground-truth bookkeeping (the trim report in summary form), and
    ``payoffs`` is present when the session carries a payoff model.
    """

    index: int
    threshold: float
    injection_percentile: Optional[float]
    accept_mask: Array
    quality: float
    observed_poison_ratio: float
    betrayal: bool
    n_collected: int
    n_retained: int
    n_poison_injected: int
    n_poison_retained: int
    observation: RoundObservation
    retained: Optional[Array] = None
    payoffs: Optional[RoundPayoffs] = None

    @property
    def n_trimmed(self) -> int:
        """Rows of the combined batch the trim rejected."""
        return self.n_collected - self.n_retained

    @property
    def trimmed_fraction(self) -> float:
        """Fraction of the combined batch the trim rejected."""
        if self.n_collected == 0:
            return 0.0
        return 1.0 - self.n_retained / self.n_collected


@dataclass(frozen=True)
class BatchedRoundDecision:
    """One lockstep round across R rep lanes (column form).

    The ``(R,)`` column counterpart of :class:`RoundDecision`:
    ``injection_percentile`` uses NaN for "no injection",
    ``accept_masks`` holds one boolean mask per lane (lanes may disagree
    on batch width in the ragged mixed-injection case), and ``retained``
    carries the per-lane retained rows on full (non-lean) sessions.
    """

    index: int
    threshold: Array
    injection_percentile: Array
    quality: Array
    observed_poison_ratio: Array
    betrayal: Array
    n_collected: Array
    n_retained: Array
    n_poison_injected: Array
    n_poison_retained: Array
    accept_masks: List[Array]
    retained: Optional[List[Array]] = None

    @property
    def n_reps(self) -> int:
        """Number of rep lanes the round stepped."""
        return int(self.threshold.shape[0])

    def rep_observation(self, r: int) -> RoundObservation:
        """Lane ``r``'s public observation, scalar form."""
        injection = self.injection_percentile[r]
        return RoundObservation(
            index=self.index,
            trim_percentile=float(self.threshold[r]),
            injection_percentile=(
                None if np.isnan(injection) else float(injection)
            ),
            quality=float(self.quality[r]),
            observed_poison_ratio=float(self.observed_poison_ratio[r]),
            betrayal=bool(self.betrayal[r]),
        )


class LaneRoundDecision:
    """One lane of a lockstep round, viewed through column arrays.

    Duck-types :class:`RoundDecision` — same attribute surface, same
    values — but holds only a reference into the round's
    :class:`BatchedRoundDecision` columns plus the lane index.  Scalars,
    the :class:`RoundObservation` and the payoffs materialize lazily on
    first access, so the multiplexer's steady state never pays the
    per-lane object construction a solo round does.
    """

    __slots__ = ("_decision", "_rep", "_session", "_obs", "_pay")

    def __init__(
        self, decision: BatchedRoundDecision, rep: int, session: Any
    ) -> None:
        self._decision = decision
        self._rep = int(rep)
        self._session = session
        self._obs: Optional[RoundObservation] = None
        self._pay = False  # sentinel: payoffs not yet computed

    @property
    def index(self) -> int:
        return self._decision.index

    @property
    def threshold(self) -> float:
        return float(self._decision.threshold[self._rep])

    @property
    def injection_percentile(self) -> Optional[float]:
        inj = self._decision.injection_percentile[self._rep]
        return None if np.isnan(inj) else float(inj)

    @property
    def accept_mask(self) -> Array:
        return self._decision.accept_masks[self._rep]

    @property
    def quality(self) -> float:
        return float(self._decision.quality[self._rep])

    @property
    def observed_poison_ratio(self) -> float:
        return float(self._decision.observed_poison_ratio[self._rep])

    @property
    def betrayal(self) -> bool:
        return bool(self._decision.betrayal[self._rep])

    @property
    def n_collected(self) -> int:
        return int(self._decision.n_collected[self._rep])

    @property
    def n_retained(self) -> int:
        return int(self._decision.n_retained[self._rep])

    @property
    def n_poison_injected(self) -> int:
        return int(self._decision.n_poison_injected[self._rep])

    @property
    def n_poison_retained(self) -> int:
        return int(self._decision.n_poison_retained[self._rep])

    @property
    def observation(self) -> RoundObservation:
        if self._obs is None:
            self._obs = self._decision.rep_observation(self._rep)
        return self._obs

    @property
    def retained(self) -> Optional[Array]:
        if self._decision.retained is None or not self._session.store_retained:
            return None
        return self._decision.retained[self._rep]

    @property
    def payoffs(self) -> Optional[RoundPayoffs]:
        if self._pay is False:
            self._pay = self._session._payoffs(
                self.observation, self.n_poison_injected,
                self.n_poison_retained,
            )
        return self._pay

    @property
    def n_trimmed(self) -> int:
        """Rows of the combined batch the trim rejected."""
        return self.n_collected - self.n_retained

    @property
    def trimmed_fraction(self) -> float:
        """Fraction of the combined batch the trim rejected."""
        if self.n_collected == 0:
            return 0.0
        return 1.0 - self.n_retained / self.n_collected


def stack_observations(
    observations: Sequence[RoundObservation],
) -> RoundObservationBatch:
    """Stack per-session observations into one rep-lane column batch.

    All observations must share a round index (the lockstep grouping
    invariant the :class:`~repro.serving.DefenseService` enforces).
    """
    indices = {obs.index for obs in observations}
    if len(indices) != 1:
        raise ValueError(
            f"cannot stack observations from different rounds: {sorted(indices)}"
        )
    return RoundObservationBatch(
        index=observations[0].index,
        trim_percentile=np.array(
            [obs.trim_percentile for obs in observations], dtype=float
        ),
        injection_percentile=np.array(
            [
                np.nan if obs.injection_percentile is None
                else obs.injection_percentile
                for obs in observations
            ],
            dtype=float,
        ),
        quality=np.array([obs.quality for obs in observations], dtype=float),
        observed_poison_ratio=np.array(
            [obs.observed_poison_ratio for obs in observations], dtype=float
        ),
        betrayal=np.array([obs.betrayal for obs in observations], dtype=bool),
    )


# --------------------------------------------------------------------- #
# the solo session
# --------------------------------------------------------------------- #
class GameSession:
    """One live, step-driven collection game.

    The caller owns the loop: every :meth:`submit` plays exactly one
    round with the supplied benign batch (or one pulled from the
    attached ``source``) and returns the :class:`RoundDecision`;
    :meth:`close` seals the game into a
    :class:`~repro.core.engine.GameResult`.  Construction normally goes
    through :meth:`CollectionGame.session`,
    :meth:`GameSpec.session <repro.runtime.spec.GameSpec.session>` or
    :meth:`GameSession.open` — all of which hand over *calibrated*
    components (fitted trimmer/evaluator/judge).

    Parameters
    ----------
    collector:
        The trimming policy.  Required.
    adversary / injector:
        The simulated attack side.  ``adversary=None`` selects *live
        mode*: the submitted batch is treated as the round's full
        (possibly already-manipulated) traffic, nothing is injected, and
        the optional ``poison_mask`` argument of :meth:`submit` supplies
        ground-truth bookkeeping when the caller knows it.
    trimmer / quality_evaluator / judge:
        Calibrated round components, exactly as wired by
        :class:`~repro.core.engine.CollectionGame`.
    share_scores:
        Whether the evaluator may reuse the trimmer's batch scores
        (resolved automatically when ``None``).
    horizon:
        Maximum number of rounds, or ``None`` for an open-ended session
        (partial horizons are first-class: :meth:`close` at any round).
    payoff_model:
        Optional :class:`~repro.core.payoffs.PayoffModel`; when present
        every decision carries the round's realized :class:`RoundPayoffs`.
    source:
        Optional attached :class:`~repro.streams.source.StreamSource`;
        lets :meth:`submit` be called without a batch and is included in
        snapshots so a suspended spec-driven session resumes its own
        traffic byte-identically.
    """

    def __init__(
        self,
        *,
        collector: CollectorStrategy,
        adversary: Optional[AdversaryStrategy] = None,
        injector: Optional[PoisonInjector] = None,
        trimmer: Trimmer,
        quality_evaluator: Any,
        judge: Any,
        share_scores: Optional[bool] = None,
        horizon: Optional[int] = None,
        store_retained: bool = True,
        payoff_model: "Optional[PayoffModel]" = None,
        source: Optional[StreamSource] = None,
        reset: bool = True,
    ):
        if adversary is not None and injector is None:
            raise ValueError(
                "an adversary needs an injector to materialize its poison; "
                "pass adversary=None for live (externally manipulated) traffic"
            )
        if horizon is not None and horizon < 1:
            raise ValueError("horizon must be >= 1 (or None for open-ended)")
        self.collector = collector
        self.adversary = adversary
        self.injector = injector
        self.trimmer = trimmer
        self.quality_evaluator = quality_evaluator
        self.judge = judge
        self.horizon = None if horizon is None else int(horizon)
        self.store_retained = bool(store_retained)
        self.payoff_model = payoff_model
        self.source = source
        if share_scores is None:
            share_scores = quality_evaluator.accepts_scores(
                getattr(trimmer, "score_kind", None)
            )
        self._share_scores = bool(share_scores)
        if reset:
            for component in (collector, adversary, injector, judge, source):
                component_reset = getattr(component, "reset", None)
                if callable(component_reset):
                    component_reset()
        self._board = PublicBoard(store_retained=self.store_retained)
        self._last: Optional[RoundObservation] = None
        self._round = 0
        self._closed = False
        self._superseded = False
        # Deferred lockstep rounds: while attached to a cohort sink the
        # multiplexer records this session's rounds as (L,) row-batches
        # there; every authoritative access flushes them wholesale.
        self._sink = None
        self._sink_lane = 0
        self._sink_base = 0

    def _supersede(self) -> None:
        """Mark the session dead because its components were re-reset.

        Engine-backed sessions share the engine's live component
        instances; a later ``session()``/``run()`` on the same engine
        resets those components underneath this session, so continuing
        (or snapshotting) it would silently diverge.  The engine marks
        the previous session instead, turning the hazard into a loud
        error.
        """
        self._superseded = True

    # ------------------------------------------------------------------ #
    @classmethod
    def open(
        cls,
        *,
        collector: CollectorStrategy,
        trimmer: Trimmer,
        reference: ArrayLike,
        adversary: Optional[AdversaryStrategy] = None,
        injector: Optional[PoisonInjector] = None,
        quality_evaluator: Any = None,
        judge: Any = None,
        horizon: Optional[int] = None,
        anchor: str = "reference",
        store_retained: bool = True,
        payoff_model: "Optional[PayoffModel]" = None,
        source: Optional[StreamSource] = None,
    ) -> "GameSession":
        """Calibrate components on ``reference`` and open a session.

        The standalone constructor for callers who do not already hold a
        :class:`~repro.core.engine.CollectionGame`: performs exactly the
        engine's calibration (trimmer/injector reference fit, evaluator
        fit, judge fit on the shared reference scores) and returns the
        opened session.
        """
        from .engine import BandExcessJudge
        from .quality import TailMassEvaluator

        if anchor not in ("reference", "batch"):
            raise ValueError("anchor must be 'reference' or 'batch'")
        reference = np.asarray(reference, dtype=float)
        trimmer.anchor = anchor
        trimmer.fit_reference(reference)
        if injector is not None:
            injector.fit_reference(reference)
        quality_evaluator = quality_evaluator or TailMassEvaluator()
        quality_evaluator.fit(reference)
        judge = judge or BandExcessJudge(noise_sigma=0.0)
        reference_scores = getattr(trimmer, "reference_scores", None)
        if reference_scores is None:
            reference_scores = trimmer.scores(reference)
        if isinstance(judge, BandExcessJudge):
            table = getattr(trimmer, "reference_table", None)
            judge.fit(table if table is not None else reference_scores)
        else:
            judge.fit(reference_scores)
        return cls(
            collector=collector,
            adversary=adversary,
            injector=injector,
            trimmer=trimmer,
            quality_evaluator=quality_evaluator,
            judge=judge,
            horizon=horizon,
            store_retained=store_retained,
            payoff_model=payoff_model,
            source=source,
        )

    # ------------------------------------------------------------------ #
    # deferred lockstep rounds (cohort sink)
    # ------------------------------------------------------------------ #
    def _attach_sink(self, sink: Any, lane: int) -> None:
        """Route subsequent lockstep rounds through a cohort sink.

        While attached, the multiplexer records fused rounds as one
        ``(L,)`` row-batch on ``sink`` (a
        :class:`~repro.streams.board.ColumnarBoard`) instead of
        materializing this session's per-round board objects.  Any
        authoritative access — a solo submit, ``result``/``close``,
        ``snapshot``, or reading the board — flushes the whole cohort
        first, so callers never observe a stale session.
        """
        if self._sink is not None:
            raise RuntimeError(
                "session is already attached to a deferred cohort sink; "
                "flush it before re-attaching"
            )
        self._sink = sink
        self._sink_lane = int(lane)
        self._sink_base = sink.n_rounds
        sink.attach(self, lane)

    def _flush_deferred(self) -> None:
        """Make any deferred lockstep rounds authoritative (whole cohort)."""
        if self._sink is not None:
            self._sink.flush_all()

    def _absorb_sink_rows(self, sink: Any, lane: int, base: int) -> None:
        """Adopt this session's pending sink rows (sink flush callback)."""
        self._sink = None
        if sink.n_rounds <= base:
            return
        columns, retained = sink.lane_rows(lane, base)
        self._board.extend_columns(
            columns, retained if self.store_retained else None
        )
        # Rebuild the public observation of the final deferred round with
        # exactly rep_observation's scalar conversions (byte-identity).
        inj = columns["injection_percentile"][-1]
        self._last = RoundObservation(
            index=int(columns["index"][-1]),
            trim_percentile=float(columns["trim_percentile"][-1]),
            injection_percentile=None if np.isnan(inj) else float(inj),
            quality=float(columns["quality"][-1]),
            observed_poison_ratio=float(
                columns["observed_poison_ratio"][-1]
            ),
            betrayal=bool(columns["betrayal"][-1]),
        )
        self._round = int(columns["index"][-1])

    # ------------------------------------------------------------------ #
    @property
    def round_index(self) -> int:
        """Number of completed rounds (deferred lockstep rounds included)."""
        if self._sink is None:
            return self._round
        return self._round + (self._sink.n_rounds - self._sink_base)

    @property
    def last_observation(self) -> Optional[RoundObservation]:
        """The most recent public observation, or ``None`` before round 1."""
        self._flush_deferred()
        return self._last

    @property
    def board(self) -> PublicBoard:
        """The session's public board (append-only, live)."""
        self._flush_deferred()
        return self._board

    @property
    def is_closed(self) -> bool:
        """Whether :meth:`close` has sealed the session."""
        return self._closed

    @property
    def done(self) -> bool:
        """True when closed or the horizon is exhausted."""
        return self._closed or (
            self.horizon is not None and self.round_index >= self.horizon
        )

    @property
    def collector_name(self) -> str:
        """The collector strategy's display name."""
        return self.collector.name

    @property
    def adversary_name(self) -> str:
        """The adversary's display name (``"live"`` in live mode)."""
        return "live" if self.adversary is None else self.adversary.name

    # ------------------------------------------------------------------ #
    def _decide_positions(self) -> Tuple[float, Optional[float]]:
        """Both parties' positions for the upcoming round."""
        if self._last is None:
            trim_q = self.collector.first()
            inject_q = (
                self.adversary.first() if self.adversary is not None else None
            )
        else:
            trim_q = self.collector.react(self._last)
            inject_q = (
                self.adversary.react(self._last)
                if self.adversary is not None
                else None
            )
        return trim_q, inject_q

    def _check_submittable(self) -> None:
        if self._superseded:
            raise RuntimeError(
                "session superseded: its state authority moved on (a newer "
                "session()/run() on the same engine, or a service "
                "eviction); this handle can no longer play"
            )
        if self._closed:
            raise RuntimeError("session is closed")
        if self.horizon is not None and self.round_index >= self.horizon:
            raise RuntimeError(
                f"horizon of {self.horizon} rounds exhausted; close() the "
                "session to obtain its GameResult"
            )

    def submit(
        self,
        batch: Optional[ArrayLike] = None,
        poison_mask: Optional[ArrayLike] = None,
    ) -> RoundDecision:
        """Play one round with ``batch`` and return the decision.

        ``batch`` is the round's benign data (adversarial sessions) or
        the full incoming traffic (live mode); omit it to pull from the
        attached source.  ``poison_mask`` is live-mode-only ground truth
        marking which submitted rows are manipulated — bookkeeping for
        the board, never visible to the strategies.
        """
        self._check_submittable()
        self._flush_deferred()
        if batch is None:
            if self.source is None:
                raise ValueError(
                    "submit() needs a batch: this session has no attached "
                    "stream source"
                )
            batch = self.source.next_batch()
        benign = np.asarray(batch, dtype=float)
        index = self._round + 1
        trim_q, inject_q = self._decide_positions()

        if self.adversary is not None:
            if poison_mask is not None:
                raise ValueError(
                    "poison_mask is only accepted in live mode "
                    "(adversary=None); adversarial sessions track poison "
                    "themselves"
                )
            if inject_q is None:
                poison = benign[:0]
            else:
                poison = self.injector.materialize(benign, inject_q)
            if poison.shape[0] == 0:
                combined = benign
            else:
                combined = np.concatenate([benign, poison], axis=0)
            mask = np.zeros(combined.shape[0], dtype=bool)
            mask[benign.shape[0]:] = True
            n_poison_injected = int(poison.shape[0])
        else:
            combined = benign
            if poison_mask is None:
                mask = np.zeros(combined.shape[0], dtype=bool)
            else:
                mask = np.asarray(poison_mask, dtype=bool)
                if mask.shape != (combined.shape[0],):
                    raise ValueError(
                        f"poison_mask must be shaped ({combined.shape[0]},), "
                        f"got {mask.shape}"
                    )
            n_poison_injected = int(np.count_nonzero(mask))

        report = self.trimmer.trim(combined, trim_q)
        # Single-pass scoring, exactly as the historical engine loop: the
        # judge reuses the trim report's batch scores, and the evaluator
        # shares them when the score families are commensurable.
        if report.scores is not None:
            retained_scores = report.kept_scores
            shared_scores = report.scores if self._share_scores else None
        else:
            retained_scores = self.trimmer.scores(combined)[report.kept]
            shared_scores = None

        observed_ratio, quality = self.quality_evaluator.evaluate(
            combined, scores=shared_scores
        )
        betrayal = self.judge.judge_round(inject_q, retained_scores)

        observation = RoundObservation(
            index=index,
            trim_percentile=float(trim_q),
            injection_percentile=None if inject_q is None else float(inject_q),
            quality=quality,
            observed_poison_ratio=float(observed_ratio),
            betrayal=bool(betrayal),
        )
        retained = combined[report.kept] if self.store_retained else None
        n_poison_retained = int(np.count_nonzero(report.kept & mask))
        self._board.record(
            BoardEntry(
                observation=observation,
                retained=retained,
                n_collected=combined.shape[0],
                n_poison_injected=n_poison_injected,
                n_poison_retained=n_poison_retained,
                n_retained=report.n_kept,
            )
        )
        self._last = observation
        self._round = index
        return RoundDecision(
            index=index,
            threshold=float(trim_q),
            injection_percentile=observation.injection_percentile,
            accept_mask=report.kept,
            quality=float(quality),
            observed_poison_ratio=float(observed_ratio),
            betrayal=bool(betrayal),
            n_collected=int(combined.shape[0]),
            n_retained=int(report.n_kept),
            n_poison_injected=n_poison_injected,
            n_poison_retained=n_poison_retained,
            observation=observation,
            retained=retained,
            payoffs=self._payoffs(
                observation, n_poison_injected, n_poison_retained
            ),
        )

    def _payoffs(
        self,
        observation: RoundObservation,
        n_poison_injected: int,
        n_poison_retained: int,
    ) -> Optional[RoundPayoffs]:
        if self.payoff_model is None:
            return None
        return round_payoffs(
            self.payoff_model,
            observation.trim_percentile,
            observation.injection_percentile,
            n_poison_injected,
            n_poison_retained,
        )

    def absorb_round(
        self, decision: BatchedRoundDecision, rep: int
    ) -> RoundDecision:
        """Adopt lane ``rep`` of a lockstep round as this session's round.

        The :class:`~repro.serving.DefenseService` multiplexer plays
        same-configuration sessions through one
        :class:`BatchedGameSession` step; this records the session's
        lane on its own board and advances its position exactly as a
        solo :meth:`submit` would have (the strategy/RNG state advanced
        inside the shared kernels, which draw from this session's own
        component instances).
        """
        self._check_submittable()
        self._flush_deferred()
        if decision.index != self._round + 1:
            raise ValueError(
                f"lockstep round {decision.index} does not follow this "
                f"session's round {self._round}"
            )
        observation = decision.rep_observation(rep)
        retained = (
            decision.retained[rep]
            if (self.store_retained and decision.retained is not None)
            else None
        )
        n_poison_injected = int(decision.n_poison_injected[rep])
        n_poison_retained = int(decision.n_poison_retained[rep])
        self._board.record(
            BoardEntry(
                observation=observation,
                retained=retained,
                n_collected=int(decision.n_collected[rep]),
                n_poison_injected=n_poison_injected,
                n_poison_retained=n_poison_retained,
                n_retained=int(decision.n_retained[rep]),
            )
        )
        self._last = observation
        self._round = decision.index
        return RoundDecision(
            index=decision.index,
            threshold=observation.trim_percentile,
            injection_percentile=observation.injection_percentile,
            accept_mask=decision.accept_masks[rep],
            quality=observation.quality,
            observed_poison_ratio=observation.observed_poison_ratio,
            betrayal=observation.betrayal,
            n_collected=int(decision.n_collected[rep]),
            n_retained=int(decision.n_retained[rep]),
            n_poison_injected=n_poison_injected,
            n_poison_retained=n_poison_retained,
            observation=observation,
            retained=retained,
            payoffs=self._payoffs(
                observation, n_poison_injected, n_poison_retained
            ),
        )

    # ------------------------------------------------------------------ #
    def result(self) -> "GameResult":
        """The game-so-far as a :class:`~repro.core.engine.GameResult`."""
        from .engine import GameResult

        self._flush_deferred()
        return GameResult(
            board=self._board,
            collector_name=self.collector_name,
            adversary_name=self.adversary_name,
            termination_round=getattr(self.collector, "terminated_round", None),
        )

    def close(self) -> "GameResult":
        """Seal the session and return its final ``GameResult``."""
        self._closed = True
        return self.result()

    # ------------------------------------------------------------------ #
    # snapshot / restore
    # ------------------------------------------------------------------ #
    def _stateful_components(self) -> Tuple[Tuple[str, Any], ...]:
        return (
            ("collector", self.collector),
            ("adversary", self.adversary),
            ("injector", self.injector),
            ("trimmer", self.trimmer),
            ("quality", self.quality_evaluator),
            ("judge", self.judge),
            ("source", self.source),
        )

    def state_dict(self) -> Dict[str, dict]:
        """Every component's exported mutable state, keyed by role.

        The structured half of a snapshot: plain-data documents from
        each component's ``export_state()`` (empty for stateless
        components).  Restoring replays these through
        ``import_state()`` after a ``reset()`` — completeness is what
        the cross-process byte-identity tests assert.
        """
        self._flush_deferred()
        state: Dict[str, dict] = {}
        for name, component in self._stateful_components():
            if component is None:
                continue
            exporter = getattr(component, "export_state", None)
            state[name] = exporter() if callable(exporter) else {}
        return state

    def snapshot(self) -> bytes:
        """Serialize the complete mid-game state to a portable blob.

        The envelope carries the calibrated components, the structured
        :meth:`state_dict`, the board's column arrays (plus retained
        payloads on full boards) and the horizon position.  See the
        module docstring for the format contract.
        """
        from .. import __version__

        if self._superseded:
            raise RuntimeError(
                "session superseded: its state authority moved on (a newer "
                "session()/run() on the same engine, or a service "
                "eviction), so a snapshot here would not capture the "
                "live game"
            )
        self._flush_deferred()

        retained = (
            [entry.retained for entry in self._board.entries]
            if self.store_retained
            else None
        )
        payload = {
            "format": SNAPSHOT_FORMAT,
            "package_version": __version__,
            "components": {
                name: component
                for name, component in self._stateful_components()
            },
            "payoff_model": self.payoff_model,
            "state": self.state_dict(),
            "board": {
                "columns": self._board.columns,
                "retained": retained,
            },
            "session": {
                "horizon": self.horizon,
                "store_retained": self.store_retained,
                "share_scores": self._share_scores,
                "round": self._round,
                "closed": self._closed,
                "last_observation": self._last,
            },
        }
        return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def restore(cls, blob: bytes) -> "GameSession":
        """Rebuild a session from a :meth:`snapshot` blob.

        Components that export authoritative state are ``reset()`` and
        re-imported from the structured state document; components with
        nothing to export (stateless strategies, custom user objects)
        keep their deserialized attributes untouched.  The restored
        session continues byte-identically to the uninterrupted
        original — in this process or any other.

        Every failure mode — corrupt bytes, a foreign envelope, a
        structurally broken payload — raises :class:`SnapshotError`.
        """
        try:
            payload = pickle.loads(blob)
        except Exception as exc:
            # pickle raises a zoo here (UnpicklingError, EOFError,
            # AttributeError, ModuleNotFoundError, plain ValueError...);
            # none of it is actionable beyond "this blob is bad".
            raise SnapshotError(
                f"corrupt session snapshot: {type(exc).__name__}: {exc}"
            ) from exc
        if (
            not isinstance(payload, dict)
            or payload.get("format") != SNAPSHOT_FORMAT
        ):
            raise SnapshotError(
                f"not a {SNAPSHOT_FORMAT} session snapshot"
            )
        try:
            components = payload["components"]
            state = payload["state"]
            for name, component in components.items():
                if component is None:
                    continue
                component_state = state.get(name)
                if not component_state:
                    # Nothing exported: the pickled object already carries
                    # whatever state it has; resetting would destroy it.
                    continue
                component_reset = getattr(component, "reset", None)
                if callable(component_reset):
                    component_reset()
                importer = getattr(component, "import_state", None)
                if callable(importer):
                    importer(component_state)

            doc = payload["session"]
            session = cls(
                collector=components["collector"],
                adversary=components["adversary"],
                injector=components["injector"],
                trimmer=components["trimmer"],
                quality_evaluator=components["quality"],
                judge=components["judge"],
                share_scores=doc["share_scores"],
                horizon=doc["horizon"],
                store_retained=doc["store_retained"],
                payoff_model=payload["payoff_model"],
                source=components["source"],
                reset=False,
            )
            board_doc = payload["board"]
            session._board = PublicBoard.from_columns(
                board_doc["columns"],
                retained=board_doc["retained"],
                store_retained=doc["store_retained"],
            )
            session._last = doc["last_observation"]
            session._round = int(doc["round"])
            session._closed = bool(doc["closed"])
        except SnapshotError:
            raise
        except (KeyError, TypeError, AttributeError, IndexError) as exc:
            raise SnapshotError(
                "malformed session snapshot payload: "
                f"{type(exc).__name__}: {exc}"
            ) from exc
        return session


# --------------------------------------------------------------------- #
# the rep-lane session
# --------------------------------------------------------------------- #
class BatchedGameSession:
    """R lockstep games as one step-driven session.

    The push-driven counterpart of
    :class:`~repro.core.engine.BatchedCollectionGame`: every
    :meth:`submit` steps all R lanes through one vectorized round (the
    PR-3 kernels), either recording onto an owned
    :class:`~repro.streams.board.StackedBoard` (the engine-driver path)
    or returning the full column decision for the caller to distribute
    (``board=None`` — the :class:`~repro.serving.DefenseService` path,
    where each multiplexed tenant records its own lane via
    :meth:`GameSession.absorb_round`).

    Construction goes through
    :meth:`BatchedCollectionGame.session` or the service's lane
    grouping; the components mirror the batched engine's internals
    (strategy lanes, a :class:`~repro.streams.injection.BatchedInjector`,
    shared-or-per-rep trimmers, quality and judge lanes).  ``start_index``
    and ``last`` seat the session mid-game — strategy lanes initialize
    from their instances' current state, so lockstep play can begin at
    any round, not just round 1.
    """

    def __init__(
        self,
        *,
        collector_lanes: Any,
        adversary_lanes: Any,
        injector: Any,
        trimmer: Optional[Trimmer] = None,
        per_rep_trimmers: Optional[Sequence[Trimmer]] = None,
        trim_lanes: Any = None,
        quality_lanes: Any,
        judge_lanes: Any,
        horizon: Optional[int] = None,
        store_retained: bool = True,
        board: Optional[StackedBoard] = None,
        start_index: int = 0,
        last: Optional[RoundObservationBatch] = None,
    ):
        n_reps = collector_lanes.n_reps
        if adversary_lanes.n_reps != n_reps or injector.n_reps != n_reps:
            raise ValueError(
                "collector, adversary and injector lanes must agree on the "
                "number of repetitions"
            )
        if per_rep_trimmers is not None and len(per_rep_trimmers) != n_reps:
            raise ValueError("need one trimmer per repetition (or None)")
        if trim_lanes is not None:
            if trimmer is not None or per_rep_trimmers is not None:
                raise ValueError(
                    "pass either trim_lanes or trimmer/per_rep_trimmers, "
                    "not both"
                )
            if trim_lanes.n_reps != n_reps:
                raise ValueError("need one trim lane per repetition")
            trimmer = trim_lanes.lead
        elif trimmer is None:
            raise ValueError("need a trimmer, per-rep trimmers or trim_lanes")
        self.n_reps = n_reps
        self._collectors = collector_lanes
        self._adversaries = adversary_lanes
        self.injector = injector
        self.trimmer = trimmer
        self._trim_lanes = trim_lanes
        self._trimmers = (
            list(per_rep_trimmers) if per_rep_trimmers is not None else None
        )
        self._quality = quality_lanes
        self._judges = judge_lanes
        self.horizon = None if horizon is None else int(horizon)
        self.store_retained = bool(store_retained)
        self.board = board
        self._round = int(start_index)
        self._last = last
        self._closed = False
        self._superseded = False

    def _supersede(self) -> None:
        """Mark the session dead (see :meth:`GameSession._supersede`)."""
        self._superseded = True

    # ------------------------------------------------------------------ #
    @property
    def round_index(self) -> int:
        """Number of completed lockstep rounds."""
        return self._round

    @property
    def done(self) -> bool:
        """True when closed or the horizon is exhausted."""
        return self._closed or (
            self.horizon is not None and self._round >= self.horizon
        )

    def _check_submittable(self) -> None:
        if self._superseded:
            raise RuntimeError(
                "session superseded: its state authority moved on (a newer "
                "session()/run() on the same engine, or a service "
                "eviction); this handle can no longer play"
            )
        if self._closed:
            raise RuntimeError("session is closed")
        if self.horizon is not None and self._round >= self.horizon:
            raise RuntimeError(
                f"horizon of {self.horizon} rounds exhausted; close() the "
                "session to obtain its result"
            )

    # ------------------------------------------------------------------ #
    def submit(self, batches: ArrayLike) -> BatchedRoundDecision:
        """Step every lane through one lockstep round.

        ``batches`` is the round's benign stack ``(R, batch[, d])`` —
        one row of lanes per repetition, e.g. from
        :meth:`StreamSource.next_batches`.
        """
        self._check_submittable()
        benign = np.asarray(batches, dtype=float)
        if benign.ndim not in (2, 3) or benign.shape[0] != self.n_reps:
            raise ValueError(
                f"benign stack must be shaped ({self.n_reps}, batch[, d]), "
                f"got {benign.shape}"
            )
        index = self._round + 1
        if self._last is None:
            trim = np.asarray(self._collectors.first_many(), dtype=float)
            inject = np.asarray(self._adversaries.first_many(), dtype=float)
        else:
            trim = np.asarray(self._collectors.react_many(self._last), dtype=float)
            inject = np.asarray(self._adversaries.react_many(self._last), dtype=float)

        observed = ~np.isnan(inject)
        # (R,) per-lane poison counts: 0 where the lane injects nothing
        # this round.  Count-uniform rounds take the single stacked
        # kernel; mixed rounds run it once per count segment.
        counts = np.where(
            observed, self.injector.poison_counts(benign.shape[1]), 0
        )
        unique_counts = np.unique(counts)
        if unique_counts.size == 1:
            decision = self._submit_stacked(
                index, benign, trim, inject, int(unique_counts[0])
            )
        else:
            decision = self._submit_segmented(
                index, benign, trim, inject, counts
            )

        if self.board is not None:
            self.board.record_round(
                trim_percentile=decision.threshold,
                injection_percentile=decision.injection_percentile,
                quality=decision.quality,
                observed_poison_ratio=decision.observed_poison_ratio,
                betrayal=decision.betrayal,
                n_collected=decision.n_collected,
                n_poison_injected=decision.n_poison_injected,
                n_poison_retained=decision.n_poison_retained,
                n_retained=decision.n_retained,
                retained=decision.retained,
            )
        self._last = RoundObservationBatch(
            index=index,
            trim_percentile=decision.threshold,
            injection_percentile=decision.injection_percentile,
            quality=np.asarray(decision.quality, dtype=float),
            observed_poison_ratio=np.asarray(
                decision.observed_poison_ratio, dtype=float
            ),
            betrayal=np.asarray(decision.betrayal, dtype=bool),
        )
        self._round = index
        return decision

    def _submit_stacked(
        self,
        index: int,
        benign: Array,
        trim: Array,
        inject: Array,
        poison_rows: int,
    ) -> BatchedRoundDecision:
        """The all-lanes-agree fast path: one vectorized round body."""
        if poison_rows:
            poison = self.injector.materialize_many(benign, inject)
            combined = np.concatenate([benign, poison], axis=1)
        else:
            combined = benign

        report = self._trim_seg(combined, trim)
        scores = report.scores
        if scores is None:
            scores = self._scores_seg(combined)
            shared = None
        else:
            shared = scores
        observed_ratio, quality = self._quality.evaluate_many(combined, shared)
        betrayal = self._judges.judge_round_many(inject, scores, report.kept)

        n_kept = report.n_kept
        if poison_rows:
            n_poison_retained = np.count_nonzero(
                report.kept[:, benign.shape[1]:], axis=1
            )
        else:
            n_poison_retained = np.zeros(self.n_reps, dtype=np.int64)
        retained = (
            [combined[r][report.kept[r]] for r in range(self.n_reps)]
            if self.store_retained
            else None
        )
        return BatchedRoundDecision(
            index=index,
            threshold=trim,
            injection_percentile=inject,
            quality=np.asarray(quality, dtype=float),
            observed_poison_ratio=np.asarray(observed_ratio, dtype=float),
            betrayal=np.asarray(betrayal, dtype=bool),
            n_collected=np.full(
                self.n_reps, combined.shape[1], dtype=np.int64
            ),
            n_retained=np.asarray(n_kept, dtype=np.int64),
            n_poison_injected=np.full(
                self.n_reps, poison_rows, dtype=np.int64
            ),
            n_poison_retained=np.asarray(n_poison_retained, dtype=np.int64),
            accept_masks=[report.kept[r] for r in range(self.n_reps)],
            retained=retained,
        )

    def _submit_segmented(
        self,
        index: int,
        benign: Array,
        trim: Array,
        inject: Array,
        counts: Array,
    ) -> BatchedRoundDecision:
        """One round where lanes disagree on poison count.

        Lanes partition by their round poison count; the stacked round
        body runs once per segment over that segment's ``(rows, batch)``
        sub-stack, with segment-aware kernels drawing each lane's RNG
        from its own Generator.  Per lane this is the same stage order
        (inject -> trim -> evaluate -> judge) as the solo body, so the
        outputs are byte-identical regardless of segmentation.
        """
        n_reps = self.n_reps
        quality = np.empty(n_reps)
        observed_ratio = np.empty(n_reps)
        betrayal = np.empty(n_reps, dtype=bool)
        n_collected = np.empty(n_reps, dtype=np.int64)
        n_poison_retained = np.empty(n_reps, dtype=np.int64)
        n_kept = np.empty(n_reps, dtype=np.int64)
        accept_masks: List[Optional[Array]] = [None] * n_reps
        retained: Optional[List[Optional[Array]]] = (
            [None] * n_reps if self.store_retained else None
        )

        for count in np.unique(counts):
            idx = np.flatnonzero(counts == count)
            seg = benign[idx]
            if count:
                poison = self.injector.materialize_many(
                    seg, inject[idx], idx=idx
                )
                combined = np.concatenate([seg, poison], axis=1)
            else:
                combined = seg
            report = self._trim_seg(combined, trim[idx], idx)
            scores = report.scores
            if scores is None:
                scores = self._scores_seg(combined, idx)
                shared = None
            else:
                shared = scores
            seg_ratio, seg_quality = self._quality.evaluate_many(
                combined, shared, idx=idx
            )
            seg_betrayal = self._judges.judge_round_many(
                inject[idx], scores, report.kept, idx=idx
            )
            quality[idx] = seg_quality
            observed_ratio[idx] = seg_ratio
            betrayal[idx] = seg_betrayal
            n_collected[idx] = combined.shape[1]
            n_kept[idx] = report.n_kept
            n_poison_retained[idx] = np.count_nonzero(
                report.kept[:, seg.shape[1]:], axis=1
            )
            for j, r in enumerate(idx):
                accept_masks[r] = report.kept[j]
                if retained is not None:
                    retained[r] = combined[j][report.kept[j]]

        return BatchedRoundDecision(
            index=index,
            threshold=trim,
            injection_percentile=inject,
            quality=quality,
            observed_poison_ratio=observed_ratio,
            betrayal=betrayal,
            n_collected=n_collected,
            n_retained=n_kept,
            n_poison_injected=counts.astype(np.int64),
            n_poison_retained=n_poison_retained,
            accept_masks=accept_masks,
            retained=retained,
        )

    # ------------------------------------------------------------------ #
    def _rep_trimmer(self, rep: int) -> Trimmer:
        """Rep ``rep``'s trimmer (per-rep instances for custom classes)."""
        if self._trim_lanes is not None:
            return self._trim_lanes.trimmers[rep]
        if self._trimmers is not None:
            return self._trimmers[rep]
        return self.trimmer

    def _trim_seg(
        self,
        combined: Array,
        trim: Array,
        idx: Optional[Array] = None,
    ) -> BatchTrimReport:
        """One segment's trim reports; row ``j`` is lane ``idx[j]``."""
        if self._trim_lanes is not None:
            return self._trim_lanes.trim_stack(combined, trim, idx)
        if self._trimmers is None:
            return self.trimmer.trim_many(combined, trim)
        lanes = range(self.n_reps) if idx is None else idx
        return BatchTrimReport.from_reports(
            self._trimmers[r].trim(combined[j], float(trim[j]))
            for j, r in enumerate(lanes)
        )

    def _scores_seg(
        self, combined: Array, idx: Optional[Array] = None
    ) -> Array:
        """Batch scores per lane (fallback when reports carry none)."""
        if self._trim_lanes is not None:
            lanes = np.arange(self.n_reps) if idx is None else idx
            return self._trim_lanes.scores_stack(
                np.asarray(combined, dtype=float), lanes
            )
        if self._trimmers is None:
            return self.trimmer.scores_many(combined)
        lanes = range(self.n_reps) if idx is None else idx
        return np.stack(
            [
                self._trimmers[r].scores(combined[j])
                for j, r in enumerate(lanes)
            ]
        )

    # ------------------------------------------------------------------ #
    def sync_lanes(self) -> None:
        """Write diverged lane state back onto the strategy instances.

        The multiplexer calls this when a cohort's deferred rounds are
        flushed (and the engine driver at close) so the per-session
        instances become authoritative again — a tenant may step solo or
        be evicted between lockstep rounds.  Covers the strategy lane
        programs and, when the injector batches its RNG position draws,
        the per-lane ``Generator`` bit-states.
        """
        self._collectors.finalize()
        self._adversaries.finalize()
        finalize = getattr(self.injector, "finalize", None)
        if callable(finalize):
            finalize()

    def close(self) -> "BatchedGameResult":
        """Seal the session and return its ``BatchedGameResult``."""
        from .engine import BatchedGameResult

        if self.board is None:
            raise RuntimeError(
                "this lockstep session records no board of its own "
                "(board=None); close the tenant sessions instead"
            )
        self._closed = True
        self.sync_lanes()
        return BatchedGameResult(
            board=self.board,
            collector_name=self._collectors.name,
            adversary_name=self._adversaries.name,
            termination_rounds=self._collectors.terminated_rounds(),
        )
