"""Array type aliases shared by the strictly-typed numeric core.

``Array`` is deliberately dtype-agnostic: the numeric core mixes float
payload columns, bool accept masks and ``intp`` index vectors through
the same lane plumbing, and the byte-identity tests pin exact dtypes at
runtime — the static layer only asserts "this is an ndarray, with its
generic parameters spelled out" so the strict gate's
``disallow_any_generics`` holds without fighting NumPy's shape/dtype
generics at every call site.
"""

from __future__ import annotations

from typing import Any

import numpy.typing as npt

__all__ = ["Array", "ArrayLike"]

Array = npt.NDArray[Any]

#: Anything ``np.asarray`` coerces — lists, scalars, ndarrays.  Used on
#: ingestion signatures that normalize immediately; internal plumbing
#: that already holds ndarrays uses :data:`Array`.
ArrayLike = npt.ArrayLike
