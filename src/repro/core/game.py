"""Finite matrix games: Nash equilibria, minimax, and the ultimatum game.

Implements the game-theoretic toolkit of Section III:

* generic two-player bimatrix games with best responses, strict dominance,
  and pure-strategy Nash enumeration;
* zero-sum matrix games solved exactly by linear programming (the classic
  minimax LP), used for mixed equilibria over discretized trimming grids;
* the single-round *ultimatum game* of Table I — a prisoner's-dilemma-like
  2x2 game between adversary (rows: Soft/Hard) and collector (columns:
  Soft/Hard) whose unique equilibrium is mutual Hard play, motivating the
  move to the repeated game of Section IV.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import linprog

from .arrays import Array

__all__ = [
    "BimatrixGame",
    "solve_zero_sum",
    "UltimatumPayoffs",
    "build_ultimatum_game",
    "SOFT",
    "HARD",
]

#: Index of the Soft action in the ultimatum game's strategy lists.
SOFT = 0
#: Index of the Hard action in the ultimatum game's strategy lists.
HARD = 1


@dataclass
class BimatrixGame:
    """A finite two-player game in strategic form.

    ``row_payoffs[i, j]`` / ``col_payoffs[i, j]`` are the payoffs of the row
    and column player when row plays ``i`` and column plays ``j``.  In this
    library the row player is the adversary and the column player the
    collector.
    """

    row_payoffs: Array
    col_payoffs: Array
    row_labels: Sequence[str] = ()
    col_labels: Sequence[str] = ()

    def __post_init__(self) -> None:
        self.row_payoffs = np.asarray(self.row_payoffs, dtype=float)
        self.col_payoffs = np.asarray(self.col_payoffs, dtype=float)
        if self.row_payoffs.shape != self.col_payoffs.shape:
            raise ValueError("payoff matrices must share a shape")
        if self.row_payoffs.ndim != 2:
            raise ValueError("payoff matrices must be 2-D")
        if not self.row_labels:
            self.row_labels = [f"r{i}" for i in range(self.row_payoffs.shape[0])]
        if not self.col_labels:
            self.col_labels = [f"c{j}" for j in range(self.row_payoffs.shape[1])]

    @property
    def shape(self) -> Tuple[int, int]:
        """Numbers of (row, column) pure strategies."""
        return self.row_payoffs.shape

    def is_zero_sum(self, atol: float = 1e-9) -> bool:
        """True when the two payoff matrices sum to zero everywhere."""
        return bool(np.allclose(self.row_payoffs + self.col_payoffs, 0.0, atol=atol))

    # ------------------------------------------------------------------ #
    # best responses and equilibria
    # ------------------------------------------------------------------ #
    def row_best_responses(self, col_action: int) -> Array:
        """Indices of row actions maximizing row payoff against a column."""
        column = self.row_payoffs[:, col_action]
        return np.flatnonzero(np.isclose(column, column.max()))

    def col_best_responses(self, row_action: int) -> Array:
        """Indices of column actions maximizing column payoff against a row."""
        row = self.col_payoffs[row_action, :]
        return np.flatnonzero(np.isclose(row, row.max()))

    def pure_nash_equilibria(self) -> List[Tuple[int, int]]:
        """All pure-strategy Nash equilibria as (row, column) index pairs."""
        equilibria = []
        n_rows, n_cols = self.shape
        for i in range(n_rows):
            for j in range(n_cols):
                if i in self.row_best_responses(j) and j in self.col_best_responses(i):
                    equilibria.append((i, j))
        return equilibria

    def strictly_dominated_rows(self) -> List[int]:
        """Rows strictly dominated by some other pure row strategy."""
        dominated = []
        n_rows = self.shape[0]
        for i in range(n_rows):
            for k in range(n_rows):
                if k != i and np.all(self.row_payoffs[k] > self.row_payoffs[i]):
                    dominated.append(i)
                    break
        return dominated

    def strictly_dominated_cols(self) -> List[int]:
        """Columns strictly dominated by some other pure column strategy."""
        dominated = []
        n_cols = self.shape[1]
        for j in range(n_cols):
            for k in range(n_cols):
                if k != j and np.all(self.col_payoffs[:, k] > self.col_payoffs[:, j]):
                    dominated.append(j)
                    break
        return dominated


def solve_zero_sum(row_payoffs: Any) -> Tuple[Array, Array, float]:
    """Solve a zero-sum matrix game exactly via the minimax LP.

    ``row_payoffs[i, j]`` is the payoff to the (maximizing) row player.
    Returns ``(row_mixture, col_mixture, value)`` — the optimal mixed
    strategies of both players and the game value to the row player.

    The standard construction shifts payoffs positive, solves
    ``min 1'x  s.t.  A'x >= 1, x >= 0`` for the row player and reads the
    column strategy off the dual (recovered here by solving the symmetric
    program on ``-A`` transposed).
    """
    matrix = np.asarray(row_payoffs, dtype=float)
    if matrix.ndim != 2 or matrix.size == 0:
        raise ValueError("payoff matrix must be a non-empty 2-D array")

    shift = float(matrix.min())
    positive = matrix - shift + 1.0  # all entries >= 1

    n_rows, n_cols = positive.shape

    # Row player: maximize v s.t. sum_i x_i A_ij >= v  ->  LP in y = x / v.
    res_row = linprog(
        c=np.ones(n_rows),
        A_ub=-positive.T,
        b_ub=-np.ones(n_cols),
        bounds=[(0, None)] * n_rows,
        method="highs",
    )
    if not res_row.success:
        raise RuntimeError(f"row LP failed: {res_row.message}")
    value_shifted = 1.0 / float(np.sum(res_row.x))
    row_mixture = res_row.x * value_shifted

    # Column player: minimize v s.t. sum_j A_ij y_j <= v.
    res_col = linprog(
        c=-np.ones(n_cols),
        A_ub=positive,
        b_ub=np.ones(n_rows),
        bounds=[(0, None)] * n_cols,
        method="highs",
    )
    if not res_col.success:
        raise RuntimeError(f"column LP failed: {res_col.message}")
    col_mixture = res_col.x / float(np.sum(res_col.x))

    value = value_shifted + shift - 1.0
    return row_mixture, col_mixture, float(value)


@dataclass(frozen=True)
class UltimatumPayoffs:
    """Parameters of the Table I ultimatum game.

    The caption requires the ordering ``p_high > t_high >> p_low > t_low > 0``:
    ``p_high``/``p_low`` are the adversary's hard/soft poisoning payoffs and
    ``t_high``/``t_low`` the collector's hard/soft trimming overheads.
    """

    p_high: float = 10.0
    t_high: float = 6.0
    p_low: float = 1.0
    t_low: float = 0.5

    def __post_init__(self) -> None:
        if not self.p_high > self.t_high > self.p_low > self.t_low > 0.0:
            raise ValueError(
                "Table I requires p_high > t_high > p_low > t_low > 0, got "
                f"{self.p_high}, {self.t_high}, {self.p_low}, {self.t_low}"
            )


def build_ultimatum_game(
    payoffs: Optional[UltimatumPayoffs] = None,
) -> BimatrixGame:
    """Construct the single-round ultimatum game of Table I.

    Rows: adversary {Soft, Hard}; columns: collector {Soft, Hard}.

    * (Soft, Soft): light poisoning survives a gentle trim — adversary gains
      ``p_low``, collector pays the poison plus the light overhead.
    * (Hard, Soft): heavy poisoning survives — adversary gains ``p_high``,
      collector pays it (gentle trimming overhead is dwarfed and folded in).
    * (·, Hard): a hard trim removes the poison regardless of intensity —
      adversary gains nothing, collector pays the heavy overhead ``t_high``.

    The unique Nash equilibrium is (Hard, Hard), mirroring the prisoner's
    dilemma: mutual Soft play is Pareto-superior yet not stable in the
    one-shot game, which motivates the infinite repeated game of §IV.
    """
    if payoffs is None:
        payoffs = UltimatumPayoffs()
    p_hi, t_hi = payoffs.p_high, payoffs.t_high
    p_lo, t_lo = payoffs.p_low, payoffs.t_low

    # Row player = adversary, column player = collector.
    adversary = np.array(
        [
            [p_lo, 0.0],  # Soft vs (Soft, Hard)
            [p_hi, 0.0],  # Hard vs (Soft, Hard)
        ]
    )
    collector = np.array(
        [
            [-p_lo - t_lo, -t_hi],
            [-p_hi - t_lo, -t_hi],
        ]
    )
    return BimatrixGame(
        row_payoffs=adversary,
        col_payoffs=collector,
        row_labels=("soft", "hard"),
        col_labels=("soft", "hard"),
    )
