"""Distance-based trimming operators (the classic defense of §I, [14]).

Trimming computes a score ``d_i`` per data point and removes every point
whose score exceeds a threshold — here expressed in *percentile*
coordinates, matching §VI-A.  Two score families are provided:

* :class:`ValueTrimmer` — 1-D upper-tail trimming on raw values, the
  natural choice for scalar streams (Taxi, LDP reports) where attacks
  inflate the upper tail;
* :class:`RadialTrimmer` — multivariate trimming on distances from the
  coordinate-wise median, the distance-based sanitization of Kloft &
  Laskov used for the k-means / SVM / SOM experiments.

The percentile can be *anchored* two ways (see DESIGN.md §4):

* ``reference`` anchoring (after :meth:`Trimmer.fit_reference`): the score
  cutoff is the quantile of a clean public reference — the "publicly
  recognized data quality standard" of §III-B.  Poison inflation of the
  current batch cannot move the cutoff.
* ``batch`` anchoring (default without a reference): the cutoff is the
  quantile of the current batch's own scores, realizing the paper's
  "collects and trims the same amount of data in each round" (Fig. 3 ④).

Both return a :class:`TrimReport` carrying the retained mask so the engine
can track exactly which poison values survived.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from .arrays import Array, ArrayLike
from .domain import QuantileTable, clip_percentile, empirical_quantile

__all__ = [
    "TrimReport",
    "BatchTrimReport",
    "Trimmer",
    "ValueTrimmer",
    "RadialTrimmer",
]


@dataclass(frozen=True)
class TrimReport:
    """Outcome of one trimming pass.

    ``kept`` is a boolean mask over the input batch (True = retained);
    ``threshold_score`` is the score cutoff that realized the percentile;
    ``percentile`` echoes the requested trimming position; ``scores``
    carries the per-point scores the decision was made on, so callers
    (the game engine's hot loop in particular) never need a second
    ``Trimmer.scores`` pass over the same batch.
    """

    kept: Array
    threshold_score: float
    percentile: float
    scores: Optional[Array] = None

    @property
    def kept_scores(self) -> Array:
        """Scores of the retained points (requires ``scores``)."""
        if self.scores is None:
            raise ValueError("this report was built without batch scores")
        return self.scores[self.kept]

    @property
    def n_kept(self) -> int:
        """Number of retained points."""
        return int(np.count_nonzero(self.kept))

    @property
    def n_trimmed(self) -> int:
        """Number of removed points."""
        return int(self.kept.size - self.n_kept)

    @property
    def trimmed_fraction(self) -> float:
        """Fraction of the batch that was removed."""
        if self.kept.size == 0:
            return 0.0
        return self.n_trimmed / self.kept.size


@dataclass(frozen=True)
class BatchTrimReport:
    """Outcome of one rep-batched trimming pass over an ``(R, n)`` stack.

    The rep axis leads everywhere: ``kept`` is the ``(R, n)`` retained
    mask, ``threshold_scores``/``percentiles`` are ``(R,)``, and
    ``scores`` (when the trimmer computes them, which the shipped
    trimmers always do) is the full ``(R, n)`` score stack.  Row ``r``
    is byte-identical to the :class:`TrimReport` a solo
    :meth:`Trimmer.trim` call on rep ``r``'s batch would produce.
    """

    kept: Array              # (R, n) bool
    threshold_scores: Array  # (R,)
    percentiles: Array       # (R,)
    scores: Optional[Array] = None  # (R, n)

    @property
    def n_reps(self) -> int:
        """Number of rep lanes."""
        return int(self.kept.shape[0])

    @property
    def n_kept(self) -> Array:
        """(R,) retained counts."""
        return np.count_nonzero(self.kept, axis=1)

    def kept_scores(self, rep: int) -> Array:
        """Scores of rep ``rep``'s retained points (requires ``scores``)."""
        if self.scores is None:
            raise ValueError("this report was built without batch scores")
        return self.scores[rep][self.kept[rep]]

    @classmethod
    def from_reports(cls, reports: Sequence[TrimReport]) -> "BatchTrimReport":
        """Stack per-rep :class:`TrimReport` objects into one batch report.

        ``scores`` is carried only when every rep's report has them (a
        custom trimmer may omit them).
        """
        reports = list(reports)
        scores = (
            None
            if any(report.scores is None for report in reports)
            else np.stack([report.scores for report in reports])
        )
        return cls(
            kept=np.stack([report.kept for report in reports]),
            threshold_scores=np.array(
                [report.threshold_score for report in reports]
            ),
            percentiles=np.array([report.percentile for report in reports]),
            scores=scores,
        )


class Trimmer:
    """Base class: percentile trimming on subclass-defined scores.

    ``anchor`` selects where the cutoff quantile comes from:
    ``"reference"`` uses the fitted clean reference's score distribution
    (requires :meth:`fit_reference`; falls back to the batch before
    fitting), ``"batch"`` always uses the current batch's own scores —
    trimming a fixed *fraction* each round.  Score *centers* (for radial
    trimming) always come from the reference once fitted: a batch-local
    center would let colluding poison drag the center toward itself and
    evade the trim entirely.
    """

    #: Score-family tag (``"value"`` = scores are the raw 1-D values,
    #: ``"radial"`` = distances from a center).  Lets consumers such as
    #: the quality evaluators decide whether a trimmer's batch scores are
    #: commensurable with their own scoring and can be reused.
    score_kind: Optional[str] = None

    def __init__(self, anchor: str = "reference") -> None:
        if anchor not in ("reference", "batch"):
            raise ValueError("anchor must be 'reference' or 'batch'")
        self.anchor = anchor
        self._reference_scores: Optional[Array] = None
        # Lazy memo of a pure function of _reference_scores: rebuilding
        # it yields byte-identical content, so it is calibration cache,
        # not mid-game state.
        self._reference_table: Optional[QuantileTable] = None  # repro: noqa[REP005]

    def scores(self, batch: Array) -> Array:
        """Per-point trimming scores ``d_i`` (higher = more suspicious)."""
        raise NotImplementedError

    def _set_reference_scores(self, scores: Array) -> None:
        """Store reference scores; their quantile table builds lazily.

        Deferring the sort to the first reference-anchored cutoff keeps
        ``anchor="batch"`` trimmers (which never query the table) from
        paying an O(n log n) sort per fit, and guarantees a stale table
        can never outlive a refit.
        """
        self._reference_scores = scores
        self._reference_table = None

    def fit_reference(self, reference: ArrayLike) -> "Trimmer":
        """Calibrate score centers/quantiles on a clean reference."""
        arr = np.asarray(reference, dtype=float)
        if arr.size == 0:
            raise ValueError("reference must be non-empty")
        self._set_reference_scores(self.scores(arr))
        return self

    @property
    def reference_scores(self) -> Optional[Array]:
        """The fitted reference's scores (None before fitting).

        Exposed so consumers calibrated on the same reference (the
        engine's compliance judge in particular) can reuse them instead
        of running a second scoring pass.
        """
        return self._reference_scores

    @property
    def reference_table(self) -> Optional[QuantileTable]:
        """Sort-once quantile table of the reference scores.

        Built lazily on first access (or first reference-anchored
        cutoff) and cached until the next :meth:`fit_reference`; None
        before fitting.  Consumers calibrated on the same reference
        (the engine's band judge) share it instead of re-sorting.
        """
        if self._reference_table is None and self._reference_scores is not None:
            self._reference_table = QuantileTable(self._reference_scores)
        return self._reference_table

    @property
    def is_reference_anchored(self) -> bool:
        """Whether cutoffs come from a fitted reference."""
        return self.anchor == "reference" and self._reference_scores is not None

    def _cutoff(self, batch_scores: Array, q: float) -> float:
        if self.is_reference_anchored:
            # O(1) against the sorted-once reference instead of an
            # O(n) numpy.quantile partition every round (bit-identical).
            return float(self.reference_table.quantile(q))
        return float(empirical_quantile(batch_scores, q))

    def trim(self, batch: ArrayLike, percentile: float) -> TrimReport:
        """Remove points whose score exceeds the percentile cutoff.

        ``percentile`` = 1.0 keeps everything (the Ostrich behaviour);
        smaller values trim scores above the anchored quantile.
        """
        arr = np.asarray(batch, dtype=float)
        if arr.size == 0:
            raise ValueError("cannot trim an empty batch")
        q = clip_percentile(percentile)
        batch_scores = self.scores(arr)
        if q >= 1.0:
            kept = np.ones(batch_scores.shape, dtype=bool)
            return TrimReport(
                kept=kept,
                threshold_score=float("inf"),
                percentile=q,
                scores=batch_scores,
            )
        cutoff = self._cutoff(batch_scores, q)
        kept = batch_scores <= cutoff
        if not kept.any():
            # Degenerate batch (every score above the cutoff); keep the
            # minimum-score point so downstream estimators stay defined.
            kept[int(np.argmin(batch_scores))] = True
        return TrimReport(
            kept=kept,
            threshold_score=cutoff,
            percentile=q,
            scores=batch_scores,
        )

    def apply(self, batch: ArrayLike, percentile: float) -> Array:
        """Convenience: trim and return only the retained rows/values."""
        arr = np.asarray(batch, dtype=float)
        report = self.trim(arr, percentile)
        return arr[report.kept]

    # ------------------------------------------------------------------ #
    # rep-batched kernels (one sweep cell's R repetitions in lockstep)
    # ------------------------------------------------------------------ #
    def scores_many(self, stacks: Array) -> Array:
        """Per-point scores for an ``(R, n[, d])`` rep stack, ``(R, n)``.

        The base implementation loops :meth:`scores` over the rep axis —
        always byte-identical to R solo calls; subclasses override it
        with a single array expression.
        """
        arr = np.asarray(stacks, dtype=float)
        return np.stack([self.scores(arr[r]) for r in range(arr.shape[0])])

    def trim_many(
        self, stacks: ArrayLike, percentiles: ArrayLike
    ) -> BatchTrimReport:
        """Rep-batched :meth:`trim`: one cutoff/mask pass for all R reps.

        ``stacks`` is ``(R, n)`` (R reps of 1-D batches) or ``(R, n, d)``;
        ``percentiles`` the per-rep trimming positions.  Row ``r`` of the
        result is byte-identical to ``self.trim(stacks[r],
        percentiles[r])``.  A subclass that overrides :meth:`trim` is
        routed through its own override, rep by rep, **on this shared
        instance** — sufficient for stateless custom trimmers; a custom
        trimmer that keeps state across ``trim`` calls needs one
        instance per rep instead (pass a trimmer sequence to
        :class:`~repro.core.engine.BatchedCollectionGame`, which the
        sweep runtime does automatically).
        """
        arr = np.asarray(stacks, dtype=float)
        if arr.ndim not in (2, 3):
            raise ValueError("stacks must be (R, n) or (R, n, d)")
        if arr.shape[0] == 0 or arr.shape[1] == 0:
            raise ValueError("cannot trim an empty stack")
        q_in = np.asarray(percentiles, dtype=float)
        if q_in.shape != (arr.shape[0],):
            raise ValueError("need one percentile per rep")
        if type(self).trim is not Trimmer.trim:
            return self._trim_many_loop(arr, q_in)

        scores = self.scores_many(arr)
        n_reps, n = scores.shape
        # Identical to clip_percentile, elementwise — including NaN,
        # which Python's min(1.0, max(0.0, nan)) maps to 0.0 while the
        # numpy clip would propagate it (and silently keep everything).
        q = np.where(
            np.isnan(q_in), 0.0, np.minimum(1.0, np.maximum(0.0, q_in))
        )
        kept = np.ones((n_reps, n), dtype=bool)
        cutoffs = np.full(n_reps, np.inf)
        active = np.flatnonzero(q < 1.0)
        if active.size:
            if self.is_reference_anchored:
                cutoffs[active] = self.reference_table.quantile(q[active])
            else:
                for r in active:
                    cutoffs[r] = float(empirical_quantile(scores[r], float(q[r])))
            kept[active] = scores[active] <= cutoffs[active, None]
            for r in active[~kept[active].any(axis=1)]:
                # Same degenerate-batch fallback as the solo path.
                kept[r, int(np.argmin(scores[r]))] = True
        return BatchTrimReport(
            kept=kept, threshold_scores=cutoffs, percentiles=q, scores=scores
        )

    def _trim_many_loop(self, arr: Array, q_in: Array) -> BatchTrimReport:
        """Documented per-rep fallback through a custom :meth:`trim`."""
        return BatchTrimReport.from_reports(
            self.trim(arr[r], float(q_in[r])) for r in range(arr.shape[0])
        )


class ValueTrimmer(Trimmer):
    """Upper-tail trimming of scalar values (score = value itself)."""

    score_kind = "value"

    def scores(self, batch: Array) -> Array:
        arr = np.asarray(batch, dtype=float)
        if arr.ndim != 1:
            raise ValueError("ValueTrimmer expects 1-D batches")
        return arr

    def scores_many(self, stacks: Array) -> Array:
        arr = np.asarray(stacks, dtype=float)
        if arr.ndim != 2:
            raise ValueError("ValueTrimmer expects (R, n) stacks")
        return arr


class RadialTrimmer(Trimmer):
    """Distance-from-median trimming for multivariate batches.

    Scores are Euclidean distances from the coordinate-wise median —
    robust to the poisoning itself (tail injections at realistic attack
    ratios barely move the median), so a poison point placed at extreme
    per-feature percentiles receives an extreme score.  When reference
    anchoring is active, the median of the *reference* is used as center
    so batch and reference scores are commensurable.  Accepts 1-D input
    as a single-feature special case.
    """

    score_kind = "radial"

    def __init__(self, anchor: str = "reference") -> None:
        super().__init__(anchor)
        self._center: Optional[Array] = None

    def fit_reference(self, reference: ArrayLike) -> "RadialTrimmer":
        arr = np.asarray(reference, dtype=float)
        if arr.size == 0:
            raise ValueError("reference must be non-empty")
        self._center = (
            np.median(arr, axis=0) if arr.ndim == 2 else np.asarray(np.median(arr))
        )
        self._set_reference_scores(self.scores(arr))
        return self

    def scores(self, batch: Array) -> Array:
        arr = np.asarray(batch, dtype=float)
        if arr.ndim == 1:
            if self._center is None:
                center = np.median(arr)
            elif np.size(self._center) == 1:
                center = float(np.reshape(self._center, ()))
            else:
                raise ValueError(
                    "dimension mismatch: RadialTrimmer was fit on "
                    f"{np.size(self._center)}-dimensional reference data but "
                    "received a 1-D batch; refit on 1-D data or pass 2-D "
                    "batches with matching dimensionality"
                )
            return np.abs(arr - center)
        if arr.ndim != 2:
            raise ValueError("RadialTrimmer expects 1-D or 2-D batches")
        center = np.median(arr, axis=0) if self._center is None else self._center
        return np.linalg.norm(arr - center, axis=1)

    def scores_many(self, stacks: Array) -> Array:
        arr = np.asarray(stacks, dtype=float)
        if arr.ndim not in (2, 3):
            raise ValueError("RadialTrimmer expects (R, n) or (R, n, d) stacks")
        if self._center is None:
            # Unfitted: the center is batch-local — defer to the per-rep
            # loop so each rep gets its own median, as in the solo path.
            return super().scores_many(arr)
        if arr.ndim == 2:
            if np.size(self._center) != 1:
                raise ValueError(
                    "dimension mismatch: RadialTrimmer was fit on "
                    f"{np.size(self._center)}-dimensional reference data but "
                    "received 1-D batches"
                )
            return np.abs(arr - float(np.reshape(self._center, ())))
        # Elementwise identical to the per-rep norm: the reduction runs
        # over the same contiguous feature axis.
        return np.linalg.norm(arr - self._center, axis=2)
