"""Stackelberg (leader-follower) analysis of the trimming game (§III-D, §IV).

In the online collection game the collector moves first each round (she
publishes last round's threshold on the public board), so the repeated
interaction is a Stackelberg game: the collector is the *leader*, the
adversary the *follower* who best-responds to the observed threshold.

This module solves the discretized Stackelberg problem exactly and also
exposes the best-response *dynamics* — the iterated interaction whose fixed
point is the interactive equilibrium the Elastic strategy converges to
(§VI-A, Table IV).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple

import numpy as np

from .arrays import Array
from .domain import percentile_grid
from .payoffs import PayoffModel

__all__ = [
    "StackelbergSolution",
    "solve_stackelberg",
    "BestResponseDynamics",
    "linear_response_fixed_point",
]


@dataclass(frozen=True)
class StackelbergSolution:
    """Solution of the discretized Stackelberg trimming game.

    ``leader_action`` is the collector's optimal trimming percentile,
    ``follower_action`` the adversary's best-response injection percentile,
    and the payoffs are evaluated at that profile.
    """

    leader_action: float
    follower_action: float
    leader_payoff: float
    follower_payoff: float


def solve_stackelberg(
    model: PayoffModel,
    grid_size: int = 201,
    tie_break: str = "pessimistic",
) -> StackelbergSolution:
    """Solve the collector-leads Stackelberg game over a percentile grid.

    For every candidate trimming percentile the adversary's best response
    is computed (the injection maximizing his payoff); the collector then
    selects the threshold whose induced profile maximizes her own payoff.

    ``tie_break`` resolves follower indifference: ``"pessimistic"`` assumes
    the adversary breaks ties against the collector (the standard strong
    Stackelberg/pessimistic mix used for robust defenses), ``"optimistic"``
    assumes ties break in the collector's favor.
    """
    if tie_break not in ("pessimistic", "optimistic"):
        raise ValueError("tie_break must be 'pessimistic' or 'optimistic'")

    x_l, x_r = model.strategy_interval()
    grid = percentile_grid(x_l, x_r, grid_size)
    adv_payoffs, col_payoffs = model.payoff_matrix(grid, grid)

    # Vectorized best-response selection over all columns at once.  Per
    # column: the follower set is every row within isclose() of the
    # column max; the tie-break picks the leader-worst (pessimistic) or
    # leader-best (optimistic) member.  Masked argmin/argmax return the
    # *first* extremal row, exactly like flatnonzero + argmin over the
    # follower subset, so this matches the per-column loop bit-for-bit.
    follower_mask = np.isclose(adv_payoffs, adv_payoffs.max(axis=0, keepdims=True))
    if tie_break == "pessimistic":
        masked = np.where(follower_mask, col_payoffs, np.inf)
        follower_rows = masked.argmin(axis=0)
    else:
        masked = np.where(follower_mask, col_payoffs, -np.inf)
        follower_rows = masked.argmax(axis=0)
    columns = np.arange(grid.size)
    leader_payoffs = col_payoffs[follower_rows, columns]
    j = int(np.argmax(leader_payoffs))
    idx = int(follower_rows[j])
    return StackelbergSolution(
        leader_action=float(grid[j]),
        follower_action=float(grid[idx]),
        leader_payoff=float(leader_payoffs[j]),
        follower_payoff=float(adv_payoffs[idx, j]),
    )


@dataclass
class BestResponseDynamics:
    """Iterated best-response interaction between collector and adversary.

    Each round the collector responds to the adversary's *previous*
    position and vice versa — the alternating-response structure of the
    experimental Elastic scheme (§VI-A):

    ``collector_response``: maps last adversary position -> new threshold.
    ``adversary_response``: maps last collector threshold -> new injection.

    :meth:`run` iterates from initial positions and records the trajectory;
    :meth:`fixed_point` solves for the interactive equilibrium by direct
    iteration with a convergence tolerance.
    """

    collector_response: Callable[[float], float]
    adversary_response: Callable[[float], float]

    def run(
        self, collector_init: float, adversary_init: float, rounds: int
    ) -> Tuple[Array, Array]:
        """Iterate the coupled responses for ``rounds`` rounds.

        Returns arrays ``(collector_path, adversary_path)`` of length
        ``rounds`` whose first entries are the initial positions.
        """
        if rounds < 1:
            raise ValueError("rounds must be >= 1")
        collector = np.empty(rounds)
        adversary = np.empty(rounds)
        collector[0] = collector_init
        adversary[0] = adversary_init
        for i in range(1, rounds):
            collector[i] = self.collector_response(adversary[i - 1])
            adversary[i] = self.adversary_response(collector[i - 1])
        return collector, adversary

    def fixed_point(
        self,
        collector_init: float,
        adversary_init: float,
        tol: float = 1e-10,
        max_iter: int = 10_000,
    ) -> Tuple[float, float]:
        """Iterate to the interactive equilibrium ``(T*, A*)``.

        Raises ``RuntimeError`` when the map fails to contract within
        ``max_iter`` iterations (e.g. response gain >= 1).
        """
        t, a = float(collector_init), float(adversary_init)
        for _ in range(max_iter):
            t_next = self.collector_response(a)
            a_next = self.adversary_response(t)
            if abs(t_next - t) < tol and abs(a_next - a) < tol:
                return t_next, a_next
            t, a = t_next, a_next
        raise RuntimeError("best-response dynamics did not converge")


def linear_response_fixed_point(
    t_th: float,
    k: float,
    collector_offset: float = -0.01,
    adversary_offset: float = -0.03,
) -> Tuple[float, float]:
    """Closed-form fixed point of the paper's linear Elastic responses.

    §VI-A specifies ``T(i+1) = T_th + k(A(i) - T_th - 1%)`` and
    ``A(i+1) = T_th - 3% + k(T(i) - T_th)``.  In offset coordinates
    ``t = T - T_th``, ``a = A - T_th`` the fixed point solves

        ``t* = k (a* + collector_offset)``,
        ``a* = adversary_offset + k t*``,

    giving ``t* = k (adversary_offset + collector_offset·(1/k)… )`` — solved
    here exactly:  ``t* = k(adversary_offset + k·t* + collector_offset)``
    hence ``t* = k(adversary_offset + collector_offset) / (1 - k²)``.

    Returns the *absolute* percentiles ``(T*, A*)``.
    """
    if not 0.0 <= k < 1.0:
        raise ValueError("the linear response contracts only for 0 <= k < 1")
    t_star = k * (adversary_offset + collector_offset) / (1.0 - k * k)
    a_star = adversary_offset + k * t_star
    return t_th + t_star, t_th + a_star
