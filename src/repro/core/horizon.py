"""Finite- vs infinite-horizon cooperation analysis (§IV-A).

The paper stresses that a *limited-round* collection game unravels: "when
dealing with a limited-round scenario ... adversaries may be tempted to
defect in the final round, triggering a domino effect of defections from
the second-to-last round backwards", so the game "must be ingeniously
designed to encompass an infinite number of rounds".

This module makes both halves of the argument computational:

* :func:`backward_induction` solves the finitely repeated stage game by
  backward induction; with a unique stage equilibrium (the Table I
  ultimatum game) every round plays it — cooperation is impossible for
  any finite horizon.
* :class:`InfiniteHorizonAnalysis` gives the grim-trigger folk-theorem
  condition for the infinite game: cooperation is sustainable exactly
  when the discount factor is large enough that the one-shot temptation
  is outweighed by the lost cooperative stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Tuple

import numpy as np

from .game import BimatrixGame

__all__ = ["backward_induction", "InfiniteHorizonAnalysis"]


def backward_induction(stage: BimatrixGame, rounds: int) -> List[Tuple[int, int]]:
    """Subgame-perfect path of the finitely repeated ``stage`` game.

    Backward induction over a finite repetition without state: in the
    last round only a stage Nash equilibrium is playable; since the
    continuation is then fixed and additive, the same argument applies to
    every earlier round — the domino effect of §IV-A.  The stage game
    must possess at least one pure equilibrium; with several, the first
    (lexicographically) is selected in every round, which is the standard
    selection for this textbook construction.

    Returns the per-round action profile list, length ``rounds``.
    """
    if rounds < 1:
        raise ValueError("rounds must be >= 1")
    equilibria = stage.pure_nash_equilibria()
    if not equilibria:
        raise ValueError(
            "stage game has no pure equilibrium; backward induction over "
            "pure profiles is undefined"
        )
    terminal = equilibria[0]
    return [terminal] * rounds


@dataclass(frozen=True)
class InfiniteHorizonAnalysis:
    """Grim-trigger cooperation analysis of the infinite collection game.

    Parameters are the adversary's stage payoffs in prisoner's-dilemma
    terms: ``reward`` for mutual cooperation (soft/soft), ``temptation``
    for defecting against a cooperator (hard/soft), and ``punishment``
    for the mutual-defection equilibrium (hard/hard).  The paper's
    ultimatum game instantiates these as ``p_low``, ``p_high`` and ``0``.
    """

    reward: float
    temptation: float
    punishment: float

    def __post_init__(self) -> None:
        if not self.temptation > self.reward > self.punishment:
            raise ValueError(
                "prisoner's-dilemma structure requires "
                "temptation > reward > punishment"
            )

    @property
    def critical_discount(self) -> float:
        """The folk-theorem threshold ``d* = (T - R) / (T - P)``.

        Grim trigger sustains cooperation iff the discounted cooperative
        stream beats the one-shot temptation followed by permanent
        punishment:  ``R / (1-d) >= T + d P / (1-d)``, i.e.
        ``d >= (T - R) / (T - P)``.
        """
        return (self.temptation - self.reward) / (self.temptation - self.punishment)

    def cooperation_sustainable(self, discount: float) -> bool:
        """Whether grim trigger sustains cooperation at ``discount``."""
        if not 0.0 <= discount < 1.0:
            raise ValueError("discount must lie in [0, 1)")
        return discount >= self.critical_discount

    def cooperation_value(self, discount: float) -> float:
        """Discounted value of permanent cooperation ``R / (1 - d)``."""
        if not 0.0 <= discount < 1.0:
            raise ValueError("discount must lie in [0, 1)")
        return self.reward / (1.0 - discount)

    def defection_value(self, discount: float) -> float:
        """Value of defecting now against a grim trigger.

        ``T + d P / (1 - d)``: grab the temptation once, then live at the
        punishment point forever.
        """
        if not 0.0 <= discount < 1.0:
            raise ValueError("discount must lie in [0, 1)")
        return self.temptation + discount * self.punishment / (1.0 - discount)

    def horizon_comparison(self, discount: float, rounds: int) -> dict[str, Any]:
        """Summary dict contrasting the two horizons at ``discount``.

        Used by the theory example and the ablation bench: the finite
        game's per-round play is the stage equilibrium regardless of
        ``rounds``, while the infinite game cooperates iff the discount
        clears the critical threshold.
        """
        return {
            "rounds": int(rounds),
            "finite_cooperates": False,  # unique stage NE -> unravels
            "infinite_cooperates": self.cooperation_sustainable(discount),
            "critical_discount": self.critical_discount,
            "cooperation_value": self.cooperation_value(discount),
            "defection_value": self.defection_value(discount),
        }
