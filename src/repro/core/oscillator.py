"""Closed-form coupled oscillator solution of the Elastic system (Theorem 4).

Plugging the Elastic interaction ``U = k (u_a - u_c)² / 2`` into the
Euler–Lagrange equations yields

    ``m_a ü_a = -k (u_a - u_c)``,   ``m_c ü_c = +k (u_a - u_c)``,

the equations of two masses joined by a spring.  In normal-mode
coordinates the *utility center of mass* drifts uniformly (a remnant of
Theorem 1) while the *relative utility* ``y = u_a - u_c`` oscillates
harmonically,

    ``y(r) = A cos(ω r + φ)``,   ``ω = sqrt(k (m_a + m_c) / (m_a m_c))``,

which is the "periodic oscillation with respect to r" conclusion of
Theorem 4: under the Elastic strategy the two parties' utilities breathe
around a shared drift instead of diverging or terminating.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from .arrays import Array, ArrayLike

__all__ = ["CoupledUtilityOscillator"]


@dataclass(frozen=True)
class CoupledUtilityOscillator:
    """Exact dynamics of the Elastic two-party utility system.

    Parameters
    ----------
    stiffness:
        Spring constant ``k`` of the elastic interaction (Definition 2).
    mass_adversary, mass_collector:
        The intrinsic factors ``m_a``, ``m_c`` of Theorem 2.
    u_adversary0, u_collector0:
        Initial utilities ``u_a(0)``, ``u_c(0)``.
    v_adversary0, v_collector0:
        Initial utility velocities ``u̇_a(0)``, ``u̇_c(0)``.
    """

    stiffness: float
    mass_adversary: float = 1.0
    mass_collector: float = 1.0
    u_adversary0: float = 0.0
    u_collector0: float = 0.0
    v_adversary0: float = 0.0
    v_collector0: float = 0.0

    def __post_init__(self) -> None:
        if self.stiffness <= 0.0:
            raise ValueError("stiffness k must be positive")
        if self.mass_adversary <= 0.0 or self.mass_collector <= 0.0:
            raise ValueError("masses must be positive")

    # ------------------------------------------------------------------ #
    # derived constants
    # ------------------------------------------------------------------ #
    @property
    def total_mass(self) -> float:
        """``M = m_a + m_c``."""
        return self.mass_adversary + self.mass_collector

    @property
    def reduced_mass(self) -> float:
        """``μ = m_a m_c / (m_a + m_c)`` governing the relative motion."""
        return self.mass_adversary * self.mass_collector / self.total_mass

    @property
    def angular_frequency(self) -> float:
        """``ω = sqrt(k / μ) = sqrt(k (m_a + m_c) / (m_a m_c))``."""
        return float(np.sqrt(self.stiffness / self.reduced_mass))

    @property
    def period(self) -> float:
        """Oscillation period ``2π / ω`` of the relative utility."""
        return 2.0 * np.pi / self.angular_frequency

    @property
    def amplitude(self) -> float:
        """Amplitude ``A`` of ``y(r) = A cos(ω r + φ)``."""
        y0 = self.u_adversary0 - self.u_collector0
        vy0 = self.v_adversary0 - self.v_collector0
        return float(np.hypot(y0, vy0 / self.angular_frequency))

    @property
    def phase(self) -> float:
        """Phase ``φ`` of ``y(r) = A cos(ω r + φ)``."""
        y0 = self.u_adversary0 - self.u_collector0
        vy0 = self.v_adversary0 - self.v_collector0
        return float(np.arctan2(-vy0 / self.angular_frequency, y0))

    # ------------------------------------------------------------------ #
    # trajectories
    # ------------------------------------------------------------------ #
    def center_of_utility(self, r: ArrayLike) -> Array:
        """The mass-weighted mean utility, drifting uniformly in ``r``.

        ``X(r) = X(0) + V r`` with ``V = (m_a v_a0 + m_c v_c0) / M`` — the
        free normal mode in which the joint system still obeys the
        equilibrium law ``u̇ = const`` of Theorem 1.
        """
        r = np.asarray(r, dtype=float)
        x0 = (
            self.mass_adversary * self.u_adversary0
            + self.mass_collector * self.u_collector0
        ) / self.total_mass
        v = (
            self.mass_adversary * self.v_adversary0
            + self.mass_collector * self.v_collector0
        ) / self.total_mass
        return x0 + v * r

    def relative_utility(self, r: ArrayLike) -> Array:
        """The oscillating mode ``y(r) = A cos(ω r + φ)`` of Theorem 4."""
        r = np.asarray(r, dtype=float)
        return self.amplitude * np.cos(self.angular_frequency * r + self.phase)

    def solve(self, r: ArrayLike) -> Tuple[Array, Array]:
        """Utilities ``(u_a(r), u_c(r))`` reconstructed from normal modes.

        ``u_a = X + (m_c / M) y`` and ``u_c = X - (m_a / M) y``.
        """
        x = self.center_of_utility(r)
        y = self.relative_utility(r)
        u_a = x + (self.mass_collector / self.total_mass) * y
        u_c = x - (self.mass_adversary / self.total_mass) * y
        return u_a, u_c

    def velocities(self, r: ArrayLike) -> Tuple[Array, Array]:
        """Utility velocities ``(u̇_a(r), u̇_c(r))``."""
        r = np.asarray(r, dtype=float)
        v_cm = (
            self.mass_adversary * self.v_adversary0
            + self.mass_collector * self.v_collector0
        ) / self.total_mass
        dy = (
            -self.amplitude
            * self.angular_frequency
            * np.sin(self.angular_frequency * r + self.phase)
        )
        v_a = v_cm + (self.mass_collector / self.total_mass) * dy
        v_c = v_cm - (self.mass_adversary / self.total_mass) * dy
        return v_a, v_c

    def energy(self, r: ArrayLike) -> Array:
        """Total mechanical energy along the trajectory.

        ``E = m_a u̇_a²/2 + m_c u̇_c²/2 + k (u_a - u_c)²/2`` — conserved
        because the Lagrangian has no explicit ``r`` dependence; tests use
        this as the variational sanity invariant.
        """
        u_a, u_c = self.solve(r)
        v_a, v_c = self.velocities(r)
        kinetic = 0.5 * (self.mass_adversary * v_a**2 + self.mass_collector * v_c**2)
        potential = 0.5 * self.stiffness * (u_a - u_c) ** 2
        return kinetic + potential

    def acceleration_residual(self, r: ArrayLike, eps: float = 1e-5) -> Array:
        """Residual of the equations of motion at rounds ``r``.

        Finite-difference accelerations are compared against the spring
        forces; exact solutions give residuals at the discretization-error
        level.  Returns shape ``(len(r), 2)``.
        """
        r = np.atleast_1d(np.asarray(r, dtype=float))
        ua_p, uc_p = self.solve(r + eps)
        ua_m, uc_m = self.solve(r - eps)
        ua_0, uc_0 = self.solve(r)
        acc_a = (ua_p - 2 * ua_0 + ua_m) / eps**2
        acc_c = (uc_p - 2 * uc_0 + uc_m) / eps**2
        rel = ua_0 - uc_0
        res_a = self.mass_adversary * acc_a + self.stiffness * rel
        res_c = self.mass_collector * acc_c - self.stiffness * rel
        return np.stack([res_a, res_c], axis=-1)
