"""Least-action analytical model of the infinite collection game (§II, §IV).

The paper treats the infinite, roundwise-repeated collection game as a
mechanical system: the utility trajectories ``u_a(r)``, ``u_c(r)`` of
adversary and collector are generalized coordinates, the round index ``r``
plays the role of time, and the system evolves along the path that makes
the action ``S = ∫ L(u, u̇, r) dr`` stationary (Axiom 1).  The
Euler–Lagrange equations (Lemma 2) then govern the dynamics.

This module provides:

* a :class:`Lagrangian` protocol plus the concrete Lagrangians used in the
  paper — the free equilibrium Lagrangian ``Σ m u̇²/2`` (Theorems 1–2) and
  interacting Lagrangians with the Tit-for-tat hard-wall and Elastic
  spring interaction terms (§V, Definition 2);
* a discretized action functional and numerical Euler–Lagrange residuals,
  so analytic solutions can be *verified* variationally;
* a least-action boundary-value solver that minimizes the discretized
  action directly, used in tests to confirm e.g. that the free system's
  stationary path has constant generalized velocity (Theorem 1).

Sign convention: we use the standard mechanics form ``L = kinetic - U``
(the paper's Eq. 9 writes ``+U`` but derives oscillator equations that
correspond to the standard convention; see DESIGN.md §4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Tuple

import numpy as np
from scipy.optimize import minimize

from .arrays import Array, ArrayLike

__all__ = [
    "FreeLagrangian",
    "ElasticLagrangian",
    "TitForTatLagrangian",
    "action",
    "euler_lagrange_residual",
    "least_action_path",
]


class _TwoBodyLagrangian:
    """Shared machinery for two-coordinate Lagrangians ``L(u, u̇)``.

    Subclasses implement :meth:`potential`; kinetic energy is always
    ``m_a u̇_a²/2 + m_c u̇_c²/2`` with the factor mandated by Theorem 2.
    """

    def __init__(self, mass_adversary: float = 1.0, mass_collector: float = 1.0):
        if mass_adversary <= 0.0 or mass_collector <= 0.0:
            raise ValueError("the intrinsic factors m_a, m_c must be positive")
        self.mass_adversary = float(mass_adversary)
        self.mass_collector = float(mass_collector)

    def kinetic(self, du: Array) -> Array:
        """Kinetic term ``m_a u̇_a²/2 + m_c u̇_c²/2`` (Theorem 2)."""
        du = np.atleast_2d(du)
        return 0.5 * (
            self.mass_adversary * du[..., 0] ** 2
            + self.mass_collector * du[..., 1] ** 2
        )

    def potential(self, u: Array) -> Array:
        """Interaction term ``U(u_a, u_c)``; zero for the free system."""
        raise NotImplementedError

    def __call__(
        self, u: ArrayLike, du: ArrayLike, r: float = 0.0
    ) -> Array:
        """Evaluate ``L = kinetic - U`` at coordinates/velocities.

        ``u`` and ``du`` have shape ``(..., 2)`` with the adversary in
        component 0 and the collector in component 1.  The Lagrangian is
        autonomous (no explicit ``r`` dependence — the translation
        invariance used to prove Theorem 1), but ``r`` is accepted for
        interface uniformity.  Scalar (1-D) inputs yield a scalar.
        """
        u = np.asarray(u, dtype=float)
        du = np.asarray(du, dtype=float)
        value = self.kinetic(du) - self.potential(u)
        if u.ndim == 1:
            return float(value[0])
        return value

    def energy(self, u: ArrayLike, du: ArrayLike) -> Array:
        """Conserved energy ``kinetic + U`` of the autonomous system."""
        u = np.asarray(u, dtype=float)
        du = np.asarray(du, dtype=float)
        value = self.kinetic(du) + self.potential(u)
        if u.ndim == 1:
            return float(value[0])
        return value


class FreeLagrangian(_TwoBodyLagrangian):
    """Equilibrium-state Lagrangian ``L = m_a u̇_a²/2 + m_c u̇_c²/2``.

    Lemma 3 + Theorems 1–2: at a Stackelberg equilibrium the parties evolve
    independently (additive Lagrangian, no interaction), uniformity of the
    game in ``r`` and ``u`` forces ``L = L(u̇²)``, and the stationary paths
    have constant generalized velocities ``u̇ = const``.
    """

    def potential(self, u: Array) -> Array:
        u = np.atleast_2d(np.asarray(u, dtype=float))
        return np.zeros(u.shape[:-1])


class ElasticLagrangian(_TwoBodyLagrangian):
    """Elastic-strategy Lagrangian with ``U = k (u_a - u_c)² / 2``.

    Definition 2: the elastic trigger responds to utility deviation with a
    restoring force proportional to the deviation — a spring of stiffness
    ``k`` coupling the two utilities.  Theorem 4: the relative utility then
    oscillates harmonically in ``r`` (see :mod:`repro.core.oscillator`).
    """

    def __init__(
        self,
        stiffness: float,
        mass_adversary: float = 1.0,
        mass_collector: float = 1.0,
    ):
        super().__init__(mass_adversary, mass_collector)
        if stiffness <= 0.0:
            raise ValueError("spring stiffness k must be positive")
        self.stiffness = float(stiffness)

    def potential(self, u: Array) -> Array:
        u = np.atleast_2d(np.asarray(u, dtype=float))
        return 0.5 * self.stiffness * (u[..., 0] - u[..., 1]) ** 2

    def forces(self, u: ArrayLike) -> Array:
        """Restoring forces ``(-∂U/∂u_a, -∂U/∂u_c)`` pulling utilities together."""
        u = np.atleast_2d(np.asarray(u, dtype=float))
        rel = u[..., 0] - u[..., 1]
        return np.stack([-self.stiffness * rel, self.stiffness * rel], axis=-1)


class TitForTatLagrangian(_TwoBodyLagrangian):
    """Tit-for-tat hard-wall Lagrangian: ``U = 0`` iff utilities agree.

    §V-A: the rigid trigger permanently terminates cooperation on any
    betrayal, modeled as an infinite potential wall outside the
    cooperation corridor ``|u_a - u_c| <= tolerance``.  A finite ``wall``
    height keeps the functional numerically usable; tests verify the wall
    dominates any kinetic saving for paths leaving the corridor.
    """

    def __init__(
        self,
        tolerance: float = 1e-6,
        wall: float = 1e12,
        mass_adversary: float = 1.0,
        mass_collector: float = 1.0,
    ):
        super().__init__(mass_adversary, mass_collector)
        if tolerance < 0.0:
            raise ValueError("tolerance must be non-negative")
        if wall <= 0.0:
            raise ValueError("wall height must be positive")
        self.tolerance = float(tolerance)
        self.wall = float(wall)

    def potential(self, u: Array) -> Array:
        u = np.atleast_2d(np.asarray(u, dtype=float))
        gap = np.abs(u[..., 0] - u[..., 1])
        return np.where(gap <= self.tolerance, 0.0, self.wall)


# ---------------------------------------------------------------------- #
# discretized variational calculus
# ---------------------------------------------------------------------- #
def action(lagrangian: _TwoBodyLagrangian, path: ArrayLike, dr: float) -> float:
    """Discretized action ``S = ∫ L dr`` along a sampled path.

    ``path`` has shape ``(n, 2)``; velocities are midpoint finite
    differences and the Lagrangian is evaluated at segment midpoints —
    the standard first-order variational integrator, accurate enough for
    the qualitative verifications the tests perform.
    """
    path = np.asarray(path, dtype=float)
    if path.ndim != 2 or path.shape[0] < 2 or path.shape[1] != 2:
        raise ValueError("path must have shape (n >= 2, 2)")
    if dr <= 0.0:
        raise ValueError("dr must be positive")
    mid = 0.5 * (path[1:] + path[:-1])
    vel = (path[1:] - path[:-1]) / dr
    values = lagrangian(mid, vel)
    return float(np.sum(values) * dr)


def euler_lagrange_residual(
    lagrangian: _TwoBodyLagrangian,
    path: ArrayLike,
    dr: float,
    eps: float = 1e-6,
) -> Array:
    """Numerical Euler–Lagrange residual ``∂L/∂u - d/dr (∂L/∂u̇)``.

    Evaluated at the interior nodes of a sampled path with central
    differences; an exact stationary path yields residuals that vanish as
    the discretization is refined (Lemma 1 / Lemma 2).  Returns an array
    of shape ``(n - 2, 2)``.
    """
    path = np.asarray(path, dtype=float)
    n = path.shape[0]
    if n < 3:
        raise ValueError("need at least three nodes for interior residuals")

    def dL_du(u: Array, du: Array) -> Array:
        out = np.empty(2)
        for i in range(2):
            up, down = u.copy(), u.copy()
            up[i] += eps
            down[i] -= eps
            out[i] = (lagrangian(up, du) - lagrangian(down, du)) / (2 * eps)
        return out

    def dL_ddu(u: Array, du: Array) -> Array:
        out = np.empty(2)
        for i in range(2):
            up, down = du.copy(), du.copy()
            up[i] += eps
            down[i] -= eps
            out[i] = (lagrangian(u, up) - lagrangian(u, down)) / (2 * eps)
        return out

    residuals = np.empty((n - 2, 2))
    for idx in range(1, n - 1):
        u = path[idx]
        vel_c = (path[idx + 1] - path[idx - 1]) / (2 * dr)
        # momentum p = dL/du̇ at the two half-steps around node idx
        vel_plus = (path[idx + 1] - path[idx]) / dr
        vel_minus = (path[idx] - path[idx - 1]) / dr
        u_plus = 0.5 * (path[idx + 1] + path[idx])
        u_minus = 0.5 * (path[idx] + path[idx - 1])
        p_plus = dL_ddu(u_plus, vel_plus)
        p_minus = dL_ddu(u_minus, vel_minus)
        residuals[idx - 1] = dL_du(u, vel_c) - (p_plus - p_minus) / dr
    return residuals


def least_action_path(
    lagrangian: _TwoBodyLagrangian,
    start: Tuple[float, float],
    end: Tuple[float, float],
    nodes: int = 33,
    dr: float = 1.0,
) -> Array:
    """Numerically minimize the discretized action between fixed endpoints.

    Interior nodes are free optimization variables; the initial guess is
    the straight line between the boundary conditions.  Returns the full
    stationary path of shape ``(nodes, 2)``.

    This is the computational embodiment of the least-action principle
    (Eq. 1 / Eq. 3): for :class:`FreeLagrangian` the result is the straight
    line (``u̇ = const``, Theorem 1); for :class:`ElasticLagrangian` it
    bends toward the oscillator solution of Theorem 4.
    """
    if nodes < 3:
        raise ValueError("need at least three nodes")
    start_arr = np.asarray(start, dtype=float)
    end_arr = np.asarray(end, dtype=float)
    if start_arr.shape != (2,) or end_arr.shape != (2,):
        raise ValueError("boundary conditions must be coordinate pairs")

    line = np.linspace(start_arr, end_arr, nodes)

    def objective(flat_interior: Array) -> float:
        path = np.vstack(
            [start_arr, flat_interior.reshape(nodes - 2, 2), end_arr]
        )
        return action(lagrangian, path, dr)

    result = minimize(
        objective,
        line[1:-1].ravel(),
        method="L-BFGS-B",
        options={"maxiter": 2000, "ftol": 1e-14, "gtol": 1e-12},
    )
    interior = result.x.reshape(nodes - 2, 2)
    return np.vstack([start_arr, interior, end_arr])
