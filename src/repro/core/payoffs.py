"""Payoff functions of the trimming game (Section III-B of the paper).

The game between a data collector and an adversary is zero-sum in the
poisoning payoff ``P`` — whatever deviation the adversary manages to inject
is utility lost by the collector — while the collector additionally pays a
trimming overhead ``T`` for the honest values she removes.  Working in
percentile coordinates ``x`` of the benign distribution:

* ``P(x)`` — payoff of a poison value injected at percentile ``x`` that
  *survives* trimming.  Increasing in ``x``: the further into the upper tail
  a surviving poison value sits, the more it skews the estimate.
* ``T(x)`` — overhead of trimming *at* percentile ``x``: the mass of benign
  data removed is ``1 - x``, so ``T`` decreases in ``x``.

The balance point ``x_L`` solves ``P(x_L) = T(x_L)`` (Fig. 1a): below it
trimming costs more than the poison it prevents, so a rational collector
never trims below ``x_L``.  The right boundary ``x_R`` (Fig. 2) is the
largest injection position a rational adversary would use, because beyond
it the collector trims unconditionally.  Together ``[x_L, x_R]`` is the
complete strategy space of Definition 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Tuple

import numpy as np
from scipy.optimize import brentq

from .domain import clip_percentile

__all__ = ["PayoffModel", "power_poison_gain", "power_trim_cost"]


def power_poison_gain(scale: float = 1.0, exponent: float = 2.0) -> Callable[[float], float]:
    """A convex poison-gain family ``P(x) = scale * x**exponent``.

    The default quadratic growth encodes that deviation impact accelerates
    toward the tail of the distribution (extreme values move means,
    centroids and separating hyperplanes superlinearly).
    """
    if scale <= 0 or exponent <= 0:
        raise ValueError("scale and exponent must be positive")

    def gain(x: float) -> float:
        return scale * float(x) ** exponent

    return gain


def power_trim_cost(scale: float = 1.0, exponent: float = 1.0) -> Callable[[float], float]:
    """A trimming-overhead family ``T(x) = scale * (1 - x)**exponent``.

    ``1 - x`` is exactly the benign mass removed when trimming at
    percentile ``x``; the exponent models how quickly accuracy loss grows
    with removed mass.
    """
    if scale <= 0 or exponent <= 0:
        raise ValueError("scale and exponent must be positive")

    def cost(x: float) -> float:
        return scale * (1.0 - float(x)) ** exponent

    return cost


@dataclass
class PayoffModel:
    """Payoff structure of the single-round trimming game.

    Parameters
    ----------
    poison_gain:
        ``P(x)`` — payoff of a surviving poison value at percentile ``x``.
        Must be non-decreasing on [0, 1].
    trim_cost:
        ``T(x)`` — collector overhead for trimming at percentile ``x``.
        Must be non-increasing on [0, 1].
    tolerance:
        Tail-mass tolerance used to place the right boundary ``x_R``: the
        collector definitely trims once the remaining benign tail mass is
        at most ``tolerance``, so no rational adversary injects beyond
        ``x_R = 1 - tolerance``.
    """

    poison_gain: Callable[[float], float] = field(default_factory=power_poison_gain)
    trim_cost: Callable[[float], float] = field(default_factory=power_trim_cost)
    tolerance: float = 0.01

    def __post_init__(self) -> None:
        if not 0.0 < self.tolerance < 0.5:
            raise ValueError("tolerance must lie in (0, 0.5)")

    # ------------------------------------------------------------------ #
    # elementary payoffs
    # ------------------------------------------------------------------ #
    def poison_payoff(self, x: float) -> float:
        """``P(x)``: adversary gain from a surviving poison value at ``x``."""
        return float(self.poison_gain(clip_percentile(x)))

    def trim_overhead(self, x: float) -> float:
        """``T(x)``: collector loss from trimming benign mass above ``x``."""
        return float(self.trim_cost(clip_percentile(x)))

    # ------------------------------------------------------------------ #
    # the strategy-space boundaries of Definition 1
    # ------------------------------------------------------------------ #
    def balance_point(self) -> float:
        """The balance point ``x_L`` with ``P(x_L) = T(x_L)`` (Fig. 1a).

        Found by bracketed root finding on ``P - T``, which is monotone
        increasing under the model assumptions (P up, T down), hence the
        root is unique when it exists.
        """

        def diff(x: float) -> float:
            return self.poison_payoff(x) - self.trim_overhead(x)

        lo, hi = 0.0, 1.0
        d_lo, d_hi = diff(lo), diff(hi)
        if d_lo > 0.0:
            # Poison beats overhead everywhere: trimming always pays.
            return lo
        if d_hi < 0.0:
            # Overhead dominates everywhere: never worth trimming.
            return hi
        return float(brentq(diff, lo, hi, xtol=1e-12))

    def right_boundary(self) -> float:
        """The right boundary ``x_R = 1 - tolerance`` (Fig. 2).

        Beyond ``x_R`` the benign tail mass is within the collector's
        tolerance, so she trims unconditionally and a rational adversary
        gains nothing by injecting there.
        """
        return 1.0 - self.tolerance

    def strategy_interval(self) -> Tuple[float, float]:
        """The complete strategy space ``[x_L, x_R]`` of Definition 1."""
        x_l = self.balance_point()
        x_r = self.right_boundary()
        if x_l >= x_r:
            raise ValueError(
                "degenerate strategy space: balance point "
                f"{x_l:.4f} >= right boundary {x_r:.4f}"
            )
        return x_l, x_r

    # ------------------------------------------------------------------ #
    # strategy-profile payoffs
    # ------------------------------------------------------------------ #
    def profile_payoffs(self, x_a: float, x_c: float) -> Tuple[float, float]:
        """Payoffs ``(adversary, collector)`` for profile ``(x_a, x_c)``.

        ``x_a`` is the adversary's injection percentile and ``x_c`` the
        collector's trimming percentile.  A poison value at or above the
        trimming point is removed, so the adversary gains only when
        ``x_a < x_c``.  The collector always pays the trimming overhead
        ``T(x_c)`` and additionally the poisoning loss when the poison
        survives — the zero-sum structure of Section III-B:
        ``payoff_collector = -P·[survives] - T``.
        """
        x_a = clip_percentile(x_a)
        x_c = clip_percentile(x_c)
        survives = x_a < x_c
        p = self.poison_payoff(x_a) if survives else 0.0
        t = self.trim_overhead(x_c)
        return p, -p - t

    def payoff_matrix(
        self, adversary_grid, collector_grid
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Dense payoff matrices over discretized strategy grids.

        Returns ``(A, C)`` where ``A[i, j]`` is the adversary payoff and
        ``C[i, j]`` the collector payoff when the adversary plays
        ``adversary_grid[i]`` against trimming point ``collector_grid[j]``.
        """
        a_grid = np.asarray(adversary_grid, dtype=float)
        c_grid = np.asarray(collector_grid, dtype=float)
        adv = np.empty((a_grid.size, c_grid.size))
        col = np.empty_like(adv)
        for i, x_a in enumerate(a_grid):
            for j, x_c in enumerate(c_grid):
                adv[i, j], col[i, j] = self.profile_payoffs(x_a, x_c)
        return adv, col
