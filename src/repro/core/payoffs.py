"""Payoff functions of the trimming game (Section III-B of the paper).

The game between a data collector and an adversary is zero-sum in the
poisoning payoff ``P`` — whatever deviation the adversary manages to inject
is utility lost by the collector — while the collector additionally pays a
trimming overhead ``T`` for the honest values she removes.  Working in
percentile coordinates ``x`` of the benign distribution:

* ``P(x)`` — payoff of a poison value injected at percentile ``x`` that
  *survives* trimming.  Increasing in ``x``: the further into the upper tail
  a surviving poison value sits, the more it skews the estimate.
* ``T(x)`` — overhead of trimming *at* percentile ``x``: the mass of benign
  data removed is ``1 - x``, so ``T`` decreases in ``x``.

The balance point ``x_L`` solves ``P(x_L) = T(x_L)`` (Fig. 1a): below it
trimming costs more than the poison it prevents, so a rational collector
never trims below ``x_L``.  The right boundary ``x_R`` (Fig. 2) is the
largest injection position a rational adversary would use, because beyond
it the collector trims unconditionally.  Together ``[x_L, x_R]`` is the
complete strategy space of Definition 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Tuple, Union

import numpy as np
from scipy.optimize import brentq

from .arrays import Array, ArrayLike
from .domain import clip_percentile

__all__ = ["PayoffModel", "power_poison_gain", "power_trim_cost"]


@dataclass(frozen=True)
class _PowerGain:
    """``P(x) = scale * x**exponent`` as a picklable callable."""

    scale: float
    exponent: float

    def __call__(self, x: ArrayLike) -> Union[float, Array]:
        value = self.scale * np.power(np.asarray(x, dtype=float), self.exponent)
        if np.ndim(x) == 0:
            return float(value)
        return value


@dataclass(frozen=True)
class _PowerCost:
    """``T(x) = scale * (1 - x)**exponent`` as a picklable callable."""

    scale: float
    exponent: float

    def __call__(self, x: ArrayLike) -> Union[float, Array]:
        value = self.scale * np.power(
            1.0 - np.asarray(x, dtype=float), self.exponent
        )
        if np.ndim(x) == 0:
            return float(value)
        return value


def power_poison_gain(scale: float = 1.0, exponent: float = 2.0) -> Callable[[float], float]:
    """A convex poison-gain family ``P(x) = scale * x**exponent``.

    The default quadratic growth encodes that deviation impact accelerates
    toward the tail of the distribution (extreme values move means,
    centroids and separating hyperplanes superlinearly).  The returned
    callable is ndarray-aware: scalar in, float out; array in, array out —
    scalar and vectorized evaluations share the same :func:`numpy.power`
    kernel, so they agree bit-for-bit.  It is a plain frozen-dataclass
    callable, so payoff models pickle (session snapshots carry them).
    """
    if scale <= 0 or exponent <= 0:
        raise ValueError("scale and exponent must be positive")
    return _PowerGain(float(scale), float(exponent))


def power_trim_cost(scale: float = 1.0, exponent: float = 1.0) -> Callable[[float], float]:
    """A trimming-overhead family ``T(x) = scale * (1 - x)**exponent``.

    ``1 - x`` is exactly the benign mass removed when trimming at
    percentile ``x``; the exponent models how quickly accuracy loss grows
    with removed mass.  Ndarray-aware and picklable like
    :func:`power_poison_gain`.
    """
    if scale <= 0 or exponent <= 0:
        raise ValueError("scale and exponent must be positive")
    return _PowerCost(float(scale), float(exponent))


@dataclass
class PayoffModel:
    """Payoff structure of the single-round trimming game.

    Parameters
    ----------
    poison_gain:
        ``P(x)`` — payoff of a surviving poison value at percentile ``x``.
        Must be non-decreasing on [0, 1].
    trim_cost:
        ``T(x)`` — collector overhead for trimming at percentile ``x``.
        Must be non-increasing on [0, 1].
    tolerance:
        Tail-mass tolerance used to place the right boundary ``x_R``: the
        collector definitely trims once the remaining benign tail mass is
        at most ``tolerance``, so no rational adversary injects beyond
        ``x_R = 1 - tolerance``.
    """

    poison_gain: Callable[[float], float] = field(default_factory=power_poison_gain)
    trim_cost: Callable[[float], float] = field(default_factory=power_trim_cost)
    tolerance: float = 0.01

    def __post_init__(self) -> None:
        if not 0.0 < self.tolerance < 0.5:
            raise ValueError("tolerance must lie in (0, 0.5)")

    # ------------------------------------------------------------------ #
    # elementary payoffs
    # ------------------------------------------------------------------ #
    @staticmethod
    def _eval_kernel(fn: Callable[[Array], Any], grid: Array) -> Array:
        """Evaluate a payoff kernel over a percentile grid, vectorized.

        Tries one ndarray call first; when the user supplied a
        scalar-only callable (raises on arrays, or returns something of
        the wrong shape) falls back to a per-point Python loop.  Even the
        fallback is O(n) in the grid size — never O(n²) — because both
        payoff components depend on a single coordinate each.
        """
        try:
            value = np.asarray(fn(grid), dtype=float)
        except (TypeError, ValueError):
            value = None
        if value is not None and value.shape == grid.shape:
            return value
        return np.array([float(fn(float(x))) for x in grid])

    def poison_payoff(self, x: ArrayLike) -> Union[float, Array]:
        """``P(x)``: adversary gain from a surviving poison value at ``x``.

        Scalar ``x`` yields a float; an ndarray yields the elementwise
        gains (clipped into [0, 1] first), falling back to a scalar loop
        for non-vectorizable user kernels.
        """
        if np.ndim(x) == 0:
            return float(self.poison_gain(clip_percentile(x)))
        grid = np.clip(np.asarray(x, dtype=float), 0.0, 1.0)
        return self._eval_kernel(self.poison_gain, grid)

    def trim_overhead(self, x: ArrayLike) -> Union[float, Array]:
        """``T(x)``: collector loss from trimming benign mass above ``x``.

        Ndarray-aware like :meth:`poison_payoff`.
        """
        if np.ndim(x) == 0:
            return float(self.trim_cost(clip_percentile(x)))
        grid = np.clip(np.asarray(x, dtype=float), 0.0, 1.0)
        return self._eval_kernel(self.trim_cost, grid)

    # ------------------------------------------------------------------ #
    # the strategy-space boundaries of Definition 1
    # ------------------------------------------------------------------ #
    def balance_point(self) -> float:
        """The balance point ``x_L`` with ``P(x_L) = T(x_L)`` (Fig. 1a).

        Found by bracketed root finding on ``P - T``, which is monotone
        increasing under the model assumptions (P up, T down), hence the
        root is unique when it exists.
        """

        def diff(x: float) -> float:
            return self.poison_payoff(x) - self.trim_overhead(x)

        lo, hi = 0.0, 1.0
        d_lo, d_hi = diff(lo), diff(hi)
        if d_lo > 0.0:
            # Poison beats overhead everywhere: trimming always pays.
            return lo
        if d_hi < 0.0:
            # Overhead dominates everywhere: never worth trimming.
            return hi
        return float(brentq(diff, lo, hi, xtol=1e-12))

    def right_boundary(self) -> float:
        """The right boundary ``x_R = 1 - tolerance`` (Fig. 2).

        Beyond ``x_R`` the benign tail mass is within the collector's
        tolerance, so she trims unconditionally and a rational adversary
        gains nothing by injecting there.
        """
        return 1.0 - self.tolerance

    def strategy_interval(self) -> Tuple[float, float]:
        """The complete strategy space ``[x_L, x_R]`` of Definition 1."""
        x_l = self.balance_point()
        x_r = self.right_boundary()
        if x_l >= x_r:
            raise ValueError(
                "degenerate strategy space: balance point "
                f"{x_l:.4f} >= right boundary {x_r:.4f}"
            )
        return x_l, x_r

    # ------------------------------------------------------------------ #
    # strategy-profile payoffs
    # ------------------------------------------------------------------ #
    def profile_payoffs(self, x_a: float, x_c: float) -> Tuple[float, float]:
        """Payoffs ``(adversary, collector)`` for profile ``(x_a, x_c)``.

        ``x_a`` is the adversary's injection percentile and ``x_c`` the
        collector's trimming percentile.  A poison value at or above the
        trimming point is removed, so the adversary gains only when
        ``x_a < x_c``.  The collector always pays the trimming overhead
        ``T(x_c)`` and additionally the poisoning loss when the poison
        survives — the zero-sum structure of Section III-B:
        ``payoff_collector = -P·[survives] - T``.
        """
        x_a = clip_percentile(x_a)
        x_c = clip_percentile(x_c)
        survives = x_a < x_c
        p = self.poison_payoff(x_a) if survives else 0.0
        t = self.trim_overhead(x_c)
        return p, -p - t

    def payoff_matrix(
        self, adversary_grid: ArrayLike, collector_grid: ArrayLike
    ) -> Tuple[Array, Array]:
        """Dense payoff matrices over discretized strategy grids.

        Returns ``(A, C)`` where ``A[i, j]`` is the adversary payoff and
        ``C[i, j]`` the collector payoff when the adversary plays
        ``adversary_grid[i]`` against trimming point ``collector_grid[j]``.
        """
        a_grid = np.clip(np.asarray(adversary_grid, dtype=float).ravel(), 0.0, 1.0)
        c_grid = np.clip(np.asarray(collector_grid, dtype=float).ravel(), 0.0, 1.0)
        # One kernel evaluation per grid *point* (vectorized when the
        # kernels allow, scalar fallback otherwise) instead of one
        # Python call per matrix *cell*; the survives-indicator and the
        # zero-sum combination then broadcast.  Matches the scalar
        # ``profile_payoffs`` double loop bit-for-bit, including the
        # ``-0.0 - T`` signed zero of trimmed-poison cells.
        gains = self.poison_payoff(a_grid)[:, np.newaxis]
        overheads = self.trim_overhead(c_grid)[np.newaxis, :]
        survives = a_grid[:, np.newaxis] < c_grid[np.newaxis, :]
        adv = np.where(survives, gains, 0.0)
        col = np.where(survives, -gains, -0.0) - overheads
        return adv, col
