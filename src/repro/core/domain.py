"""Input-domain and percentile-coordinate utilities.

The paper expresses every strategy — both the collector's trimming position
and the adversary's injection position — in *percentile coordinates* of the
observed data (Section VI-A).  This module provides the small algebra the
rest of the library builds on: empirical quantiles, the inverse map from a
value back to its percentile, and a bounded :class:`Domain` describing the
input space the game is played on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from .arrays import Array, ArrayLike

__all__ = [
    "Domain",
    "QuantileTable",
    "empirical_quantile",
    "percentile_of",
    "clip_percentile",
    "percentile_grid",
]


@dataclass(frozen=True)
class Domain:
    """A bounded 1-D input domain ``[low, high]``.

    The LDP case study uses ``Domain(-1.0, 1.0)``; percentile positions are
    always relative to observed data, but poison values and perturbed
    reports must remain inside (an enlarged version of) the domain.
    """

    low: float
    high: float

    def __post_init__(self) -> None:
        if not np.isfinite(self.low) or not np.isfinite(self.high):
            raise ValueError("domain bounds must be finite")
        if self.low >= self.high:
            raise ValueError(
                f"domain low ({self.low}) must be < high ({self.high})"
            )

    @property
    def width(self) -> float:
        """Length of the domain interval."""
        return self.high - self.low

    @property
    def center(self) -> float:
        """Midpoint of the domain."""
        return 0.5 * (self.low + self.high)

    def contains(self, values: ArrayLike) -> Array:
        """Elementwise membership test, inclusive of the endpoints."""
        arr = np.asarray(values, dtype=float)
        return (arr >= self.low) & (arr <= self.high)

    def clip(self, values: ArrayLike) -> Array:
        """Clip ``values`` into the domain."""
        return np.clip(np.asarray(values, dtype=float), self.low, self.high)

    def normalize(self, values: ArrayLike) -> Array:
        """Affinely map ``values`` from this domain onto ``[-1, 1]``."""
        arr = np.asarray(values, dtype=float)
        return 2.0 * (arr - self.low) / self.width - 1.0

    def denormalize(self, values: ArrayLike) -> Array:
        """Inverse of :meth:`normalize`."""
        arr = np.asarray(values, dtype=float)
        return (arr + 1.0) * 0.5 * self.width + self.low

    def scale(self, factor: float) -> "Domain":
        """Return a domain enlarged about its center by ``factor``."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        half = 0.5 * self.width * factor
        return Domain(self.center - half, self.center + half)


class QuantileTable:
    """A sort-once quantile / empirical-CDF table over a fixed 1-D sample.

    Components that repeatedly query quantiles of the *same* reference
    data (the per-round trimming cutoff, LDP report cutoffs, judge band
    calibration) previously paid an :func:`numpy.quantile` partition over
    the full sample on every call.  The table sorts once at construction
    and then answers

    * :meth:`quantile` — interpolated quantiles by direct fractional
      indexing into the sorted sample, O(1) per query and bit-identical
      to ``numpy.quantile(values, q)`` with the default linear
      interpolation;
    * :meth:`cdf` / :meth:`tail_mass` — empirical CDF queries via
      :func:`numpy.searchsorted`, O(log n) per query and matching the
      :func:`percentile_of` convention (fraction *strictly* below).
    """

    def __init__(self, values: ArrayLike) -> None:
        arr = np.asarray(values, dtype=float).ravel()
        if arr.size == 0:
            raise ValueError("cannot build a quantile table from empty data")
        self._sorted = np.sort(arr)
        self._sorted.setflags(write=False)
        self._n = int(self._sorted.size)

    @property
    def n(self) -> int:
        """Sample size the table was built from."""
        return self._n

    @property
    def values(self) -> Array:
        """The sorted sample (read-only view)."""
        return self._sorted

    def quantile(self, q: ArrayLike) -> Union[float, Array]:
        """Interpolated quantile(s) at fraction(s) ``q`` in [0, 1].

        Scalar ``q`` yields a float, array ``q`` an ndarray.  Replicates
        ``numpy.quantile``'s linear method exactly — the virtual index is
        ``q * (n - 1)`` and interpolation uses numpy's two-sided lerp —
        so switching a caller from :func:`empirical_quantile` onto a
        table changes nothing but the complexity.
        """
        q_arr = np.asarray(q, dtype=float)
        if np.any((q_arr < 0.0) | (q_arr > 1.0)):
            raise ValueError("quantile fractions must lie in [0, 1]")
        virtual = q_arr * (self._n - 1)
        lower = np.floor(virtual)
        gamma = virtual - lower
        lo = lower.astype(np.intp)
        hi = np.minimum(lo + 1, self._n - 1)
        a = self._sorted[lo]
        b = self._sorted[hi]
        diff = b - a
        # numpy's _lerp: interpolate from whichever endpoint is nearer,
        # which is what makes the result bit-identical to np.quantile.
        out = np.where(gamma >= 0.5, b - diff * (1.0 - gamma), a + diff * gamma)
        if q_arr.ndim == 0:
            return float(out)
        return out

    def cdf(self, x: ArrayLike) -> Union[float, Array]:
        """Fraction of the sample strictly below ``x`` (left-continuous).

        Matches :func:`percentile_of` on the same sample; scalar ``x``
        yields a float, array ``x`` an ndarray.
        """
        x_arr = np.asarray(x, dtype=float)
        counts = np.searchsorted(self._sorted, x_arr, side="left")
        out = counts / self._n
        if x_arr.ndim == 0:
            return float(out)
        return out

    def tail_mass(self, x: ArrayLike) -> Union[float, Array]:
        """Fraction of the sample strictly above ``x``."""
        x_arr = np.asarray(x, dtype=float)
        counts = np.searchsorted(self._sorted, x_arr, side="right")
        out = 1.0 - counts / self._n
        if x_arr.ndim == 0:
            return float(out)
        return out


def empirical_quantile(values: ArrayLike, q: ArrayLike) -> Union[float, Array]:
    """Empirical quantile(s) of ``values`` at fraction(s) ``q`` in [0, 1].

    Thin wrapper over :func:`numpy.quantile` with linear interpolation,
    kept in one place so every component of the library agrees on the
    quantile convention.  Scalar ``q`` yields a plain float (every
    threshold-style caller treats the result as one), array ``q`` an
    ndarray of the same shape.  Repeated queries against fixed data
    should go through a :class:`QuantileTable` instead.
    """
    arr = np.asarray(values, dtype=float).ravel()
    if arr.size == 0:
        raise ValueError("cannot take a quantile of empty data")
    q_arr = np.asarray(q, dtype=float)
    if np.any((q_arr < 0.0) | (q_arr > 1.0)):
        raise ValueError("quantile fractions must lie in [0, 1]")
    result = np.quantile(arr, q)
    if q_arr.ndim == 0:
        return float(result)
    return result


def percentile_of(values: ArrayLike, x: float) -> float:
    """Fraction of ``values`` that are strictly below ``x``.

    This is the (left-continuous) empirical CDF and acts as the inverse of
    :func:`empirical_quantile` up to interpolation: it recovers the
    percentile coordinate of a concrete value, e.g. of an injected poison
    point inside the combined round batch.
    """
    arr = np.asarray(values, dtype=float).ravel()
    if arr.size == 0:
        raise ValueError("cannot locate a percentile in empty data")
    return float(np.count_nonzero(arr < x)) / float(arr.size)


def clip_percentile(q: float) -> float:
    """Clamp a percentile coordinate into the valid [0, 1] range."""
    return float(min(1.0, max(0.0, q)))


def percentile_grid(low: float, high: float, n: int) -> Array:
    """An inclusive, evenly spaced grid of ``n`` percentile coordinates.

    Used to discretize the strategy space ``[x_L, x_R]`` when solving the
    matrix / Stackelberg games numerically.
    """
    if n < 2:
        raise ValueError("a strategy grid needs at least two points")
    lo, hi = clip_percentile(low), clip_percentile(high)
    if lo >= hi:
        raise ValueError("grid low must be < high after clipping")
    return np.linspace(lo, hi, n)
