"""Input-domain and percentile-coordinate utilities.

The paper expresses every strategy — both the collector's trimming position
and the adversary's injection position — in *percentile coordinates* of the
observed data (Section VI-A).  This module provides the small algebra the
rest of the library builds on: empirical quantiles, the inverse map from a
value back to its percentile, and a bounded :class:`Domain` describing the
input space the game is played on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "Domain",
    "empirical_quantile",
    "percentile_of",
    "clip_percentile",
    "percentile_grid",
]


@dataclass(frozen=True)
class Domain:
    """A bounded 1-D input domain ``[low, high]``.

    The LDP case study uses ``Domain(-1.0, 1.0)``; percentile positions are
    always relative to observed data, but poison values and perturbed
    reports must remain inside (an enlarged version of) the domain.
    """

    low: float
    high: float

    def __post_init__(self) -> None:
        if not np.isfinite(self.low) or not np.isfinite(self.high):
            raise ValueError("domain bounds must be finite")
        if self.low >= self.high:
            raise ValueError(
                f"domain low ({self.low}) must be < high ({self.high})"
            )

    @property
    def width(self) -> float:
        """Length of the domain interval."""
        return self.high - self.low

    @property
    def center(self) -> float:
        """Midpoint of the domain."""
        return 0.5 * (self.low + self.high)

    def contains(self, values) -> np.ndarray:
        """Elementwise membership test, inclusive of the endpoints."""
        arr = np.asarray(values, dtype=float)
        return (arr >= self.low) & (arr <= self.high)

    def clip(self, values) -> np.ndarray:
        """Clip ``values`` into the domain."""
        return np.clip(np.asarray(values, dtype=float), self.low, self.high)

    def normalize(self, values) -> np.ndarray:
        """Affinely map ``values`` from this domain onto ``[-1, 1]``."""
        arr = np.asarray(values, dtype=float)
        return 2.0 * (arr - self.low) / self.width - 1.0

    def denormalize(self, values) -> np.ndarray:
        """Inverse of :meth:`normalize`."""
        arr = np.asarray(values, dtype=float)
        return (arr + 1.0) * 0.5 * self.width + self.low

    def scale(self, factor: float) -> "Domain":
        """Return a domain enlarged about its center by ``factor``."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        half = 0.5 * self.width * factor
        return Domain(self.center - half, self.center + half)


def empirical_quantile(values, q) -> np.ndarray:
    """Empirical quantile(s) of ``values`` at fraction(s) ``q`` in [0, 1].

    Thin wrapper over :func:`numpy.quantile` with linear interpolation,
    kept in one place so every component of the library agrees on the
    quantile convention.
    """
    arr = np.asarray(values, dtype=float).ravel()
    if arr.size == 0:
        raise ValueError("cannot take a quantile of empty data")
    q_arr = np.asarray(q, dtype=float)
    if np.any((q_arr < 0.0) | (q_arr > 1.0)):
        raise ValueError("quantile fractions must lie in [0, 1]")
    return np.quantile(arr, q)


def percentile_of(values, x) -> float:
    """Fraction of ``values`` that are strictly below ``x``.

    This is the (left-continuous) empirical CDF and acts as the inverse of
    :func:`empirical_quantile` up to interpolation: it recovers the
    percentile coordinate of a concrete value, e.g. of an injected poison
    point inside the combined round batch.
    """
    arr = np.asarray(values, dtype=float).ravel()
    if arr.size == 0:
        raise ValueError("cannot locate a percentile in empty data")
    return float(np.count_nonzero(arr < x)) / float(arr.size)


def clip_percentile(q: float) -> float:
    """Clamp a percentile coordinate into the valid [0, 1] range."""
    return float(min(1.0, max(0.0, q)))


def percentile_grid(low: float, high: float, n: int) -> np.ndarray:
    """An inclusive, evenly spaced grid of ``n`` percentile coordinates.

    Used to discretize the strategy space ``[x_L, x_R]`` when solving the
    matrix / Stackelberg games numerically.
    """
    if n < 2:
        raise ValueError("a strategy grid needs at least two points")
    lo, hi = clip_percentile(low), clip_percentile(high)
    if lo >= hi:
        raise ValueError("grid low must be < high after clipping")
    return np.linspace(lo, hi, n)
