"""Quality_Evaluation() implementations (§III-B, Algorithms 1 and 2).

The game-theoretic model presupposes a *publicly recognized data quality
standard* both parties can evaluate.  The collector uses it to gauge the
intensity of poisoning in a round's batch, the Tit-for-tat strategy uses
it as a trigger, and the Elastic strategy uses its normalized value to set
the next threshold.  Three concrete evaluators are provided; all follow
the convention **higher score = worse quality (more poisoning)** so that
triggers and elastic responses read uniformly.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .arrays import Array, ArrayLike
from .domain import QuantileTable, empirical_quantile

__all__ = [
    "QualityEvaluator",
    "TailMassEvaluator",
    "KolmogorovSmirnovEvaluator",
    "MeanShiftEvaluator",
]


class QualityEvaluator:
    """Interface of a ``Quality_Evaluation()`` standard.

    Subclasses are first fit on clean reference data ``X0`` (the
    "triggering condition" input of Algorithm 1) and then score subsequent
    round batches.  :meth:`normalized` maps scores onto [0, 1] — the
    ``QE_i = QE(X_i)/max(QE(·))`` normalization of Algorithm 2.
    """

    #: Trimmer score families whose per-point scores coincide with
    #: :meth:`_as_scores` and may therefore be reused verbatim.  A
    #: ``"value"`` trimmer's scores *are* the raw 1-D values — exactly
    #: what ``_as_scores`` returns for a 1-D batch.
    _COMPATIBLE_SCORE_KINDS: Tuple[str, ...] = ("value",)

    def fit(self, reference: ArrayLike) -> "QualityEvaluator":
        """Calibrate the evaluator on clean reference data."""
        raise NotImplementedError

    def score(self, batch: ArrayLike, scores: Optional[Array] = None) -> float:
        """Poisoning-intensity score of a batch (higher = worse).

        ``scores`` optionally carries precomputed per-point scores of the
        same batch under a commensurable convention (see
        :meth:`accepts_scores`); implementations may use them to skip
        their own scoring sweep.
        """
        raise NotImplementedError

    def max_score(self) -> float:
        """The maximum attainable score, for normalization."""
        raise NotImplementedError

    def normalize_score(self, score: float) -> float:
        """Map a raw score onto the Algorithm 2 ``QE_i`` scale in [0, 1]."""
        peak = self.max_score()
        if peak <= 0.0:
            raise RuntimeError("evaluator maximum must be positive")
        return float(np.clip(score / peak, 0.0, 1.0))

    def normalized(self, batch: ArrayLike) -> float:
        """``QE_i`` in [0, 1]: score divided by the evaluator's maximum."""
        return self.normalize_score(self.score(batch))

    def evaluate(
        self, batch: ArrayLike, scores: Optional[Array] = None
    ) -> Tuple[float, float]:
        """``(score, normalized)`` of one batch from a single scoring sweep.

        This is the engine's per-round entry point: it replaces the
        previous ``normalized(batch)`` + ``score(batch)`` pair, which
        scored the whole batch twice.  Subclasses that override
        :meth:`normalized` with bespoke logic keep their semantics: the
        override is detected and routed through (at the old two-sweep
        cost); override :meth:`evaluate` itself to regain single-pass.
        """
        if scores is not None:
            raw = float(self.score(batch, scores=scores))
        else:
            raw = float(self.score(batch))
        if type(self).normalized is not QualityEvaluator.normalized:
            return raw, float(self.normalized(batch))
        return raw, self.normalize_score(raw)

    def accepts_scores(self, score_kind: Optional[str]) -> bool:
        """Whether :meth:`evaluate` can reuse a trimmer's batch scores.

        True only when the trimmer's score family (its ``score_kind``
        tag) is commensurable with :meth:`_as_scores` *and* the concrete
        :meth:`score` implementation actually takes the ``scores``
        keyword (user subclasses may predate it).
        """
        if score_kind not in self._COMPATIBLE_SCORE_KINDS:
            return False
        try:
            return "scores" in inspect.signature(self.score).parameters
        except (TypeError, ValueError):  # builtins / exotic callables
            return False

    def evaluate_many(
        self, stacks: ArrayLike, scores: Optional[Array] = None
    ) -> Tuple[Array, Array]:
        """Rep-batched :meth:`evaluate` over an ``(R, n[, d])`` stack.

        Returns ``(score, normalized)`` as ``(R,)`` arrays; element ``r``
        is byte-identical to ``self.evaluate(stacks[r], ...)``.  The base
        implementation is the documented per-rep fallback loop — always
        correct for any subclass; array-native evaluators override it
        with a single vectorized sweep.
        """
        arr = np.asarray(stacks, dtype=float)
        raws = np.empty(arr.shape[0])
        normalized = np.empty(arr.shape[0])
        for r in range(arr.shape[0]):
            shared = None if scores is None else scores[r]
            raws[r], normalized[r] = self.evaluate(arr[r], scores=shared)
        return raws, normalized

    @staticmethod
    def _as_scores_many(
        stacks: ArrayLike, scores: Optional[Array] = None
    ) -> Array:
        """Rep-batched :meth:`_as_scores`: ``(R, n[, d])`` → ``(R, n)``."""
        arr = np.asarray(stacks, dtype=float)
        if arr.size == 0:
            raise ValueError("cannot evaluate an empty stack")
        if scores is not None:
            pre = np.asarray(scores, dtype=float)
            if pre.shape != arr.shape[:2]:
                raise ValueError(
                    f"precomputed scores shaped {pre.shape} do not match the "
                    f"(R, n) layout {arr.shape[:2]} of the stack"
                )
            return pre
        if arr.ndim == 2:
            return arr
        if arr.ndim == 3:
            return np.linalg.norm(arr, axis=2)
        raise ValueError("stacks must be (R, n) or (R, n, d)")

    @staticmethod
    def _as_scores(batch: ArrayLike, scores: Optional[Array] = None) -> Array:
        """Flatten a batch to 1-D scores (multivariate: row L2 norms).

        ``scores`` short-circuits the computation with precomputed
        commensurable scores (the trimmer's single-pass sweep).
        """
        if scores is not None:
            arr = np.asarray(scores, dtype=float).ravel()
            if arr.size == 0:
                raise ValueError("cannot evaluate an empty batch")
            n_batch = np.asarray(batch).shape[0] if np.ndim(batch) > 0 else 1
            if arr.size != n_batch:
                raise ValueError(
                    f"precomputed scores carry {arr.size} entries for a "
                    f"batch of {n_batch} points — pass the *full* batch "
                    "scores (e.g. TrimReport.scores, not kept_scores)"
                )
            return arr
        arr = np.asarray(batch, dtype=float)
        if arr.size == 0:
            raise ValueError("cannot evaluate an empty batch")
        if arr.ndim == 1:
            return arr
        if arr.ndim == 2:
            return np.linalg.norm(arr, axis=1)
        raise ValueError("batches must be 1-D or 2-D")


@dataclass
class TailMassEvaluator(QualityEvaluator):
    """Excess upper-tail mass relative to the clean reference.

    Measures the fraction of a batch lying above the reference's
    ``reference_quantile`` (default: 0.9) — under tail-injection attacks
    this directly estimates the observed poison ratio, which is the
    quantity the Table III trigger thresholds (``1 - p + Red``) compare
    against.
    """

    reference_quantile: float = 0.9

    def __post_init__(self) -> None:
        if not 0.0 < self.reference_quantile < 1.0:
            raise ValueError("reference_quantile must lie in (0, 1)")
        self._cutoff: float | None = None

    def fit(self, reference: ArrayLike) -> "TailMassEvaluator":
        # One-shot single quantile: np.quantile's O(n) partition beats
        # building a throwaway sort-once table.
        self._cutoff = float(
            empirical_quantile(self._as_scores(reference), self.reference_quantile)
        )
        return self

    def score(self, batch: ArrayLike, scores: Optional[Array] = None) -> float:
        if self._cutoff is None:
            raise RuntimeError("evaluator must be fit on reference data first")
        batch_scores = self._as_scores(batch, scores)
        excess = float(np.mean(batch_scores > self._cutoff)) - (
            1.0 - self.reference_quantile
        )
        return max(0.0, excess)

    def evaluate_many(
        self, stacks: ArrayLike, scores: Optional[Array] = None
    ) -> Tuple[Array, Array]:
        """Vectorized tail-mass sweep across the rep axis.

        The per-rep tail masses are exact 0/1 sums, so the axis reduction
        is bit-identical to R solo :meth:`evaluate` calls.
        """
        if self._cutoff is None:
            raise RuntimeError("evaluator must be fit on reference data first")
        batch_scores = self._as_scores_many(stacks, scores)
        excess = np.mean(batch_scores > self._cutoff, axis=1) - (
            1.0 - self.reference_quantile
        )
        raws = np.maximum(0.0, excess)
        normalized = np.clip(raws / self.max_score(), 0.0, 1.0)
        return raws, normalized

    def max_score(self) -> float:
        return self.reference_quantile  # all mass above the cutoff


@dataclass
class KolmogorovSmirnovEvaluator(QualityEvaluator):
    """Kolmogorov–Smirnov distance between batch and reference scores.

    A distribution-free quality standard: the KS statistic between the
    empirical CDFs, insensitive to where the manipulation sits in the
    domain, with a natural maximum of 1.
    """

    def __init__(self) -> None:
        self._reference: Array | None = None

    def fit(self, reference: ArrayLike) -> "KolmogorovSmirnovEvaluator":
        # The table sorts once; its sorted view doubles as the reference
        # CDF support, so per-round scoring never re-sorts the reference.
        self._reference = QuantileTable(self._as_scores(reference)).values
        return self

    def score(self, batch: ArrayLike, scores: Optional[Array] = None) -> float:
        if self._reference is None:
            raise RuntimeError("evaluator must be fit on reference data first")
        sample = np.sort(self._as_scores(batch, scores))
        grid = np.union1d(self._reference, sample)
        cdf_ref = np.searchsorted(self._reference, grid, side="right") / self._reference.size
        cdf_smp = np.searchsorted(sample, grid, side="right") / sample.size
        return float(np.max(np.abs(cdf_ref - cdf_smp)))

    def max_score(self) -> float:
        return 1.0


@dataclass
class MeanShiftEvaluator(QualityEvaluator):
    """Standardized mean shift of a batch against the reference.

    ``|mean(batch) - mean(reference)| / std(reference)``, clipped by
    ``cap`` for normalization.  Sensitive to exactly the estimator the
    opportunistic attacker of the threat model targets (deviation of the
    aggregate statistic).
    """

    cap: float = 5.0

    def __post_init__(self) -> None:
        if self.cap <= 0.0:
            raise ValueError("cap must be positive")
        self._mean: float | None = None
        self._std: float | None = None

    def fit(self, reference: ArrayLike) -> "MeanShiftEvaluator":
        scores = self._as_scores(reference)
        self._mean = float(np.mean(scores))
        self._std = float(np.std(scores))
        if self._std <= 0.0:
            self._std = 1.0  # degenerate constant reference
        return self

    def score(self, batch: ArrayLike, scores: Optional[Array] = None) -> float:
        if self._mean is None or self._std is None:
            raise RuntimeError("evaluator must be fit on reference data first")
        batch_scores = self._as_scores(batch, scores)
        shift = abs(float(np.mean(batch_scores)) - self._mean) / self._std
        return min(shift, self.cap)

    def max_score(self) -> float:
        return self.cap
