"""Quality_Evaluation() implementations (§III-B, Algorithms 1 and 2).

The game-theoretic model presupposes a *publicly recognized data quality
standard* both parties can evaluate.  The collector uses it to gauge the
intensity of poisoning in a round's batch, the Tit-for-tat strategy uses
it as a trigger, and the Elastic strategy uses its normalized value to set
the next threshold.  Three concrete evaluators are provided; all follow
the convention **higher score = worse quality (more poisoning)** so that
triggers and elastic responses read uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .domain import empirical_quantile

__all__ = [
    "QualityEvaluator",
    "TailMassEvaluator",
    "KolmogorovSmirnovEvaluator",
    "MeanShiftEvaluator",
]


class QualityEvaluator:
    """Interface of a ``Quality_Evaluation()`` standard.

    Subclasses are first fit on clean reference data ``X0`` (the
    "triggering condition" input of Algorithm 1) and then score subsequent
    round batches.  :meth:`normalized` maps scores onto [0, 1] — the
    ``QE_i = QE(X_i)/max(QE(·))`` normalization of Algorithm 2.
    """

    def fit(self, reference) -> "QualityEvaluator":
        """Calibrate the evaluator on clean reference data."""
        raise NotImplementedError

    def score(self, batch) -> float:
        """Poisoning-intensity score of a batch (higher = worse)."""
        raise NotImplementedError

    def max_score(self) -> float:
        """The maximum attainable score, for normalization."""
        raise NotImplementedError

    def normalized(self, batch) -> float:
        """``QE_i`` in [0, 1]: score divided by the evaluator's maximum."""
        peak = self.max_score()
        if peak <= 0.0:
            raise RuntimeError("evaluator maximum must be positive")
        return float(np.clip(self.score(batch) / peak, 0.0, 1.0))

    @staticmethod
    def _as_scores(batch) -> np.ndarray:
        """Flatten a batch to 1-D scores (multivariate: row L2 norms)."""
        arr = np.asarray(batch, dtype=float)
        if arr.size == 0:
            raise ValueError("cannot evaluate an empty batch")
        if arr.ndim == 1:
            return arr
        if arr.ndim == 2:
            return np.linalg.norm(arr, axis=1)
        raise ValueError("batches must be 1-D or 2-D")


@dataclass
class TailMassEvaluator(QualityEvaluator):
    """Excess upper-tail mass relative to the clean reference.

    Measures the fraction of a batch lying above the reference's
    ``reference_quantile`` (default: 0.9) — under tail-injection attacks
    this directly estimates the observed poison ratio, which is the
    quantity the Table III trigger thresholds (``1 - p + Red``) compare
    against.
    """

    reference_quantile: float = 0.9

    def __post_init__(self) -> None:
        if not 0.0 < self.reference_quantile < 1.0:
            raise ValueError("reference_quantile must lie in (0, 1)")
        self._cutoff: float | None = None

    def fit(self, reference) -> "TailMassEvaluator":
        scores = self._as_scores(reference)
        self._cutoff = float(empirical_quantile(scores, self.reference_quantile))
        return self

    def score(self, batch) -> float:
        if self._cutoff is None:
            raise RuntimeError("evaluator must be fit on reference data first")
        scores = self._as_scores(batch)
        excess = float(np.mean(scores > self._cutoff)) - (1.0 - self.reference_quantile)
        return max(0.0, excess)

    def max_score(self) -> float:
        return self.reference_quantile  # all mass above the cutoff


@dataclass
class KolmogorovSmirnovEvaluator(QualityEvaluator):
    """Kolmogorov–Smirnov distance between batch and reference scores.

    A distribution-free quality standard: the KS statistic between the
    empirical CDFs, insensitive to where the manipulation sits in the
    domain, with a natural maximum of 1.
    """

    def __init__(self) -> None:
        self._reference: np.ndarray | None = None

    def fit(self, reference) -> "KolmogorovSmirnovEvaluator":
        self._reference = np.sort(self._as_scores(reference))
        return self

    def score(self, batch) -> float:
        if self._reference is None:
            raise RuntimeError("evaluator must be fit on reference data first")
        sample = np.sort(self._as_scores(batch))
        grid = np.union1d(self._reference, sample)
        cdf_ref = np.searchsorted(self._reference, grid, side="right") / self._reference.size
        cdf_smp = np.searchsorted(sample, grid, side="right") / sample.size
        return float(np.max(np.abs(cdf_ref - cdf_smp)))

    def max_score(self) -> float:
        return 1.0


@dataclass
class MeanShiftEvaluator(QualityEvaluator):
    """Standardized mean shift of a batch against the reference.

    ``|mean(batch) - mean(reference)| / std(reference)``, clipped by
    ``cap`` for normalization.  Sensitive to exactly the estimator the
    opportunistic attacker of the threat model targets (deviation of the
    aggregate statistic).
    """

    cap: float = 5.0

    def __post_init__(self) -> None:
        if self.cap <= 0.0:
            raise ValueError("cap must be positive")
        self._mean: float | None = None
        self._std: float | None = None

    def fit(self, reference) -> "MeanShiftEvaluator":
        scores = self._as_scores(reference)
        self._mean = float(np.mean(scores))
        self._std = float(np.std(scores))
        if self._std <= 0.0:
            self._std = 1.0  # degenerate constant reference
        return self

    def score(self, batch) -> float:
        if self._mean is None or self._std is None:
            raise RuntimeError("evaluator must be fit on reference data first")
        scores = self._as_scores(batch)
        shift = abs(float(np.mean(scores)) - self._mean) / self._std
        return min(shift, self.cap)

    def max_score(self) -> float:
        return self.cap
