"""Command-line interface: run any paper artifact as a registered scenario.

Usage::

    python -m repro scenario list
    python -m repro scenario run table4
    python -m repro scenario run fig9 --scale full --workers 4
    python -m repro scenario run fig4 --param ratios=0.01,0.1 --param repetitions=3
    python -m repro scenario report fig4
    python -m repro run table4            # legacy alias (no result store)
    python -m repro sweep --schemes titfortat,elastic0.5 \
        --ratios 0.1,0.2,0.4 --reps 5 --workers 4

Every artifact lives in the scenario registry
(:mod:`repro.scenarios`): a declarative descriptor with typed
parameters (``--scale quick`` is benchmark-sized, ``--scale full``
approaches the paper's settings; individual knobs override via
``--param name=value``) whose cells execute on the :mod:`repro.runtime`
sweep runner.  ``scenario run`` persists every cell record to the
content-addressed result store (``--cache-dir``, default
``.repro-cache`` or ``$REPRO_CACHE_DIR``) *as it completes*: re-running
a finished scenario replays entirely from disk (zero games), an
interrupted run resumes where it stopped (``--resume`` is the default
behaviour; ``--no-cache`` opts out of the store entirely), and
``scenario report`` re-renders the last stored run without executing
anything.  The legacy ``repro run <artifact>`` spelling is a thin alias
that executes the same scenarios without a store — byte-identical
output to the pre-registry CLI.

``sweep`` runs an ad-hoc scheme × attack-ratio × repetition grid on the
sweep runner — ``--workers N`` fans the games out over N processes, and
``--rep-batch auto`` (the default) plays each cell's repetitions in one
lockstep :class:`~repro.core.engine.BatchedCollectionGame`; results are
identical in every mode.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, List, Optional

from .analysis.cli import add_lint_arguments, run_lint
from .experiments import format_table
from .scenarios import (
    ScenarioError,
    get_scenario,
    iter_scenarios,
    report_scenario,
    run_scenario,
    scenario_names,
)

__all__ = ["ARTIFACTS", "main"]


def _default_cache_dir() -> str:
    """Store root: ``$REPRO_CACHE_DIR`` or ``.repro-cache`` in the cwd."""
    return os.environ.get("REPRO_CACHE_DIR", ".repro-cache")


#: Artifact name -> description (back-compat view of the registry).
ARTIFACTS: Dict[str, str] = {
    scenario.name: scenario.description for scenario in iter_scenarios()
}


def _parse_csv(text: str) -> List[str]:
    items = [item.strip() for item in text.split(",") if item.strip()]
    if not items:
        raise argparse.ArgumentTypeError("expected a comma-separated list")
    return items


def _parse_floats(text: str) -> List[float]:
    try:
        return [float(item) for item in _parse_csv(text)]
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"not a float list: {text!r}"
        ) from exc


def _parse_rep_batch(text: str):
    """'auto' | 'off' | int >= 2 — the SweepRunner rep_batch argument."""
    lowered = text.strip().lower()
    if lowered in ("auto", "off"):
        return lowered
    try:
        width = int(lowered)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"expected 'auto', 'off' or an integer, got {text!r}"
        ) from exc
    if width < 1:
        raise argparse.ArgumentTypeError("rep-batch width must be >= 1")
    return width


def _parse_param(text: str) -> tuple:
    """``name=value`` of a ``--param`` override."""
    name, sep, value = text.partition("=")
    if not sep or not name.strip():
        raise argparse.ArgumentTypeError(
            f"expected name=value, got {text!r}"
        )
    return name.strip(), value


def _sweep(args: argparse.Namespace) -> str:
    """Run a scheme × ratio × repetition grid on the sweep runner."""
    from .experiments.schemes import scheme_specs
    from .runtime import StrategyPair, SweepGrid, SweepRunner

    pairs = tuple(
        StrategyPair(scheme, *scheme_specs(scheme, args.t_th))
        for scheme in args.schemes
    )
    grid = SweepGrid(
        pairs=pairs,
        datasets=tuple(args.datasets),
        attack_ratios=tuple(args.ratios),
        repetitions=args.reps,
        rounds=args.rounds,
        batch_size=args.batch_size,
        # The summary table below only needs GameRecord counts: play
        # every cell on a lean board.
        store_retained=False,
        seed=args.seed,
    )
    records = SweepRunner(
        workers=args.workers, rep_batch=args.rep_batch
    ).run_grid(grid)

    grouped: Dict[tuple, list] = {}
    for record in records:
        key = (record["dataset"], record["pair"], record["attack_ratio"])
        grouped.setdefault(key, []).append(record)

    import numpy as np

    rows = []
    for (dataset, scheme, ratio), reps in sorted(grouped.items()):
        terminations = [
            r.termination_round for r in reps if r.termination_round is not None
        ]
        rows.append(
            (
                dataset,
                scheme,
                ratio,
                float(np.mean([r.poison_retained_fraction for r in reps])),
                float(np.mean([r.trimmed_fraction for r in reps])),
                float(np.mean(terminations)) if terminations else "-",
            )
        )
    title = (
        f"Sweep: {grid.n_cells} games "
        f"({len(args.schemes)} schemes x {len(args.ratios)} ratios x "
        f"{args.reps} reps x {len(args.datasets)} datasets), "
        f"workers={args.workers}, seed={args.seed}"
    )
    return format_table(
        [
            "dataset",
            "scheme",
            "attack ratio",
            "poison kept",
            "trimmed",
            "avg termination",
        ],
        rows,
        title=title,
    )


# --------------------------------------------------------------------- #
# scenario subcommands
# --------------------------------------------------------------------- #
def _scenario_list() -> str:
    rows = []
    for scenario in iter_scenarios():
        knobs = ", ".join(
            f"{p.name}={p.quick}" + (f"|{p.full}" if p.full is not None else "")
            for p in scenario.params
        )
        rows.append((scenario.name, scenario.description, knobs))
    return format_table(
        ["scenario", "description", "params (quick|full)"], rows
    )


def _make_store(args: argparse.Namespace):
    """The run's ResultStore, or ``None`` under ``--no-cache``."""
    from .runtime import ResultStore

    if getattr(args, "no_cache", False):
        if getattr(args, "resume", False):
            raise ScenarioError("--resume and --no-cache are contradictory")
        return None
    return ResultStore(args.cache_dir)


def _write_stats_json(path: str, entries: List[dict]) -> None:
    """Persist per-scenario run stats as machine-readable JSON.

    The document CI (and users) assert cache behaviour against:
    ``SweepRunner.last_stats`` — total/cached/played cell counts plus
    the run's wall-clock seconds — one entry per scenario executed.
    """
    import json

    payload = {
        "format": 1,
        "scenarios": entries,
        "total_seconds": sum(e["seconds"] or 0.0 for e in entries),
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def _scenario_run(args: argparse.Namespace) -> int:
    overrides = dict(args.params or [])
    if args.name == "all" and overrides:
        # Params are per-scenario typed knobs; applied across "all" they
        # would abort mid-stream at the first scenario lacking the name.
        raise ScenarioError(
            "--param cannot be combined with 'all'; run the scenario "
            "that declares the parameter"
        )
    names = (
        scenario_names() if args.name == "all" else [args.name]
    )
    store = _make_store(args)
    faults = None
    if getattr(args, "inject_faults", None):
        from .runtime import FaultPlan

        faults = FaultPlan.parse(args.inject_faults)
    stats_entries: List[dict] = []
    quarantined = 0
    for name in names:
        run = run_scenario(
            get_scenario(name),
            scale=args.scale,
            overrides=overrides,
            workers=args.workers,
            rep_batch=args.rep_batch,
            store=store,
            on_error=args.on_error,
            timeout=args.timeout,
            retries=args.retries,
            faults=faults,
        )
        quarantined += len(run.failures)
        print(run.text)
        print()
        if store is not None:
            print(f"[{name}] {run.stats.describe()}", file=sys.stderr)
        stats_entries.append(
            {"scenario": name, "scale": args.scale, **run.stats.to_json()}
        )
    if args.stats_json:
        _write_stats_json(args.stats_json, stats_entries)
    # A quarantined run completed but produced no trustworthy artifact;
    # scripts must see that (a fresh `scenario run` against the same
    # store retries exactly the quarantined cells).
    return 1 if quarantined else 0


def _scenario_report(args: argparse.Namespace) -> int:
    store = _make_store(args)
    if store is None:
        raise ScenarioError("scenario report needs the result store")
    names = (
        scenario_names() if args.name == "all" else [args.name]
    )
    for name in names:
        run = report_scenario(get_scenario(name), store)
        print(run.text)
        print()
    return 0


def _legacy_run(args: argparse.Namespace) -> int:
    """``repro run`` alias: scenarios without a store, quick/full scales."""
    names = sorted(ARTIFACTS) if args.artifact == "all" else [args.artifact]
    for name in names:
        run = run_scenario(get_scenario(name), scale=args.scale)
        print(run.text)
        print()
    return 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available artifacts (scenario registry)")

    run = sub.add_parser(
        "run", help="run one artifact (or 'all') without the result store"
    )
    run.add_argument("artifact", choices=sorted(ARTIFACTS) + ["all"])
    run.add_argument(
        "--scale",
        choices=("quick", "full"),
        default="quick",
        help="quick = benchmark-sized, full = closer to the paper's settings",
    )

    scenario = sub.add_parser(
        "scenario",
        help="declarative scenario registry: list, run (cached), report",
    )
    scen_sub = scenario.add_subparsers(dest="scenario_command", required=True)

    scen_sub.add_parser("list", help="list registered scenarios and params")

    scen_run = scen_sub.add_parser(
        "run", help="run a scenario (or 'all') on the result store"
    )
    scen_run.add_argument("name", help="scenario name or 'all'")
    scen_run.add_argument(
        "--scale",
        choices=("quick", "full"),
        default="quick",
        help="parameter defaults: quick = benchmark-sized, full = paper-sized",
    )
    scen_run.add_argument(
        "--param",
        "-p",
        dest="params",
        type=_parse_param,
        action="append",
        metavar="NAME=VALUE",
        help="override one typed scenario parameter (repeatable)",
    )
    scen_run.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes (1 = serial; results identical either way)",
    )
    scen_run.add_argument(
        "--rep-batch",
        type=_parse_rep_batch,
        default=None,
        help=(
            "repetition lockstep width: omit to use the scenario's "
            "default, 'off' plays reps one by one, 'auto'/int >= 2 "
            "batches them; results identical in every mode"
        ),
    )
    scen_run.add_argument(
        "--cache-dir",
        default=_default_cache_dir(),
        help="result-store root (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    scen_run.add_argument(
        "--resume",
        action="store_true",
        help=(
            "resume from stored records (the default when the store is "
            "enabled; stated explicitly it documents intent in scripts)"
        ),
    )
    scen_run.add_argument(
        "--no-cache",
        action="store_true",
        help="run without the result store (no persistence, no resume)",
    )
    scen_run.add_argument(
        "--stats-json",
        metavar="PATH",
        default=None,
        help=(
            "write per-scenario runner stats (total/cached/played cells, "
            "wall-clock seconds, failed/retried/quarantined counters) as "
            "JSON to PATH, so scripts and CI can assert cache and failure "
            "behaviour instead of parsing stderr"
        ),
    )
    scen_run.add_argument(
        "--on-error",
        choices=("raise", "quarantine"),
        default="raise",
        help=(
            "what a permanently failing cell does: 'raise' aborts the "
            "run (default); 'quarantine' records the failure, finishes "
            "the rest, writes a <name>.failures manifest and exits 1 — "
            "a later run against the same store retries only the "
            "quarantined cells"
        ),
    )
    scen_run.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "per-cell wall-clock budget; with --workers >= 2 a hung "
            "cell's worker is killed and the cell replayed"
        ),
    )
    scen_run.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help=(
            "re-executions allowed per cell after transient errors or "
            "timeouts, with exponential backoff (worker crashes always "
            "get one replay)"
        ),
    )
    scen_run.add_argument(
        "--inject-faults",
        metavar="SPEC",
        default=None,
        help=(
            "arm the deterministic chaos harness, e.g. "
            "'seed=7,error=0.3,torn=0.25,attempts=2' "
            "(testing/CI; keys: seed,error,slow,kill,torn,attempts,delay)"
        ),
    )

    scen_report = scen_sub.add_parser(
        "report",
        help="re-render a stored scenario run without executing any cell",
    )
    scen_report.add_argument("name", help="scenario name or 'all'")
    scen_report.add_argument(
        "--cache-dir",
        default=_default_cache_dir(),
        help="result-store root (default: $REPRO_CACHE_DIR or .repro-cache)",
    )

    lint = sub.add_parser(
        "lint",
        help=(
            "determinism linter + registry conformance audit "
            "(the byte-identity contract, machine-checked)"
        ),
    )
    add_lint_arguments(lint)

    sweep = sub.add_parser(
        "sweep",
        help="play a scheme x ratio x repetition grid on the sweep runner",
    )
    sweep.add_argument(
        "--schemes",
        type=_parse_csv,
        default=["titfortat", "elastic0.5"],
        help="comma-separated scheme names (see repro.experiments.SCHEMES)",
    )
    sweep.add_argument(
        "--datasets",
        type=_parse_csv,
        default=["control"],
        help="comma-separated dataset registry names",
    )
    sweep.add_argument(
        "--ratios",
        type=_parse_floats,
        default=[0.1, 0.2, 0.4],
        help="comma-separated attack ratios",
    )
    sweep.add_argument("--reps", type=int, default=3, help="repetitions per cell")
    sweep.add_argument("--rounds", type=int, default=20, help="rounds per game")
    sweep.add_argument("--batch-size", type=int, default=100)
    sweep.add_argument("--t-th", type=float, default=0.9, help="headline threshold")
    sweep.add_argument("--seed", type=int, default=0, help="root seed entropy")
    sweep.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes (1 = serial; results identical either way)",
    )
    sweep.add_argument(
        "--rep-batch",
        type=_parse_rep_batch,
        default="auto",
        help=(
            "repetition lockstep width: 'auto' (default) plays all reps of "
            "a cell in one batched game, 'off' plays them one by one, an "
            "integer >= 2 caps the width; results identical in every mode"
        ),
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)

    if args.command == "list":
        rows = [(name, desc) for name, desc in sorted(ARTIFACTS.items())]
        print(format_table(["artifact", "description"], rows))
        return 0

    if args.command == "lint":
        return run_lint(args)

    if args.command == "sweep":
        try:
            print(_sweep(args))
        except (ValueError, KeyError) as exc:  # unknown scheme/dataset, bad workers, ...
            print(f"repro sweep: error: {exc}")
            return 2
        return 0

    if args.command == "scenario":
        try:
            if args.scenario_command == "list":
                print(_scenario_list())
                return 0
            if args.scenario_command == "run":
                return _scenario_run(args)
            return _scenario_report(args)
        except ScenarioError as exc:
            print(f"repro scenario: error: {exc}")
            return 2
        except (ValueError, KeyError) as exc:
            print(f"repro scenario: error: {exc}")
            return 2

    try:
        return _legacy_run(args)
    except ScenarioError as exc:
        print(f"repro run: error: {exc}")
        return 2
