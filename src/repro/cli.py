"""Command-line interface: regenerate any table or figure of the paper.

Usage::

    python -m repro list
    python -m repro run table4
    python -m repro run fig9 --scale full
    python -m repro run all --scale quick
    python -m repro sweep --schemes titfortat,elastic0.5 \
        --ratios 0.1,0.2,0.4 --reps 5 --workers 4

``--scale quick`` (default) uses the scaled-down configurations of the
benchmark harness; ``--scale full`` moves toward the paper's settings
(more repetitions, full attack-ratio grids) at a correspondingly longer
runtime.  ``sweep`` runs an ad-hoc scheme × attack-ratio × repetition
grid on the :mod:`repro.runtime` sweep runner — ``--workers N`` fans the
games out over N processes, and ``--rep-batch auto`` (the default) plays
each cell's repetitions in one lockstep
:class:`~repro.core.engine.BatchedCollectionGame`; results are identical
in every mode.
"""

from __future__ import annotations

import argparse
from typing import Callable, Dict, List, Optional

from .core.game import UltimatumPayoffs, build_ultimatum_game
from .datasets import DATASETS, dataset_info
from .experiments import (
    CostConfig,
    TournamentConfig,
    EquilibriumConfig,
    LDPConfig,
    NonEquilibriumConfig,
    SOMConfig,
    SVMConfig,
    format_table,
    run_cost_analysis,
    run_kmeans_experiment,
    run_ldp_experiment,
    run_nonequilibrium,
    run_som_experiment,
    run_svm_experiment,
    run_tournament,
)

__all__ = ["ARTIFACTS", "main"]


def _table1(scale: str) -> str:
    game = build_ultimatum_game(UltimatumPayoffs())
    equilibria = game.pure_nash_equilibria()
    rows = []
    for i, row_label in enumerate(game.row_labels):
        for j, col_label in enumerate(game.col_labels):
            rows.append(
                (
                    row_label,
                    col_label,
                    game.row_payoffs[i, j],
                    game.col_payoffs[i, j],
                    "yes" if (i, j) in equilibria else "",
                )
            )
    return format_table(
        ["adversary", "collector", "adv payoff", "col payoff", "Nash"],
        rows,
        title="Table I: ultimatum game",
    )


def _table2(scale: str) -> str:
    verified = dataset_info(generate=(scale == "full"))
    rows = [
        (info.name, DATASETS[key].instances, info.features, info.clusters)
        for key, info in verified.items()
    ]
    return format_table(
        ["Dataset", "Instances", "Features", "Clusters"],
        rows,
        title="Table II: dataset information",
    )


def _kmeans(t_th: float, scale: str) -> str:
    if scale == "full":
        ratios = (0.002, 0.006, 0.01, 0.05, 0.1, 0.15, 0.2, 0.35, 0.5)
        reps, rounds = 5, 20
    else:
        ratios = (0.002, 0.01, 0.1, 0.35)
        reps, rounds = 1, 10
    cells = run_kmeans_experiment(
        EquilibriumConfig(
            dataset="control", t_th=t_th, attack_ratios=ratios,
            repetitions=reps, rounds=rounds,
        )
    )
    return format_table(
        ["scheme", "attack ratio", "SSE", "Distance"],
        [(c.scheme, c.attack_ratio, c.sse, c.distance) for c in cells],
        title=f"k-means (control, T_th={t_th})",
    )


def _fig4(scale: str) -> str:
    return _kmeans(0.9, scale)


def _fig5(scale: str) -> str:
    return _kmeans(0.97, scale)


def _fig7(scale: str) -> str:
    config = SVMConfig() if scale == "full" else SVMConfig(svm_iterations=10_000)
    results = run_svm_experiment(config)
    return format_table(
        ["scheme", "accuracy %"],
        [(r.scheme, 100 * r.accuracy) for r in results],
        title="Fig. 7: SVM comparison (Control, T_th=0.95, ratio 0.4)",
    )


def _fig8(scale: str) -> str:
    config = (
        SOMConfig(bulk_size=3000, som_iterations=6000, grid=(20, 20))
        if scale == "full"
        else SOMConfig(bulk_size=1200, som_iterations=2500, rounds=6)
    )
    results = run_som_experiment(config)
    return format_table(
        ["scheme", "minority kept", "poison share", "clusters", "QE"],
        [
            (
                r.scheme,
                r.minority_retained,
                r.poison_retained_fraction,
                r.cluster_count,
                r.quantization_error,
            )
            for r in results
        ],
        title="Fig. 8: SOM comparison (Creditcard)",
    )


def _table3(scale: str) -> str:
    config = (
        NonEquilibriumConfig(repetitions=25)
        if scale == "full"
        else NonEquilibriumConfig(
            repetitions=4, p_values=(0.0, 0.25, 0.5, 0.75, 1.0)
        )
    )
    rows = run_nonequilibrium(config)
    return format_table(
        ["p", "avg termination", "Titfortat", "Elastic"],
        [
            (
                r.p,
                r.average_termination_rounds,
                r.titfortat_poison_fraction,
                r.elastic_poison_fraction,
            )
            for r in rows
        ],
        title="Table III: non-equilibrium results",
    )


def _table4(scale: str) -> str:
    rows = run_cost_analysis(CostConfig())
    return format_table(
        ["Round_no", "k=0.5 (%)", "k=0.1 (%)"],
        [(r.round_no, 100 * r.cost_k_high, 100 * r.cost_k_low) for r in rows],
        title="Table IV: roundwise Elastic cost",
    )


def _fig9(scale: str) -> str:
    if scale == "full":
        config = LDPConfig(
            attack_ratios=(0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45),
            repetitions=5,
        )
    else:
        config = LDPConfig(
            epsilons=(1.0, 2.0, 3.0, 5.0),
            attack_ratios=(0.05, 0.2),
            n_users=1000,
            rounds=3,
            repetitions=2,
            reference_size=2000,
        )
    cells = run_ldp_experiment(config)
    return format_table(
        ["attack ratio", "epsilon", "scheme", "MSE"],
        [(c.attack_ratio, c.epsilon, c.scheme, c.mse) for c in cells],
        title="Fig. 9: LDP comparison",
    )


def _metagame(scale: str) -> str:
    config = (
        TournamentConfig(repetitions=4, rounds=20)
        if scale == "full"
        else TournamentConfig(repetitions=2, rounds=10)
    )
    result = run_tournament(config)
    rows = []
    for i, aname in enumerate(result.adversary_names):
        for j, cname in enumerate(result.collector_names):
            rows.append(
                (aname, cname, result.adversary_payoffs[i, j])
            )
    mixtures = ", ".join(
        f"{n}={w:.2f}"
        for n, w in zip(result.collector_names, result.collector_mixture)
        if w > 1e-6
    )
    return format_table(
        ["adversary", "collector", "adversary payoff"],
        rows,
        title=f"Meta-game tournament — minimax collector: {mixtures}",
    )


def _parse_csv(text: str) -> List[str]:
    items = [item.strip() for item in text.split(",") if item.strip()]
    if not items:
        raise argparse.ArgumentTypeError("expected a comma-separated list")
    return items


def _parse_floats(text: str) -> List[float]:
    try:
        return [float(item) for item in _parse_csv(text)]
    except ValueError:
        raise argparse.ArgumentTypeError(f"not a float list: {text!r}")


def _parse_rep_batch(text: str):
    """'auto' | 'off' | int >= 2 — the SweepRunner rep_batch argument."""
    lowered = text.strip().lower()
    if lowered in ("auto", "off"):
        return lowered
    try:
        width = int(lowered)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected 'auto', 'off' or an integer, got {text!r}"
        )
    if width < 1:
        raise argparse.ArgumentTypeError("rep-batch width must be >= 1")
    return width


def _sweep(args: argparse.Namespace) -> str:
    """Run a scheme × ratio × repetition grid on the sweep runner."""
    from .experiments.schemes import scheme_specs
    from .runtime import StrategyPair, SweepGrid, SweepRunner

    pairs = tuple(
        StrategyPair(scheme, *scheme_specs(scheme, args.t_th))
        for scheme in args.schemes
    )
    grid = SweepGrid(
        pairs=pairs,
        datasets=tuple(args.datasets),
        attack_ratios=tuple(args.ratios),
        repetitions=args.reps,
        rounds=args.rounds,
        batch_size=args.batch_size,
        # The summary table below only needs GameRecord counts: play
        # every cell on a lean board.
        store_retained=False,
        seed=args.seed,
    )
    records = SweepRunner(
        workers=args.workers, rep_batch=args.rep_batch
    ).run_grid(grid)

    grouped: Dict[tuple, list] = {}
    for record in records:
        key = (record["dataset"], record["pair"], record["attack_ratio"])
        grouped.setdefault(key, []).append(record)

    import numpy as np

    rows = []
    for (dataset, scheme, ratio), reps in sorted(grouped.items()):
        terminations = [
            r.termination_round for r in reps if r.termination_round is not None
        ]
        rows.append(
            (
                dataset,
                scheme,
                ratio,
                float(np.mean([r.poison_retained_fraction for r in reps])),
                float(np.mean([r.trimmed_fraction for r in reps])),
                float(np.mean(terminations)) if terminations else "-",
            )
        )
    title = (
        f"Sweep: {grid.n_cells} games "
        f"({len(args.schemes)} schemes x {len(args.ratios)} ratios x "
        f"{args.reps} reps x {len(args.datasets)} datasets), "
        f"workers={args.workers}, seed={args.seed}"
    )
    return format_table(
        [
            "dataset",
            "scheme",
            "attack ratio",
            "poison kept",
            "trimmed",
            "avg termination",
        ],
        rows,
        title=title,
    )


#: Artifact name -> (description, runner).
ARTIFACTS: Dict[str, tuple] = {
    "table1": ("ultimatum game payoff matrix (Table I)", _table1),
    "table2": ("dataset information (Table II)", _table2),
    "table3": ("non-equilibrium results (Table III)", _table3),
    "table4": ("Elastic roundwise cost (Table IV)", _table4),
    "fig4": ("k-means comparison, T_th=0.9 (Fig. 4)", _fig4),
    "fig5": ("k-means comparison, T_th=0.97 (Fig. 5)", _fig5),
    "fig7": ("SVM comparison (Fig. 7, includes Fig. 6a ground truth)", _fig7),
    "fig8": ("SOM comparison (Fig. 8, includes Fig. 6b ground truth)", _fig8),
    "fig9": ("LDP trimming vs EMF (Fig. 9)", _fig9),
    "metagame": ("empirical strategy tournament (beyond the paper)", _metagame),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available artifacts")

    run = sub.add_parser("run", help="run one artifact (or 'all')")
    run.add_argument("artifact", choices=sorted(ARTIFACTS) + ["all"])
    run.add_argument(
        "--scale",
        choices=("quick", "full"),
        default="quick",
        help="quick = benchmark-sized, full = closer to the paper's settings",
    )

    sweep = sub.add_parser(
        "sweep",
        help="play a scheme x ratio x repetition grid on the sweep runner",
    )
    sweep.add_argument(
        "--schemes",
        type=_parse_csv,
        default=["titfortat", "elastic0.5"],
        help="comma-separated scheme names (see repro.experiments.SCHEMES)",
    )
    sweep.add_argument(
        "--datasets",
        type=_parse_csv,
        default=["control"],
        help="comma-separated dataset registry names",
    )
    sweep.add_argument(
        "--ratios",
        type=_parse_floats,
        default=[0.1, 0.2, 0.4],
        help="comma-separated attack ratios",
    )
    sweep.add_argument("--reps", type=int, default=3, help="repetitions per cell")
    sweep.add_argument("--rounds", type=int, default=20, help="rounds per game")
    sweep.add_argument("--batch-size", type=int, default=100)
    sweep.add_argument("--t-th", type=float, default=0.9, help="headline threshold")
    sweep.add_argument("--seed", type=int, default=0, help="root seed entropy")
    sweep.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes (1 = serial; results identical either way)",
    )
    sweep.add_argument(
        "--rep-batch",
        type=_parse_rep_batch,
        default="auto",
        help=(
            "repetition lockstep width: 'auto' (default) plays all reps of "
            "a cell in one batched game, 'off' plays them one by one, an "
            "integer >= 2 caps the width; results identical in every mode"
        ),
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)

    if args.command == "list":
        rows = [(name, desc) for name, (desc, _) in sorted(ARTIFACTS.items())]
        print(format_table(["artifact", "description"], rows))
        return 0

    if args.command == "sweep":
        try:
            print(_sweep(args))
        except (ValueError, KeyError) as exc:  # unknown scheme/dataset, bad workers, ...
            print(f"repro sweep: error: {exc}")
            return 2
        return 0

    names = sorted(ARTIFACTS) if args.artifact == "all" else [args.artifact]
    for name in names:
        _, runner = ARTIFACTS[name]
        print(runner(args.scale))
        print()
    return 0
