"""repro — Interactive Trimming against Evasive Online Data Manipulation Attacks.

A from-scratch Python reproduction of the ICDE 2024 paper (Fu, Ye, Du,
Hu): a game-theoretic defense for online data poisoning built on the
trimming strategy, with

* the game-theoretic core (payoffs, ultimatum game, Stackelberg
  equilibrium, repeated-game compliance, least-action analytical model),
* the Tit-for-tat and Elastic collector strategies and the full adversary
  family,
* the multi-round collection game engine with its public board,
* LDP, k-means/SVM/SOM, and synthetic-dataset substrates, and
* experiment runners regenerating every table and figure of the paper.

Quickstart::

    from repro import CollectionGame, make_scheme
    from repro.core.trimming import RadialTrimmer
    from repro.datasets import load_dataset
    from repro.streams import ArrayStream, PoisonInjector

    data, _ = load_dataset("control")
    collector, adversary = make_scheme("elastic0.5", t_th=0.9)
    game = CollectionGame(
        source=ArrayStream(data, batch_size=100, seed=0),
        collector=collector,
        adversary=adversary,
        injector=PoisonInjector(attack_ratio=0.2, seed=0),
        trimmer=RadialTrimmer(),
        reference=data,
        rounds=20,
    )
    result = game.run()
    print(result.poison_retained_fraction())
"""

from .core import (
    BandExcessJudge,
    BatchedCollectionGame,
    BatchedGameResult,
    BimatrixGame,
    CollectionGame,
    CoupledUtilityOscillator,
    Domain,
    ElasticLagrangian,
    FreeLagrangian,
    GameResult,
    InfiniteHorizonAnalysis,
    MixedStrategy,
    PayoffModel,
    QuantileTable,
    RadialTrimmer,
    RepeatedGameModel,
    StackelbergSolution,
    TitForTatLagrangian,
    UltimatumPayoffs,
    ValueTrimmer,
    backward_induction,
    build_ultimatum_game,
    solve_stackelberg,
    solve_zero_sum,
)
from .core.session import (
    BatchedGameSession,
    BatchedRoundDecision,
    GameSession,
    RoundDecision,
    RoundPayoffs,
    SnapshotError,
)
from .core.strategies import (
    ElasticAdversary,
    ElasticCollector,
    FixedAdversary,
    GenerousCollector,
    JustBelowAdversary,
    MirrorCollector,
    MixedAdversary,
    MixedStrategyTrigger,
    NullAdversary,
    OstrichCollector,
    QualityTrigger,
    StaticCollector,
    TitForTatCollector,
    TitForTwoTatsCollector,
    UniformRangeAdversary,
)
from .experiments import SCHEMES, make_scheme, scheme_specs
from .runtime import (
    ComponentSpec,
    FailureRecord,
    FaultInjector,
    FaultPlan,
    GameRecord,
    GameSpec,
    ResultStore,
    StrategyPair,
    SweepGrid,
    SweepRunner,
    TaskSpec,
)
from .serving import DefenseService, TenantFailure

__version__ = "1.10.0"

__all__ = [
    "__version__",
    # game-theoretic core
    "Domain",
    "QuantileTable",
    "PayoffModel",
    "MixedStrategy",
    "BimatrixGame",
    "UltimatumPayoffs",
    "build_ultimatum_game",
    "solve_zero_sum",
    "StackelbergSolution",
    "solve_stackelberg",
    "RepeatedGameModel",
    "backward_induction",
    "InfiniteHorizonAnalysis",
    "FreeLagrangian",
    "ElasticLagrangian",
    "TitForTatLagrangian",
    "CoupledUtilityOscillator",
    # engine
    "CollectionGame",
    "GameResult",
    "BatchedCollectionGame",
    "BatchedGameResult",
    "BandExcessJudge",
    "ValueTrimmer",
    "RadialTrimmer",
    # sessions + serving
    "GameSession",
    "BatchedGameSession",
    "RoundDecision",
    "BatchedRoundDecision",
    "RoundPayoffs",
    "SnapshotError",
    "DefenseService",
    "TenantFailure",
    # strategies
    "OstrichCollector",
    "StaticCollector",
    "TitForTatCollector",
    "QualityTrigger",
    "MixedStrategyTrigger",
    "ElasticCollector",
    "ElasticAdversary",
    "NullAdversary",
    "FixedAdversary",
    "UniformRangeAdversary",
    "JustBelowAdversary",
    "MixedAdversary",
    "MirrorCollector",
    "GenerousCollector",
    "TitForTwoTatsCollector",
    # experiments
    "SCHEMES",
    "make_scheme",
    "scheme_specs",
    # sweep runtime
    "ComponentSpec",
    "GameSpec",
    "TaskSpec",
    "GameRecord",
    "FailureRecord",
    "FaultInjector",
    "FaultPlan",
    "StrategyPair",
    "SweepGrid",
    "SweepRunner",
    "ResultStore",
]
