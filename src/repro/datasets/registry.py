"""Dataset registry and the Table II summary.

``load_dataset(name)`` returns ``(X, y)`` for the five stand-in datasets;
``dataset_info()`` regenerates the Table II inventory (instances,
features, clusters) from the registered generators, which the Table II
benchmark prints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from .control import generate_control
from .creditcard import generate_creditcard
from .gaussians import generate_letter, generate_vehicle
from .taxi import generate_taxi

__all__ = ["DatasetInfo", "DATASETS", "load_dataset", "dataset_info"]


@dataclass(frozen=True)
class DatasetInfo:
    """One row of Table II."""

    name: str
    instances: int
    features: int
    clusters: int


#: Table II of the paper: the advertised shape of each dataset.
DATASETS: Dict[str, DatasetInfo] = {
    "control": DatasetInfo("CONTROL", 600, 60, 6),
    "vehicle": DatasetInfo("VEHICLE", 752, 18, 4),
    "letter": DatasetInfo("LETTER", 20000, 16, 26),
    "taxi": DatasetInfo("TAXI", 1048575, 1, 1),
    "creditcard": DatasetInfo("CREDITCARD", 284807, 31, 4),
}


def load_dataset(
    name: str,
    n_samples: Optional[int] = None,
    seed: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Load a stand-in dataset by (case-insensitive) name.

    Returns ``(X, y)``; for Taxi, which is unlabeled single-feature data,
    ``y`` is an all-zero label vector and ``X`` has shape ``(n, 1)``.
    ``n_samples`` subsamples/regenerates at a smaller size where the
    generator supports it (letter, taxi, creditcard) — used by tests and
    quick examples.
    """
    key = name.strip().lower()
    if key not in DATASETS:
        raise KeyError(f"unknown dataset {name!r}; options: {sorted(DATASETS)}")

    if key == "control":
        data, labels = generate_control(seed=7 if seed is None else seed)
    elif key == "vehicle":
        data, labels = generate_vehicle(seed=11 if seed is None else seed)
    elif key == "letter":
        data, labels = generate_letter(
            n_samples=20000 if n_samples is None else n_samples,
            seed=13 if seed is None else seed,
        )
        return data, labels
    elif key == "taxi":
        values = generate_taxi(
            n_samples=1_048_575 if n_samples is None else n_samples,
            seed=17 if seed is None else seed,
        )
        return values[:, None], np.zeros(values.size, dtype=int)
    else:  # creditcard
        data, labels = generate_creditcard(
            n_samples=284_807 if n_samples is None else n_samples,
            seed=23 if seed is None else seed,
        )
        return data, labels

    if n_samples is not None and n_samples < data.shape[0]:
        rng = np.random.default_rng(seed)
        idx = rng.choice(data.shape[0], size=n_samples, replace=False)
        return data[idx], labels[idx]
    return data, labels


def dataset_info(generate: bool = False) -> Dict[str, DatasetInfo]:
    """The Table II inventory.

    With ``generate=True`` each generator is actually run (at full size
    except taxi/creditcard, which are verified at reduced size for speed
    by the tests) — the benchmark uses the advertised values.
    """
    if not generate:
        return dict(DATASETS)
    verified: Dict[str, DatasetInfo] = {}
    for key, info in DATASETS.items():
        size = None if info.instances <= 20000 else 20000
        data, labels = load_dataset(key, n_samples=size)
        clusters = int(np.unique(labels).size) if key != "taxi" else 1
        verified[key] = DatasetInfo(
            info.name, data.shape[0], data.shape[1], clusters
        )
    return verified
