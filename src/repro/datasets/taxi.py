"""Synthetic NYC-Taxi-like pickup-time generator (stand-in for [25]).

The paper's Taxi dataset records pick-up times of a day — 1,048,575
integers in [0, 86340] normalized to [-1, 1].  The LDP experiment (Fig. 9)
needs exactly that: a large, bounded, 1-D numeric distribution with
non-trivial shape.  We synthesize seconds-of-day from a mixture of a
morning rush peak, an evening rush peak, a broad midday component and a
uniform night floor, quantize to the same integer grid and normalize to
[-1, 1].
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["SECONDS_MAX", "generate_taxi", "taxi_batch_factory"]

#: Largest pickup second of the original dataset's domain.
SECONDS_MAX = 86_340

_COMPONENTS = (
    # (weight, mean hour, std hours)
    (0.25, 8.5, 1.2),   # morning rush
    (0.30, 18.5, 1.5),  # evening rush
    (0.30, 13.0, 2.5),  # midday
)
_UNIFORM_WEIGHT = 0.15  # night floor


def _draw_seconds(rng: np.random.Generator, size: int) -> np.ndarray:
    """Sample pickup seconds-of-day from the rush-hour mixture."""
    weights = np.array([w for w, _, _ in _COMPONENTS] + [_UNIFORM_WEIGHT])
    weights = weights / weights.sum()
    choices = rng.choice(len(weights), size=size, p=weights)
    out = np.empty(size, dtype=float)
    for idx, (_, mean_h, std_h) in enumerate(_COMPONENTS):
        mask = choices == idx
        out[mask] = rng.normal(mean_h * 3600.0, std_h * 3600.0, size=mask.sum())
    uniform_mask = choices == len(_COMPONENTS)
    out[uniform_mask] = rng.uniform(0.0, SECONDS_MAX, size=uniform_mask.sum())
    # Wrap out-of-day Gaussian tails around midnight, then quantize.
    out = np.mod(out, SECONDS_MAX + 1)
    return np.floor(out)


def generate_taxi(
    n_samples: int = 1_048_575, seed: Optional[int] = 17, normalized: bool = True
) -> np.ndarray:
    """Generate the Taxi stand-in dataset.

    Returns pickup times in [-1, 1] (the paper's normalization) or raw
    integer seconds when ``normalized=False``.  Default size matches the
    original (1,048,575 values).
    """
    if n_samples < 1:
        raise ValueError("n_samples must be >= 1")
    rng = np.random.default_rng(seed)
    seconds = _draw_seconds(rng, n_samples)
    if not normalized:
        return seconds
    return 2.0 * seconds / SECONDS_MAX - 1.0


def taxi_batch_factory(normalized: bool = True):
    """A ``factory(rng, batch_size)`` for :class:`~repro.streams.GeneratorStream`.

    Lets the collection game stream taxi-like batches without
    materializing the million-value dataset.
    """

    def factory(rng: np.random.Generator, batch_size: int) -> np.ndarray:
        seconds = _draw_seconds(rng, batch_size)
        if not normalized:
            return seconds
        return 2.0 * seconds / SECONDS_MAX - 1.0

    return factory
