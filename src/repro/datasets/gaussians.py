"""Gaussian-mixture stand-ins for the UCI Vehicle and Letter datasets.

The equilibrium experiments use Vehicle (752 x 18, 4 clusters) and Letter
(20000 x 16, 26 clusters) purely as clustering substrates whose quality
degrades under tail poisoning.  Seeded, well-separated Gaussian mixtures
with the same instance/feature/class counts (Table II) preserve that role;
class centers are drawn on a scaled simplex-like arrangement so clusters
are separable but not trivially so.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = ["generate_gaussian_mixture", "generate_vehicle", "generate_letter"]


def generate_gaussian_mixture(
    n_samples: int,
    n_features: int,
    n_clusters: int,
    separation: float = 6.0,
    noise: float = 1.0,
    seed: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Draw a labeled mixture of ``n_clusters`` spherical Gaussians.

    Cluster centers are sampled uniformly in a hypercube of side
    ``separation`` (rejecting nothing — with the default separation/noise
    ratio clusters overlap mildly, like real tabular data).  Cluster sizes
    are as equal as possible.  Returns ``(X, y)``.
    """
    if n_samples < n_clusters:
        raise ValueError("need at least one sample per cluster")
    if n_features < 1 or n_clusters < 1:
        raise ValueError("n_features and n_clusters must be >= 1")
    if noise <= 0.0 or separation <= 0.0:
        raise ValueError("noise and separation must be positive")

    rng = np.random.default_rng(seed)
    centers = rng.uniform(-separation, separation, size=(n_clusters, n_features))

    sizes = np.full(n_clusters, n_samples // n_clusters)
    sizes[: n_samples % n_clusters] += 1

    rows = []
    labels = []
    for cluster, size in enumerate(sizes):
        rows.append(centers[cluster] + rng.normal(0.0, noise, size=(size, n_features)))
        labels.append(np.full(size, cluster))
    return np.vstack(rows), np.concatenate(labels)


def generate_vehicle(seed: Optional[int] = 11) -> Tuple[np.ndarray, np.ndarray]:
    """Vehicle stand-in: 752 instances, 18 features, 4 clusters (Table II)."""
    return generate_gaussian_mixture(
        n_samples=752, n_features=18, n_clusters=4, separation=5.0, noise=1.2, seed=seed
    )


def generate_letter(
    n_samples: int = 20000, seed: Optional[int] = 13
) -> Tuple[np.ndarray, np.ndarray]:
    """Letter stand-in: 20000 instances, 16 features, 26 clusters (Table II).

    ``n_samples`` is exposed because several tests and quick examples use
    a subsample for speed; the default matches the original size.
    """
    return generate_gaussian_mixture(
        n_samples=n_samples,
        n_features=16,
        n_clusters=26,
        separation=8.0,
        noise=1.0,
        seed=seed,
    )
