"""Synthetic stand-in datasets (Table II) — see DESIGN.md §3 for substitutions."""

from .control import CLASS_NAMES as CONTROL_CLASS_NAMES, generate_control
from .creditcard import CLASS_NAMES as CREDITCARD_CLASS_NAMES, generate_creditcard
from .gaussians import generate_gaussian_mixture, generate_letter, generate_vehicle
from .registry import DATASETS, DatasetInfo, dataset_info, load_dataset
from .taxi import SECONDS_MAX, generate_taxi, taxi_batch_factory

__all__ = [
    "CONTROL_CLASS_NAMES",
    "generate_control",
    "CREDITCARD_CLASS_NAMES",
    "generate_creditcard",
    "generate_gaussian_mixture",
    "generate_vehicle",
    "generate_letter",
    "DATASETS",
    "DatasetInfo",
    "dataset_info",
    "load_dataset",
    "SECONDS_MAX",
    "generate_taxi",
    "taxi_batch_factory",
]
