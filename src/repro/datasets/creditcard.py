"""Skewed synthetic stand-in for the Creditcard dataset ([1]).

§VI-C interprets the SOM ground truth of the Creditcard data as four
heavily skewed classes: a dominant "general public" mass, two isolated
singleton outliers (a fraudulent and a premium user), and a small
five-point cluster of prospective high-value customers.  The generator
reproduces exactly that structure: 31 PCA-like features, a large Gaussian
bulk, two remote singletons in opposite directions, and a compact 5-point
satellite cluster — the minority structure whose survival under trimming
Fig. 8 compares across schemes.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = ["CLASS_NAMES", "generate_creditcard"]

#: Label semantics of the four classes, in label order.
CLASS_NAMES = ("public", "fraud", "premium", "prospect")

_N_FEATURES = 31


def generate_creditcard(
    n_samples: int = 284_807, seed: Optional[int] = 23
) -> Tuple[np.ndarray, np.ndarray]:
    """Generate the skewed four-class dataset.

    Returns ``(X, y)`` with labels following :data:`CLASS_NAMES`:
    0 = general public bulk (``n_samples - 7`` points), 1 = fraudulent
    singleton, 2 = premium singleton, 3 = the five prospect points.
    ``n_samples`` defaults to the original's 284,807 but is configurable
    because the SOM experiments subsample for speed.
    """
    if n_samples < 100:
        raise ValueError("need at least 100 samples to carry the minority structure")
    rng = np.random.default_rng(seed)

    n_bulk = n_samples - 7
    bulk = rng.normal(0.0, 1.0, size=(n_bulk, _N_FEATURES))

    # Two isolated singletons, far out in essentially opposite directions.
    direction = rng.normal(0.0, 1.0, size=_N_FEATURES)
    direction /= np.linalg.norm(direction)
    fraud = (18.0 * direction + rng.normal(0.0, 0.3, size=_N_FEATURES))[None, :]
    premium = (-16.0 * direction + rng.normal(0.0, 0.3, size=_N_FEATURES))[None, :]

    # Five prospects: a compact satellite, distant from both singletons.
    orthogonal = rng.normal(0.0, 1.0, size=_N_FEATURES)
    orthogonal -= orthogonal @ direction * direction
    orthogonal /= np.linalg.norm(orthogonal)
    prospects = 9.0 * orthogonal + rng.normal(0.0, 0.4, size=(5, _N_FEATURES))

    data = np.vstack([bulk, fraud, premium, prospects])
    labels = np.concatenate(
        [
            np.zeros(n_bulk, dtype=int),
            np.array([1, 2]),
            np.full(5, 3),
        ]
    )
    return data, labels
