"""Synthetic Control Chart Time Series generator (stand-in for UCI Control).

The UCI "Synthetic Control Chart Time Series" dataset is itself synthetic:
Alcock & Manolopoulos generated six classes of 60-point control charts
(normal, cyclic, increasing trend, decreasing trend, upward shift,
downward shift) from simple closed-form formulas.  We regenerate the same
six classes with the canonical parameter ranges, which preserves exactly
the structure the paper's experiments rely on: 600 instances, 60 features,
6 well-separated clusters (Table II).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = ["CLASS_NAMES", "generate_control"]

#: The six canonical control-chart classes, in label order.
CLASS_NAMES = (
    "normal",
    "cyclic",
    "increasing_trend",
    "decreasing_trend",
    "upward_shift",
    "downward_shift",
)

_LENGTH = 60  # points per chart (the dataset's 60 features)


def _base(rng: np.random.Generator, n: int) -> np.ndarray:
    """Baseline process ``m + r s`` with m = 30, s = 2, r ~ U(-3, 3)."""
    return 30.0 + rng.uniform(-3.0, 3.0, size=(n, _LENGTH)) * 2.0


def _cyclic(rng: np.random.Generator, n: int) -> np.ndarray:
    t = np.arange(1, _LENGTH + 1)
    amplitude = rng.uniform(10.0, 15.0, size=(n, 1))
    period = rng.uniform(10.0, 15.0, size=(n, 1))
    return _base(rng, n) + amplitude * np.sin(2.0 * np.pi * t / period)


def _trend(rng: np.random.Generator, n: int, sign: float) -> np.ndarray:
    t = np.arange(1, _LENGTH + 1)
    gradient = rng.uniform(0.2, 0.5, size=(n, 1))
    return _base(rng, n) + sign * gradient * t


def _shift(rng: np.random.Generator, n: int, sign: float) -> np.ndarray:
    t = np.arange(1, _LENGTH + 1)
    position = rng.integers(_LENGTH // 3, 2 * _LENGTH // 3, size=(n, 1))
    magnitude = rng.uniform(7.5, 20.0, size=(n, 1))
    step = (t >= position).astype(float)
    return _base(rng, n) + sign * magnitude * step


def generate_control(
    n_per_class: int = 100, seed: Optional[int] = 7
) -> Tuple[np.ndarray, np.ndarray]:
    """Generate the six-class control-chart dataset.

    Returns ``(X, y)`` with ``X`` of shape ``(6 * n_per_class, 60)`` and
    integer labels ``y`` in 0..5 following :data:`CLASS_NAMES` order.  The
    default size matches the UCI original (600 x 60).
    """
    if n_per_class < 1:
        raise ValueError("n_per_class must be >= 1")
    rng = np.random.default_rng(seed)
    blocks = [
        _base(rng, n_per_class),
        _cyclic(rng, n_per_class),
        _trend(rng, n_per_class, +1.0),
        _trend(rng, n_per_class, -1.0),
        _shift(rng, n_per_class, +1.0),
        _shift(rng, n_per_class, -1.0),
    ]
    data = np.vstack(blocks)
    labels = np.repeat(np.arange(len(CLASS_NAMES)), n_per_class)
    return data, labels
