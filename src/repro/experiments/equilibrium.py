"""Fig. 4 / Fig. 5 runner: k-means quality under equilibrium play.

For each dataset, attack ratio and scheme, play the 20-round collection
game, cluster the retained data with k-means, and report the two series
the figures plot: the clustering SSE and the Distance between the fitted
centroids and the clean ground-truth centroids (Hungarian-matched).

The (scheme × attack ratio × repetition) grid runs on the
:mod:`repro.runtime` sweep runner: per-cell seeds are derived with
``SeedSequence`` spawn keys (the previous ``hash(scheme)``-based mixing
was not even stable across interpreter runs), the k-means fit happens
*inside* the worker so only the two scalars cross the process boundary,
and ``EquilibriumConfig.workers > 1`` parallelizes the panel.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.quality import TailMassEvaluator
from ..datasets.registry import DATASETS
from ..ml.kmeans import kmeans
from ..ml.metrics import centroid_distance, sse as metric_sse
from ..runtime import (
    USER_CHANNEL,
    ComponentSpec,
    StrategyPair,
    SweepGrid,
    SweepRunner,
    load_reference,
)
from .schemes import SCHEMES, scheme_specs

__all__ = [
    "EquilibriumConfig",
    "EquilibriumCell",
    "aggregate_kmeans",
    "kmeans_plan",
    "run_kmeans_experiment",
]


@dataclass(frozen=True)
class EquilibriumConfig:
    """Parameters of one Fig. 4/5 panel.

    Defaults are scaled for benchmark runtime; the paper's settings are
    20 rounds averaged over 100 repetitions — raise ``repetitions`` to
    match.
    """

    dataset: str = "control"
    t_th: float = 0.9
    attack_ratios: Sequence[float] = (0.0, 0.002, 0.004, 0.006, 0.008, 0.01)
    schemes: Sequence[str] = tuple(s for s in SCHEMES if s != "groundtruth")
    rounds: int = 20
    repetitions: int = 3
    batch_size: int = 100
    dataset_size: Optional[int] = None
    seed: int = 0
    workers: int = 1
    #: Lockstep width for the repetition axis ("auto" plays all reps of
    #: a cell in one BatchedCollectionGame; byte-identical to "off").
    rep_batch: object = "auto"


@dataclass(frozen=True)
class EquilibriumCell:
    """One (scheme, attack ratio) measurement: mean SSE and Distance."""

    scheme: str
    attack_ratio: float
    sse: float
    distance: float


def _ground_truth_centroids(data: np.ndarray, n_clusters: int, seed: int):
    result = kmeans(data, n_clusters, seed=seed, n_init=10)
    return result.centroids


def _kmeans_reduce(
    spec,
    result,
    n_clusters: int,
    reference_centroids: np.ndarray,
) -> dict:
    """In-worker reducer: fit k-means on the retained data, score it.

    The fitted model is initialized from the clean ground-truth centroids
    (a warm start), so the reported SSE and Distance measure how far the
    poisoned-and-trimmed data *pulls* the clustering away from the truth
    rather than k-means' own restart noise.  SSE is evaluated on the
    clean dataset against the fitted centroids — this is what makes both
    effects visible: surviving poison drags centroids (SSE up) and
    over-trimming shrinks the represented tail (SSE up).
    """
    data = load_reference(spec.dataset, spec.dataset_size)
    fit = kmeans(
        result.retained_data(),
        n_clusters,
        seed=spec.child_seed(USER_CHANNEL),
        init=reference_centroids,
    )
    return {
        "scheme": spec.tags["pair"],
        "attack_ratio": spec.tags["attack_ratio"],
        "rep": spec.tags["rep"],
        "sse": metric_sse(data, fit.centroids),
        "distance": centroid_distance(fit.centroids, reference_centroids),
    }


def kmeans_plan(config: EquilibriumConfig) -> Tuple[List, Callable]:
    """The panel's declarative half: grid-order specs plus the reducer.

    The ground-truth centroids are fitted here (once, on the clean
    dataset) and bound into the picklable reducer partial; the scenario
    layer and :func:`run_kmeans_experiment` both execute this plan
    through a :class:`~repro.runtime.runner.SweepRunner`.
    """
    data = load_reference(config.dataset, config.dataset_size)
    n_clusters = DATASETS[config.dataset].clusters
    reference_centroids = _ground_truth_centroids(data, n_clusters, config.seed)

    grid = SweepGrid(
        pairs=tuple(
            StrategyPair(scheme, *scheme_specs(scheme, config.t_th))
            for scheme in config.schemes
        ),
        datasets=(config.dataset,),
        dataset_size=config.dataset_size,
        attack_ratios=tuple(config.attack_ratios),
        repetitions=config.repetitions,
        rounds=config.rounds,
        batch_size=config.batch_size,
        anchor="reference",
        quality=ComponentSpec(TailMassEvaluator),
        seed=config.seed,
    )
    reduce = partial(
        _kmeans_reduce,
        n_clusters=n_clusters,
        reference_centroids=reference_centroids,
    )
    return grid.expand(), reduce


def aggregate_kmeans(
    config: EquilibriumConfig, records: Sequence[dict]
) -> List[EquilibriumCell]:
    """Average repetitions per (scheme, ratio) in grid order.

    Cells are emitted in the scheme-major order the figures plot.
    """
    grouped: dict = {}
    for record in records:
        grouped.setdefault(
            (record["scheme"], record["attack_ratio"]), []
        ).append(record)
    cells: List[EquilibriumCell] = []
    for scheme in config.schemes:
        for ratio in config.attack_ratios:
            reps = grouped[(scheme, float(ratio))]
            cells.append(
                EquilibriumCell(
                    scheme=scheme,
                    attack_ratio=float(ratio),
                    sse=float(np.mean([r["sse"] for r in reps])),
                    distance=float(np.mean([r["distance"] for r in reps])),
                )
            )
    return cells


def run_kmeans_experiment(
    config: EquilibriumConfig, store: Optional[object] = None
) -> List[EquilibriumCell]:
    """Run one full panel and return all (scheme, ratio) cells."""
    specs, reduce = kmeans_plan(config)
    runner = SweepRunner(
        workers=config.workers,
        reduce=reduce,
        rep_batch=config.rep_batch,
        store=store,
    )
    return aggregate_kmeans(config, runner.run(specs))
