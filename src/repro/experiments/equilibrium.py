"""Fig. 4 / Fig. 5 runner: k-means quality under equilibrium play.

For each dataset, attack ratio and scheme, play the 20-round collection
game, cluster the retained data with k-means, and report the two series
the figures plot: the clustering SSE and the Distance between the fitted
centroids and the clean ground-truth centroids (Hungarian-matched).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.engine import CollectionGame
from ..core.quality import TailMassEvaluator
from ..core.trimming import RadialTrimmer
from ..datasets.registry import DATASETS, load_dataset
from ..ml.kmeans import kmeans
from ..ml.metrics import centroid_distance, sse as metric_sse
from ..streams.injection import PoisonInjector
from ..streams.source import ArrayStream
from .schemes import SCHEMES, make_scheme

__all__ = ["EquilibriumConfig", "EquilibriumCell", "run_kmeans_experiment"]


@dataclass(frozen=True)
class EquilibriumConfig:
    """Parameters of one Fig. 4/5 panel.

    Defaults are scaled for benchmark runtime; the paper's settings are
    20 rounds averaged over 100 repetitions — raise ``repetitions`` to
    match.
    """

    dataset: str = "control"
    t_th: float = 0.9
    attack_ratios: Sequence[float] = (0.0, 0.002, 0.004, 0.006, 0.008, 0.01)
    schemes: Sequence[str] = tuple(s for s in SCHEMES if s != "groundtruth")
    rounds: int = 20
    repetitions: int = 3
    batch_size: int = 100
    dataset_size: Optional[int] = None
    seed: int = 0


@dataclass(frozen=True)
class EquilibriumCell:
    """One (scheme, attack ratio) measurement: mean SSE and Distance."""

    scheme: str
    attack_ratio: float
    sse: float
    distance: float


def _ground_truth_centroids(data: np.ndarray, n_clusters: int, seed: int):
    result = kmeans(data, n_clusters, seed=seed, n_init=10)
    return result.centroids


def run_kmeans_experiment(config: EquilibriumConfig) -> List[EquilibriumCell]:
    """Run one full panel and return all (scheme, ratio) cells.

    The fitted model is initialized from the clean ground-truth centroids
    (a warm start), so the reported SSE and Distance measure how far the
    poisoned-and-trimmed data *pulls* the clustering away from the truth
    rather than k-means' own restart noise.  SSE is evaluated on the
    clean dataset against the fitted centroids — this is what makes both
    effects visible: surviving poison drags centroids (SSE up) and
    over-trimming shrinks the represented tail (SSE up).
    """
    data, _ = load_dataset(config.dataset, n_samples=config.dataset_size)
    n_clusters = DATASETS[config.dataset].clusters
    reference_centroids = _ground_truth_centroids(data, n_clusters, config.seed)

    cells: List[EquilibriumCell] = []
    for scheme in config.schemes:
        for ratio in config.attack_ratios:
            sse_values = []
            dist_values = []
            for rep in range(config.repetitions):
                rep_seed = (
                    config.seed
                    + 1000 * rep
                    + hash(scheme) % 997
                    + int(ratio * 10_000)
                )
                collector, adversary = make_scheme(
                    scheme, config.t_th, seed=rep_seed
                )
                game = CollectionGame(
                    source=ArrayStream(
                        data, batch_size=config.batch_size, seed=rep_seed
                    ),
                    collector=collector,
                    adversary=adversary,
                    injector=PoisonInjector(
                        attack_ratio=ratio, mode="radial", seed=rep_seed + 1
                    ),
                    trimmer=RadialTrimmer(),
                    reference=data,
                    quality_evaluator=TailMassEvaluator(),
                    rounds=config.rounds,
                    anchor="reference",
                )
                result = game.run()
                retained = result.retained_data()
                fit = kmeans(
                    retained,
                    n_clusters,
                    seed=rep_seed + 2,
                    init=reference_centroids,
                )
                sse_values.append(metric_sse(data, fit.centroids))
                dist_values.append(
                    centroid_distance(fit.centroids, reference_centroids)
                )
            cells.append(
                EquilibriumCell(
                    scheme=scheme,
                    attack_ratio=float(ratio),
                    sse=float(np.mean(sse_values)),
                    distance=float(np.mean(dist_values)),
                )
            )
    return cells
