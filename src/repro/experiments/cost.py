"""Table IV runner: roundwise cost of the Elastic scheme.

The Elastic dynamics start away from the interactive equilibrium (the
collector at ``T_th - 3%``, the adversary at ``T_th + 1%``) and converge
toward the fixed point of the coupled responses.  The *cost* of a round
is the remaining distance from equilibrium — how far the collector's soft
trim and the adversary's injection still are from their converged
positions — and the *roundwise cost* is its average over ``Round_no``
rounds.  Because the transient's total cost is finite, the roundwise cost
decays like ``C(k)/Round_no``; with the relaxation update rule a stronger
response ``k`` converges faster, so ``k = 0.5`` is cheaper per round than
``k = 0.1`` — the Table IV finding (see DESIGN.md §4 for the update-rule
discussion).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..core.stackelberg import linear_response_fixed_point
from ..core.strategies import ElasticAdversary, ElasticCollector
from ..core.strategies.base import RoundObservation
from ..runtime import ComponentSpec, SweepRunner, TaskSpec

__all__ = [
    "CostConfig",
    "CostRow",
    "aggregate_cost",
    "cost_specs",
    "elastic_trajectory",
    "run_cost_analysis",
]


@dataclass(frozen=True)
class CostRow:
    """One Table IV row: roundwise cost for each response strength."""

    round_no: int
    cost_k_high: float
    cost_k_low: float


@dataclass(frozen=True)
class CostConfig:
    """Parameters of the Table IV sweep."""

    t_th: float = 0.9
    k_high: float = 0.5
    k_low: float = 0.1
    round_numbers: Sequence[int] = (5, 10, 15, 20, 25, 30, 35, 40, 45, 50)
    rule: str = "relaxation"


def elastic_trajectory(
    t_th: float, k: float, rounds: int, rule: str = "relaxation"
):
    """Threshold/injection percentile paths of the coupled Elastic play.

    Returns ``(thresholds, injections)`` arrays of length ``rounds``,
    produced by iterating the two §VI-A response rules against each other
    (each side reacting to the other's previous position).
    """
    if rounds < 1:
        raise ValueError("rounds must be >= 1")
    collector = ElasticCollector(t_th, k, rule=rule)
    adversary = ElasticAdversary(t_th, k, rule=rule)
    collector.reset()
    adversary.reset()

    thresholds = np.empty(rounds)
    injections = np.empty(rounds)
    thresholds[0] = collector.first()
    injections[0] = adversary.first()
    for i in range(1, rounds):
        obs = RoundObservation(
            index=i,
            trim_percentile=float(thresholds[i - 1]),
            injection_percentile=float(injections[i - 1]),
            quality=0.0,
            observed_poison_ratio=0.0,
            betrayal=False,
        )
        thresholds[i] = collector.react(obs)
        injections[i] = adversary.react(obs)
    return thresholds, injections


def roundwise_cost(
    t_th: float, k: float, rounds: int, rule: str = "relaxation"
) -> float:
    """Mean distance-from-equilibrium over ``rounds`` rounds.

    ``cost_i = |T(i) - T*| + |A(i) - A*|`` against the closed-form fixed
    point of the linear responses; the average decays like
    ``total_transient / rounds``.
    """
    t_star, a_star = linear_response_fixed_point(t_th, k)
    thresholds, injections = elastic_trajectory(t_th, k, rounds, rule)
    costs = np.abs(thresholds - t_star) + np.abs(injections - a_star)
    return float(np.mean(costs))


def cost_specs(config: CostConfig) -> List[TaskSpec]:
    """The Table IV sweep as declarative cells: round_numbers × {k_high, k_low}.

    Each cell is a :class:`~repro.runtime.spec.TaskSpec` wrapping
    :func:`roundwise_cost` — deterministic (seedless), so the cell key
    depends only on the ``(t_th, k, rounds, rule)`` recipe and the
    result store can replay Table IV without recomputing a single
    trajectory.
    """
    specs: List[TaskSpec] = []
    for n in config.round_numbers:
        for which, k in (("k_high", config.k_high), ("k_low", config.k_low)):
            specs.append(
                TaskSpec(
                    task=ComponentSpec(
                        roundwise_cost,
                        {
                            "t_th": float(config.t_th),
                            "k": float(k),
                            "rounds": int(n),
                            "rule": config.rule,
                        },
                    ),
                    tags={"round_no": int(n), "which": which, "k": float(k)},
                )
            )
    return specs


def aggregate_cost(config: CostConfig, records: Sequence[float]) -> List[CostRow]:
    """Fold grid-order cell records back into the Table IV rows.

    ``records`` must be in the :func:`cost_specs` expansion order —
    ``(k_high, k_low)`` pairs per round number — which is what
    :class:`~repro.runtime.runner.SweepRunner` guarantees.
    """
    expected = 2 * len(config.round_numbers)
    if len(records) != expected:
        raise ValueError(f"expected {expected} records, got {len(records)}")
    rows: List[CostRow] = []
    for i, n in enumerate(config.round_numbers):
        rows.append(
            CostRow(
                round_no=int(n),
                cost_k_high=float(records[2 * i]),
                cost_k_low=float(records[2 * i + 1]),
            )
        )
    return rows


def run_cost_analysis(
    config: CostConfig,
    store: Optional[object] = None,
    workers: int = 1,
) -> List[CostRow]:
    """Produce the Table IV rows (on the sweep runtime).

    The hand-rolled per-row loop this replaces called
    :func:`roundwise_cost` twice per round number; the cells now flow
    through :class:`~repro.runtime.runner.SweepRunner` — numerically
    identical, with optional process parallelism and result-store
    caching.
    """
    runner = SweepRunner(workers=workers, store=store)
    return aggregate_cost(config, runner.run(cost_specs(config)))
