"""Table IV runner: roundwise cost of the Elastic scheme.

The Elastic dynamics start away from the interactive equilibrium (the
collector at ``T_th - 3%``, the adversary at ``T_th + 1%``) and converge
toward the fixed point of the coupled responses.  The *cost* of a round
is the remaining distance from equilibrium — how far the collector's soft
trim and the adversary's injection still are from their converged
positions — and the *roundwise cost* is its average over ``Round_no``
rounds.  Because the transient's total cost is finite, the roundwise cost
decays like ``C(k)/Round_no``; with the relaxation update rule a stronger
response ``k`` converges faster, so ``k = 0.5`` is cheaper per round than
``k = 0.1`` — the Table IV finding (see DESIGN.md §4 for the update-rule
discussion).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..core.stackelberg import linear_response_fixed_point
from ..core.strategies import ElasticAdversary, ElasticCollector
from ..core.strategies.base import RoundObservation

__all__ = ["CostConfig", "CostRow", "elastic_trajectory", "run_cost_analysis"]


@dataclass(frozen=True)
class CostRow:
    """One Table IV row: roundwise cost for each response strength."""

    round_no: int
    cost_k_high: float
    cost_k_low: float


@dataclass(frozen=True)
class CostConfig:
    """Parameters of the Table IV sweep."""

    t_th: float = 0.9
    k_high: float = 0.5
    k_low: float = 0.1
    round_numbers: Sequence[int] = (5, 10, 15, 20, 25, 30, 35, 40, 45, 50)
    rule: str = "relaxation"


def elastic_trajectory(
    t_th: float, k: float, rounds: int, rule: str = "relaxation"
):
    """Threshold/injection percentile paths of the coupled Elastic play.

    Returns ``(thresholds, injections)`` arrays of length ``rounds``,
    produced by iterating the two §VI-A response rules against each other
    (each side reacting to the other's previous position).
    """
    if rounds < 1:
        raise ValueError("rounds must be >= 1")
    collector = ElasticCollector(t_th, k, rule=rule)
    adversary = ElasticAdversary(t_th, k, rule=rule)
    collector.reset()
    adversary.reset()

    thresholds = np.empty(rounds)
    injections = np.empty(rounds)
    thresholds[0] = collector.first()
    injections[0] = adversary.first()
    for i in range(1, rounds):
        obs = RoundObservation(
            index=i,
            trim_percentile=float(thresholds[i - 1]),
            injection_percentile=float(injections[i - 1]),
            quality=0.0,
            observed_poison_ratio=0.0,
            betrayal=False,
        )
        thresholds[i] = collector.react(obs)
        injections[i] = adversary.react(obs)
    return thresholds, injections


def roundwise_cost(
    t_th: float, k: float, rounds: int, rule: str = "relaxation"
) -> float:
    """Mean distance-from-equilibrium over ``rounds`` rounds.

    ``cost_i = |T(i) - T*| + |A(i) - A*|`` against the closed-form fixed
    point of the linear responses; the average decays like
    ``total_transient / rounds``.
    """
    t_star, a_star = linear_response_fixed_point(t_th, k)
    thresholds, injections = elastic_trajectory(t_th, k, rounds, rule)
    costs = np.abs(thresholds - t_star) + np.abs(injections - a_star)
    return float(np.mean(costs))


def run_cost_analysis(config: CostConfig) -> List[CostRow]:
    """Produce the Table IV rows."""
    rows: List[CostRow] = []
    for n in config.round_numbers:
        rows.append(
            CostRow(
                round_no=int(n),
                cost_k_high=roundwise_cost(
                    config.t_th, config.k_high, int(n), config.rule
                ),
                cost_k_low=roundwise_cost(
                    config.t_th, config.k_low, int(n), config.rule
                ),
            )
        )
    return rows
