"""Fig. 6 / Fig. 7 / Fig. 8 runners: SVM and SOM under equilibrium play.

* **SVM (Fig. 6a / Fig. 7)** — the labeled Control dataset streams through
  the collection game (labels ride along as an extra column that the
  trimmer ignores); the retained rows train a one-vs-rest linear SVM whose
  accuracy and confusion/PPV/FDR panel are reported per scheme.
* **SOM (Fig. 6b / Fig. 8)** — the skewed Creditcard stand-in streams
  through the game; a SOM is trained on the retained data and the
  qualitative Fig. 8 comparison is quantified as: survival of the seven
  minority points (the two isolated users + five prospects), the retained
  poison fraction, the number of clusters visible on the map, and the
  quantization error against clean data.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.engine import CollectionGame
from ..core.quality import TailMassEvaluator
from ..core.trimming import RadialTrimmer
from ..datasets.control import generate_control
from ..datasets.creditcard import generate_creditcard
from ..ml.metrics import ConfusionSummary, confusion_summary
from ..ml.som import SelfOrganizingMap
from ..ml.svm import OneVsRestSVM
from ..streams.injection import PoisonInjector
from ..streams.source import ArrayStream
from .schemes import SCHEMES, make_scheme

__all__ = [
    "LabelMimicInjector",
    "LabelAwareRadialTrimmer",
    "SVMConfig",
    "SVMResult",
    "run_svm_experiment",
    "SOMConfig",
    "SOMResult",
    "run_som_experiment",
]


def _scheme_seed(base: int, scheme: str) -> int:
    """Deterministic per-scheme seed offset.

    Replaces the interpreter-unstable ``hash(scheme) % 911`` (randomized
    by ``PYTHONHASHSEED``, so two processes disagreed on fig7/fig8
    outputs) with a CRC32 digest — stable across processes and
    platforms, which the result store's replay guarantees require.
    """
    return base + zlib.crc32(scheme.encode("utf-8")) % 911


class LabelMimicInjector(PoisonInjector):
    """Poison injector for labeled streams ``[features | label]``.

    Features are materialized by the parent (radial placement); each
    poison row *mimics* the label of its nearest benign neighbour in the
    round's batch — the evasive, deniable labeling consistent with the
    threat model (a poison point claiming an implausible class would be
    trivially flaggable), which also makes poison damage grow with the
    injection position exactly as the paper's ``P(x)`` model assumes.
    """

    def fit_reference(self, reference) -> "LabelMimicInjector":
        arr = np.asarray(reference, dtype=float)
        if arr.ndim != 2 or arr.shape[1] < 2:
            raise ValueError("labeled reference must be 2-D with >= 2 columns")
        super().fit_reference(arr[:, :-1])
        return self

    def materialize(self, benign: np.ndarray, percentile: float) -> np.ndarray:
        arr = np.asarray(benign, dtype=float)
        if arr.ndim != 2 or arr.shape[1] < 2:
            raise ValueError("labeled batches must be 2-D with >= 2 columns")
        features = arr[:, :-1]
        labels = arr[:, -1]
        poison_features = super().materialize(features, percentile)
        if poison_features.shape[0] == 0:
            return arr[:0].copy()
        d2 = (
            np.sum(poison_features**2, axis=1)[:, None]
            - 2.0 * poison_features @ features.T
            + np.sum(features**2, axis=1)[None, :]
        )
        nearest = np.argmin(d2, axis=1)
        return np.column_stack([poison_features, labels[nearest]])


class LabelAwareRadialTrimmer(RadialTrimmer):
    """Radial trimming that ignores the trailing label column.

    The classifier experiments stream ``[features | label]`` rows through
    the engine; trimming decisions must depend on features only.
    """

    def scores(self, batch: np.ndarray) -> np.ndarray:
        arr = np.asarray(batch, dtype=float)
        if arr.ndim != 2 or arr.shape[1] < 2:
            raise ValueError("labeled batches must be 2-D with >= 2 columns")
        return super().scores(arr[:, :-1])

    def fit_reference(self, reference) -> "LabelAwareRadialTrimmer":
        arr = np.asarray(reference, dtype=float)
        if arr.ndim != 2 or arr.shape[1] < 2:
            raise ValueError("labeled reference must be 2-D with >= 2 columns")
        features = arr[:, :-1]
        self._center = np.median(features, axis=0)
        self._set_reference_scores(
            np.linalg.norm(features - self._center, axis=1)
        )
        return self


# --------------------------------------------------------------------- #
# SVM experiment (Fig. 6a, Fig. 7)
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class SVMConfig:
    """Parameters of the Fig. 7 comparison (§VI-C: Tth 0.95, ratio 0.4)."""

    t_th: float = 0.95
    attack_ratio: float = 0.4
    rounds: int = 10
    batch_size: int = 60
    svm_iterations: int = 20_000
    svm_lambda: float = 1e-4
    schemes: Sequence[str] = tuple(s for s in SCHEMES if s != "groundtruth")
    seed: int = 0


@dataclass(frozen=True)
class SVMResult:
    """One scheme's SVM outcome."""

    scheme: str
    accuracy: float
    summary: ConfusionSummary


def _labeled_control(seed: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    data, labels = generate_control(seed=seed)
    stacked = np.column_stack([data, labels.astype(float)])
    return stacked, data, labels


def run_svm_experiment(config: SVMConfig) -> List[SVMResult]:
    """Run Fig. 7: ground truth first, then every scheme."""
    stacked, clean_x, clean_y = _labeled_control(seed=7)
    n_classes = int(np.unique(clean_y).size)

    results: List[SVMResult] = []

    def evaluate(name: str, train_x, train_y) -> SVMResult:
        model = OneVsRestSVM(
            lam=config.svm_lambda,
            n_iter=config.svm_iterations,
            seed=config.seed,
        )
        model.fit(train_x, train_y)
        predictions = model.predict(clean_x)
        summary = confusion_summary(clean_y, predictions, n_classes)
        return SVMResult(scheme=name, accuracy=summary.accuracy, summary=summary)

    # Ground truth: train on the clean data directly.
    results.append(evaluate("groundtruth", clean_x, clean_y))

    for scheme in config.schemes:
        collector, adversary = make_scheme(
            scheme, config.t_th, seed=_scheme_seed(config.seed, scheme)
        )
        game = CollectionGame(
            source=ArrayStream(
                stacked, batch_size=config.batch_size, seed=config.seed
            ),
            collector=collector,
            adversary=adversary,
            injector=LabelMimicInjector(
                attack_ratio=config.attack_ratio,
                mode="radial",
                seed=config.seed + 1,
            ),
            trimmer=LabelAwareRadialTrimmer(),
            reference=stacked,
            quality_evaluator=TailMassEvaluator(),
            rounds=config.rounds,
            anchor="reference",
        )
        retained = game.run().retained_data()
        train_x = retained[:, :-1]
        train_y = np.clip(
            np.round(retained[:, -1]).astype(int), 0, n_classes - 1
        )
        results.append(evaluate(scheme, train_x, train_y))
    return results


# --------------------------------------------------------------------- #
# SOM experiment (Fig. 6b, Fig. 8)
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class SOMConfig:
    """Parameters of the Fig. 8 comparison.

    The paper trains a 20 x 20 SOM on the full Creditcard data; defaults
    here shrink the bulk sample and the grid for benchmark runtime while
    keeping the skewed minority structure intact.
    """

    t_th: float = 0.95
    attack_ratio: float = 0.4
    rounds: int = 10
    batch_size: int = 200
    bulk_size: int = 2000
    grid: Tuple[int, int] = (10, 10)
    som_iterations: int = 4000
    schemes: Sequence[str] = tuple(s for s in SCHEMES if s != "groundtruth")
    seed: int = 0


@dataclass(frozen=True)
class SOMResult:
    """One scheme's SOM outcome (the quantified Fig. 8 panel)."""

    scheme: str
    minority_retained: int
    poison_retained_fraction: float
    cluster_count: int
    quantization_error: float


def _creditcard_sample(bulk_size: int, seed: int) -> Tuple[np.ndarray, np.ndarray]:
    data, labels = generate_creditcard(n_samples=bulk_size + 7, seed=seed)
    return data, labels


def run_som_experiment(config: SOMConfig) -> List[SOMResult]:
    """Run Fig. 8: ground truth first, then every scheme."""
    data, labels = _creditcard_sample(config.bulk_size, seed=23)
    minority = data[labels > 0]
    clean_eval = data

    rows_, cols_ = config.grid

    def minority_survivors(retained: np.ndarray) -> int:
        count = 0
        for point in minority:
            gaps = np.linalg.norm(retained - point, axis=1)
            if np.min(gaps) < 1e-6:
                count += 1
        return count

    def evaluate(name: str, retained: np.ndarray, poison_fraction: float) -> SOMResult:
        som = SelfOrganizingMap(
            rows=rows_,
            cols=cols_,
            n_iter=config.som_iterations,
            seed=config.seed,
        )
        som.fit(retained)
        return SOMResult(
            scheme=name,
            minority_retained=minority_survivors(retained),
            poison_retained_fraction=poison_fraction,
            cluster_count=som.cluster_count(retained),
            quantization_error=som.quantization_error(clean_eval),
        )

    results: List[SOMResult] = [evaluate("groundtruth", data, 0.0)]

    for scheme in config.schemes:
        collector, adversary = make_scheme(
            scheme, config.t_th, seed=_scheme_seed(config.seed, scheme)
        )
        game = CollectionGame(
            source=ArrayStream(
                data, batch_size=config.batch_size, seed=config.seed
            ),
            collector=collector,
            adversary=adversary,
            injector=PoisonInjector(
                attack_ratio=config.attack_ratio,
                mode="radial",
                seed=config.seed + 1,
            ),
            trimmer=RadialTrimmer(),
            reference=data,
            quality_evaluator=TailMassEvaluator(),
            rounds=config.rounds,
            anchor="batch",
        )
        result = game.run()
        retained = result.retained_data()
        results.append(
            evaluate(scheme, retained, result.poison_retained_fraction())
        )
    return results
