"""Plain-text table rendering for experiment and benchmark output.

The benchmark harness prints the same rows/series the paper's tables and
figures report; this module holds the shared fixed-width formatter so
every bench renders consistently.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["format_table", "format_value"]


def format_value(value, precision: int = 5) -> str:
    """Render one cell: floats compactly, everything else via str()."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == 0.0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-4:
            return f"{value:.{precision}g}"
        return f"{value:.{precision}g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str = "",
    precision: int = 5,
) -> str:
    """Fixed-width table with a header rule, ready for printing."""
    rendered: List[List[str]] = [
        [format_value(cell, precision) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError("row length must match header length")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in rendered)
    return "\n".join(lines)
